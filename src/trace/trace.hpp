// Structured protocol tracing: every run becomes an explorable timeline.
//
// The simulation engine and the protocol peers emit TraceEvents into a
// TraceSink attached to the engine (none by default — tracing costs one
// predicted-not-taken branch per event site when off, and can be compiled
// out entirely with -DOLB_TRACE_DISABLED). Two sinks are provided:
//
//  * VectorTracer — unbounded, for explorers and tests;
//  * RingTracer   — bounded ring that overwrites the oldest events and
//                   counts drops, for always-on tracing of long runs.
//
// Events are plain integers (kind, actor, peer, type, a, b) so a trace is a
// pure function of (actors, config, seed) exactly like the run itself —
// tests assert byte-identical NDJSON across repeated runs. Exporters to
// Chrome/Perfetto JSON and NDJSON live in trace/export.hpp.
//
// Field conventions per kind (a/b are per-kind payloads):
//
//  kind          | actor      | peer      | type       | a            | b
//  --------------+------------+-----------+------------+--------------+---------
//  kMsgSend      | sender     | dst       | msg type   | msg id       | latency
//  kMsgDeliver   | receiver   | src       | msg type   | msg id       | inbox wait
//  kComputeSpan  | actor      | —         | —          | duration     | units
//  kTimerSet     | actor      | —         | —          | tag          | delay
//  kTimerFire    | actor      | —         | —          | tag          | —
//  kActorIdle    | actor      | —         | —          | —            | —
//  kIdleBegin    | peer       | —         | —          | episode      | —
//  kIdleEnd      | peer       | work src  | —          | episode      | —
//  kRequest      | requester  | target    | msg type   | agg sent (+) | agg recv (+)
//  kServe        | server     | requester | msg type   | fraction ppm | amount
//  kNoServe      | server     | requester | msg type   | —            | —
//  kQueueDepth   | peer       | —         | —          | depth        | —
//  kSplitClamp   | server     | —         | msg type   | raw ppm (***)| clamped ppm
//  kProbeWave    | root       | —         | 0/1/2 (*)  | probe id     | —
//  kTerminated   | peer       | —         | —          | —            | —
//  kMsgDrop      | sender     | dst       | msg type   | msg id       | why (**)
//  kMsgDup       | sender     | dst       | msg type   | msg id       | —
//  kPeerCrash    | peer       | —         | —          | work lost    | —
//  kPeerStall    | peer       | —         | —          | duration     | —
//  kReparent     | orphan     | new parent| —          | old parent   | —
//  kRetry        | peer       | target    | msg type   | attempt      | —
//  kMemberJoin   | joiner     | parent    | —          | weight       | —
//  kMemberLeave  | leaver     | parent    | —          | weight       | —
//  kJobSubmit    | gate       | —         | job id     | class        | amount (m)
//  kJobAdmit     | gate       | —         | job id     | class        | amount (m)
//  kJobReject    | gate       | —         | job id     | class        | pending
//  kJobXfer      | sender     | dst       | job id     | amount (m)   | req type
//  kJobMerge     | receiver   | src       | job id     | amount (m)   | bridge flag
//  kJobChunk     | peer       | —         | job id     | units done   | Δamount (m)
//  kJobDone      | gate       | —         | job id     | class        | sojourn ns
//
//  (*) 0 = wave launched, 1 = wave came back clean, 2 = wave came back dirty.
//  (**) 0 = link fault, 1 = destination crashed, 2 = bounce destroyed.
//  (***) raw fraction saturated into [-1000, 1000] before the ppm encoding
//        (stale subtree aggregates can produce absurd magnitudes).
//  (+) only the overlay's upward request (kReqUp) carries the subtree's
//      aggregated transfer counters; other kRequest emissions leave a/b = 0.
//  (m) work amounts in kJob* events travel as milli-units
//      (llround(amount * 1000)) so the events stay all-integer; the job id
//      rides the `type` field (job ids are small sequential integers).
//      Job events are emitted only by service-mode runs (src/svc) — a
//      single-job run never records any of them.
#pragma once

#include <cstdint>
#include <cmath>
#include <mutex>
#include <vector>

#include "simnet/time.hpp"
#include "support/check.hpp"

namespace olb::trace {

/// Compile-time kill switch: with -DOLB_TRACE_DISABLED every emit() call is
/// an empty inline and the tracer pointer is never consulted.
#ifdef OLB_TRACE_DISABLED
inline constexpr bool kTraceCompiled = false;
#else
inline constexpr bool kTraceCompiled = true;
#endif

enum class EventKind : std::uint8_t {
  // --- engine level ---
  kMsgSend = 0,
  kMsgDeliver,
  kComputeSpan,
  kTimerSet,
  kTimerFire,
  kActorIdle,
  // --- protocol level ---
  kIdleBegin,
  kIdleEnd,
  kRequest,
  kServe,
  kNoServe,
  kQueueDepth,
  kSplitClamp,
  kProbeWave,
  kTerminated,
  // --- fault injection & recovery ---
  kMsgDrop,
  kMsgDup,
  kPeerCrash,
  kPeerStall,
  kReparent,
  kRetry,
  // --- elastic membership ---
  kMemberJoin,
  kMemberLeave,
  // --- multi-job service layer (src/svc) ---
  kJobSubmit,
  kJobAdmit,
  kJobReject,
  kJobXfer,
  kJobMerge,
  kJobChunk,
  kJobDone,
};

inline const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kMsgDeliver: return "msg_deliver";
    case EventKind::kComputeSpan: return "compute";
    case EventKind::kTimerSet: return "timer_set";
    case EventKind::kTimerFire: return "timer_fire";
    case EventKind::kActorIdle: return "actor_idle";
    case EventKind::kIdleBegin: return "idle_begin";
    case EventKind::kIdleEnd: return "idle_end";
    case EventKind::kRequest: return "request";
    case EventKind::kServe: return "serve";
    case EventKind::kNoServe: return "no_serve";
    case EventKind::kQueueDepth: return "queue_depth";
    case EventKind::kSplitClamp: return "split_clamp";
    case EventKind::kProbeWave: return "probe_wave";
    case EventKind::kTerminated: return "terminated";
    case EventKind::kMsgDrop: return "msg_drop";
    case EventKind::kMsgDup: return "msg_dup";
    case EventKind::kPeerCrash: return "peer_crash";
    case EventKind::kPeerStall: return "peer_stall";
    case EventKind::kReparent: return "reparent";
    case EventKind::kRetry: return "retry";
    case EventKind::kMemberJoin: return "member_join";
    case EventKind::kMemberLeave: return "member_leave";
    case EventKind::kJobSubmit: return "job_submit";
    case EventKind::kJobAdmit: return "job_admit";
    case EventKind::kJobReject: return "job_reject";
    case EventKind::kJobXfer: return "job_xfer";
    case EventKind::kJobMerge: return "job_merge";
    case EventKind::kJobChunk: return "job_chunk";
    case EventKind::kJobDone: return "job_done";
  }
  return "?";
}

struct TraceEvent {
  sim::Time time = 0;
  EventKind kind = EventKind::kMsgSend;
  std::int32_t actor = -1;  ///< the track the event belongs to
  std::int32_t peer = -1;   ///< other endpoint, -1 when not applicable
  std::int32_t type = 0;    ///< message type / request kind / wave result
  std::int64_t a = 0;       ///< per-kind payload, see table above
  std::int64_t b = 0;       ///< per-kind payload, see table above
};

/// Served fractions travel as parts-per-million so events stay all-integer
/// (and therefore bit-reproducible across platforms).
inline std::int64_t fraction_ppm(double fraction) {
  return static_cast<std::int64_t>(std::llround(fraction * 1e6));
}

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void record(const TraceEvent& e) = 0;

  /// Events lost to capacity limits (0 for unbounded sinks).
  virtual std::uint64_t dropped() const { return 0; }

  /// The retained events, oldest first.
  virtual std::vector<TraceEvent> snapshot() const = 0;
};

/// Unbounded sink; the default choice for explorers and tests.
class VectorTracer final : public TraceSink {
 public:
  void record(const TraceEvent& e) override { events_.push_back(e); }
  std::vector<TraceEvent> snapshot() const override { return events_; }
  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

/// Bounded ring: keeps the *last* `capacity` events (the interesting tail of
/// a long run) and counts what it had to drop.
class RingTracer final : public TraceSink {
 public:
  explicit RingTracer(std::size_t capacity) : capacity_(capacity) {
    OLB_CHECK(capacity_ > 0);
    events_.reserve(capacity_);
  }

  void record(const TraceEvent& e) override {
    if (events_.size() < capacity_) {
      events_.push_back(e);
      return;
    }
    events_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  std::uint64_t dropped() const override { return dropped_; }

  std::vector<TraceEvent> snapshot() const override {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< oldest retained event once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Fans every event out to up to two sinks — e.g. the caller's tracer plus
/// the conformance oracles — without either knowing about the other. Either
/// sink may be null. dropped()/snapshot() delegate to the first sink so a
/// TeeSink is a drop-in replacement for it.
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* first, TraceSink* second) : first_(first), second_(second) {}

  void record(const TraceEvent& e) override {
    if (first_ != nullptr) first_->record(e);
    if (second_ != nullptr) second_->record(e);
  }

  std::uint64_t dropped() const override {
    return first_ != nullptr ? first_->dropped() : 0;
  }

  std::vector<TraceEvent> snapshot() const override {
    return first_ != nullptr ? first_->snapshot() : std::vector<TraceEvent>{};
  }

 private:
  TraceSink* first_;
  TraceSink* second_;
};

/// Mutex adapter making any sink safe for concurrent record() calls — the
/// shared-memory backend's threads all emit into one sink. The lock also
/// serialises each send with its delivery (senders emit kMsgSend *before*
/// the mailbox push), so the recorded stream order is causal: a message's
/// send always precedes its delivery.
class LockedSink final : public TraceSink {
 public:
  explicit LockedSink(TraceSink* inner) : inner_(inner) { OLB_CHECK(inner_ != nullptr); }

  void record(const TraceEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->record(e);
  }

  std::uint64_t dropped() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->dropped();
  }

  std::vector<TraceEvent> snapshot() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->snapshot();
  }

 private:
  mutable std::mutex mu_;
  TraceSink* inner_;
};

/// The one emission point: a null sink (the default) costs a single
/// predicted branch — the fields are plain scalars so the TraceEvent is
/// only materialised on the cold path. With OLB_TRACE_DISABLED the whole
/// call folds to nothing.
inline void emit(TraceSink* sink, sim::Time time, EventKind kind,
                 std::int32_t actor, std::int32_t peer = -1,
                 std::int32_t type = 0, std::int64_t a = 0, std::int64_t b = 0) {
  if constexpr (kTraceCompiled) {
    if (sink != nullptr) [[unlikely]] {
      sink->record(TraceEvent{time, kind, actor, peer, type, a, b});
    }
  } else {
    (void)sink, (void)time, (void)kind, (void)actor, (void)peer, (void)type;
    (void)a, (void)b;
  }
}

}  // namespace olb::trace
