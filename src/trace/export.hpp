// Trace exporters and derived time-series.
//
//  * write_ndjson   — one JSON object per event, one per line; all-integer
//                     fields, so two runs of the same (config, seed) produce
//                     byte-identical files (asserted by tests/test_trace).
//  * write_perfetto — Chrome trace-event JSON loadable in Perfetto
//                     (https://ui.perfetto.dev) or chrome://tracing: one
//                     named track per peer, "X" slices for compute spans and
//                     message handling, flow arrows (s/f) for work
//                     transfers, instants for idle episodes and probes, and
//                     global counter tracks (idle peers, pending requests,
//                     work in flight).
//  * derive_timeline — bucketed series (work-in-flight, idle-peer count,
//                     pending-request depth) that lb::RunMetrics carries
//                     alongside the utilization histogram.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace olb::trace {

/// Maps an application message-type tag to a display name; may return
/// nullptr (the exporter then prints "msg/<type>").
using TypeNameFn = const char* (*)(int type);

void write_ndjson(std::ostream& os, std::span<const TraceEvent> events);

/// Parses a stream produced by write_ndjson back into events (file order).
/// Strict inverse of the exporter: a line that deviates from its exact
/// format or names an unknown kind aborts (OLB_CHECK) — trace checkers must
/// fail loudly on corrupt input, never skip it. Empty lines are ignored so
/// concatenated files round-trip.
std::vector<TraceEvent> read_ndjson(std::istream& is);

struct PerfettoOptions {
  int num_actors = 0;          ///< tracks to pre-name (0 = infer from events)
  int work_msg_type = -1;      ///< message type drawn as flow arrows (-1 = none)
  TypeNameFn type_name = nullptr;
  /// Receiver busy time per message (NetworkConfig::msg_handling_cost);
  /// rendered as the duration of message-handling slices.
  sim::Time handling_cost = sim::microseconds(5);
};

void write_perfetto(std::ostream& os, std::span<const TraceEvent> events,
                    const PerfettoOptions& options);

/// Derived per-bucket series; each vector has one sample per `bucket` of
/// simulated time (value observed at the end of the bucket).
struct Timeline {
  std::vector<double> work_in_flight;  ///< work messages sent, not yet delivered
  std::vector<double> idle_peers;      ///< peers inside an idle episode
  std::vector<double> pending_depth;   ///< parked work requests across all peers
};

Timeline derive_timeline(std::span<const TraceEvent> events, sim::Time bucket,
                         int work_msg_type);

}  // namespace olb::trace
