#include "trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <string_view>

namespace olb::trace {

namespace {

/// Formats simulated nanoseconds as the microsecond ts/dur fields of the
/// Chrome trace format without going through floating point (keeps exports
/// bit-reproducible).
std::string micros(sim::Time t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, t / 1000,
                t % 1000 >= 0 ? t % 1000 : -(t % 1000));
  return buf;
}

const char* type_label(const PerfettoOptions& options, int type, char* buf,
                       std::size_t buf_size) {
  if (options.type_name != nullptr) {
    if (const char* name = options.type_name(type)) return name;
  }
  std::snprintf(buf, buf_size, "msg/%d", type);
  return buf;
}

}  // namespace

void write_ndjson(std::ostream& os, std::span<const TraceEvent> events) {
  char line[256];
  for (const TraceEvent& e : events) {
    std::snprintf(line, sizeof(line),
                  "{\"t\":%" PRId64 ",\"k\":\"%s\",\"actor\":%d,\"peer\":%d,"
                  "\"type\":%d,\"a\":%" PRId64 ",\"b\":%" PRId64 "}\n",
                  e.time, kind_name(e.kind), e.actor, e.peer, e.type, e.a, e.b);
    os << line;
  }
}

std::vector<TraceEvent> read_ndjson(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TraceEvent e;
    char kind[32] = {0};
    int consumed = 0;
    const int n = std::sscanf(
        line.c_str(),
        "{\"t\":%" SCNd64 ",\"k\":\"%31[^\"]\",\"actor\":%d,\"peer\":%d,"
        "\"type\":%d,\"a\":%" SCNd64 ",\"b\":%" SCNd64 "}%n",
        &e.time, kind, &e.actor, &e.peer, &e.type, &e.a, &e.b, &consumed);
    OLB_CHECK_MSG(n == 7 && consumed == static_cast<int>(line.size()),
                  "malformed NDJSON trace line");
    bool known = false;
    for (int k = 0; k <= static_cast<int>(EventKind::kMemberLeave); ++k) {
      const auto candidate = static_cast<EventKind>(k);
      if (std::string_view(kind) == kind_name(candidate)) {
        e.kind = candidate;
        known = true;
        break;
      }
    }
    OLB_CHECK_MSG(known, "unknown event kind in NDJSON trace");
    events.push_back(e);
  }
  return events;
}

void write_perfetto(std::ostream& os, std::span<const TraceEvent> events,
                    const PerfettoOptions& options) {
  char buf[512];
  char name_buf[32];
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto put = [&](const char* s) {
    if (!first) os << ",\n";
    first = false;
    os << s;
  };

  // One named track per peer.
  int tracks = options.num_actors;
  if (tracks == 0) {
    for (const TraceEvent& e : events) tracks = std::max(tracks, e.actor + 1);
  }
  for (int i = 0; i < tracks; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"peer %d\"}}",
                  i, i);
    put(buf);
  }

  auto instant = [&](const TraceEvent& e, const char* name) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,"
                  "\"name\":\"%s\",\"cat\":\"protocol\","
                  "\"args\":{\"peer\":%d,\"a\":%" PRId64 ",\"b\":%" PRId64 "}}",
                  e.actor, micros(e.time).c_str(), name, e.peer, e.a, e.b);
    put(buf);
  };
  auto counter = [&](sim::Time t, const char* name, double v) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"C\",\"pid\":0,\"ts\":%s,\"name\":\"%s\","
                  "\"args\":{\"value\":%.0f}}",
                  micros(t).c_str(), name, v);
    put(buf);
  };

  // Counter state threaded through the single pass below.
  double in_flight = 0, idle = 0, pending = 0;
  std::vector<std::int64_t> last_depth;  // per-actor pending depth

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kComputeSpan:
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,"
                      "\"name\":\"compute\",\"cat\":\"compute\","
                      "\"args\":{\"units\":%" PRId64 "}}",
                      e.actor, micros(e.time).c_str(), micros(e.a).c_str(), e.b);
        put(buf);
        break;
      case EventKind::kMsgDeliver: {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,"
                      "\"name\":\"%s\",\"cat\":\"msg\","
                      "\"args\":{\"from\":%d,\"inbox_wait_ns\":%" PRId64 "}}",
                      e.actor, micros(e.time).c_str(),
                      micros(options.handling_cost).c_str(),
                      type_label(options, e.type, name_buf, sizeof(name_buf)),
                      e.peer, e.b);
        put(buf);
        if (e.type == options.work_msg_type) {
          std::snprintf(buf, sizeof(buf),
                        "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":%d,\"ts\":%s,"
                        "\"id\":%" PRId64 ",\"name\":\"work\",\"cat\":\"flow\"}",
                        e.actor, micros(e.time).c_str(), e.a);
          put(buf);
          counter(e.time, "work in flight", --in_flight);
        }
        break;
      }
      case EventKind::kMsgSend:
        if (e.type == options.work_msg_type) {
          std::snprintf(buf, sizeof(buf),
                        "{\"ph\":\"s\",\"pid\":0,\"tid\":%d,\"ts\":%s,"
                        "\"id\":%" PRId64 ",\"name\":\"work\",\"cat\":\"flow\"}",
                        e.actor, micros(e.time).c_str(), e.a);
          put(buf);
          counter(e.time, "work in flight", ++in_flight);
        }
        break;
      case EventKind::kIdleBegin:
        instant(e, "idle_begin");
        counter(e.time, "idle peers", ++idle);
        break;
      case EventKind::kIdleEnd:
        instant(e, "idle_end");
        counter(e.time, "idle peers", --idle);
        break;
      case EventKind::kQueueDepth: {
        const auto idx = static_cast<std::size_t>(e.actor);
        if (last_depth.size() <= idx) last_depth.resize(idx + 1, 0);
        pending += static_cast<double>(e.a - last_depth[idx]);
        last_depth[idx] = e.a;
        counter(e.time, "pending requests", pending);
        break;
      }
      case EventKind::kRequest:
        instant(e, type_label(options, e.type, name_buf, sizeof(name_buf)));
        break;
      case EventKind::kServe:
        instant(e, "serve");
        break;
      case EventKind::kProbeWave:
        instant(e, e.type == 0 ? "probe_launch"
                               : (e.type == 1 ? "probe_clean" : "probe_dirty"));
        break;
      case EventKind::kTerminated:
        instant(e, "terminated");
        break;
      case EventKind::kMsgDrop:
        instant(e, e.b == 0 ? "msg_drop" : "msg_drop_crashed");
        if (e.type == options.work_msg_type) {
          counter(e.time, "work in flight", --in_flight);
        }
        break;
      case EventKind::kMsgDup:
        instant(e, "msg_dup");
        break;
      case EventKind::kPeerCrash:
        instant(e, "peer_crash");
        break;
      case EventKind::kPeerStall:
        instant(e, "peer_stall");
        break;
      case EventKind::kReparent:
        instant(e, "reparent");
        break;
      case EventKind::kRetry:
        instant(e, "retry");
        break;
      case EventKind::kMemberJoin:
        instant(e, "member_join");
        break;
      case EventKind::kMemberLeave:
        instant(e, "member_leave");
        break;
      case EventKind::kSplitClamp:
        instant(e, "split_clamp");
        break;
      case EventKind::kTimerSet:
      case EventKind::kTimerFire:
      case EventKind::kActorIdle:
      case EventKind::kNoServe:
        break;  // too noisy for the visual timeline; present in NDJSON
    }
  }
  os << "\n]}\n";
}

Timeline derive_timeline(std::span<const TraceEvent> events, sim::Time bucket,
                         int work_msg_type) {
  OLB_CHECK(bucket > 0);
  Timeline out;

  struct Series {
    double cur = 0;
    std::size_t filled = 0;
    std::vector<double>* dst = nullptr;
    // Record `cur` as the sample for every bucket that ended before `k`.
    void advance_to(std::size_t k) {
      while (filled < k) {
        dst->push_back(cur);
        ++filled;
      }
    }
  };
  Series in_flight{0, 0, &out.work_in_flight};
  Series idle{0, 0, &out.idle_peers};
  Series pending{0, 0, &out.pending_depth};
  std::vector<std::int64_t> last_depth;

  std::size_t last_bucket = 0;
  for (const TraceEvent& e : events) {
    // Events are near-sorted (compute spans are stamped at their start, which
    // can trail the emission point); never step backwards.
    const auto k = std::max(static_cast<std::size_t>(e.time / bucket), last_bucket);
    last_bucket = k;
    in_flight.advance_to(k);
    idle.advance_to(k);
    pending.advance_to(k);
    switch (e.kind) {
      case EventKind::kMsgSend:
        if (e.type == work_msg_type) in_flight.cur += 1;
        break;
      case EventKind::kMsgDeliver:
        if (e.type == work_msg_type) in_flight.cur -= 1;
        break;
      case EventKind::kMsgDrop:
        if (e.type == work_msg_type) in_flight.cur -= 1;
        break;
      case EventKind::kIdleBegin:
        idle.cur += 1;
        break;
      case EventKind::kIdleEnd:
        idle.cur -= 1;
        break;
      case EventKind::kQueueDepth: {
        const auto idx = static_cast<std::size_t>(e.actor);
        if (last_depth.size() <= idx) last_depth.resize(idx + 1, 0);
        pending.cur += static_cast<double>(e.a - last_depth[idx]);
        last_depth[idx] = e.a;
        break;
      }
      default:
        break;
    }
  }
  in_flight.advance_to(last_bucket + 1);
  idle.advance_to(last_bucket + 1);
  pending.advance_to(last_bucket + 1);
  return out;
}

}  // namespace olb::trace
