// Descriptive statistics for experiment reporting.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace olb {

/// Welford-style online accumulator: mean, sample stddev, min, max.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const {
    return count_ > 1 ? std::sqrt(m2_ / static_cast<double>(count_ - 1)) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summary of a sample, as reported in the paper's Table I.
struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

/// A sample sorted once at construction, with O(1) percentile reads.
///
/// percentile() below selects in O(n) per call, which is the right trade
/// for one-off queries — but report paths that derive a whole family of
/// quantiles from the same series (perf_lab summaries, bench trial tables)
/// were paying that selection for every quantile. This sorts once and reads
/// order statistics by index afterwards; the interpolation rule matches
/// percentile() exactly, so the two agree to the last bit on any sample.
class SortedSample {
 public:
  /// Takes the sample by value and sorts it (ascending) once.
  explicit SortedSample(std::vector<double> xs);

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double min() const { return xs_.empty() ? 0.0 : xs_.front(); }
  double max() const { return xs_.empty() ? 0.0 : xs_.back(); }
  double median() const { return percentile(0.5); }

  /// p in [0,1]; linear interpolation between adjacent order statistics.
  /// Empty sample yields 0 (the same convention as the free percentile()).
  double percentile(double p) const;

  const std::vector<double>& sorted() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// p in [0,1]; linear interpolation between order statistics. An empty
/// sample yields 0 (matching Summary's all-zero convention).
///
/// Selects instead of sorting — O(n) per call via nth_element plus a linear
/// scan for the interpolation neighbour — and works in place: the span's
/// elements are reordered (partitioned), not copied. Callers deriving
/// several percentiles from one series (RunMetrics timelines, bench trial
/// summaries) pass the same buffer repeatedly; any prior partial order only
/// helps the selection.
double percentile(std::span<double> xs, double p);

}  // namespace olb
