// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supports `--name=value` and `--name value` forms plus `--help`. Each
// binary registers its flags up front so `--help` prints a usage table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace olb {

class Flags {
 public:
  /// Registers a flag with a default value and help text. Returns *this for
  /// chaining. Must be called before parse().
  Flags& define(std::string name, std::string default_value, std::string help);

  /// Parses argv. On `--help` prints usage and returns false (caller should
  /// exit 0). Unknown flags are a hard error (prints usage, returns false).
  bool parse(int argc, char** argv);

  /// True when a flag of this name was define()d (regardless of whether the
  /// command line set it). Lets shared parsers skip flags a binary opted
  /// out of.
  bool has(std::string_view name) const { return find(name) != nullptr; }

  std::string get(std::string_view name) const;
  std::int64_t get_int(std::string_view name) const;
  double get_double(std::string_view name) const;
  bool get_bool(std::string_view name) const;

  /// Comma-separated integer list, e.g. "100,200,500".
  std::vector<std::int64_t> get_int_list(std::string_view name) const;

  void print_usage(std::string_view program) const;

 private:
  struct Entry {
    std::string name;
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Entry* find(std::string_view name) const;
  Entry* find(std::string_view name);

  std::vector<Entry> entries_;
};

/// Registers the shared tracing flags (`--trace=<path>` and
/// `--trace-limit=<events>`) used by every bench and example that can dump
/// a run timeline. An empty `--trace` path (the default) disables tracing.
/// Paths ending in `.ndjson` select the NDJSON exporter; anything else gets
/// Chrome/Perfetto trace JSON.
Flags& define_trace_flags(Flags& flags);

}  // namespace olb
