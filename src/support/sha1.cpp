#include "support/sha1.hpp"

#include <cstring>

namespace olb {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::array<std::uint8_t, 8> len_bytes{};
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(len_bytes.data(), len_bytes.size());

  Sha1Digest digest{};
  for (int i = 0; i < 5; ++i) {
    digest[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

std::string to_hex(const Sha1Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0f]);
  }
  return out;
}

}  // namespace olb
