// Factorials and the factorial number system (factoradic).
//
// The interval encoding of B&B work (Mezmaz, Melab, Talbi — IPDPS'07) maps
// every permutation of s elements to its lexicographic rank in [0, s!), so
// all work-splitting arithmetic happens on 64-bit ranks. 20! < 2^63, which
// covers the paper's largest problem size (flowshop with 20 jobs).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace olb {

/// Largest s with s! representable in uint64_t.
inline constexpr int kMaxFactorialArg = 20;

/// s! for s in [0, 20].
constexpr std::uint64_t factorial(int s) {
  OLB_CHECK(s >= 0 && s <= kMaxFactorialArg);
  std::uint64_t f = 1;
  for (int i = 2; i <= s; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

/// Lexicographic rank of `perm` (a permutation of 0..s-1) in [0, s!).
std::uint64_t permutation_rank(std::span<const int> perm);

/// Inverse of permutation_rank: the rank-th permutation of 0..s-1.
std::vector<int> permutation_unrank(std::uint64_t rank, int s);

}  // namespace olb
