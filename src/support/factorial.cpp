#include "support/factorial.hpp"

#include <algorithm>

namespace olb {

std::uint64_t permutation_rank(std::span<const int> perm) {
  const int s = static_cast<int>(perm.size());
  OLB_CHECK(s <= kMaxFactorialArg);
  std::uint64_t rank = 0;
  for (int i = 0; i < s; ++i) {
    // Count elements after position i that are smaller than perm[i].
    int smaller = 0;
    for (int j = i + 1; j < s; ++j) {
      if (perm[j] < perm[i]) ++smaller;
    }
    rank += static_cast<std::uint64_t>(smaller) * factorial(s - 1 - i);
  }
  return rank;
}

std::vector<int> permutation_unrank(std::uint64_t rank, int s) {
  OLB_CHECK(s >= 0 && s <= kMaxFactorialArg);
  OLB_CHECK(rank < factorial(s));
  std::vector<int> pool(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) pool[static_cast<std::size_t>(i)] = i;
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) {
    const std::uint64_t f = factorial(s - 1 - i);
    const auto idx = static_cast<std::size_t>(rank / f);
    rank %= f;
    perm.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return perm;
}

}  // namespace olb
