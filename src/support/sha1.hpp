// Minimal SHA-1 (FIPS 180-1) implementation.
//
// The UTS benchmark derives each tree node's random stream by hashing the
// parent's 20-byte descriptor plus a 4-byte child index with SHA-1; we
// implement the digest from scratch so the generator is self-contained and
// bit-faithful to the reference benchmark. SHA-1 is used here purely as a
// deterministic pseudo-random function, not for security.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace olb {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(const void* data, std::size_t len) {
    update(std::span(static_cast<const std::uint8_t*>(data), len));
  }
  /// Finalizes and returns the digest. The hasher must be reset() before reuse.
  Sha1Digest finish();

  /// One-shot convenience.
  static Sha1Digest hash(std::span<const std::uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Hex string of a digest (for tests and debugging).
std::string to_hex(const Sha1Digest& digest);

}  // namespace olb
