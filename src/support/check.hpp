// Lightweight runtime-check macros used across the library.
//
// OLB_CHECK is active in all build types: protocol invariants in a
// distributed-algorithm codebase are cheap relative to simulated work and
// catching a violated invariant beats silently corrupting an experiment.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace olb {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "OLB_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace olb

#define OLB_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) ::olb::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define OLB_CHECK_MSG(expr, msg)                                \
  do {                                                          \
    if (!(expr)) ::olb::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
