#include "support/stats.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace olb {

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) return Summary{};  // all-zero summary for an empty sample
  RunningStats acc;
  for (double x : xs) acc.add(x);
  Summary s;
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.count = acc.count();
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;  // a percentile of nothing is 0, not UB
  OLB_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace olb
