#include "support/stats.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace olb {

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) return Summary{};  // all-zero summary for an empty sample
  RunningStats acc;
  for (double x : xs) acc.add(x);
  Summary s;
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.count = acc.count();
  return s;
}

SortedSample::SortedSample(std::vector<double> xs) : xs_(std::move(xs)) {
  std::sort(xs_.begin(), xs_.end());
}

double SortedSample::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  OLB_CHECK(p >= 0.0 && p <= 1.0);
  if (xs_.size() == 1) return xs_.front();
  const double pos = p * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const double lo_val = xs_[lo];
  if (frac == 0.0 || lo + 1 >= xs_.size()) return lo_val;
  return lo_val * (1.0 - frac) + xs_[lo + 1] * frac;
}

double percentile(std::span<double> xs, double p) {
  if (xs.empty()) return 0.0;  // a percentile of nothing is 0, not UB
  OLB_CHECK(p >= 0.0 && p <= 1.0);
  if (xs.size() == 1) return xs.front();
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), lo_it, xs.end());
  const double lo_val = *lo_it;
  if (frac == 0.0 || lo + 1 >= xs.size()) return lo_val;
  // The (lo+1)-th order statistic is the minimum of the right partition —
  // one scan instead of a second selection.
  const double hi_val = *std::min_element(lo_it + 1, xs.end());
  return lo_val * (1.0 - frac) + hi_val * frac;
}

}  // namespace olb
