#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace olb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OLB_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  OLB_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace olb
