// Deterministic, seedable random number generation.
//
// Experiments must be reproducible bit-for-bit across runs and platforms, so
// we avoid std::mt19937/std::uniform_int_distribution (whose algorithms are
// implementation-defined for distributions) and implement splitmix64 (for
// seeding) and xoshiro256** (for streams), both public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

#include "support/check.hpp"

namespace olb {

/// One step of the splitmix64 generator; also a good 64-bit mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value (hash-style use of splitmix64).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — fast all-purpose 64-bit generator with 2^256 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from splitmix64(seed), as recommended by the
  /// authors (guarantees a non-zero state).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's multiply-shift
  /// rejection method — unbiased and implementation-independent.
  constexpr std::uint64_t below(std::uint64_t bound) {
    OLB_CHECK(bound > 0);
    // 128-bit multiply; rejection zone keeps the result exactly uniform.
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    OLB_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace olb
