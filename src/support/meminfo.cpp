#include "support/meminfo.hpp"

#include <cstdio>
#include <cstring>

namespace olb::support {
namespace {

// Reads one "Vm...: <kB> kB" line from /proc/self/status. Field names are
// unique prefixes, so a plain line scan suffices; the file is tiny.
std::uint64_t status_field_kb(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      (void)std::sscanf(line + field_len + 1, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

std::uint64_t rss_bytes() { return status_field_kb("VmRSS") * 1024; }

std::uint64_t peak_rss_bytes() { return status_field_kb("VmHWM") * 1024; }

}  // namespace olb::support
