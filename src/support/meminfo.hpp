// Process memory probes for the scale benchmarks (docs/SCALING.md).
//
// The sharded simulator's headline claim — 10^5..10^6 peers in one process —
// is a memory claim as much as a speed claim, so the benches stamp resident
// set size next to wall-clock. Linux exposes both numbers in
// /proc/self/status; elsewhere the probes return 0 and the JSON fields read
// as "not measured".
#pragma once

#include <cstdint>

namespace olb::support {

/// Current resident set size (VmRSS) in bytes; 0 when unavailable.
std::uint64_t rss_bytes();

/// Peak resident set size (VmHWM) in bytes; 0 when unavailable. The peak is
/// the honest denominator for bytes-per-peer: allocators rarely return freed
/// pages, and the high-water mark is what capacity planning must fit.
std::uint64_t peak_rss_bytes();

}  // namespace olb::support
