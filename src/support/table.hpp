// Column-aligned text tables and CSV emission for experiment output.
//
// Every bench harness prints the same rows/series the paper reports; Table
// keeps that output readable on a terminal and machine-parsable as CSV.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace olb {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string cell(double v, int precision = 1);
  static std::string cell(std::int64_t v);
  static std::string cell(std::uint64_t v);

  /// Renders with aligned columns and a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as CSV (no quoting — cells must not contain commas).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace olb
