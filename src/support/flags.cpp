#include "support/flags.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace olb {

Flags& Flags::define(std::string name, std::string default_value, std::string help) {
  OLB_CHECK_MSG(find(name) == nullptr, "duplicate flag definition");
  entries_.push_back(Entry{std::move(name), default_value, std::move(default_value),
                           std::move(help)});
  return *this;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      print_usage(argv[0]);
      return false;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    Entry* entry = find(name);
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_usage(argv[0]);
      return false;
    }
    entry->value = std::move(value);
  }
  return true;
}

std::string Flags::get(std::string_view name) const {
  const Entry* entry = find(name);
  OLB_CHECK_MSG(entry != nullptr, "flag not defined");
  return entry->value;
}

std::int64_t Flags::get_int(std::string_view name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Flags::get_double(std::string_view name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Flags::get_bool(std::string_view name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> Flags::get_int_list(std::string_view name) const {
  std::vector<std::int64_t> out;
  const std::string v = get(name);
  std::size_t pos = 0;
  while (pos < v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    out.push_back(std::strtoll(v.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

void Flags::print_usage(std::string_view program) const {
  std::fprintf(stderr, "usage: %.*s [flags]\n", static_cast<int>(program.size()),
               program.data());
  for (const Entry& e : entries_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", e.name.c_str(),
                 e.help.c_str(), e.default_value.c_str());
  }
}

Flags& define_trace_flags(Flags& flags) {
  return flags
      .define("trace", "",
              "dump a run timeline here (.ndjson -> NDJSON, else Perfetto)")
      .define("trace-limit", "2000000",
              "ring-buffer capacity: keep the last N trace events");
}

const Flags::Entry* Flags::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Flags::Entry* Flags::find(std::string_view name) {
  return const_cast<Entry*>(static_cast<const Flags*>(this)->find(name));
}

}  // namespace olb
