// Transport factory registry: every execution backend (simulator, threads,
// sockets) registers here once, mirroring the PR 2 strategy registry, so
// bench mains and sweeps pick backends by name with no per-binary if/else
// chains — and a future backend becomes available everywhere by adding one
// table entry.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lb/driver.hpp"

namespace olb::runtime {

struct TransportEntry {
  const char* name;     ///< CLI name ("sim", "threads", "sockets")
  lb::Backend backend;  ///< the RunConfig enum value it executes
  const char* help;     ///< one-line description for flag help text
  /// True when this transport can execute `config`. On false, `*why` (if
  /// non-null) receives a short human-readable reason — callers decide
  /// whether to fall back or fail.
  bool (*supports)(const lb::RunConfig& config, std::string* why);
  /// Runs the workload on this transport. Results are normalised to the
  /// simulator's RunMetrics shape (real-time backends fill the wall-clock
  /// analogue fields and leave simulator-only ones zero); `ok` reports
  /// clean protocol termination, and callers abort on !ok.
  lb::RunMetrics (*run)(lb::Workload& workload, const lb::RunConfig& config);
};

/// Every registered transport, in display order.
const std::vector<TransportEntry>& transport_registry();

/// Case-insensitive lookup by CLI name; nullptr for unknown names (callers
/// report transport_names() as the valid set).
const TransportEntry* find_transport(std::string_view name);

/// The entry for an already-parsed Backend value (always exists).
const TransportEntry& transport_entry(lb::Backend backend);

/// "sim|threads|sockets" — for flag help strings and error messages.
std::string transport_names();

}  // namespace olb::runtime
