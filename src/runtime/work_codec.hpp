// Workload-aware serialisation for sim::Message over the socket backend.
//
// The message struct itself (type/id/bounced/a/b/c/src/dst) encodes the
// same way for every workload, but a kWork transfer carries a
// `lb::WorkPayload` whose concrete `lb::Work` subtype only the workload
// knows. WorkCodec is that knowledge: one implementation per workload
// family (UTS pending-node deques, B&B interval pools), selected once at
// bring-up by `make_work_codec`. The codec also round-trips the final
// *solution* (B&B incumbent) through the result-exchange frames so every
// process reports the globally best answer, not its local one.
#pragma once

#include <memory>

#include "runtime/wire.hpp"
#include "simnet/message.hpp"

namespace olb::lb {
class Work;
class Workload;
}  // namespace olb::lb

namespace olb::runtime {

/// Encodes/decodes the workload-specific parts of the wire protocol.
/// Implementations must be deterministic and side-effect-free except where
/// documented (decode_work allocates; merge_solution updates the incumbent).
class WorkCodec {
 public:
  virtual ~WorkCodec() = default;

  virtual void encode_work(const lb::Work& work, WireWriter& w) const = 0;
  /// Returns nullptr (leaving `r` failed) on a malformed body.
  virtual std::unique_ptr<lb::Work> decode_work(WireReader& r) const = 0;

  /// Encodes this process's best solution for the result exchange.
  /// Workloads without a solution object (UTS) encode nothing.
  virtual void encode_solution(WireWriter& w) const { (void)w; }
  /// Merges a remote solution blob into the local workload's incumbent.
  /// Returns false on a malformed blob.
  virtual bool merge_solution(WireReader& r) { (void)r; return true; }
};

/// Builds the codec matching `workload`'s dynamic type (UTS or flowshop
/// B&B today). Aborts on an unknown workload: running an unserialisable
/// workload over sockets is a configuration error, not a runtime surprise.
std::unique_ptr<WorkCodec> make_work_codec(lb::Workload& workload);

/// Frame body of FrameType::kMsg. `codec` may be null only when the message
/// is guaranteed payload-free (bootstrap-time use); a payload-carrying
/// message with a null codec aborts.
void encode_message(const sim::Message& m, const WorkCodec* codec, WireWriter& w);

/// Inverse of encode_message. Returns false (msg unspecified) on any
/// malformed body — wrong payload kind, truncated fields, codec rejection.
bool decode_message(WireReader& r, const WorkCodec* codec, sim::Message* msg);

}  // namespace olb::runtime
