#include "runtime/work_codec.hpp"

#include <utility>

#include "bb/bb_work.hpp"
#include "lb/messages.hpp"
#include "lb/work.hpp"
#include "support/check.hpp"
#include "uts/uts_work.hpp"

namespace olb::runtime {
namespace {

// Payload discriminator byte of a kMsg body.
enum PayloadKind : std::uint8_t {
  kPayloadNone = 0,
  kPayloadProbe = 1,
  kPayloadWork = 2,
  kPayloadLeave = 3,
  kPayloadJob = 4,       ///< kJobInject: tagged root work of a fresh job
  kPayloadJobProbe = 5,  ///< kJobProbe/kJobProbeAck: per-job stat vectors
};

/// UTS work = nodes-counted tally + the deque of pending (state, depth)
/// entries, each node as its 20 raw generator-state bytes. The tally
/// travels with the work so merge-side accounting matches the in-process
/// transfer exactly.
class UtsWorkCodec final : public WorkCodec {
 public:
  UtsWorkCodec(uts::Params params, uts::CostModel costs)
      : params_(params), costs_(costs) {}

  void encode_work(const lb::Work& work, WireWriter& w) const override {
    const auto* uw = dynamic_cast<const uts::UtsWork*>(&work);
    OLB_CHECK_MSG(uw != nullptr, "UTS codec given a non-UTS work");
    w.u64(uw->nodes_counted());
    w.u32(static_cast<std::uint32_t>(uw->pending_count()));
    uw->visit_pending([&](const uts::NodeState& state, int depth) {
      w.bytes(state.bytes.data(), state.bytes.size());
      w.i32(depth);
    });
  }

  std::unique_ptr<lb::Work> decode_work(WireReader& r) const override {
    auto work = std::make_unique<uts::UtsWork>(params_, costs_);
    work->add_nodes_counted(r.u64());
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      uts::NodeState state;
      if (!r.read_bytes(state.bytes.data(), state.bytes.size())) break;
      work->push_pending(state, r.i32());
    }
    if (!r.ok()) return nullptr;
    return work;
  }

 private:
  uts::Params params_;
  uts::CostModel costs_;
};

/// B&B work = the sender's incumbent bound + the pool of remaining
/// [position, end) leaf-rank intervals. Decoded works are created through
/// the *receiver's* workload so they share its incumbent recorder.
class BBWorkCodec final : public WorkCodec {
 public:
  explicit BBWorkCodec(bb::BBWorkload& workload) : workload_(workload) {}

  void encode_work(const lb::Work& work, WireWriter& w) const override {
    const auto* bw = dynamic_cast<const bb::BBWork*>(&work);
    OLB_CHECK_MSG(bw != nullptr, "B&B codec given a non-B&B work");
    w.i64(bw->local_bound());
    w.u32(static_cast<std::uint32_t>(bw->pool_size()));
    bw->visit_intervals([&](std::uint64_t begin, std::uint64_t end) {
      w.u64(begin);
      w.u64(end);
    });
  }

  std::unique_ptr<lb::Work> decode_work(WireReader& r) const override {
    const std::int64_t bound = r.i64();
    const std::uint32_t n = r.u32();
    auto work = workload_.make_interval_work(0, 0);
    auto* bw = dynamic_cast<bb::BBWork*>(work.get());
    OLB_CHECK(bw != nullptr);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      const std::uint64_t begin = r.u64();
      const std::uint64_t end = r.u64();
      if (begin > end) {
        r.fail();
        break;
      }
      if (begin < end) bw->push_interval(begin, end);
    }
    if (!r.ok()) return nullptr;
    if (bound != lb::kNoBound) bw->observe_bound(bound);
    return work;
  }

  void encode_solution(WireWriter& w) const override {
    const bb::BestSolution& best = workload_.best();
    const std::int64_t makespan = best.makespan();
    w.i64(makespan);
    if (makespan == lb::kNoBound) {
      w.u32(0);
      return;
    }
    const std::vector<int> perm = best.permutation();
    w.u32(static_cast<std::uint32_t>(perm.size()));
    for (int job : perm) w.i32(job);
  }

  bool merge_solution(WireReader& r) override {
    const std::int64_t makespan = r.i64();
    const std::uint32_t n = r.u32();
    std::vector<int> perm;
    perm.reserve(n);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) perm.push_back(r.i32());
    if (!r.ok()) return false;
    if (makespan != lb::kNoBound) workload_.best().offer(makespan, std::move(perm));
    return true;
  }

 private:
  bb::BBWorkload& workload_;
};

}  // namespace

std::unique_ptr<WorkCodec> make_work_codec(lb::Workload& workload) {
  if (auto* uts_wl = dynamic_cast<uts::UtsWorkload*>(&workload)) {
    return std::make_unique<UtsWorkCodec>(uts_wl->params(), uts_wl->costs());
  }
  if (auto* bb_wl = dynamic_cast<bb::BBWorkload*>(&workload)) {
    return std::make_unique<BBWorkCodec>(*bb_wl);
  }
  OLB_CHECK_MSG(false, "no wire codec for this workload type");
  return nullptr;
}

void encode_message(const sim::Message& m, const WorkCodec* codec, WireWriter& w) {
  w.i32(m.type);
  w.u32(static_cast<std::uint32_t>(m.id) |
        (static_cast<std::uint32_t>(m.bounced) << 31));
  w.i32(m.src);
  w.i32(m.dst);
  w.i64(m.a);
  w.i64(m.b);
  w.i64(m.c);
  if (m.payload == nullptr) {
    w.u8(kPayloadNone);
    return;
  }
  if (const auto* probe = dynamic_cast<const lb::ProbePayload*>(m.payload.get())) {
    w.u8(kPayloadProbe);
    w.u64(probe->probe_id);
    w.u64(probe->bridge_sent);
    w.u64(probe->bridge_recv);
    w.u8(probe->dirty ? 1 : 0);
    w.i32(probe->crash_epoch);
    w.u64(probe->member_events);
    return;
  }
  if (const auto* leave = dynamic_cast<const lb::LeavePayload*>(m.payload.get())) {
    w.u8(kPayloadLeave);
    w.u32(static_cast<std::uint32_t>(leave->children.size()));
    for (const auto& cl : leave->children) {
      w.i32(cl.peer);
      w.u64(cl.size);
      w.u8(cl.pending ? 1 : 0);
      w.u64(cl.agg_sent);
      w.u64(cl.agg_recv);
    }
    w.u32(static_cast<std::uint32_t>(leave->phantoms.size()));
    for (const auto& ph : leave->phantoms) {
      w.i32(ph.peer);
      w.u64(ph.sent);
      w.u64(ph.recv);
    }
    w.u64(leave->sent);
    w.u64(leave->recv);
    return;
  }
  if (const auto* wp = dynamic_cast<const lb::WorkPayload*>(m.payload.get())) {
    OLB_CHECK_MSG(codec != nullptr, "work payload needs a workload codec");
    OLB_CHECK_MSG(wp->work != nullptr, "work payload without work");
    w.u8(kPayloadWork);
    WireWriter body;
    codec->encode_work(*wp->work, body);
    w.blob(body.data());
    return;
  }
  if (const auto* jp = dynamic_cast<const lb::JobPayload*>(m.payload.get())) {
    OLB_CHECK_MSG(codec != nullptr, "job payload needs a workload codec");
    OLB_CHECK_MSG(jp->work != nullptr, "job payload without work");
    w.u8(kPayloadJob);
    w.u64(jp->job);
    w.i32(jp->job_class);
    WireWriter body;
    codec->encode_work(*jp->work, body);
    w.blob(body.data());
    return;
  }
  if (const auto* jpp =
          dynamic_cast<const lb::JobProbePayload*>(m.payload.get())) {
    w.u8(kPayloadJobProbe);
    w.u64(jpp->probe_id);
    w.u32(static_cast<std::uint32_t>(jpp->stats.size()));
    for (const lb::JobStat& st : jpp->stats) {
      w.u64(st.job);
      w.u64(st.sent);
      w.u64(st.recv);
      w.i64(st.holds_milli);
    }
    return;
  }
  OLB_CHECK_MSG(false, "unknown payload type on the wire");
}

bool decode_message(WireReader& r, const WorkCodec* codec, sim::Message* msg) {
  sim::Message m;
  m.type = r.i32();
  const std::uint32_t packed = r.u32();
  m.id = packed & 0x7fffffffu;
  m.bounced = packed >> 31;
  m.src = r.i32();
  m.dst = r.i32();
  m.a = r.i64();
  m.b = r.i64();
  m.c = r.i64();
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case kPayloadNone:
      break;
    case kPayloadProbe: {
      auto probe = std::make_unique<lb::ProbePayload>();
      probe->probe_id = r.u64();
      probe->bridge_sent = r.u64();
      probe->bridge_recv = r.u64();
      probe->dirty = r.u8() != 0;
      probe->crash_epoch = r.i32();
      probe->member_events = r.u64();
      m.payload = std::move(probe);
      break;
    }
    case kPayloadLeave: {
      auto leave = std::make_unique<lb::LeavePayload>();
      const std::uint32_t nc = r.u32();
      for (std::uint32_t i = 0; i < nc && r.ok(); ++i) {
        lb::LeavePayload::ChildLink cl;
        cl.peer = r.i32();
        cl.size = r.u64();
        cl.pending = r.u8() != 0;
        cl.agg_sent = r.u64();
        cl.agg_recv = r.u64();
        leave->children.push_back(cl);
      }
      const std::uint32_t np = r.u32();
      for (std::uint32_t i = 0; i < np && r.ok(); ++i) {
        lb::LeavePayload::PhantomLink ph;
        ph.peer = r.i32();
        ph.sent = r.u64();
        ph.recv = r.u64();
        leave->phantoms.push_back(ph);
      }
      leave->sent = r.u64();
      leave->recv = r.u64();
      m.payload = std::move(leave);
      break;
    }
    case kPayloadWork: {
      if (codec == nullptr) return false;
      const std::vector<std::uint8_t> body = r.blob();
      if (!r.ok()) return false;
      WireReader body_reader(body);
      std::unique_ptr<lb::Work> work = codec->decode_work(body_reader);
      if (work == nullptr || !body_reader.exhausted()) return false;
      m.payload = std::make_unique<lb::WorkPayload>(std::move(work));
      break;
    }
    case kPayloadJob: {
      if (codec == nullptr) return false;
      auto job = std::make_unique<lb::JobPayload>();
      job->job = r.u64();
      job->job_class = r.i32();
      const std::vector<std::uint8_t> body = r.blob();
      if (!r.ok()) return false;
      WireReader body_reader(body);
      job->work = codec->decode_work(body_reader);
      if (job->work == nullptr || !body_reader.exhausted()) return false;
      m.payload = std::move(job);
      break;
    }
    case kPayloadJobProbe: {
      auto probe = std::make_unique<lb::JobProbePayload>();
      probe->probe_id = r.u64();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        lb::JobStat st;
        st.job = r.u64();
        st.sent = r.u64();
        st.recv = r.u64();
        st.holds_milli = r.i64();
        probe->stats.push_back(st);
      }
      m.payload = std::move(probe);
      break;
    }
    default:
      return false;
  }
  if (!r.ok()) return false;
  *msg = std::move(m);
  return true;
}

}  // namespace olb::runtime
