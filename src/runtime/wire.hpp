// Versioned little-endian wire format of the socket backend.
//
// Everything that crosses a TCP connection between two SocketNet processes
// is a *frame*: a fixed 12-byte header (magic, version, frame type, body
// length) followed by a body encoded field-by-field through WireWriter.
// Nothing is ever memcpy'd from a struct — the layout is the explicit
// sequence of put/get calls, so it is stable across compilers, padding
// rules and (via the fixed little-endian byte order) architectures.
//
// Frame vocabulary (see socket_net.hpp for the bootstrap sequence):
//
//   kHello    — first frame on every outbound connection: the connecting
//               rank identifies itself and proves it was launched with the
//               same run configuration (digest).
//   kConfig   — rank 0 -> others: cluster size, seed, digest, the peer
//               address table and the overlay shape (parent array).
//   kReady    — other ranks -> rank 0: configuration verified, ready to go.
//   kStart    — rank 0 -> others: the start barrier; receivers stamp their
//               wall-clock epoch on receipt.
//   kMsg      — one sim::Message between protocol actors (work_codec.hpp).
//   kResult   — other ranks -> rank 0: an opaque per-rank result blob.
//   kSummary  — rank 0 -> others: all ranks' result blobs, so every process
//               computes identical aggregate metrics.
//
// Decoding is non-aborting by design: WireReader carries a sticky failure
// flag instead of trusting the sender, so truncated or garbage frames are
// *rejected* (and unit-testable) rather than UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace olb::runtime {

inline constexpr std::uint32_t kWireMagic = 0x4F4C4257u;  // "OLBW" (LE "WBLO")
/// v2: job-layer payload kinds (kJobInject work, kJobProbe/Ack stat waves)
/// joined the message codec. Peers of different versions refuse to talk —
/// a v1 peer cannot silently drop job tags it does not understand.
inline constexpr std::uint16_t kWireVersion = 2;
/// Upper bound on a frame body; anything larger is a corrupt or hostile
/// header, not a real message (the largest legitimate frames are work
/// transfers of a few hundred KB).
inline constexpr std::uint32_t kMaxFrameBody = 16u << 20;
inline constexpr std::size_t kFrameHeaderSize = 12;

enum class FrameType : std::uint16_t {
  kHello = 1,
  kConfig = 2,
  kReady = 3,
  kStart = 4,
  kMsg = 5,
  kResult = 6,
  kSummary = 7,
};

/// Append-only little-endian encoder for frame bodies.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  /// u32 length prefix + raw bytes.
  void blob(const std::uint8_t* data, std::size_t n) {
    u32(static_cast<std::uint32_t>(n));
    bytes(data, n);
  }
  void blob(const std::vector<std::uint8_t>& b) { blob(b.data(), b.size()); }
  void str(const std::string& s) {
    blob(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder with a sticky failure flag: any
/// read past the end (or an explicit fail()) poisons the reader, every
/// subsequent read returns zero values, and callers check ok() once at the
/// end instead of after every field.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len) : p_(data), len_(len) {}
  explicit WireReader(const std::vector<std::uint8_t>& b)
      : WireReader(b.data(), b.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool read_bytes(void* out, std::size_t n) {
    if (!take(n)) return false;
    std::memcpy(out, p_ + pos_ - n, n);
    return true;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    return std::vector<std::uint8_t>(p_ + pos_ - n, p_ + pos_);
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(p_ + pos_ - n), n);
  }

  void fail() { ok_ = false; }
  bool ok() const { return ok_; }
  /// True when every byte was consumed and nothing failed — a decoder's
  /// "this frame was exactly what I expected" check.
  bool exhausted() const { return ok_ && pos_ == len_; }
  std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::uint64_t get_le(int n) {
    if (!take(static_cast<std::size_t>(n))) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(p_[pos_ - static_cast<std::size_t>(n) +
                                          static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return v;
  }

  const std::uint8_t* p_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

enum class ParseStatus {
  kOk,        ///< header valid, *body_len bytes of body follow
  kNeedMore,  ///< fewer than kFrameHeaderSize bytes so far
  kBad,       ///< wrong magic/version or an absurd length — protocol error
};

/// Validates the 12-byte header at `data`. On kOk fills type and body_len.
ParseStatus parse_frame_header(const std::uint8_t* data, std::size_t len,
                               FrameType* type, std::uint32_t* body_len);

/// Serialises header + body into one contiguous send buffer.
std::vector<std::uint8_t> make_frame(FrameType type, const WireWriter& body);

}  // namespace olb::runtime
