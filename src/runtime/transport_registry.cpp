#include "runtime/transport_registry.hpp"

#include "runtime/runtime.hpp"
#include "support/check.hpp"

namespace olb::runtime {
namespace {

bool eq_icase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto lo = [](char c) {
      return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
    };
    if (lo(a[i]) != lo(b[i])) return false;
  }
  return true;
}

/// Real-time backends share these restrictions: they run the overlay
/// protocol objects directly and have no simulator to model faults or
/// per-peer speed with.
bool real_time_supports(const lb::RunConfig& config, std::string* why) {
  if (!lb::strategy_is_overlay(config.strategy)) {
    if (why != nullptr) *why = "only overlay strategies (TD/TR/BTD)";
    return false;
  }
  if (config.faults.enabled()) {
    if (why != nullptr) *why = "fault injection is a simulator concept";
    return false;
  }
  if (config.het.fraction != 0.0) {
    if (why != nullptr) *why = "speed scaling is a simulator concept";
    return false;
  }
  return true;
}

/// Both real-time backends report ThreadRunMetrics; normalise to the
/// simulator's RunMetrics shape. Wall-clock analogues fill the timing
/// fields; simulator-only series (utilisation, queueing delay, per-peer
/// message vectors) stay zero/empty.
lb::RunMetrics from_thread_metrics(const ThreadRunMetrics& t) {
  lb::RunMetrics m;
  m.exec_seconds = t.done_seconds;
  m.last_compute_seconds = t.done_seconds;
  m.total_units = t.total_units;
  m.total_messages = t.total_messages;
  m.work_requests = t.work_requests;
  m.work_transfers = t.work_transfers;
  m.best_bound = t.best_bound;
  m.ok = t.ok;
  m.final_state = t.final_state;
  return m;
}

bool sim_supports(const lb::RunConfig&, std::string*) { return true; }

lb::RunMetrics sim_run(lb::Workload& workload, const lb::RunConfig& config) {
  lb::RunConfig c = config;  // sweeps pass configs tagged for other backends
  c.backend = lb::Backend::kSim;
  return lb::run_distributed(workload, c);
}

bool threads_supports(const lb::RunConfig& config, std::string* why) {
  if (!real_time_supports(config, why)) return false;
  if (config.tracer != nullptr) {
    if (why != nullptr) *why = "schedule-dependent traces are sim-only";
    return false;
  }
  return true;
}

lb::RunMetrics threads_run(lb::Workload& workload, const lb::RunConfig& config) {
  return from_thread_metrics(run_threads(workload, config));
}

bool sockets_supports(const lb::RunConfig& config, std::string* why) {
  if (!real_time_supports(config, why)) return false;
  if (config.tracer != nullptr || config.metrics != nullptr) {
    if (why != nullptr) {
      *why = "socket runs trace via --socket-trace, not in-process sinks";
    }
    return false;
  }
  if (!config.sockets.configured()) {
    if (why != nullptr) *why = "needs --rank and a peer address table";
    return false;
  }
  if (static_cast<int>(config.sockets.peers.size()) != config.num_peers) {
    if (why != nullptr) *why = "address table size must equal --peers";
    return false;
  }
  return true;
}

lb::RunMetrics sockets_run(lb::Workload& workload, const lb::RunConfig& config) {
  return from_thread_metrics(run_sockets(workload, config));
}

}  // namespace

const std::vector<TransportEntry>& transport_registry() {
  static const std::vector<TransportEntry> kRegistry = {
      {"sim", lb::Backend::kSim,
       "discrete-event simulator (deterministic, all strategies)",
       &sim_supports, &sim_run},
      {"threads", lb::Backend::kThreads,
       "one OS thread per peer over real shared-memory work",
       &threads_supports, &threads_run},
      {"sockets", lb::Backend::kSockets,
       "one OS process per peer joined by TCP (runtime::SocketNet)",
       &sockets_supports, &sockets_run},
  };
  return kRegistry;
}

const TransportEntry* find_transport(std::string_view name) {
  for (const TransportEntry& e : transport_registry()) {
    if (eq_icase(name, e.name)) return &e;
  }
  return nullptr;
}

const TransportEntry& transport_entry(lb::Backend backend) {
  for (const TransportEntry& e : transport_registry()) {
    if (e.backend == backend) return e;
  }
  OLB_CHECK_MSG(false, "backend missing from transport registry");
}

std::string transport_names() {
  std::string out;
  for (const TransportEntry& e : transport_registry()) {
    if (!out.empty()) out += '|';
    out += e.name;
  }
  return out;
}

}  // namespace olb::runtime
