// Thread-backend counterpart of lb::run_distributed: builds the same overlay
// cluster a RunConfig describes, but executes it on real threads over real
// work (runtime::ThreadNet) instead of the discrete-event simulator.
//
// Scope: overlay strategies (TD/TR/BTD) only, fault-free, homogeneous —
// fault injection and speed scaling are simulator concepts. Results are
// checked against execution-order-independent invariants (exact node
// counts, B&B optima) rather than reproduced byte-for-byte.
//
// Performance: the per-message path is allocation-free in steady state
// (sender-pooled mailbox nodes), receivers drain in batches with at most
// one eventcount wake per batch, and the per-chunk loop performs no clock
// reads unless a timer is armed — see thread_net.hpp and
// docs/BENCHMARKING.md (`runtime_speedup` is the pinned metric; small
// chunk_units puts a run in this messaging-bound regime).
#pragma once

#include "lb/driver.hpp"

namespace olb::runtime {

struct ThreadRunMetrics {
  double wall_seconds = 0.0;  ///< whole run, thread launch to last join
  /// Wall seconds until the root *declared* termination (the protocol's own
  /// completion signal, before the kTerminate fan-out and thread joins).
  double done_seconds = 0.0;
  std::uint64_t total_units = 0;
  std::int64_t best_bound = lb::kNoBound;
  std::uint64_t total_messages = 0;
  std::uint64_t work_requests = 0;   ///< kReqDown/kReqUp/kReqBridge sent
  std::uint64_t work_transfers = 0;  ///< kWork messages sent
  bool ok = false;  ///< terminated everywhere, no work left anywhere
  /// Post-run per-peer protocol snapshots (peer-id order) for the
  /// conformance oracles — the same taps the simulator backend reports.
  std::vector<lb::StateTap> final_state;
};

/// Runs `workload` under `config` on one thread per peer. Requires an
/// overlay strategy, no fault plan and no heterogeneity (OLB_CHECK).
/// `config.num_peers` is the thread count; `config.limits.time_limit` caps
/// the wall clock (a watchdog — a correct run finishes long before it).
ThreadRunMetrics run_threads(lb::Workload& workload, const lb::RunConfig& config);

/// Socket-backend counterpart: runs THIS process's single peer
/// (config.sockets.rank) of a multi-process cluster over TCP
/// (runtime::SocketNet), then all-gathers per-rank results so the returned
/// metrics are the cluster-wide aggregate — identical on every process.
/// Requires an overlay strategy, no fault plan, no heterogeneity, no
/// tracer/metrics hub in the config (socket traces go to per-process
/// NDJSON files via config.sockets.trace_prefix), and a configured
/// SocketBringup whose address table has exactly config.num_peers entries.
/// `config.limits.time_limit` caps the wall clock per process.
ThreadRunMetrics run_sockets(lb::Workload& workload, const lb::RunConfig& config);

}  // namespace olb::runtime
