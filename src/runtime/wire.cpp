#include "runtime/wire.hpp"

namespace olb::runtime {

ParseStatus parse_frame_header(const std::uint8_t* data, std::size_t len,
                               FrameType* type, std::uint32_t* body_len) {
  if (len < kFrameHeaderSize) return ParseStatus::kNeedMore;
  WireReader r(data, kFrameHeaderSize);
  const std::uint32_t magic = r.u32();
  const std::uint16_t version = r.u16();
  const std::uint16_t raw_type = r.u16();
  const std::uint32_t n = r.u32();
  if (magic != kWireMagic || version != kWireVersion) return ParseStatus::kBad;
  if (raw_type < static_cast<std::uint16_t>(FrameType::kHello) ||
      raw_type > static_cast<std::uint16_t>(FrameType::kSummary)) {
    return ParseStatus::kBad;
  }
  if (n > kMaxFrameBody) return ParseStatus::kBad;
  *type = static_cast<FrameType>(raw_type);
  *body_len = n;
  return ParseStatus::kOk;
}

std::vector<std::uint8_t> make_frame(FrameType type, const WireWriter& body) {
  WireWriter header;
  header.u32(kWireMagic);
  header.u16(kWireVersion);
  header.u16(static_cast<std::uint16_t>(type));
  header.u32(static_cast<std::uint32_t>(body.size()));
  std::vector<std::uint8_t> frame = header.take();
  frame.insert(frame.end(), body.data().begin(), body.data().end());
  return frame;
}

}  // namespace olb::runtime
