// run_sockets: the per-process harness of the socket backend. Builds this
// rank's single OverlayPeer from the shared RunConfig (the overlay tree and
// peer config are derived locally and cross-checked during bootstrap), runs
// it on a SocketNet, then all-gathers per-rank result blobs through rank 0
// so every process returns identical cluster-wide metrics — including the
// merged B&B incumbent, so every process prints the globally best solution.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "lb/messages.hpp"
#include "runtime/runtime.hpp"
#include "runtime/socket_net.hpp"
#include "runtime/wire.hpp"
#include "runtime/work_codec.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::runtime {
namespace {

/// Everything a rank reports about its own run; exchanged as an opaque blob
/// via kResult/kSummary and decoded identically everywhere.
struct RankResult {
  int rank = -1;
  bool completed = false;
  std::uint64_t units_done = 0;
  std::int64_t best_bound = lb::kNoBound;
  std::uint64_t msgs_sent = 0;
  std::uint64_t work_requests = 0;
  std::uint64_t work_transfers = 0;
  lb::StateTap tap;
  std::int64_t done_ns = -1;  ///< root's termination time; -1 on other ranks
  std::vector<std::uint8_t> solution;  ///< codec solution blob (may be empty)
};

void encode_rank_result(const RankResult& r, WireWriter& w) {
  w.i32(r.rank);
  w.u8(r.completed ? 1 : 0);
  w.u64(r.units_done);
  w.i64(r.best_bound);
  w.u64(r.msgs_sent);
  w.u64(r.work_requests);
  w.u64(r.work_transfers);
  const std::uint8_t flags = static_cast<std::uint8_t>(
      (r.tap.crashed ? 1 : 0) | (r.tap.holds_work ? 2 : 0) |
      (r.tap.terminated ? 4 : 0) | (r.tap.computing ? 8 : 0) |
      (r.tap.departed ? 16 : 0));
  w.u8(flags);
  w.f64(r.tap.work_amount);
  w.u64(r.tap.units_done);
  w.u64(r.tap.transfers_sent);
  w.u64(r.tap.transfers_recv);
  w.u64(r.tap.pending_requests);
  w.i64(r.done_ns);
  w.blob(r.solution);
}

RankResult decode_rank_result(WireReader& r) {
  RankResult out;
  out.rank = r.i32();
  out.completed = r.u8() != 0;
  out.units_done = r.u64();
  out.best_bound = r.i64();
  out.msgs_sent = r.u64();
  out.work_requests = r.u64();
  out.work_transfers = r.u64();
  const std::uint8_t flags = r.u8();
  out.tap.peer = out.rank;
  out.tap.crashed = (flags & 1) != 0;
  out.tap.holds_work = (flags & 2) != 0;
  out.tap.terminated = (flags & 4) != 0;
  out.tap.computing = (flags & 8) != 0;
  out.tap.departed = (flags & 16) != 0;
  out.tap.work_amount = r.f64();
  out.tap.units_done = r.u64();
  out.tap.transfers_sent = r.u64();
  out.tap.transfers_recv = r.u64();
  out.tap.pending_requests = r.u64();
  out.done_ns = r.i64();
  out.solution = r.blob();
  OLB_CHECK_MSG(r.exhausted(), "malformed rank result blob");
  return out;
}

/// All ranks must have been launched with the same run parameters; the
/// digest travels in every hello/config frame so a mismatched launch dies
/// at bootstrap instead of silently computing garbage.
std::uint64_t config_digest(const lb::RunConfig& config) {
  std::uint64_t d = 0xA0B1C2D3E4F50617ull;
  const auto mixin = [&d](std::uint64_t v) { d = mix64(d ^ v); };
  mixin(static_cast<std::uint64_t>(config.strategy));
  mixin(static_cast<std::uint64_t>(config.num_peers));
  mixin(static_cast<std::uint64_t>(config.dmax));
  mixin(config.seed);
  mixin(config.chunk_units);
  // Membership schedule: all ranks must agree on who starts dormant and on
  // every scheduled join/leave, or the cluster's trees diverge at runtime.
  mixin(static_cast<std::uint64_t>(config.churn.initial_peers));
  mixin(config.churn.events.size());
  for (const lb::ChurnEvent& e : config.churn.events) {
    mixin(static_cast<std::uint64_t>(e.time));
    mixin(static_cast<std::uint64_t>(e.peer));
    mixin(e.join ? 1 : 0);
  }
  return d;
}

/// `<prefix>.run<k>.rank<r>.ndjson`. The per-rank run counter is
/// process-global (mutex-guarded) so in-process multi-rank tests and
/// sequential runs in one bench process both number their files 0,1,2,...
/// in lockstep across ranks — all ranks pass the same uniform CLI, so their
/// counters advance together.
std::string next_trace_path(const std::string& prefix, int rank) {
  static std::mutex mu;
  static std::map<int, int> run_counter;
  int k;
  {
    std::scoped_lock lock(mu);
    k = run_counter[rank]++;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, ".run%d.rank%d.ndjson", k, rank);
  return prefix + buf;
}

}  // namespace

ThreadRunMetrics run_sockets(lb::Workload& workload, const lb::RunConfig& config) {
  OLB_CHECK_MSG(lb::strategy_is_overlay(config.strategy),
                "the socket backend runs overlay strategies (TD/TR/BTD) only");
  OLB_CHECK_MSG(!config.faults.enabled(),
                "fault injection is a simulator concept");
  OLB_CHECK_MSG(config.het.fraction == 0.0,
                "speed scaling is a simulator concept");
  OLB_CHECK_MSG(config.tracer == nullptr && config.metrics == nullptr,
                "socket runs trace via sockets.trace_prefix, not RunConfig");
  OLB_CHECK(config.num_peers >= 1);
  OLB_CHECK_MSG(config.sockets.configured(),
                "--backend=sockets needs --rank and a peer address table");
  OLB_CHECK_MSG(static_cast<int>(config.sockets.peers.size()) == config.num_peers,
                "peer address table size must equal the peer count");
  OLB_CHECK(config.sockets.rank < config.num_peers);

  auto tree = std::make_shared<const overlay::TreeOverlay>(
      lb::make_overlay_tree(config));
  const lb::OverlayConfig oc = lb::make_overlay_config(config);
  const std::unique_ptr<WorkCodec> codec = make_work_codec(workload);

  SocketNet::Options options;
  options.rank = config.sockets.rank;
  options.peers = config.sockets.peers;
  options.seed = config.seed;
  options.config_digest = config_digest(config);
  options.overlay_parent.reserve(static_cast<std::size_t>(tree->size()));
  for (int i = 0; i < tree->size(); ++i) {
    options.overlay_parent.push_back(tree->parent(i));
  }
  if (!config.sockets.trace_prefix.empty()) {
    options.trace_path =
        next_trace_path(config.sockets.trace_prefix, options.rank);
  }

  SocketNet net(options, codec.get());
  auto owned = std::make_unique<lb::OverlayPeer>(
      tree, oc, options.rank == 0 ? workload.make_root_work() : nullptr);
  lb::OverlayPeer* peer = owned.get();
  net.set_actor(std::move(owned));

  net.transport_start();
  const SocketNet::RunResult run = net.run(
      [](const sim::Actor& a) {
        return static_cast<const lb::PeerBase&>(a).saw_terminate();
      },
      config.limits.time_limit);

  RankResult mine;
  mine.rank = options.rank;
  mine.completed = run.completed;
  mine.units_done = peer->units_done();
  mine.best_bound = peer->best_bound();
  mine.msgs_sent = net.messages_sent();
  mine.work_requests = net.sent_of_type(lb::kReqDown) +
                       net.sent_of_type(lb::kReqUp) +
                       net.sent_of_type(lb::kReqBridge);
  mine.work_transfers = net.sent_of_type(lb::kWork);
  mine.tap = peer->state_tap();
  mine.done_ns = options.rank == 0 ? peer->done_time() : -1;
  {
    WireWriter sol;
    codec->encode_solution(sol);
    mine.solution = sol.take();
  }
  WireWriter blob;
  encode_rank_result(mine, blob);

  const std::vector<std::vector<std::uint8_t>> blobs =
      net.exchange_results(blob.take());

  ThreadRunMetrics metrics;
  metrics.wall_seconds = run.wall_seconds;
  bool all_done = true;
  std::int64_t done_ns = -1;
  for (int rank = 0; rank < config.num_peers; ++rank) {
    WireReader reader(blobs[static_cast<std::size_t>(rank)]);
    RankResult r = decode_rank_result(reader);
    OLB_CHECK_MSG(r.rank == rank, "result blobs out of rank order");
    metrics.total_units += r.units_done;
    metrics.best_bound = std::min(metrics.best_bound, r.best_bound);
    metrics.total_messages += r.msgs_sent;
    metrics.work_requests += r.work_requests;
    metrics.work_transfers += r.work_transfers;
    metrics.final_state.push_back(r.tap);
    if (!r.completed || !r.tap.terminated || r.tap.holds_work) all_done = false;
    if (rank == 0) done_ns = r.done_ns;
    if (!r.solution.empty()) {
      WireReader sol(r.solution);
      OLB_CHECK_MSG(codec->merge_solution(sol) && sol.exhausted(),
                    "malformed solution blob in rank result");
    }
  }
  metrics.done_seconds = sim::to_seconds(std::max<std::int64_t>(done_ns, 0));
  metrics.ok = all_done && done_ns >= 0;
  net.transport_shutdown();
  return metrics;
}

}  // namespace olb::runtime
