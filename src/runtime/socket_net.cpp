#include "runtime/socket_net.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "lb/work.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/export.hpp"

namespace olb::runtime {
namespace {

constexpr std::chrono::milliseconds kReconnectBase{50};
constexpr std::chrono::milliseconds kReconnectCap{2000};
constexpr int kMaxEpollEvents = 32;

bool split_host_port(const std::string& addr, std::string* host, std::string* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return false;
  }
  *host = addr.substr(0, colon);
  *port = addr.substr(colon + 1);
  return true;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  OLB_CHECK(flags >= 0);
  OLB_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

SocketNet::SocketNet(Options options, const WorkCodec* codec)
    : options_(std::move(options)), codec_(codec) {
  time_is_free_ = false;  // now() is a real clock read here
  if (!options_.trace_path.empty()) {
    tracer_ = std::make_unique<trace::VectorTracer>();
  }
}

SocketNet::~SocketNet() { transport_shutdown(); }

void SocketNet::set_actor(std::unique_ptr<sim::Actor> actor) {
  OLB_CHECK_MSG(actor_ == nullptr, "SocketNet hosts exactly one actor");
  OLB_CHECK(options_.rank >= 0);
  actor_ = std::move(actor);
  actor_->transport_ = this;
  actor_->id_ = options_.rank;
  // Same stream derivation as the other backends, so protocol randomness
  // matches across backends per (seed, id).
  actor_->rng_ = Xoshiro256(mix64(options_.seed + 0x9e3779b9u) ^
                            mix64(static_cast<std::uint64_t>(options_.rank)));
}

const sim::ActorStats& SocketNet::stats() const { return actor_->stats_; }

std::uint64_t SocketNet::sent_of_type(int type) const {
  OLB_CHECK(type >= 0);
  const auto idx = static_cast<std::size_t>(type);
  const auto& sent = actor_->stats_.sent_by_type;
  return idx < sent.size() ? sent[idx] : 0;
}

sim::Time SocketNet::transport_now() const {
  if (!started_clock_) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

// ---------------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------------

void SocketNet::transport_send(sim::Actor& from, int dst, sim::Message m) {
  OLB_CHECK(dst >= 0 && dst < transport_num_peers());
  OLB_CHECK_MSG(m.type >= 0, "application message types must be >= 0");
  m.src = from.id_;
  m.dst = dst;
  ++from.stats_.msgs_sent;
  const auto type_idx = static_cast<std::size_t>(m.type);
  if (from.stats_.sent_by_type.size() <= type_idx) {
    from.stats_.sent_by_type.resize(type_idx + 1, 0);
  }
  ++from.stats_.sent_by_type[type_idx];
  // Globally unique 31-bit id: ranks interleave the id space so the merged
  // trace's conservation oracle never sees two flights under one id.
  const auto n = static_cast<std::uint64_t>(transport_num_peers());
  m.id = static_cast<std::uint32_t>(
      (seq_ * n + static_cast<std::uint64_t>(options_.rank) + 1) & 0x7fffffffu);
  ++seq_;
  if (trace::kTraceCompiled && tracer_ != nullptr) [[unlikely]] {
    // Recorded before the enqueue, so this process's stream orders every
    // send ahead of any later local event — the causal order the merge in
    // src/check relies on. Latency (b) is 0: it is not locally observable.
    trace::emit(tracer_.get(), transport_now(), trace::EventKind::kMsgSend,
                from.id_, dst, m.type, static_cast<std::int64_t>(m.id), 0);
  }
  if (dst == options_.rank) {
    m.arrived_at = transport_now();
    inbox_.push_back(std::move(m));
    return;
  }
  WireWriter body;
  encode_message(m, codec_, body);
  queue_frame(dst, FrameType::kMsg, body);
}

void SocketNet::transport_set_timer(sim::Actor& from, sim::Time delay,
                                    std::int64_t tag) {
  (void)from;  // timers are always self-addressed; one actor per process
  timers_.push_back(Timer{transport_now() + delay, tag});
  std::push_heap(timers_.begin(), timers_.end(), std::greater<>{});
}

// ---------------------------------------------------------------------------
// Local dispatch
// ---------------------------------------------------------------------------

void SocketNet::dispatch(sim::Message m) {
  sim::Actor& a = *actor_;
  ++a.stats_.msgs_received;
  OLB_CHECK(m.type >= 0);
  if (trace::kTraceCompiled && tracer_ != nullptr) [[unlikely]] {
    const sim::Time now = transport_now();
    trace::emit(tracer_.get(), now, trace::EventKind::kMsgDeliver, a.id_, m.src,
                m.type, static_cast<std::int64_t>(m.id),
                now - std::max<sim::Time>(m.arrived_at, 0));
  }
  a.on_message(std::move(m));
}

bool SocketNet::fire_due_timers() {
  if (timers_.empty()) return false;
  const sim::Time now = transport_now();
  bool fired = false;
  while (!timers_.empty() && timers_.front().deadline <= now) {
    const std::int64_t tag = timers_.front().tag;
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<>{});
    timers_.pop_back();
    actor_->on_timer(tag);
    fired = true;
  }
  return fired;
}

sim::Time SocketNet::next_timer_deadline() const {
  return timers_.empty() ? kNoDeadline : timers_.front().deadline;
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

void SocketNet::setup_listener() {
  std::string host, port;
  OLB_CHECK_MSG(split_host_port(options_.peers[static_cast<std::size_t>(options_.rank)],
                                &host, &port),
                "peer address must be host:port");
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  OLB_CHECK_MSG(::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) == 0,
                "cannot resolve own listen address");
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 128) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  OLB_CHECK_MSG(fd >= 0, "cannot bind/listen on own peer address");
  set_nonblocking(fd);
  listen_fd_ = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  OLB_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
}

WireWriter SocketNet::make_hello() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(options_.rank));
  w.u64(options_.config_digest);
  return w;
}

void SocketNet::start_connect(int rank) {
  PeerLink& link = links_[static_cast<std::size_t>(rank)];
  link.retry_pending = false;
  std::string host, port;
  OLB_CHECK_MSG(split_host_port(options_.peers[static_cast<std::size_t>(rank)],
                                &host, &port),
                "peer address must be host:port");
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0) {
    schedule_reconnect(rank);
    return;
  }
  int fd = -1;
  bool in_progress = false;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    set_nonblocking(fd);
    set_nodelay(fd);
    const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc == 0) {
      in_progress = false;
      break;
    }
    if (errno == EINPROGRESS) {
      in_progress = true;
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    schedule_reconnect(rank);
    return;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->peer = rank;  // outbound connections know their peer up front
  conn->outbound = true;
  conn->connecting = in_progress;
  Conn* raw = conn.get();
  conns_[fd] = std::move(conn);
  link.conn = raw;
  link.front_sent = 0;
  // The HELLO must be the first frame on the wire; anything already queued
  // for this rank (bootstrap races, reconnects) stays behind it.
  link.sendq.push_front(make_frame(FrameType::kHello, make_hello()));
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  OLB_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
  if (!in_progress) {
    link.attempts = 0;
    try_flush_link(rank);
  }
}

void SocketNet::schedule_reconnect(int rank) {
  PeerLink& link = links_[static_cast<std::size_t>(rank)];
  link.attempts = std::min(link.attempts + 1, 16);
  auto delay = kReconnectBase * (1 << std::min(link.attempts - 1, 5));
  delay = std::min<std::chrono::milliseconds>(delay, kReconnectCap);
  link.retry_at = std::chrono::steady_clock::now() + delay;
  link.retry_pending = true;
}

void SocketNet::adopt_connection(Conn* conn, int rank) {
  PeerLink& link = links_[static_cast<std::size_t>(rank)];
  if (link.conn == conn) {
    // Duplicate HELLO on the connection we already use. Resetting
    // front_sent here would re-send the already-written prefix of a
    // partially flushed frame and corrupt the byte stream — leave the
    // cursor alone.
    link.attempts = 0;
    link.retry_pending = false;
    try_flush_link(rank);
    return;
  }
  if (link.conn != nullptr) {
    // A stale connection for this rank (e.g. superseded by a reconnect).
    close_connection(link.conn);
  }
  conn->peer = rank;
  link.conn = conn;
  // New byte stream: any partially written frame on the old connection
  // must be retransmitted whole from offset 0.
  link.front_sent = 0;
  link.attempts = 0;
  link.retry_pending = false;
  try_flush_link(rank);
}

void SocketNet::close_connection(Conn* conn) {
  const int fd = conn->fd;
  const int peer = conn->peer;
  const bool outbound = conn->outbound;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  if (peer >= 0 && links_[static_cast<std::size_t>(peer)].conn == conn) {
    PeerLink& link = links_[static_cast<std::size_t>(peer)];
    link.conn = nullptr;
    // The front frame may have been partially written to the dead socket;
    // retransmit it whole on the next connection. (A frame that was fully
    // written but not yet processed by the peer is lost — the real-world
    // face of the FaultPlan's message-drop knob; see DESIGN.md.)
    link.front_sent = 0;
    if (outbound && !shutdown_done_) schedule_reconnect(peer);
  }
  conns_.erase(fd);  // frees the Conn
}

void SocketNet::update_epoll(Conn* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (conn->connecting) {
    ev.events |= EPOLLOUT;
  } else if (conn->peer >= 0 &&
             !links_[static_cast<std::size_t>(conn->peer)].sendq.empty()) {
    ev.events |= EPOLLOUT;
  }
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void SocketNet::accept_pending() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    OLB_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
    conns_[fd] = std::move(conn);
  }
}

void SocketNet::try_flush_link(int rank) {
  PeerLink& link = links_[static_cast<std::size_t>(rank)];
  Conn* conn = link.conn;
  if (conn == nullptr || conn->connecting) return;
  while (!link.sendq.empty()) {
    const std::vector<std::uint8_t>& front = link.sendq.front();
    while (link.front_sent < front.size()) {
      const ssize_t k =
          ::send(conn->fd, front.data() + link.front_sent,
                 front.size() - link.front_sent, MSG_NOSIGNAL);
      if (k > 0) {
        link.front_sent += static_cast<std::size_t>(k);
        continue;
      }
      if (k < 0 && errno == EINTR) continue;  // interrupted: just retry
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        update_epoll(conn);
        return;
      }
      close_connection(conn);
      return;
    }
    link.sendq.pop_front();
    link.front_sent = 0;
  }
  update_epoll(conn);  // queue drained: EPOLLOUT off
}

void SocketNet::handle_writable(Conn* conn) {
  if (conn->connecting) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close_connection(conn);  // schedules the backoff retry
      return;
    }
    conn->connecting = false;
    if (conn->peer >= 0) links_[static_cast<std::size_t>(conn->peer)].attempts = 0;
  }
  if (conn->peer >= 0) try_flush_link(conn->peer);
}

void SocketNet::handle_readable(Conn* conn) {
  // Drain the socket into the connection's reassembly buffer.
  char buf[64 * 1024];
  while (true) {
    const ssize_t k = ::recv(conn->fd, buf, sizeof buf, 0);
    if (k > 0) {
      conn->in.insert(conn->in.end(), buf, buf + k);
      if (static_cast<std::size_t>(k) < sizeof buf) break;
      continue;
    }
    if (k < 0 && errno == EINTR) continue;  // interrupted: just retry
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(conn);  // EOF (k == 0) or hard error
    return;
  }
  // Parse every complete frame. A malformed header from an identified peer
  // is a fatal protocol error: both ends run the same codec version, so
  // garbage means memory corruption or a foreign client.
  std::size_t off = 0;
  while (true) {
    FrameType type;
    std::uint32_t body_len = 0;
    const ParseStatus st = parse_frame_header(conn->in.data() + off,
                                              conn->in.size() - off, &type,
                                              &body_len);
    if (st == ParseStatus::kNeedMore) break;
    OLB_CHECK_MSG(st == ParseStatus::kOk, "garbage frame header from peer");
    if (conn->in.size() - off < kFrameHeaderSize + body_len) break;
    handle_frame(conn, type, conn->in.data() + off + kFrameHeaderSize, body_len);
    off += kFrameHeaderSize + body_len;
  }
  if (off > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

void SocketNet::queue_frame(int rank, FrameType type, const WireWriter& body) {
  OLB_CHECK(rank >= 0 && rank < transport_num_peers() && rank != options_.rank);
  PeerLink& link = links_[static_cast<std::size_t>(rank)];
  link.sendq.push_back(make_frame(type, body));
  try_flush_link(rank);
}

WireWriter SocketNet::make_config() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(options_.peers.size()));
  w.u64(options_.seed);
  w.u64(options_.config_digest);
  for (const std::string& addr : options_.peers) w.str(addr);
  w.u32(static_cast<std::uint32_t>(options_.overlay_parent.size()));
  for (int parent : options_.overlay_parent) w.i32(parent);
  return w;
}

void SocketNet::handle_config(WireReader& r) {
  const std::uint32_t n = r.u32();
  const std::uint64_t seed = r.u64();
  const std::uint64_t digest = r.u64();
  OLB_CHECK_MSG(n == options_.peers.size(),
                "bootstrap config: cluster size mismatch");
  OLB_CHECK_MSG(seed == options_.seed, "bootstrap config: seed mismatch");
  OLB_CHECK_MSG(digest == options_.config_digest,
                "bootstrap config: run configuration mismatch across ranks");
  for (std::uint32_t i = 0; i < n; ++i) {
    OLB_CHECK_MSG(r.str() == options_.peers[i],
                  "bootstrap config: peer address table mismatch");
  }
  const std::uint32_t parents = r.u32();
  OLB_CHECK_MSG(parents == options_.overlay_parent.size(),
                "bootstrap config: overlay shape mismatch");
  for (std::uint32_t i = 0; i < parents; ++i) {
    OLB_CHECK_MSG(r.i32() == options_.overlay_parent[i],
                  "bootstrap config: overlay shape mismatch");
  }
  OLB_CHECK_MSG(r.exhausted(), "bootstrap config: malformed frame");
  config_ok_ = true;
}

void SocketNet::handle_app_message(WireReader& r) {
  sim::Message m;
  const bool ok = decode_message(r, codec_, &m) && r.exhausted();
  OLB_CHECK_MSG(ok, "malformed application message frame from peer");
  if (!accept_app_msgs_) {
    // A straggler racing the termination wave. Work may never be lost, but
    // the message itself is still delivered to the (terminated, hence
    // inert) actor rather than dropped: a late membership request — e.g. a
    // kJoinReq that reached rank 0 after its run ended — needs the
    // terminated actor's kTerminate echo, or the sender hangs until its
    // wall limit. Replies flow out through the result-exchange pumps.
    OLB_CHECK_MSG(
        dynamic_cast<const lb::WorkPayload*>(m.payload.get()) == nullptr,
        "undelivered work transfer after termination");
    m.arrived_at = started_clock_ ? transport_now() : 0;
    dispatch(std::move(m));
    return;
  }
  m.arrived_at = started_clock_ ? transport_now() : 0;
  inbox_.push_back(std::move(m));
}

void SocketNet::handle_frame(Conn* conn, FrameType type,
                             const std::uint8_t* body, std::size_t len) {
  WireReader r(body, len);
  switch (type) {
    case FrameType::kHello: {
      const auto rank = static_cast<int>(r.u32());
      const std::uint64_t digest = r.u64();
      OLB_CHECK_MSG(r.exhausted(), "malformed hello frame");
      OLB_CHECK_MSG(rank >= 0 && rank < transport_num_peers() &&
                        rank != options_.rank,
                    "hello from an out-of-range rank");
      OLB_CHECK_MSG(digest == options_.config_digest,
                    "peer launched with a different run configuration");
      adopt_connection(conn, rank);
      ++hellos_;
      return;
    }
    case FrameType::kConfig:
      handle_config(r);
      return;
    case FrameType::kReady: {
      const auto rank = static_cast<int>(r.u32());
      OLB_CHECK_MSG(r.exhausted() && rank > 0 && rank < transport_num_peers(),
                    "malformed ready frame");
      ++readys_;
      return;
    }
    case FrameType::kStart:
      OLB_CHECK_MSG(len == 0, "malformed start frame");
      if (!started_clock_) {
        started_clock_ = true;
        start_ = std::chrono::steady_clock::now();
      }
      start_seen_ = true;
      return;
    case FrameType::kMsg:
      handle_app_message(r);
      return;
    case FrameType::kResult: {
      const auto rank = static_cast<int>(r.u32());
      std::vector<std::uint8_t> blob = r.blob();
      OLB_CHECK_MSG(r.exhausted() && options_.rank == 0 && rank > 0 &&
                        rank < transport_num_peers(),
                    "malformed result frame");
      result_blobs_[static_cast<std::size_t>(rank)] = std::move(blob);
      result_seen_[static_cast<std::size_t>(rank)] = true;
      return;
    }
    case FrameType::kSummary: {
      const std::uint32_t n = r.u32();
      OLB_CHECK_MSG(n == options_.peers.size(), "malformed summary frame");
      for (std::uint32_t i = 0; i < n; ++i) {
        result_blobs_[i] = r.blob();
      }
      OLB_CHECK_MSG(r.exhausted(), "malformed summary frame");
      summary_seen_ = true;
      return;
    }
  }
  OLB_CHECK_MSG(false, "unknown frame type from peer");
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

bool SocketNet::sendqs_empty() const {
  for (const PeerLink& link : links_) {
    if (!link.sendq.empty()) return false;
  }
  return true;
}

bool SocketNet::pump_io(std::chrono::steady_clock::duration wait) {
  // Opportunistic flush: adoption/backlog may have armed queues since the
  // last round.
  for (int rank = 0; rank < transport_num_peers(); ++rank) {
    if (!links_[static_cast<std::size_t>(rank)].sendq.empty()) {
      try_flush_link(rank);
    }
  }
  // Cap the wait at the earliest pending reconnect.
  const auto now = std::chrono::steady_clock::now();
  auto until = now + wait;
  for (const PeerLink& link : links_) {
    if (link.retry_pending) until = std::min(until, link.retry_at);
  }
  int timeout_ms = 0;
  if (until > now) {
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        until - now);
    timeout_ms = static_cast<int>(std::max<std::int64_t>(ms.count(), 1));
  }

  epoll_event events[kMaxEpollEvents];
  const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == listen_fd_) {
      accept_pending();
      continue;
    }
    // Look the fd up fresh: an earlier event in this batch may have closed
    // it (the map erase makes stale events harmless).
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 && !conn->connecting) {
      close_connection(conn);
      continue;
    }
    if ((events[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
      handle_writable(conn);
      if (conns_.find(fd) == conns_.end()) continue;  // closed while writing
    }
    if ((events[i].events & EPOLLIN) != 0) handle_readable(conn);
  }
  // Fire due reconnects.
  const auto after = std::chrono::steady_clock::now();
  for (int rank = 0; rank < transport_num_peers(); ++rank) {
    PeerLink& link = links_[static_cast<std::size_t>(rank)];
    if (link.retry_pending && link.conn == nullptr && after >= link.retry_at) {
      start_connect(rank);
    }
  }
  return n > 0;
}

void SocketNet::pump_until(const std::function<bool()>& done,
                           std::chrono::steady_clock::time_point deadline,
                           const char* what) {
  while (!done()) {
    OLB_CHECK_MSG(std::chrono::steady_clock::now() < deadline, what);
    pump_io(std::chrono::milliseconds(10));
  }
}

void SocketNet::flush_sends(std::chrono::steady_clock::time_point deadline,
                            const char* what) {
  pump_until([this] { return sendqs_empty(); }, deadline, what);
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void SocketNet::transport_start() {
  OLB_CHECK_MSG(actor_ != nullptr, "set_actor() before transport_start()");
  const int n = transport_num_peers();
  OLB_CHECK(options_.rank >= 0 && options_.rank < n);
  links_.resize(static_cast<std::size_t>(n));
  result_blobs_.resize(static_cast<std::size_t>(n));
  result_seen_.assign(static_cast<std::size_t>(n), false);
  epoll_fd_ = ::epoll_create1(0);
  OLB_CHECK(epoll_fd_ >= 0);
  setup_listener();
  for (int r = 0; r < options_.rank; ++r) start_connect(r);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options_.bootstrap_timeout);
  if (options_.rank == 0) {
    pump_until([&] { return hellos_ >= n - 1; }, deadline,
               "bootstrap timeout waiting for peer hellos");
    const WireWriter config = make_config();
    for (int r = 1; r < n; ++r) queue_frame(r, FrameType::kConfig, config);
    pump_until([&] { return readys_ >= n - 1; }, deadline,
               "bootstrap timeout waiting for peer readys");
    // The start barrier: stamp the epoch, then release everyone. Peer
    // epochs trail this one by a one-way send latency.
    started_clock_ = true;
    start_ = std::chrono::steady_clock::now();
    const WireWriter empty;
    for (int r = 1; r < n; ++r) queue_frame(r, FrameType::kStart, empty);
    flush_sends(deadline, "bootstrap timeout flushing start barrier");
  } else {
    pump_until([&] { return config_ok_; }, deadline,
               "bootstrap timeout waiting for config from rank 0");
    WireWriter ready;
    ready.u32(static_cast<std::uint32_t>(options_.rank));
    queue_frame(0, FrameType::kReady, ready);
    pump_until([&] { return start_seen_; }, deadline,
               "bootstrap timeout waiting for the start barrier");
  }
}

SocketNet::RunResult SocketNet::run(const ExitPredicate& exit_when,
                                    sim::Time wall_limit) {
  OLB_CHECK_MSG(started_clock_, "transport_start() before run()");
  OLB_CHECK(wall_limit > 0);
  const auto deadline = start_ + std::chrono::nanoseconds(wall_limit);
  sim::Actor& a = *actor_;
  a.started_ = true;
  a.on_start();

  RunResult result;
  while (true) {
    if (exit_when(a)) {
      result.completed = true;
      break;
    }
    bool progress = false;
    bool exited = false;
    while (!inbox_.empty()) {
      sim::Message m = std::move(inbox_.front());
      inbox_.pop_front();
      dispatch(std::move(m));
      progress = true;
      if (exit_when(a)) {
        exited = true;
        break;
      }
    }
    if (exited) {
      result.completed = true;
      break;
    }
    if (fire_due_timers()) progress = true;
    if (a.compute_pending_) {
      // As on ThreadNet: the chunk's CPU time was spent inside Work::step();
      // the flag only delayed on_compute_done until the inbox was drained.
      a.compute_pending_ = false;
      a.on_compute_done();
      progress = true;
    }
    pump_io(std::chrono::steady_clock::duration::zero());
    if (!inbox_.empty()) progress = true;
    if (progress) continue;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;  // watchdog; completed stays false
    // Idle: block in epoll until traffic, the next timer, or the safety poll.
    auto until = now + std::chrono::milliseconds(10);
    const sim::Time timer_at = next_timer_deadline();
    if (timer_at != kNoDeadline) {
      until = std::min(until, start_ + std::chrono::nanoseconds(timer_at));
    }
    until = std::min(until, deadline);
    if (until > now) pump_io(until - now);
  }
  // The termination fan-out (and any trailing control chatter) must reach
  // the other processes before the result exchange.
  if (result.completed) {
    flush_sends(std::chrono::steady_clock::now() +
                    std::chrono::nanoseconds(options_.bootstrap_timeout),
                "timeout flushing outbound queues after termination");
  }
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start_)
          .count();
  return result;
}

std::vector<std::vector<std::uint8_t>> SocketNet::exchange_results(
    std::vector<std::uint8_t> mine) {
  accept_app_msgs_ = false;
  // Messages still queued locally raced the termination wave; none may
  // carry work (same sweep as the other backends' leftover check), but —
  // like late arrivals in handle_app_message — they are delivered to the
  // terminated actor, not dropped, so membership stragglers get their
  // kTerminate echoes.
  while (!inbox_.empty()) {
    sim::Message m = std::move(inbox_.front());
    inbox_.pop_front();
    OLB_CHECK_MSG(
        dynamic_cast<const lb::WorkPayload*>(m.payload.get()) == nullptr,
        "undelivered work transfer after termination");
    dispatch(std::move(m));
  }

  const int n = transport_num_peers();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options_.bootstrap_timeout);
  if (options_.rank == 0) {
    result_blobs_[0] = std::move(mine);
    result_seen_[0] = true;
    pump_until(
        [&] {
          for (int r = 0; r < n; ++r) {
            if (!result_seen_[static_cast<std::size_t>(r)]) return false;
          }
          return true;
        },
        deadline, "timeout collecting peer results");
    WireWriter summary;
    summary.u32(static_cast<std::uint32_t>(n));
    for (const auto& blob : result_blobs_) summary.blob(blob);
    for (int r = 1; r < n; ++r) queue_frame(r, FrameType::kSummary, summary);
    flush_sends(deadline, "timeout broadcasting the result summary");
  } else {
    WireWriter result;
    result.u32(static_cast<std::uint32_t>(options_.rank));
    result.blob(mine);
    queue_frame(0, FrameType::kResult, result);
    pump_until([&] { return summary_seen_; }, deadline,
               "timeout waiting for the result summary");
    result_blobs_[static_cast<std::size_t>(options_.rank)] = std::move(mine);
  }
  return result_blobs_;
}

void SocketNet::transport_shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (epoll_fd_ >= 0) {
    // Best-effort drain of whatever is still queued (a crashed run's peers
    // may be gone; never block shutdown on them).
    const auto grace = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(200);
    while (!sendqs_empty() && std::chrono::steady_clock::now() < grace) {
      pump_io(std::chrono::milliseconds(5));
    }
  }
  if (tracer_ != nullptr) {
    std::ofstream os(options_.trace_path, std::ios::binary);
    if (os) trace::write_ndjson(os, tracer_->events());
  }
  std::vector<Conn*> open;
  open.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) open.push_back(conn.get());
  for (Conn* conn : open) close_connection(conn);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

}  // namespace olb::runtime
