#include "runtime/runtime.hpp"

#include <algorithm>
#include <memory>

#include "lb/messages.hpp"
#include "runtime/thread_net.hpp"
#include "support/check.hpp"

namespace olb::runtime {

ThreadRunMetrics run_threads(lb::Workload& workload, const lb::RunConfig& config) {
  OLB_CHECK_MSG(lb::strategy_is_overlay(config.strategy),
                "the thread backend runs overlay strategies (TD/TR/BTD) only");
  OLB_CHECK_MSG(!config.faults.enabled(),
                "fault injection is a simulator concept");
  OLB_CHECK_MSG(config.het.fraction == 0.0,
                "speed scaling is a simulator concept");
  OLB_CHECK(config.num_peers >= 1);

  auto tree = std::make_shared<const overlay::TreeOverlay>(
      lb::make_overlay_tree(config));
  const lb::OverlayConfig oc = lb::make_overlay_config(config);

  ThreadNet net(config.seed);
  // Any caller-supplied sink is wrapped for thread safety: peers emit from
  // their own threads. The wrapper also serialises each send ahead of its
  // delivery in the recorded stream (see thread_net.cpp).
  std::unique_ptr<trace::LockedSink> locked;
  if (config.tracer != nullptr) {
    locked = std::make_unique<trace::LockedSink>(config.tracer);
    net.set_tracer(locked.get());
  }
  if (config.metrics != nullptr) net.set_metrics(config.metrics);
  std::vector<lb::OverlayPeer*> peers;
  for (int i = 0; i < config.num_peers; ++i) {
    auto peer = std::make_unique<lb::OverlayPeer>(
        tree, oc, i == 0 ? workload.make_root_work() : nullptr);
    peers.push_back(peer.get());
    net.add_actor(std::move(peer));
  }

  net.transport_start();  // lifecycle contract; a no-op on this backend
  const auto result = net.run(
      [](const sim::Actor& a) {
        return static_cast<const lb::PeerBase&>(a).saw_terminate();
      },
      config.limits.time_limit);
  net.transport_shutdown();

  ThreadRunMetrics metrics;
  metrics.wall_seconds = result.wall_seconds;
  metrics.total_messages = net.total_messages();
  metrics.work_requests = net.total_sent_of_type(lb::kReqDown) +
                          net.total_sent_of_type(lb::kReqUp) +
                          net.total_sent_of_type(lb::kReqBridge);
  metrics.work_transfers = net.total_sent_of_type(lb::kWork);

  bool all_done = result.completed;
  for (lb::OverlayPeer* peer : peers) {
    metrics.total_units += peer->units_done();
    metrics.best_bound = std::min(metrics.best_bound, peer->best_bound());
    if (peer->holds_work() || !peer->saw_terminate()) all_done = false;
  }
  const sim::Time done = peers.front()->done_time();
  metrics.done_seconds = sim::to_seconds(std::max<sim::Time>(done, 0));
  metrics.ok = all_done && done >= 0;
  for (lb::OverlayPeer* peer : peers) {
    metrics.final_state.push_back(peer->state_tap());
  }
  return metrics;
}

}  // namespace olb::runtime
