// Lock-free multi-producer single-consumer mailbox (Vyukov's non-intrusive
// MPSC queue) carrying sim::Message.
//
// This is the thread backend's replacement for the simulator's per-actor
// inbox_: any peer thread may push (transport_send), only the owning peer
// thread pops. Push is wait-free (one exchange + one store); pop is a few
// loads on the owner thread.
//
// A pop may report "empty" while a push is mid-flight (the producer has
// swung head_ but not yet linked its node). That transient emptiness is
// benign for the peer loop: the producer bumps the host's wake epoch only
// *after* push() returns, so a sleeper that saw the transient gap is woken
// once the message is actually reachable.
#pragma once

#include <atomic>
#include <utility>

#include "simnet/message.hpp"

namespace olb::runtime {

class MpscMailbox {
 public:
  MpscMailbox() : head_(&stub_), tail_(&stub_) {}

  MpscMailbox(const MpscMailbox&) = delete;
  MpscMailbox& operator=(const MpscMailbox&) = delete;

  ~MpscMailbox() {
    // Single-threaded by now (owner destroys after all producers stopped).
    sim::Message m;
    while (pop(m)) {
    }
  }

  /// Any thread. The release store on prev->next publishes the node *and*
  /// the message contents to the consumer's acquire load.
  void push(sim::Message m) {
    Node* node = new Node(std::move(m));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Owner thread only. Returns false when empty (possibly transiently so,
  /// see the header comment).
  bool pop(sim::Message& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      // The stub carries no message; step past it first.
      if (next == nullptr) return false;
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      out = std::move(tail->msg);
      tail_ = next;
      delete tail;
      return true;
    }
    // tail is the last linked node. If a producer is mid-push behind it we
    // must not consume it yet (its successor link would be lost), so only
    // proceed when tail is also the head.
    if (tail != head_.load(std::memory_order_acquire)) return false;
    // Re-push the stub so the queue stays non-empty after we take tail.
    stub_.next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
    prev->next.store(&stub_, std::memory_order_release);
    next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;  // an interleaved push will link soon
    out = std::move(tail->msg);
    tail_ = next;
    delete tail;
    return true;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(sim::Message m_) : msg(std::move(m_)) {}
    std::atomic<Node*> next{nullptr};
    sim::Message msg;
  };

  std::atomic<Node*> head_;  ///< producers swing this (most recent node)
  Node* tail_;               ///< consumer-private (oldest node)
  Node stub_;
};

}  // namespace olb::runtime
