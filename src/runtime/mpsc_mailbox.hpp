// Lock-free multi-producer single-consumer mailbox (Vyukov's non-intrusive
// MPSC queue) carrying sim::Message, plus a sender-owned node pool that
// keeps the steady-state message path allocation-free.
//
// This is the thread backend's replacement for the simulator's per-actor
// inbox_: any peer thread may push (transport_send), only the owning peer
// thread pops. Push is wait-free (one exchange + one store); pop is a few
// loads on the owner thread.
//
// Node recycling: a node is acquired from the *sender's* MsgNodePool,
// travels through the receiver's mailbox, and is released back to that pool
// by the receiver after the message is consumed. The pool is a Treiber
// stack with a deliberately asymmetric contract — any thread may release
// (CAS push, which is ABA-immune), but only the owning sender thread ever
// acquires (single popper, so the classic Treiber pop ABA — head reinserted
// under a pending CAS — cannot occur: nobody else removes nodes). The pool
// is bounded; overflow nodes fall back to the heap, so a burst beyond the
// cap degrades to the old new/delete behaviour instead of growing without
// limit.
//
// A pop may report "empty" while a push is mid-flight (the producer has
// swung head_ but not yet linked its node). That transient emptiness is
// benign for the peer loop: the producer checks the host's sleep gate only
// *after* push() returns, so a sleeper that saw the transient gap is woken
// once the message is actually reachable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "simnet/message.hpp"

namespace olb::runtime {

class MsgNodePool;

/// One queued message. Lives in exactly one place at a time — a mailbox,
/// a free pool, or a producer's hands — so `next` serves as the link in
/// whichever structure currently holds it.
struct MsgNode {
  std::atomic<MsgNode*> next{nullptr};
  sim::Message msg;
  MsgNodePool* pool = nullptr;  ///< return address after consumption (null = heap)
};

/// Bounded free stack of MsgNodes owned by one sender thread.
class MsgNodePool {
 public:
  explicit MsgNodePool(std::size_t cap = 256) : cap_(cap) {}

  MsgNodePool(const MsgNodePool&) = delete;
  MsgNodePool& operator=(const MsgNodePool&) = delete;

  ~MsgNodePool() {
    // Single-threaded by now (all mailboxes referencing this pool drained).
    MsgNode* n = free_head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      MsgNode* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Owner thread only (single popper — see the header comment for why
  /// that makes the Treiber pop safe).
  MsgNode* acquire() {
    MsgNode* head = free_head_.load(std::memory_order_acquire);
    while (head != nullptr) {
      MsgNode* next = head->next.load(std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(head, next, std::memory_order_acquire,
                                           std::memory_order_acquire)) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        head->pool = this;
        return head;
      }
    }
    // Pool exhausted: fall back to the heap. The tally is the telemetry
    // signal for undersized pools (olb_net_pool_heap_nodes); relaxed is
    // enough — only this owner thread writes, samplers just read.
    heap_allocs_.store(heap_allocs_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    MsgNode* fresh = new MsgNode;
    fresh->pool = this;
    return fresh;
  }

  /// Times acquire() had to hit the heap because the pool ran dry. Any
  /// thread may read (monotonic, relaxed).
  std::uint64_t heap_allocs() const {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

  /// Any thread. Returns the node to the stack, or to the heap when the
  /// pool is at capacity (the bound is approximate — size_ is read before
  /// the push — which is fine: it only caps memory, nothing correctness-
  /// critical).
  void release(MsgNode* n) {
    if (size_.load(std::memory_order_relaxed) >=
        static_cast<std::ptrdiff_t>(cap_)) {
      delete n;
      return;
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    MsgNode* head = free_head_.load(std::memory_order_relaxed);
    do {
      n->next.store(head, std::memory_order_relaxed);
    } while (!free_head_.compare_exchange_weak(head, n, std::memory_order_release,
                                               std::memory_order_relaxed));
  }

 private:
  std::atomic<MsgNode*> free_head_{nullptr};
  std::atomic<std::ptrdiff_t> size_{0};
  std::atomic<std::uint64_t> heap_allocs_{0};
  std::size_t cap_;
};

class MpscMailbox {
 public:
  MpscMailbox() : head_(&stub_), tail_(&stub_) {}

  MpscMailbox(const MpscMailbox&) = delete;
  MpscMailbox& operator=(const MpscMailbox&) = delete;

  ~MpscMailbox() {
    // Single-threaded by now (owner destroys after all producers stopped).
    sim::Message m;
    while (pop(m)) {
    }
  }

  /// Any thread. The release store on prev->next publishes the node *and*
  /// the message contents to the consumer's acquire load.
  void push(sim::Message m) {
    MsgNode* node = new MsgNode;
    node->msg = std::move(m);
    push_node(node);
  }

  /// Any thread; the allocation-free path. The node comes from `pool`
  /// (which must be the calling thread's own — see MsgNodePool) and is
  /// released back to it by the consumer.
  void push(sim::Message m, MsgNodePool& pool) {
    MsgNode* node = pool.acquire();
    node->msg = std::move(m);
    node->next.store(nullptr, std::memory_order_relaxed);
    push_node(node);
  }

  /// Owner thread only. Returns false when empty (possibly transiently so,
  /// see the header comment).
  bool pop(sim::Message& out) {
    MsgNode* tail = tail_;
    MsgNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      // The stub carries no message; step past it first.
      if (next == nullptr) return false;
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      out = std::move(tail->msg);
      tail_ = next;
      recycle(tail);
      return true;
    }
    // tail is the last linked node. If a producer is mid-push behind it we
    // must not consume it yet (its successor link would be lost), so only
    // proceed when tail is also the head.
    if (tail != head_.load(std::memory_order_acquire)) return false;
    // Re-push the stub so the queue stays non-empty after we take tail.
    stub_.next.store(nullptr, std::memory_order_relaxed);
    MsgNode* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
    prev->next.store(&stub_, std::memory_order_release);
    next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;  // an interleaved push will link soon
    out = std::move(tail->msg);
    tail_ = next;
    recycle(tail);
    return true;
  }

  /// Owner thread only. Batched drain: pops messages in FIFO order, calling
  /// `fn(Message&&)` on each until the mailbox reports empty, `max` messages
  /// have been consumed, or `fn` returns false (early stop — the remaining
  /// messages stay queued). Returns the number consumed. This is the unit
  /// the peer loop amortizes one eventcount wake over: senders skip the
  /// wake entirely while a drain is in progress (the sleep gate is down).
  template <typename Fn>
  std::size_t drain(Fn&& fn, std::size_t max = static_cast<std::size_t>(-1)) {
    std::size_t n = 0;
    sim::Message m;
    while (n < max && pop(m)) {
      ++n;
      if (!fn(std::move(m))) break;
    }
    return n;
  }

 private:
  void push_node(MsgNode* node) {
    MsgNode* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumed nodes go back to their sender's pool; pool-less ones (plain
  /// push, e.g. tests and benchmarks) came from the heap.
  void recycle(MsgNode* node) {
    if (node->pool != nullptr) {
      node->pool->release(node);
    } else {
      delete node;
    }
  }

  std::atomic<MsgNode*> head_;  ///< producers swing this (most recent node)
  MsgNode* tail_;               ///< consumer-private (oldest node)
  MsgNode stub_;
};

}  // namespace olb::runtime
