// Multi-process execution substrate: one protocol actor per OS process,
// joined by TCP and driven by an epoll event loop.
//
// The seam is the same sim::Transport the simulator and ThreadNet
// implement, so OverlayPeer and friends run here unmodified:
//
//   * now()            is the wall clock (ns) since the bootstrap START
//                      barrier — every process stamps its epoch on the same
//                      barrier, so cross-process timestamps are comparable
//                      up to one loopback one-way latency,
//   * send()           serialises the message through the versioned wire
//                      codec (runtime/wire.hpp, runtime/work_codec.hpp)
//                      onto the per-peer TCP connection; each connection is
//                      FIFO, so per-link ordering matches the other
//                      backends' mailbox semantics,
//   * start_compute()  is pure bookkeeping, exactly as on ThreadNet,
//   * set_timer()      goes to a process-local min-heap serviced between
//                      socket polls.
//
// ## Connection topology
//
// Every rank listens on its address from the shared table; rank r
// *initiates* exactly one connection to every rank < r (lower rank
// listens), so each unordered pair shares one duplex connection and there
// are no simultaneous-connect duplicates. The first frame on an outbound
// connection is kHello (rank + config digest); the accepting side adopts
// the connection for that rank on receipt. Sends to a not-yet-adopted peer
// queue in order and flush on adoption. Only the initiating side
// reconnects after a drop, with bounded exponential backoff; frames not
// yet fully transmitted are retransmitted, frames already on the dead
// socket are lost — exactly the drop/duplication surface the FaultPlan
// models in simulation (see DESIGN.md).
//
// ## Bootstrap (all under Options::bootstrap_timeout)
//
//   1. everyone: bind + listen, connect to all lower ranks, send kHello.
//   2. rank 0: after n-1 hellos, sends each peer kConfig (cluster size,
//      seed, digest, the full address table, the overlay parent array).
//   3. rank != 0: verifies every kConfig field against its own flags
//      (the table is redistributed precisely so that a mismatched launch
//      dies loudly here instead of corrupting a run), replies kReady.
//   4. rank 0: after n-1 readys, stamps its epoch and broadcasts kStart;
//      each receiver stamps its epoch on receipt — the time-0 barrier.
//
// After the run, exchange_results() inverts the fan-in: every rank sends
// rank 0 an opaque result blob (kResult), rank 0 broadcasts the full set
// (kSummary), and every process returns the same by-rank vector — so all
// processes print identical aggregate metrics and the merged B&B incumbent.
//
// What SocketNet does NOT provide: determinism (interleavings are real),
// fault injection (but see the DESIGN.md mapping onto real drops), and
// multi-actor processes — one actor per process, by construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/work_codec.hpp"
#include "simnet/engine.hpp"

namespace olb::runtime {

class SocketNet final : public sim::Transport {
 public:
  struct Options {
    int rank = -1;
    std::vector<std::string> peers;  ///< "host:port" per rank, index = rank
    /// Run seed; feeds the local actor's RNG stream (same derivation as the
    /// other backends) and is cross-checked by the bootstrap config frame.
    std::uint64_t seed = 0;
    /// Digest of the run configuration; all ranks must agree (bootstrap
    /// aborts otherwise). Computed by run_sockets from the RunConfig.
    std::uint64_t config_digest = 0;
    /// Locally derived overlay shape (parent per peer, parent[0] == -1);
    /// cross-checked against rank 0's authoritative copy during bootstrap.
    std::vector<int> overlay_parent;
    sim::Time bootstrap_timeout = sim::seconds(30.0);
    /// When non-empty, protocol trace events are recorded and written to
    /// this NDJSON file at transport_shutdown().
    std::string trace_path;
  };

  /// `codec` (not owned; may be null for payload-free protocols) decodes
  /// kWork payload bodies arriving from peers.
  SocketNet(Options options, const WorkCodec* codec);
  ~SocketNet() override;

  /// Installs this process's single actor; its id is Options::rank. Must be
  /// called before transport_start().
  void set_actor(std::unique_ptr<sim::Actor> actor);
  sim::Actor& local_actor() { return *actor_; }
  const sim::ActorStats& stats() const;

  /// Lifecycle (transport.hpp contract): start binds, connects and runs the
  /// bootstrap barrier; shutdown flushes queues, writes the trace file and
  /// closes every socket (idempotent; the destructor calls it too).
  void transport_start() override;
  void transport_shutdown() override;

  using ExitPredicate = std::function<bool(const sim::Actor&)>;

  struct RunResult {
    double wall_seconds = 0.0;  ///< this process, start barrier to exit
    bool completed = false;     ///< exited via the predicate, not the watchdog
  };

  /// Runs the local actor until `exit_when(actor)` holds or `wall_limit`
  /// elapses, then flushes outbound queues (the termination fan-out must
  /// reach the other processes). Call between transport_start() and
  /// exchange_results().
  RunResult run(const ExitPredicate& exit_when, sim::Time wall_limit);

  /// Post-run all-gather of opaque per-rank result blobs via rank 0.
  /// Returns the blobs indexed by rank — identical on every process. Late
  /// application messages arriving during the exchange must be payload-free
  /// (control chatter that raced termination) and are dropped.
  std::vector<std::vector<std::uint8_t>> exchange_results(
      std::vector<std::uint8_t> mine);

  int rank() const { return options_.rank; }
  std::uint64_t messages_sent() const { return stats().msgs_sent; }
  /// The local actor's per-type send counter (call after run()).
  std::uint64_t sent_of_type(int type) const;

 private:
  struct Timer {
    sim::Time deadline;
    std::int64_t tag;
    bool operator>(const Timer& o) const { return deadline > o.deadline; }
  };

  /// One TCP connection (inbound or outbound, identified or not yet).
  struct Conn {
    int fd = -1;
    int peer = -1;        ///< rank, -1 until the kHello adoption
    bool outbound = false;
    bool connecting = false;  ///< non-blocking connect() still in flight
    std::vector<std::uint8_t> in;  ///< partial-frame receive buffer
  };

  /// Per-rank link state. The send queue belongs to the *rank*, not the
  /// connection, so frames queued before adoption (or across a reconnect)
  /// are preserved in order.
  struct PeerLink {
    Conn* conn = nullptr;  ///< adopted connection, null while down
    std::deque<std::vector<std::uint8_t>> sendq;
    std::size_t front_sent = 0;  ///< bytes of sendq.front() already written
    int attempts = 0;            ///< consecutive failed connects (backoff)
    std::chrono::steady_clock::time_point retry_at{};
    bool retry_pending = false;  ///< reconnect scheduled (outbound links)
  };

  // Transport services (see transport.hpp).
  sim::Time transport_now() const override;
  int transport_num_peers() const override {
    return static_cast<int>(options_.peers.size());
  }
  trace::TraceSink* transport_tracer() const override { return tracer_.get(); }
  void transport_send(sim::Actor& from, int dst, sim::Message m) override;
  void transport_set_timer(sim::Actor& from, sim::Time delay,
                           std::int64_t tag) override;
  void transport_compute_started(sim::Actor& from, sim::Time duration) override {
    // As on ThreadNet: the span is CPU time Work::step() already consumed.
    (void)from;
    (void)duration;
  }

  // --- event loop ---
  /// One poll round: flushes writable queues, waits up to `wait` for socket
  /// events (0 = non-blocking), services reads/accepts/connects and due
  /// reconnects. Returns true if any frame or connection event happened.
  bool pump_io(std::chrono::steady_clock::duration wait);
  /// Pumps until `done()` or `deadline`; OLB_CHECK-aborts on timeout with
  /// `what` in the message.
  void pump_until(const std::function<bool()>& done,
                  std::chrono::steady_clock::time_point deadline,
                  const char* what);
  /// Pumps until every send queue is empty (bounded by `deadline`).
  void flush_sends(std::chrono::steady_clock::time_point deadline,
                   const char* what);
  bool sendqs_empty() const;

  // --- connections ---
  void setup_listener();
  void start_connect(int rank);
  void schedule_reconnect(int rank);
  void adopt_connection(Conn* conn, int rank);
  void close_connection(Conn* conn);
  void handle_readable(Conn* conn);
  void handle_writable(Conn* conn);
  void try_flush_link(int rank);
  void update_epoll(Conn* conn);
  void accept_pending();

  // --- frames ---
  void queue_frame(int rank, FrameType type, const WireWriter& body);
  void handle_frame(Conn* conn, FrameType type,
                    const std::uint8_t* body, std::size_t len);
  void handle_config(WireReader& r);
  void handle_app_message(WireReader& r);
  WireWriter make_hello() const;
  WireWriter make_config() const;

  // --- local dispatch ---
  void dispatch(sim::Message m);
  bool fire_due_timers();
  sim::Time next_timer_deadline() const;  ///< kNoDeadline when none armed

  static constexpr sim::Time kNoDeadline = -1;

  Options options_;
  const WorkCodec* codec_;
  std::unique_ptr<sim::Actor> actor_;
  std::unique_ptr<trace::VectorTracer> tracer_;  ///< non-null iff trace_path

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  ///< by fd
  std::vector<PeerLink> links_;                           ///< by rank

  // Bootstrap / exchange progress, advanced by handle_frame.
  int hellos_ = 0;
  int readys_ = 0;
  bool config_ok_ = false;
  bool start_seen_ = false;
  bool summary_seen_ = false;
  std::vector<std::vector<std::uint8_t>> result_blobs_;  ///< by rank
  std::vector<bool> result_seen_;

  /// False once the run is over: late kMsg frames must be payload-free.
  bool accept_app_msgs_ = true;

  std::deque<sim::Message> inbox_;
  std::vector<Timer> timers_;  ///< min-heap; timers are self-addressed
  std::uint64_t seq_ = 0;      ///< local message sequence for global ids

  bool started_clock_ = false;
  std::chrono::steady_clock::time_point start_{};
  bool shutdown_done_ = false;
};

}  // namespace olb::runtime
