#include "runtime/thread_net.hpp"

#include <algorithm>

#include "metrics/hub.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::runtime {

ThreadNet::~ThreadNet() {
  // Mailbox nodes are returned to their *sender's* pool on pop, and hosts
  // destruct one by one — so drain every mailbox while all pools are still
  // alive, lest a late host's mailbox release into an already-dead pool.
  // (run() already leaves mailboxes empty; this covers aborted setups.)
  sim::Message m;
  for (auto& host : hosts_) {
    while (host->mailbox.pop(m)) {
    }
  }
}

int ThreadNet::add_actor(std::unique_ptr<sim::Actor> actor) {
  OLB_CHECK_MSG(!running_, "actors must be added before run()");
  const int id = static_cast<int>(hosts_.size());
  actor->transport_ = this;
  actor->id_ = id;
  // Same stream derivation as Engine::add_actor, so protocol randomness
  // (child order, bridge partners) matches across backends per (seed, id).
  actor->rng_ = Xoshiro256(mix64(seed_ + 0x9e3779b9u) ^
                           mix64(static_cast<std::uint64_t>(id)));
  auto host = std::make_unique<Host>();
  host->actor = std::move(actor);
  hosts_.push_back(std::move(host));
  return id;
}

sim::Time ThreadNet::transport_now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void ThreadNet::transport_send(sim::Actor& from, int dst, sim::Message m) {
  OLB_CHECK(dst >= 0 && dst < num_actors());
  OLB_CHECK_MSG(m.type >= 0, "application message types must be >= 0");
  m.src = from.id_;
  m.dst = dst;
  // Sender-side stats are only ever touched from the sender's own thread.
  ++from.stats_.msgs_sent;
  const auto type_idx = static_cast<std::size_t>(m.type);
  if (from.stats_.sent_by_type.size() <= type_idx) {
    from.stats_.sent_by_type.resize(type_idx + 1, 0);
  }
  ++from.stats_.sent_by_type[type_idx];
  const std::uint64_t msg_id =
      total_messages_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (trace::kTraceCompiled && tracer_ != nullptr) [[unlikely]] {
    // Emitted *before* the mailbox push: the delivery emit happens-after the
    // pop, which happens-after this push, so the (locked) sink records every
    // send ahead of its delivery — the stream order the oracles rely on.
    // Latency (b) is 0: there is no modelled network here.
    m.id = static_cast<std::uint32_t>(msg_id);
    trace::emit(tracer_, transport_now(), trace::EventKind::kMsgSend, from.id_,
                dst, m.type, static_cast<std::int64_t>(m.id), 0);
  }

  Host& sender = *hosts_[static_cast<std::size_t>(from.id_)];
  Host& to = *hosts_[static_cast<std::size_t>(dst)];
  to.mailbox.push(std::move(m), sender.pool);
  // Wake protocol (Dekker-style pairing with the receiver's sleep path):
  // the push above is the store, the sleeping load below is seq_cst, and
  // the receiver raises `sleeping` (seq_cst) before its final empty
  // re-poll — so either we see the flag and bump the eventcount, or the
  // receiver's re-poll sees our message. An awake receiver (the common
  // case mid-batch) costs this path one load instead of a mutex+notify
  // per message.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const bool receiver_sleeping = to.sleeping.load(std::memory_order_seq_cst);
  if (receiver_sleeping) {
    {
      std::scoped_lock lock(to.wake_mutex);
      ++to.wake_epoch;
    }
    to.wake_cv.notify_one();
  }
  // The wake/skip split is the direct measure of how well the Dekker gate
  // amortizes eventcount rounds over drain batches.
  metrics::inc(nm_.sends);
  metrics::inc(receiver_sleeping ? nm_.wakes : nm_.wakes_skipped);
}

void ThreadNet::wake_all_hosts() {
  for (auto& h : hosts_) {
    {
      std::scoped_lock lock(h->wake_mutex);
      ++h->wake_epoch;
    }
    h->wake_cv.notify_one();
  }
}

void ThreadNet::transport_set_timer(sim::Actor& from, sim::Time delay,
                                    std::int64_t tag) {
  // Timers are always self-addressed, so this runs on the owner thread and
  // the heap needs no locking.
  Host& host = *hosts_[static_cast<std::size_t>(from.id_)];
  host.timers.push_back(Timer{transport_now() + delay, tag});
  std::push_heap(host.timers.begin(), host.timers.end(), std::greater<>{});
}

void ThreadNet::dispatch(Host& host, sim::Message m) {
  sim::Actor& a = *host.actor;
  ++a.stats_.msgs_received;
  // Timers stay thread-local and faults don't exist here, so the reserved
  // negative types never travel through a mailbox.
  OLB_CHECK(m.type >= 0);
  if (trace::kTraceCompiled && tracer_ != nullptr) [[unlikely]] {
    trace::emit(tracer_, transport_now(), trace::EventKind::kMsgDeliver, a.id_,
                m.src, m.type, static_cast<std::int64_t>(m.id), 0);
  }
  a.on_message(std::move(m));
}

bool ThreadNet::fire_due_timers(Host& host) {
  // No timers armed — the common case for compute-bound peers — must not
  // pay a clock read: this runs once per work chunk.
  if (host.timers.empty()) return false;
  // Snapshot the clock once: timers armed by a firing handler are measured
  // against the next poll, like the simulator's strictly-later delivery.
  const sim::Time now = transport_now();
  bool fired = false;
  while (!host.timers.empty() && host.timers.front().deadline <= now) {
    const std::int64_t tag = host.timers.front().tag;
    std::pop_heap(host.timers.begin(), host.timers.end(), std::greater<>{});
    host.timers.pop_back();
    host.actor->on_timer(tag);
    fired = true;
  }
  return fired;
}

void ThreadNet::peer_loop(Host& host,
                          const ExitPredicate& exit_when,
                          std::chrono::steady_clock::time_point deadline) {
  sim::Actor& a = *host.actor;
  a.started_ = true;
  a.on_start();
  const int total = num_actors();
  bool counted = false;
  // Counts this actor as done the first time the exit predicate holds, and
  // returns true once EVERY actor is done. The host must not stop at its
  // own actor's termination: simulator actors stay addressable for the
  // whole run, and the protocols rely on it — a terminated overlay root
  // answers stragglers (a join request or leave handover that raced the
  // termination broadcast) from its terminated state. A host that went
  // dark here instead would strand such a sender forever.
  auto all_done = [&] {
    if (!counted && exit_when(a)) {
      counted = true;
      if (hosts_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        wake_all_hosts();  // everyone else is idle-sleeping; end the run now
      }
    }
    return hosts_done_.load(std::memory_order_acquire) == total;
  };
  sim::Message m;
  while (!all_done()) {
    bool progress = false;
    // Batched drain: every message queued so far is processed in one sweep,
    // and senders see sleeping == false the whole time, so the batch costs
    // at most one eventcount round (the wake that started it) instead of
    // one per message.
    const std::size_t drained = host.mailbox.drain([&](sim::Message&& msg) {
      dispatch(host, std::move(msg));
      return true;
    });
    if (drained > 0) {
      progress = true;
      metrics::record(nm_.drain_batch, drained);
    }
    if (fire_due_timers(host)) progress = true;
    if (a.compute_pending_) {
      // The chunk's CPU time was spent inside Work::step(); the flag only
      // delayed on_compute_done until the mailbox had been drained —
      // the simulator's poll-between-chunks semantics.
      a.compute_pending_ = false;
      a.on_compute_done();
      progress = true;
    }
    if constexpr (metrics::kMetricsCompiled) {
      // Stride-throttled gauge sampling on the owner thread: no clock reads,
      // no per-message cost, and the pre-sleep poll below keeps idle peers'
      // gauges current between batches.
      if (metrics_hub_ != nullptr && --host.metrics_countdown <= 0)
          [[unlikely]] {
        host.metrics_countdown = kMetricsPollStride;
        a.on_metrics_poll();
      }
    }
    if (progress) continue;
    if (std::chrono::steady_clock::now() >= deadline) return;  // watchdog
    if constexpr (metrics::kMetricsCompiled) {
      if (metrics_hub_ != nullptr) [[unlikely]] a.on_metrics_poll();
    }

    // Idle. Eventcount sleep: read the epoch, raise the sleep gate, re-poll
    // once (a sender may have pushed between the drain above and the gate
    // going up — the seq_cst store/load pairing with transport_send
    // guarantees we see its message if it missed our flag), then block
    // until the epoch moves or the next timer / safety poll is due.
    std::uint64_t epoch;
    {
      std::scoped_lock lock(host.wake_mutex);
      epoch = host.wake_epoch;
    }
    host.sleeping.store(true, std::memory_order_seq_cst);
    if (host.mailbox.pop(m)) {
      host.sleeping.store(false, std::memory_order_relaxed);
      dispatch(host, std::move(m));
      continue;
    }
    auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
    if (!host.timers.empty()) {
      const auto timer_at =
          start_ + std::chrono::nanoseconds(host.timers.front().deadline);
      until = std::min(until, timer_at);
    }
    until = std::min(until, deadline);
    {
      std::unique_lock lock(host.wake_mutex);
      host.wake_cv.wait_until(lock, until,
                              [&] { return host.wake_epoch != epoch; });
    }
    host.sleeping.store(false, std::memory_order_relaxed);
  }
}

ThreadNet::RunResult ThreadNet::run(const ExitPredicate& exit_when,
                                    sim::Time wall_limit) {
  OLB_CHECK_MSG(!running_, "a ThreadNet can only run once");
  OLB_CHECK(!hosts_.empty());
  OLB_CHECK(wall_limit > 0);
  running_ = true;
  if (metrics_hub_ != nullptr) {
    // Single-threaded setup: arm every actor's instruments and the net's
    // own before any peer thread exists.
    metrics::Registry& r = metrics_hub_->registry();
    for (auto& host : hosts_) host->actor->on_metrics(r);
    nm_.sends = r.counter("olb_net_sends_total");
    nm_.wakes = r.counter("olb_net_wakes_total");
    nm_.wakes_skipped = r.counter("olb_net_wakes_skipped_total");
    nm_.drain_batch = r.histogram("olb_net_drain_batch");
    nm_.pool_heap = r.gauge("olb_net_pool_heap_nodes");
    // Pull-gauge: pool exhaustion shows up as heap-spilled nodes. Summed at
    // flush time from each pool's owner-thread tally (relaxed reads).
    metrics_hub_->set_collect([this] {
      std::uint64_t spilled = 0;
      for (const auto& host : hosts_) spilled += host->pool.heap_allocs();
      nm_.pool_heap->set(static_cast<std::int64_t>(spilled));
    });
  }
  start_ = std::chrono::steady_clock::now();
  if (metrics_hub_ != nullptr) {
    metrics_hub_->start_sampler([this] {
      return static_cast<std::uint64_t>(transport_now());
    });
  }
  const auto deadline = start_ + std::chrono::nanoseconds(wall_limit);
  for (auto& host : hosts_) {
    Host* h = host.get();
    h->thread =
        std::thread([this, h, &exit_when, deadline] { peer_loop(*h, exit_when, deadline); });
  }
  for (auto& host : hosts_) host->thread.join();
  if (metrics_hub_ != nullptr) {
    // All peer threads are gone: take one last gauge sample per actor, let
    // the sampler write its final snapshot, then detach the collect hook
    // (the hub may outlive this net).
    for (auto& host : hosts_) host->actor->on_metrics_poll();
    metrics_hub_->stop_sampler();
    metrics_hub_->set_collect(nullptr);
  }

  RunResult result;
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start_)
          .count();
  result.completed = true;
  for (auto& host : hosts_) {
    if (!exit_when(*host->actor)) result.completed = false;
  }
  // Messages still queued at exit are control chatter that raced the
  // termination wave (e.g. a bridge request to an already-finished peer).
  // None of them may carry work — lost payloads would mean an unexplored
  // part of the problem.
  sim::Message leftover;
  for (auto& host : hosts_) {
    while (host->mailbox.pop(leftover)) {
      OLB_CHECK_MSG(leftover.payload == nullptr,
                    "undelivered work transfer after termination");
    }
  }
  return result;
}

std::uint64_t ThreadNet::total_sent_of_type(int type) const {
  OLB_CHECK(type >= 0);
  std::uint64_t total = 0;
  const auto idx = static_cast<std::size_t>(type);
  for (const auto& host : hosts_) {
    const auto& sent = host->actor->stats_.sent_by_type;
    if (idx < sent.size()) total += sent[idx];
  }
  return total;
}

}  // namespace olb::runtime
