// Shared-memory execution substrate: the protocol actors of src/lb running
// one-per-thread over real work, with sim::Engine's delivery machinery
// replaced by lock-free MPSC mailboxes.
//
// The seam is sim::Transport (simnet/transport.hpp): protocol code calls
// Actor's services exactly as under the simulator, but here
//
//   * now()            is the wall clock (ns since run start),
//   * send()           pushes into the receiver's MpscMailbox (on a node
//                      from the sender's pool) and wakes the receiver only
//                      when its sleep gate says it might be blocked,
//   * start_compute()  is pure bookkeeping — the work already burned real
//                      CPU inside Work::step(); the flag makes the peer loop
//                      drain its mailbox before the next chunk, preserving
//                      the simulator's poll-between-chunks semantics,
//   * set_timer()      goes to a thread-local min-heap (timers are always
//                      self-addressed) serviced by the peer's own loop.
//
// Each hook still runs exclusively on the actor's own thread, so protocol
// classes need no locking — the same single-threaded contract the simulator
// gives them.
//
// What ThreadNet does NOT provide: fault injection, heterogeneity speed
// scaling (speed is whatever the hardware does), or determinism — message
// interleavings are real. Runs are checked for protocol invariants instead
// of byte-reproducibility. Tracing IS available via set_tracer() with a
// thread-safe sink (trace::LockedSink): timestamps are wall-clock ns and
// the recorded *stream order* is causal per message (send before deliver),
// which is what the conformance oracles consume.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/mpsc_mailbox.hpp"
#include "simnet/engine.hpp"

namespace olb::runtime {

class ThreadNet final : public sim::Transport {
 public:
  /// `seed` feeds the per-actor RNG streams with the same derivation the
  /// simulator uses, so seed-dependent protocol choices (random child
  /// order, bridge partners) cover the same space on both backends.
  explicit ThreadNet(std::uint64_t seed) : seed_(seed) {
    time_is_free_ = false;  // now() is a real clock read here
  }
  ~ThreadNet() override;

  /// Takes ownership; returns the actor's id (dense, starting at 0).
  /// All actors must be added before run().
  int add_actor(std::unique_ptr<sim::Actor> actor);

  int num_actors() const { return static_cast<int>(hosts_.size()); }
  sim::Actor& actor(int id) { return *hosts_[static_cast<std::size_t>(id)]->actor; }
  const sim::ActorStats& stats(int id) const {
    return hosts_[static_cast<std::size_t>(id)]->actor->stats_;
  }

  /// A peer's thread exits once this returns true for its actor (checked
  /// between handler invocations, on the actor's own thread).
  using ExitPredicate = std::function<bool(const sim::Actor&)>;

  struct RunResult {
    double wall_seconds = 0.0;  ///< start of run() to last thread joined
    bool completed = false;     ///< every peer exited via the predicate
  };

  /// Starts one thread per actor, runs each until `exit_when(actor)` holds
  /// (or `wall_limit` elapses — the watchdog for protocol bugs), joins them
  /// all, then validates that no undelivered message carried work.
  RunResult run(const ExitPredicate& exit_when, sim::Time wall_limit);

  std::uint64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }

  /// Attaches a trace sink (not owned; must outlive run()). The sink is hit
  /// concurrently from every peer thread, so pass a thread-safe one — wrap
  /// anything single-threaded in trace::LockedSink. Call before run().
  void set_tracer(trace::TraceSink* tracer) {
    OLB_CHECK_MSG(!running_, "tracer must be attached before run()");
    tracer_ = tracer;
  }
  /// Sum of a message-type counter over all actors (call after run()).
  std::uint64_t total_sent_of_type(int type) const;

  /// Attaches a live-metrics hub (not owned; must outlive run()). On this
  /// backend the hub's wall-clock sampler thread owns the flush cadence;
  /// run() arms every actor's instruments, registers the net's own (sends,
  /// wake/wake-skip counts, drain-batch sizes, pool heap spill), starts the
  /// sampler, and stops it after the join with one final snapshot. Call
  /// before run(). nullptr (the default) leaves every instrument pointer
  /// unarmed — the per-send cost is then two predicted branches.
  void set_metrics(metrics::MetricsHub* hub) {
    OLB_CHECK_MSG(!running_, "metrics must be attached before run()");
    if constexpr (metrics::kMetricsCompiled) metrics_hub_ = hub;
  }

 private:
  /// on_metrics_poll cadence inside peer_loop: every this many loop
  /// iterations (and once before each sleep), so sampling costs no clock
  /// reads and stays off the per-message path.
  static constexpr int kMetricsPollStride = 64;
  struct Timer {
    sim::Time deadline;
    std::int64_t tag;
    bool operator>(const Timer& o) const { return deadline > o.deadline; }
  };

  /// Per-peer execution state. Everything except the mailbox and the wake
  /// fields is touched only by the owning thread.
  struct Host {
    std::unique_ptr<sim::Actor> actor;
    MpscMailbox mailbox;
    /// Nodes for messages this peer *sends* (only the owning thread
    /// acquires; receivers release consumed nodes back — see MsgNodePool).
    MsgNodePool pool;
    std::vector<Timer> timers;  ///< min-heap; timers are self-addressed
    std::thread thread;

    // Eventcount-style sleep/wake: a sender bumps epoch under the mutex
    // *after* its mailbox push, the owner re-polls after reading the epoch
    // and only blocks while the epoch is unchanged — no lost wakeups.
    //
    // The mutex+notify is paid only when the receiver might actually be
    // sleeping: `sleeping` is raised before the owner's final empty re-poll
    // and checked by senders after their push, both seq_cst (Dekker-style
    // store;load on each side), so either the sender observes the flag and
    // wakes, or the owner's re-poll observes the message. While the owner
    // is awake draining a batch, sends skip the wake entirely — one
    // eventcount round amortized over the whole batch. The peer loop's
    // bounded cv wait (safety poll) backstops the protocol besides.
    std::atomic<bool> sleeping{false};
    std::mutex wake_mutex;
    std::condition_variable wake_cv;
    std::uint64_t wake_epoch = 0;  ///< guarded by wake_mutex

    /// Owner-thread countdown to the next on_metrics_poll (metrics only).
    int metrics_countdown = 0;
  };

  // Transport services (see transport.hpp).
  sim::Time transport_now() const override;
  int transport_num_peers() const override { return num_actors(); }
  trace::TraceSink* transport_tracer() const override { return tracer_; }
  void transport_send(sim::Actor& from, int dst, sim::Message m) override;
  void transport_set_timer(sim::Actor& from, sim::Time delay,
                           std::int64_t tag) override;
  void transport_compute_started(sim::Actor& from, sim::Time duration) override {
    // Nothing to account: the span is CPU time Work::step() already spent,
    // and compute_time was accrued by Actor::start_compute itself.
    (void)from;
    (void)duration;
  }

  void peer_loop(Host& host, const ExitPredicate& exit_when,
                 std::chrono::steady_clock::time_point deadline);
  void dispatch(Host& host, sim::Message m);
  /// Fires every timer whose deadline has passed; returns true if any fired.
  bool fire_due_timers(Host& host);
  /// Bumps every host's eventcount epoch so idle sleepers re-check the
  /// global done count (used when the last actor terminates).
  void wake_all_hosts();

  std::uint64_t seed_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::chrono::steady_clock::time_point start_{};
  bool running_ = false;
  std::atomic<std::uint64_t> total_messages_{0};
  /// Hosts whose actor has satisfied the exit predicate; the run ends when
  /// this reaches num_actors() (see peer_loop — a host whose own actor is
  /// done keeps serving its mailbox until then).
  std::atomic<int> hosts_done_{0};
  trace::TraceSink* tracer_ = nullptr;  ///< must be thread-safe (LockedSink)
  // Live metrics (unarmed and cost-free unless set_metrics was called).
  metrics::MetricsHub* metrics_hub_ = nullptr;
  struct NetInstruments {
    metrics::Counter* sends = nullptr;
    metrics::Counter* wakes = nullptr;
    metrics::Counter* wakes_skipped = nullptr;
    metrics::Histogram* drain_batch = nullptr;
    metrics::Gauge* pool_heap = nullptr;
  } nm_;
};

}  // namespace olb::runtime
