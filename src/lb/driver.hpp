// Experiment driver: builds a simulated cluster for one (workload, strategy,
// scale, seed) combination, runs it to quiescence and returns the metrics
// the paper reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lb/overlay_lb.hpp"
#include "lb/work.hpp"
#include "metrics/hub.hpp"
#include "simnet/faults.hpp"
#include "simnet/network.hpp"
#include "simnet/perturb.hpp"
#include "trace/trace.hpp"

namespace olb::lb {

enum class Strategy {
  kOverlayTD,   ///< deterministic tree, degree dmax
  kOverlayTR,   ///< randomised recursive tree
  kOverlayBTD,  ///< TD extended with bridge edges
  kRWS,         ///< random work stealing (steal-half)
  kMW,          ///< master-worker (B&B-style interval pool)
  kAHMW,        ///< adaptive hierarchical master-worker
};

const char* strategy_name(Strategy s);

/// True for the overlay family (TD/TR/BTD) — the strategies the thread
/// backend (runtime::run_threads) can execute.
bool strategy_is_overlay(Strategy s);

/// Execution backend for a run. kSim is the discrete-event simulator
/// (sim::Engine); kThreads runs the same protocol objects on real threads
/// (runtime::ThreadNet) over real shared-memory work; kSockets runs one
/// peer per OS process joined by TCP (runtime::SocketNet).
enum class Backend {
  kSim,
  kThreads,
  kSockets,
};

const char* backend_name(Backend b);

/// Case-insensitive lookup ("sim", "threads", "sockets"). Returns false
/// (leaving *out untouched) for unknown names.
bool backend_from_name(std::string_view name, Backend* out);

/// Registry: every Strategy value, in display order.
const std::vector<Strategy>& all_strategies();

/// Case-insensitive lookup by display name ("btd", "RWS", ...). Returns
/// false (leaving *out untouched) for unknown names.
bool strategy_from_name(std::string_view name, Strategy* out);

/// "TD|TR|BTD|RWS|MW|AHMW" — for flag help strings and error messages.
std::string strategy_names();

/// Overlay protocol tuning (see OverlayConfig for semantics).
struct OverlayTuning {
  SplitPolicy split = SplitPolicy::kSubtreeProportional;
  std::uint64_t split_fixed_units = 1;  ///< k for SplitPolicy::kFixedUnits
  sim::Time retry_delay = sim::microseconds(100);
  sim::Time bridge_patience = sim::microseconds(300);
  /// Fault-tolerant request/lease timing; 0 means "derive from the network
  /// and fault plan" (4x the worst-case round trip). Only used when the
  /// run's FaultPlan is enabled.
  sim::Time request_timeout = 0;
  sim::Time lease_interval = 0;
};

/// Heterogeneous-cluster extension (the paper's future work): a seeded
/// `fraction` of peers run at `slow_factor` x nominal compute speed
/// (0 disables). With `capacity_weighted` the overlay's converge-cast sums
/// speed-proportional capacity weights, so subtree-proportional sharing
/// routes work towards compute power.
struct Heterogeneity {
  double fraction = 0.0;
  double slow_factor = 1.0;
  bool capacity_weighted = false;
};

/// Watchdogs: a correct run quiesces long before either limit. On the
/// real-time backends time_limit is interpreted against the wall clock.
struct Limits {
  sim::Time time_limit = sim::seconds(100000.0);
  std::uint64_t event_limit = 400'000'000;
};

/// Socket-backend bring-up parameters (Backend::kSockets only): which rank
/// this process is and where every rank listens. The address table must be
/// identical across all processes of a run — rank 0 redistributes it during
/// bootstrap and every process cross-checks. Default-constructed =
/// unconfigured; the sockets transport refuses to run.
struct SocketBringup {
  int rank = -1;
  std::vector<std::string> peers;  ///< "host:port" per rank, index = rank
  /// When non-empty, each run writes `<prefix>.run<k>.rank<r>.ndjson`
  /// protocol traces for the conformance oracles (tools/olb_check_trace).
  std::string trace_prefix;

  bool configured() const { return rank >= 0 && !peers.empty(); }
};

/// Deliberate protocol mutations for the conformance harness (src/check):
/// a planted bug must be *found* by the invariant oracles, proving they
/// watch the properties they claim to. Default-constructed = no mutation =
/// exactly the unmutated run.
struct PlantedBug {
  enum class Kind {
    kNone,
    /// Overlay split fractions biased upwards after clamping — served
    /// shares can exceed 1 (split-fraction oracle territory).
    kSplitBias,
    /// The nth payload-carrying message silently vanishes in the network —
    /// a lost transfer (conservation/completion oracle territory).
    kLostWork,
  };
  Kind kind = Kind::kNone;
  double split_bias = 0.6;  ///< added to every fraction under kSplitBias
  int lose_nth = 2;         ///< which transfer vanishes under kLostWork

  bool enabled() const { return kind != Kind::kNone; }
};

struct RunConfig {
  Strategy strategy = Strategy::kOverlayBTD;
  int num_peers = 100;
  int dmax = 10;  ///< degree of TD/BTD (and of the AHMW hierarchy)
  std::uint64_t seed = 1;
  sim::NetworkConfig net;
  std::uint64_t chunk_units = 64;
  bool diffuse_bounds = true;
  double min_split_amount = 4.0;

  sim::Time mw_checkpoint_period = sim::milliseconds(2);
  double ahmw_decomposition = 30.0;

  OverlayTuning overlay;
  Heterogeneity het;
  Limits limits;

  /// Fault injection (default-constructed = disabled = exactly the
  /// fault-free run). When enabled() the driver switches every protocol
  /// into its fault-tolerant mode and validates crash victims against the
  /// strategy (see validate_for_strategy below).
  sim::FaultPlan faults;

  /// Elastic membership (default-constructed = disabled = exactly the
  /// fixed-n run; zero-churn simulator timelines stay byte-identical).
  /// Overlay strategies only, mutually exclusive with fault injection —
  /// see validate_churn. Works on all three backends: dormant peers are
  /// pre-provisioned actors/ranks that activate at their scheduled join.
  ChurnPlan churn;

  /// Schedule perturbation (default-constructed = disabled = byte-identical
  /// to a run that predates the feature). Simulator backend only.
  sim::SchedulePerturbation perturb;

  /// Conformance-harness bug plant (default = none). Simulator backend for
  /// kLostWork; kSplitBias works on both backends (it lives in the shared
  /// OverlayConfig).
  PlantedBug plant;

  /// Optional trace sink (not owned). When set, the engine and every peer
  /// record structured events into it and RunMetrics gains the derived
  /// timelines below. Null (the default) costs one predicted branch per
  /// would-be event.
  trace::TraceSink* tracer = nullptr;

  /// Optional live-metrics hub (not owned; see metrics/hub.hpp). When set,
  /// the backend registers its instruments, every peer its per-peer gauges
  /// and histograms, and snapshots stream to the hub's file on its interval
  /// (simulated ms on kSim, wall ms on kThreads). Metrics only read state,
  /// so simulator runs stay byte-identical with or without a hub.
  metrics::MetricsHub* metrics = nullptr;

  /// Simulator sharding (Backend::kSim only; see simnet/sharded_engine.hpp).
  /// 0 (default) runs the plain single-queue engine — exactly the
  /// pre-sharding code path. 1 runs the sharded coordinator with one shard,
  /// which is byte-identical to 0 by construction (CI compares the two on
  /// pinned traces). >= 2 splits the peer range into that many
  /// cluster-aligned shards under conservative lookahead — deterministic,
  /// but a different (equally valid) timeline than the single-queue run.
  /// Features that assume one global event order (tracing, live metrics,
  /// fault injection, perturbation, the lost-work plant) force a fallback
  /// to one shard with a one-time stderr note.
  int sim_shards = 0;

  /// Execution backend. run_distributed only accepts kSim; kThreads runs
  /// go through runtime::run_threads and kSockets through
  /// runtime::run_sockets (both share this config type so flag parsing and
  /// sweep code stay backend-agnostic).
  Backend backend = Backend::kSim;

  /// Per-process bring-up for Backend::kSockets; ignored otherwise.
  SocketBringup sockets;
};

/// Builds the overlay tree for an overlay-strategy run exactly the way the
/// simulator backend does (TR uses a seeded randomised tree, TD/BTD the
/// deterministic dmax-ary one), so both backends agree on the topology.
overlay::TreeOverlay make_overlay_tree(const RunConfig& config);

/// Assembles the OverlayConfig an overlay peer gets under `config`, again
/// shared by both backends. Fault-tolerant timing is derived from the
/// network model iff the fault plan is enabled.
OverlayConfig make_overlay_config(const RunConfig& config);

/// The peer that receives the initial work under Strategy::kRWS ("the
/// paper pushes the application to a random node"). Exposed so fault plans
/// can avoid crashing it — RWS cannot survive losing its initiator.
int rws_initiator(std::uint64_t seed, int num_peers);

/// Aborts (OLB_CHECK) unless every crash victim in config.faults is
/// recoverable under config.strategy: overlays and MW must keep peer 0
/// (root / master), RWS must keep the initiator, MW must keep at least one
/// worker, and AHMW only tolerates leaf crashes. Called by run_distributed;
/// exposed for sweeps that want to pre-filter plans.
void validate_faults_for_strategy(const RunConfig& config);

/// Aborts (OLB_CHECK) unless config.churn is well-formed: overlay strategy,
/// no fault plan (churn and crash recovery compose in theory but are kept
/// mutually exclusive until the combination has an oracle), 1 <=
/// initial_peers <= num_peers, the root never leaves, every dormant peer
/// [initial_peers, num_peers) has exactly one join, at most one leave per
/// member, and a late joiner's leave follows its join. No-op when churn is
/// disabled. Called by make_overlay_config, i.e. on every backend.
void validate_churn(const RunConfig& config);

/// Deterministic random churn schedule: the last `joins` peers of an
/// n-peer run start dormant and join at times uniform in [from, to];
/// `leaves` distinct initial members (never peer 0) leave gracefully at
/// times in the same window. `joins + 1 <= num_peers` and
/// `leaves < num_peers - joins` (the root must survive). Deterministic in
/// `seed`, so sweeps replay exactly — the membership analogue of
/// sim::make_random_crashes.
ChurnPlan make_random_churn(int joins, int leaves, int num_peers,
                            sim::Time from, sim::Time to, std::uint64_t seed);

struct RunMetrics {
  /// Simulated seconds until the protocol *detected* completion.
  double exec_seconds = 0.0;
  /// Simulated time of the last completed compute chunk (excludes the
  /// termination-detection tail); used for parallel-efficiency numerators.
  double last_compute_seconds = 0.0;
  std::uint64_t total_units = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t work_requests = 0;   ///< steal/request messages injected
  std::uint64_t work_transfers = 0;  ///< kWork messages
  std::vector<std::uint64_t> msgs_per_peer;  ///< sent, indexed by peer id
  std::vector<std::uint64_t> sent_by_type;   ///< indexed by lb::MsgType
  /// Cluster utilisation per 1 ms of simulated time (0..1 per bucket).
  std::vector<double> utilization;
  std::int64_t best_bound = kNoBound;
  std::uint64_t events = 0;
  bool ok = false;  ///< quiesced, protocol terminated, no work left anywhere

  /// Simulator sharding actually used (1 for the plain engine and for
  /// single-shard runs) and conservative windows executed (0 when the
  /// window loop never ran — plain engine or one shard).
  int sim_shards = 1;
  std::uint64_t sim_windows = 0;

  /// --- fault accounting (all zero for fault-free runs) ---
  std::uint64_t msgs_dropped = 0;     ///< control messages destroyed by links
  std::uint64_t msgs_duplicated = 0;  ///< control messages delivered twice
  std::uint64_t latency_spikes = 0;
  std::uint64_t work_bounced = 0;  ///< payloads returned off crashed peers
  std::uint64_t peers_crashed = 0;
  std::uint64_t retries = 0;  ///< protocol-level request retransmissions
  /// Work units destroyed by crashes (held by the victim, or bounced with
  /// no live sender). Zero means the run explored the full problem.
  double work_lost_units = 0.0;

  /// Inbox queueing delay (seconds a message waits between arrival and
  /// service) — always measured; the MW master's collapse shows up here.
  double queueing_delay_mean = 0.0;
  double queueing_delay_max = 0.0;

  /// Filled only when RunConfig::tracer is set: number of recorded /
  /// dropped events and per-1 ms-bucket derived time series.
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<double> work_in_flight;  ///< mean kWork msgs in flight
  std::vector<double> idle_peers;      ///< peers inside an idle episode
  std::vector<double> pending_depth;   ///< mean parked-request depth

  /// Post-run per-peer protocol snapshots for the conformance oracles
  /// (src/check), indexed by peer id. Always filled — the taps are a few
  /// scalar reads per peer after the run, nothing per-event.
  std::vector<StateTap> final_state;

  /// Parallel efficiency against a sequential execution time (seconds).
  double parallel_efficiency(double seq_seconds, int num_peers) const {
    return seq_seconds / (static_cast<double>(num_peers) * exec_seconds);
  }
};

/// Runs the workload under the given configuration. Aborts (OLB_CHECK) on
/// protocol invariant violations; returns ok=false if a watchdog fired.
RunMetrics run_distributed(Workload& workload, const RunConfig& config);

/// Sequential reference: total simulated compute time of the whole problem
/// on one peer (no engine, no messages).
struct SequentialMetrics {
  double exec_seconds = 0.0;
  std::uint64_t units = 0;
  std::int64_t bound = kNoBound;
};
SequentialMetrics run_sequential(Workload& workload);

/// The paper's testbed layout: a single cluster below 800 peers; beyond
/// that, peers 736.. live in a second cluster with slower interconnect.
sim::NetworkConfig paper_network(int num_peers);

}  // namespace olb::lb
