#include "lb/overlay_lb.hpp"

#include <algorithm>

#include "lb/job_work.hpp"
#include "support/check.hpp"

namespace olb::lb {

OverlayPeer::OverlayPeer(std::shared_ptr<const overlay::TreeOverlay> tree,
                         OverlayConfig config, std::unique_ptr<Work> initial_work,
                         std::uint64_t capacity_weight)
    : PeerBase(config.peer), tree_(std::move(tree)), config_(config),
      initial_work_(std::move(initial_work)), weight_(capacity_weight) {
  OLB_CHECK(weight_ >= 1);
}

std::size_t OverlayPeer::child_index(int child_id) const {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i] == child_id) return i;
  }
  return kNpos;
}

bool OverlayPeer::all_children_pending() const {
  return std::all_of(pending_child_.begin(), pending_child_.end(),
                     [](bool b) { return b; });
}

bool OverlayPeer::locally_quiet() const {
  return idle_ && !holds_work() && !computing();
}

void OverlayPeer::trace_queue_depth() {
  const auto depth =
      static_cast<std::int64_t>(
          std::count(pending_child_.begin(), pending_child_.end(), true)) +
      static_cast<std::int64_t>(pending_bridges_.size());
  emit_trace(trace::EventKind::kQueueDepth, -1, 0, depth);
}

void OverlayPeer::send_work(int dst, std::unique_ptr<Work> w, int req_type,
                            double fraction) {
  emit_trace(trace::EventKind::kServe, dst, req_type, trace::fraction_ppm(fraction),
             static_cast<std::int64_t>(w->amount()));
  // Counted unconditionally (pure counter, no protocol effect): the FT
  // termination waves read it via own_sent(), the conformance state taps
  // always do.
  ++ft_sent_;
  std::int64_t job_tag = 0;
  if (svc_enabled()) {
    // Every service transfer is a single-job JobBag piece; tag the message
    // with its id, bump the per-job counter the accounting waves read, and
    // record the tagged transfer for the conservation oracle.
    const JobBag::Slot& slot = static_cast<JobBag*>(w.get())->sole_slot();
    job_tag = static_cast<std::int64_t>(slot.job);
    ++svc_counters_[slot.job].first;
    emit_trace(trace::EventKind::kJobXfer, dst, static_cast<std::int32_t>(slot.job),
               amount_milli(w->amount()), req_type);
  }
  auto msg = make_msg(kWork, req_type == kReqBridge ? 1 : 0, job_tag);
  msg.payload = std::make_unique<WorkPayload>(std::move(w));
  send(dst, std::move(msg));
}

// ---------------------------------------------------------------- setup ---

void OverlayPeer::on_start() {
  // Service mode: the root starts workless — jobs arrive from the gate.
  OLB_CHECK((initial_work_ != nullptr) == (is_root() && !svc_enabled()));
  // Crash book-keeping is only read on fault-tolerant paths; allocating it
  // unconditionally would cost n bytes per peer — n^2 across the run, which
  // at n = 10^5 is the whole memory budget (10 GB). Fault-free runs carry an
  // empty vector instead (on_peer_down tolerates the missing slots).
  if (config_.fault_tolerant) {
    peer_down_.assign(static_cast<std::size_t>(num_peers()), 0);
  }
  if (churn_enabled()) {
    for (const ChurnEvent& e : config_.churn.events) {
      if (e.peer != id()) continue;
      if (e.join) join_at_ = e.time; else leave_at_ = e.time;
    }
    if (id() >= config_.churn.initial_peers) {
      // Dormant peer: sits outside the overlay until its scheduled join.
      member_ = false;
      OLB_CHECK_MSG(join_at_ >= 0, "dormant peer without a scheduled join");
      set_timer(std::max<sim::Time>(join_at_ - now(), 0), kOverlayJoinTimer);
      return;
    }
    if (leave_at_ >= 0) {
      leave_timer_armed_ = true;
      set_timer(std::max<sim::Time>(leave_at_ - now(), 0), kOverlayLeaveTimer);
    }
  }
  parent_ = is_root() ? -1 : tree_->parent(id());
  const overlay::ChildSpan initial_children = tree_->children(id());
  children_.assign(initial_children.begin(), initial_children.end());
  if (churn_enabled()) {
    // Initial members are the id-prefix [0, initial_peers); the overlay
    // invariant parent[i] < i makes that prefix upward-closed, so filtering
    // dormant ids out of the child lists yields a connected subtree.
    children_.erase(std::remove_if(children_.begin(), children_.end(),
                                   [this](int c) {
                                     return c >= config_.churn.initial_peers;
                                   }),
                    children_.end());
  }
  child_size_.assign(children_.size(), 0);
  pending_child_.assign(children_.size(), false);
  child_agg_.assign(children_.size(), {0, 0});
  sizes_missing_ = static_cast<int>(children_.size());
  if (sizes_missing_ == 0) {
    // Leaf (or singleton root): size known immediately.
    my_size_ = weight_;
    if (is_root()) {
      become_ready();
    } else {
      send(parent(), make_msg(kSizeUp, static_cast<std::int64_t>(my_size_)));
    }
  }
  if (config_.fault_tolerant && !is_root()) {
    // Retransmit kSizeUp until the start signal arrives (covers a dropped
    // converge-cast message in either direction).
    set_timer(config_.request_timeout, kOverlaySetupTimer);
  }
}

void OverlayPeer::on_size_up(const sim::Message& m) {
  std::size_t idx = child_index(m.src);
  if (idx == kNpos) {
    // Under churn a rewired child introduces itself with kSizeUp before the
    // leaver's kLeave handover lands here (the two race on disjoint links).
    OLB_CHECK_MSG(config_.fault_tolerant || churn_enabled(),
                  "message from a non-child peer");
    idx = adopt_child(m.src, 0);
  }
  // A duplicated or retransmitted kSizeUp is a refresh: update the size and
  // re-send the start signal if we already have it.
  const bool refresh = ready_ || child_size_[idx] != 0;
  OLB_CHECK_MSG(config_.fault_tolerant || churn_enabled() || !refresh,
                "duplicate kSizeUp");
  child_size_[idx] = static_cast<std::uint64_t>(m.b);
  if (refresh) {
    if (ready_) {
      send(m.src, make_msg(kSizeDown, static_cast<std::int64_t>(my_size_)));
    }
    return;
  }
  if (--sizes_missing_ > 0) return;
  finish_converge_cast();
}

void OverlayPeer::finish_converge_cast() {
  my_size_ = weight_;
  for (std::uint64_t s : child_size_) my_size_ += s;
  // The distributed converge-cast must agree with the static overlay
  // (capacity weights deliberately diverge from plain node counts; crashes
  // and dormant peers are removed from the count).
  OLB_CHECK(config_.capacity_weighted || config_.fault_tolerant ||
            churn_enabled() || my_size_ == tree_->subtree_size(id()));
  if (is_root()) {
    become_ready();
  } else {
    send(parent(), make_msg(kSizeUp, static_cast<std::int64_t>(my_size_)));
  }
}

void OverlayPeer::on_size_down(const sim::Message& m) {
  parent_size_ = static_cast<std::uint64_t>(m.b);
  if (ready_) return;  // duplicated start signal (fault-tolerant refresh)
  become_ready();
}

void OverlayPeer::become_ready() {
  OLB_CHECK(!ready_);
  ready_ = true;
  for (int c : children_) {
    send(c, make_msg(kSizeDown, static_cast<std::int64_t>(my_size_)));
  }
  if (config_.fault_tolerant || (churn_enabled() && is_root())) {
    // FT: every peer leases its protocol state. Churn: the root alone must
    // re-poll — a join or leave changes no transfer counter, so no kReqUp
    // refresh reaches the root; without this tick a membership event that
    // dirties the confirming wave would hang the run (nothing else would
    // ever relaunch the pair).
    set_timer(config_.lease_interval, kOverlayLeaseTimer);
  }
  if (is_root()) {
    if (svc_enabled()) {
      // Workless start: the gate streams jobs in. The wave timer is the
      // root's only self-driven cadence — it launches per-job accounting
      // waves while jobs are in flight and dies with termination.
      set_timer(config_.service.wave_interval, kOverlayJobWaveTimer);
      start_idle_episode();
    } else {
      OLB_CHECK(acquire_work(std::move(initial_work_)));
      continue_processing();
    }
  } else {
    start_idle_episode();
  }
  // Joins that arrived mid-converge-cast were parked; adopt them now.
  if (!parked_joins_.empty()) {
    const auto parked = std::move(parked_joins_);
    parked_joins_.clear();
    for (const auto& [joiner, weight] : parked) accept_join(joiner, weight);
  }
}

// -------------------------------------------------------- idle protocol ---

void OverlayPeer::became_idle() { start_idle_episode(); }

void OverlayPeer::start_idle_episode() {
  if (terminated_ || !ready_ || !member_ || holds_work() || computing()) return;
  if (!idle_) emit_trace(trace::EventKind::kIdleBegin, -1, 0, episode_ + 1);
  idle_ = true;
  ++episode_;
  up_requested_ = false;
  send_bridge_request();
  start_down_phase();
}

void OverlayPeer::send_bridge_request() {
  const int n = fleet_size();  // the service gate is never a bridge partner
  if (!config_.use_bridges || n < 2) return;
  if (config_.fault_tolerant && crash_epoch_ >= n - 1) return;  // no live partner
  // At most one bridge request is ever parked: if the previous partner has
  // not served us yet it still will the moment it acquires work (idle peers
  // cooperate by chaining parked requests — the paper's "logical cluster of
  // idle nodes"), so re-sending would only multiply work transfers.
  if (bridge_target_ != -1) {
    if (now() - bridge_sent_at_ < config_.bridge_patience) return;
    // Abandon the parked request (it may still be served later — the work
    // simply merges in) and sample a new partner.
    bridge_target_ = -1;
  }
  int u;
  do {
    u = static_cast<int>(rng().below(static_cast<std::uint64_t>(n)));
  } while (u == id() || (config_.fault_tolerant && peer_down_[u] != 0));
  bridge_target_ = u;
  bridge_sent_at_ = now();
  emit_trace(trace::EventKind::kRequest, u, kReqBridge);
  send(u, make_msg(kReqBridge, static_cast<std::int64_t>(my_size_)));
}

void OverlayPeer::start_down_phase() {
  down_order_.clear();
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!pending_child_[i]) down_order_.push_back(children_[i]);
  }
  // Uniformly random visiting order (paper: "choosing a child uniformly at
  // random at each step").
  for (std::size_t i = down_order_.size(); i > 1; --i) {
    std::swap(down_order_[i - 1], down_order_[rng().below(i)]);
  }
  down_pos_ = 0;
  advance_down();
}

void OverlayPeer::advance_down() {
  if (!idle_ || terminated_) return;
  while (down_pos_ < down_order_.size()) {
    const int c = down_order_[down_pos_];
    const std::size_t idx = child_index(c);
    if (idx == kNpos || pending_child_[idx]) {
      ++down_pos_;
      continue;  // became pending (or crashed) since the phase started
    }
    awaiting_child_ = c;
    emit_trace(trace::EventKind::kRequest, c, kReqDown);
    send(c, make_msg(kReqDown, 0, episode_));
    if (config_.fault_tolerant) {
      // A lost kReqDown or kNoWork would park this peer forever; after the
      // timeout the silence is treated as kNoWork. The sequence number in
      // the tag voids timers whose request was in fact answered.
      set_timer(config_.request_timeout,
                kOverlayReqTimeoutTimer | (++down_req_seq_ << kTimerTagShift));
    }
    return;
  }
  awaiting_child_ = -1;
  maybe_send_up();
}

void OverlayPeer::maybe_send_up() {
  if (!all_children_pending()) {
    // Some child answered "no work" transiently but its subtree is still
    // active; retry the downward phase after a short backoff.
    arm_retry_timer();
    return;
  }
  if (is_root()) {
    check_root_termination();
  } else if (!up_requested_) {
    send_up_request();
  }
  // In bridge mode an idle peer keeps sampling random bridge partners while
  // it waits — work may re-enter its subtree only over a bridge, and the
  // pure tree protocol would otherwise sit passive until termination.
  if (config_.use_bridges && !terminated_) arm_retry_timer();
}

void OverlayPeer::arm_retry_timer() {
  if (retry_timer_armed_) return;
  retry_timer_armed_ = true;
  set_timer(config_.retry_delay, kOverlayRetryTimer);
}

void OverlayPeer::send_up_request() {
  up_requested_ = true;
  last_sent_agg_ = {agg_sent(), agg_recv()};
  // The kRequest carries the subtree aggregates so the BTD monotonicity
  // oracle (src/check) can watch the four-counter inputs evolve.
  emit_trace(trace::EventKind::kRequest, parent(), kReqUp,
             static_cast<std::int64_t>(last_sent_agg_.first),
             static_cast<std::int64_t>(last_sent_agg_.second));
  send(parent(), make_msg(kReqUp, static_cast<std::int64_t>(last_sent_agg_.first),
                          static_cast<std::int64_t>(last_sent_agg_.second)));
}

void OverlayPeer::on_timer(std::int64_t tag) {
  if (!member_) {
    // Dormant peers only ever act on their join timer; a departed peer's
    // residual retry/lease timers are stale protocol state.
    if ((tag & kTimerTagMask) == kOverlayJoinTimer) on_join_timer();
    return;
  }
  switch (tag & kTimerTagMask) {
    case kOverlayLeaveTimer:
      leave_timer_armed_ = false;
      if (terminated_) return;
      if (!ready_) {
        // Setup has not completed yet; a member cannot unwind links it has
        // not announced. Retry shortly — converge-casts finish fast.
        leave_timer_armed_ = true;
        set_timer(config_.retry_delay, kOverlayLeaveTimer);
        return;
      }
      if (computing()) {
        leave_pending_ = true;  // after_chunk() picks it up
        return;
      }
      begin_leave();
      return;
    case kOverlayRetryTimer:
      retry_timer_armed_ = false;
      if (terminated_ || !idle_ || awaiting_child_ != -1 || holds_work()) return;
      send_bridge_request();
      start_down_phase();
      return;
    case kOverlayReqTimeoutTimer: {
      if (terminated_ || !idle_ || awaiting_child_ == -1) return;
      if ((tag >> kTimerTagShift) != down_req_seq_) return;  // answered
      count_retry(awaiting_child_, kReqDown, down_req_seq_);
      awaiting_child_ = -1;
      ++down_pos_;
      advance_down();
      return;
    }
    case kOverlaySetupTimer:
      if (ready_ || terminated_) return;  // setup done: stop retransmitting
      if (my_size_ != 0) {
        count_retry(parent(), kSizeUp, 0);
        send(parent(), make_msg(kSizeUp, static_cast<std::int64_t>(my_size_)));
      }
      set_timer(config_.request_timeout, kOverlaySetupTimer);
      return;
    case kOverlayLeaseTimer:
      on_lease_tick();
      return;
    case kOverlayJobWaveTimer:
      // Per-job accounting cadence (service mode, root only). Stops re-arming
      // once the fleet terminates so the simulation can quiesce.
      if (terminated_) return;
      if (!svc_wave_outstanding_ && svc_done_.size() < svc_injected_.size()) {
        svc_launch_wave();
      }
      set_timer(config_.service.wave_interval, kOverlayJobWaveTimer);
      return;
    default:
      OLB_CHECK_MSG(false, "unexpected timer tag for OverlayPeer");
  }
}

// -------------------------------------------------------------- serving ---

double OverlayPeer::apply_policy(double proportional) const {
  switch (config_.split) {
    case SplitPolicy::kSubtreeProportional:
      return proportional;
    case SplitPolicy::kHalf:
      return 0.5;
    case SplitPolicy::kFixedUnits: {
      const double amount = work_ != nullptr ? work_->amount() : 0.0;
      if (amount <= 0.0) return 0.0;
      return static_cast<double>(config_.fixed_units) / amount;
    }
  }
  return proportional;
}

double OverlayPeer::clamp_fraction(double raw, int req_type) {
  if (raw > 0.0 && raw <= 1.0) return raw;  // the well-formed fast path
  // <= 0 (or NaN, which fails both comparisons) falls back to steal-half —
  // the share a peer with no usable size information would offer; > 1 means
  // "give them everything that is divisible", i.e. cap at the whole (which
  // split_work further limits to 0.99 so the server keeps a remainder).
  const double clamped = raw <= 0.0 ? 0.5 : 1.0;
  emit_trace(trace::EventKind::kSplitClamp, -1, req_type,
             trace::fraction_ppm(std::clamp(raw, -1000.0, 1000.0)),
             trace::fraction_ppm(clamped));
  return clamped;
}

// The subtree-proportional split fractions (paper §II.B). T_x is the
// (capacity-weighted) size of x's subtree learned in the setup
// converge-cast; "self" is the serving peer. Each requester class gets the
// share of the serving peer's work that its subtree is of the relevant
// enclosing population, so work lands in proportion to the compute power
// that will drain it.

/// Serving a child's upward request: share = T_child / T_self — the
/// child's subtree as a fraction of mine (which contains it).
double OverlayPeer::fraction_for_child(std::size_t child_idx, int req_type) {
  // All ratios are formed in double: the aggregates are uint64, and stale
  // values (see clamp_fraction) would otherwise wrap on subtraction.
  return biased(clamp_fraction(
      apply_policy(static_cast<double>(child_size_[child_idx]) /
                   static_cast<double>(my_size_)),
      req_type));
}

/// Serving the parent's downward request: share =
/// (T_parent − T_self) / T_parent — everything in the parent's subtree
/// that is *not* mine, as a fraction of the parent's subtree.
double OverlayPeer::fraction_for_parent() {
  return biased(clamp_fraction(
      apply_policy((static_cast<double>(parent_size_) -
                    static_cast<double>(my_size_)) /
                   static_cast<double>(parent_size_)),
      kReqDown));
}

/// Serving a bridge request (BTD): share = T_req / (T_self + T_req) — the
/// two subtrees are disjoint, so the requester's weight relative to the
/// pair decides the share.
double OverlayPeer::fraction_for_bridge(std::uint64_t requester_size) {
  return biased(clamp_fraction(
      apply_policy(static_cast<double>(requester_size) /
                   static_cast<double>(my_size_ + requester_size)),
      kReqBridge));
}

void OverlayPeer::on_req_down(const sim::Message& m) {
  if (holds_work()) {
    const double fraction = fraction_for_parent();
    if (auto w = split_work(fraction)) {
      send_work(m.src, std::move(w), kReqDown, fraction);
      return;
    }
  }
  emit_trace(trace::EventKind::kNoServe, m.src, kReqDown);
  send(m.src, make_msg(kNoWork, 0, m.c));
}

void OverlayPeer::on_req_up(const sim::Message& m) {
  std::size_t idx = child_index(m.src);
  if (idx == kNpos) {
    if (churn_enabled()) {
      // A departed peer refreshing its phantom ledger (after forwarding a
      // late work delivery): update the counters, never mark it pending —
      // phantoms are polled, not served.
      for (PhantomChild& ph : phantoms_) {
        if (ph.peer != m.src) continue;
        ph.agg.first = std::max(ph.agg.first, static_cast<std::uint64_t>(m.b));
        ph.agg.second = std::max(ph.agg.second, static_cast<std::uint64_t>(m.c));
        if (is_root()) {
          if (probe_outstanding_) {
            recheck_after_probe_ = true;
          } else {
            check_root_termination();
          }
        } else if (idle_ && up_requested_ &&
                   std::pair{agg_sent(), agg_recv()} != last_sent_agg_) {
          send_up_request();
        }
        return;
      }
    }
    OLB_CHECK_MSG(config_.fault_tolerant || churn_enabled(),
                  "message from a non-child peer");
    // Under churn: a rewired child racing its leaver's kLeave handover.
    idx = adopt_child(m.src, std::max<std::uint64_t>(
                                 tree_->subtree_size(m.src), 1));
  }
  pending_child_[idx] = true;
  child_agg_[idx] = {static_cast<std::uint64_t>(m.b), static_cast<std::uint64_t>(m.c)};

  if (holds_work()) {
    const double fraction = fraction_for_child(idx, kReqUp);
    if (auto w = split_work(fraction)) {
      pending_child_[idx] = false;
      send_work(m.src, std::move(w), kReqUp, fraction);
    }
    trace_queue_depth();
    return;  // unsplittable: the child stays pending, retried after chunks
  }
  trace_queue_depth();

  if (is_root()) {
    if (probe_outstanding_) {
      recheck_after_probe_ = true;
    } else {
      check_root_termination();
    }
    return;
  }
  if (idle_ && up_requested_) {
    // Refresh: forward updated subtree aggregates upwards (the paper's
    // "aggregated work request messages") — but only when they actually
    // changed; unchanged counters carry no information and a refresh per
    // descendant idle event would cascade O(depth) messages.
    if (std::pair{agg_sent(), agg_recv()} != last_sent_agg_) send_up_request();
  } else if (idle_ && awaiting_child_ == -1) {
    maybe_send_up();
  }
}

void OverlayPeer::on_req_bridge(const sim::Message& m) {
  if (holds_work()) {
    const double fraction = fraction_for_bridge(static_cast<std::uint64_t>(m.b));
    if (auto w = split_work(fraction)) {
      ++bridge_sent_;
      send_work(m.src, std::move(w), kReqBridge, fraction);
      return;
    }
  }
  emit_trace(trace::EventKind::kNoServe, m.src, kReqBridge);
  for (const auto& [peer, size] : pending_bridges_) {
    if (peer == m.src) return;  // already pending here
  }
  pending_bridges_.emplace_back(m.src, static_cast<std::uint64_t>(m.b));
  trace_queue_depth();
}

void OverlayPeer::on_work(sim::Message m) {
  OLB_CHECK_MSG(!terminated_, "work arrived after termination was declared");
  ++ft_recv_;  // unconditional, mirroring ft_sent_ in send_work
  if (m.b == 1) ++bridge_recv_;
  if (probe_acks_missing_ > 0) probe_dirty_ = true;
  if (m.b == 1 && m.src == bridge_target_) bridge_target_ = -1;
  if (idle_) emit_trace(trace::EventKind::kIdleEnd, m.src, m.type, episode_);
  idle_ = false;
  awaiting_child_ = -1;
  auto* payload = static_cast<WorkPayload*>(m.payload.get());
  OLB_CHECK(payload != nullptr);
  if (svc_enabled()) {
    // The piece's job tag rides field c (send_work); count the receipt for
    // the accounting waves and record the merge for the oracle before the
    // acquire consumes the piece.
    const auto job = static_cast<std::uint64_t>(m.c);
    ++svc_counters_[job].second;
    emit_trace(trace::EventKind::kJobMerge, m.src, static_cast<std::int32_t>(job),
               amount_milli(payload->work->amount()), m.b);
  }
  acquire_work(std::move(payload->work));
  serve_pending();
  continue_processing();
}

void OverlayPeer::serve_pending() {
  if (!holds_work()) return;
  bool served_any = false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!pending_child_[i]) continue;
    const double fraction = fraction_for_child(i, kReqUp);
    auto w = split_work(fraction);
    if (w == nullptr) {
      if (served_any) trace_queue_depth();
      return;  // too small to divide further right now
    }
    pending_child_[i] = false;
    served_any = true;
    send_work(children_[i], std::move(w), kReqUp, fraction);
  }
  while (!pending_bridges_.empty()) {
    const auto [peer, size] = pending_bridges_.front();
    const double fraction = fraction_for_bridge(size);
    auto w = split_work(fraction);
    if (w == nullptr) {
      if (served_any) trace_queue_depth();
      return;
    }
    pending_bridges_.erase(pending_bridges_.begin());
    ++bridge_sent_;
    served_any = true;
    send_work(peer, std::move(w), kReqBridge, fraction);
  }
  if (served_any) trace_queue_depth();
}

void OverlayPeer::after_chunk() {
  if (svc_enabled()) svc_emit_chunks();
  if (leave_pending_) {
    leave_pending_ = false;
    if (!terminated_ && member_) {
      begin_leave();
      return;
    }
  }
  serve_pending();
}

// --------------------------------------------------- elastic membership ---

bool OverlayPeer::is_static_ancestor(int anc, int node) const {
  int p = tree_->parent(node);
  while (p != -1) {
    if (p == anc) return true;
    p = tree_->parent(p);
  }
  return false;
}

void OverlayPeer::apply_size_delta(std::int64_t delta, bool forward_up) {
  if (delta == 0) return;
  const std::int64_t next = static_cast<std::int64_t>(my_size_) + delta;
  my_size_ = next < static_cast<std::int64_t>(weight_)
                 ? weight_
                 : static_cast<std::uint64_t>(next);
  if (forward_up && member_ && !is_root()) {
    send(parent_, make_msg(kSizeDelta, delta));
  }
}

void OverlayPeer::on_size_delta(const sim::Message& m) {
  const std::int64_t delta = m.b;
  const std::size_t idx = child_index(m.src);
  if (idx != kNpos) {
    const std::int64_t next =
        static_cast<std::int64_t>(child_size_[idx]) + delta;
    child_size_[idx] = next < 1 ? 1 : static_cast<std::uint64_t>(next);
  }
  apply_size_delta(delta, /*forward_up=*/true);
}

void OverlayPeer::on_join_timer() {
  if (member_ || terminated_ || departed_) return;
  // Churn excludes faults, so the single request cannot be lost; it either
  // finds a member that adopts us or a terminated peer that answers
  // kTerminate (the run ended first).
  send(tree_->root(), make_msg(kJoinReq, static_cast<std::int64_t>(weight_), id()));
}

void OverlayPeer::on_join_req(sim::Message m) {
  const int joiner = static_cast<int>(m.c);
  const auto weight = static_cast<std::uint64_t>(m.b);
  if (!ready_) {
    parked_joins_.emplace_back(joiner, weight);
    return;
  }
  if (static_cast<int>(children_.size()) < config_.join_degree) {
    accept_join(joiner, weight);
    return;
  }
  // BON-style weighted coin: forward towards a child with probability
  // inversely proportional to its subtree size, steering joins into the
  // lightest regions of the overlay.
  double total = 0.0;
  for (std::uint64_t s : child_size_) {
    total += 1.0 / static_cast<double>(s + 1);
  }
  double x = rng().uniform01() * total;
  std::size_t pick = children_.size() - 1;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    x -= 1.0 / static_cast<double>(child_size_[i] + 1);
    if (x <= 0.0) {
      pick = i;
      break;
    }
  }
  // The joiner's id travels in field c — routing rewrites m.src per hop.
  send(children_[pick], std::move(m));
}

void OverlayPeer::accept_join(int joiner, std::uint64_t weight) {
  OLB_CHECK(churn_enabled() && ready_ && member_);
  if (child_index(joiner) != kNpos) return;  // duplicate request, already in
  adopt_child(joiner, weight);
  ++member_events_;
  dirty_outstanding_probe();
  // The new child starts non-pending, which blocks the termination condition
  // until its first upward request integrates it into the quiet proof.
  apply_size_delta(static_cast<std::int64_t>(weight), /*forward_up=*/true);
  send(joiner, make_msg(kJoinAccept, static_cast<std::int64_t>(my_size_)));
}

void OverlayPeer::on_join_accept(const sim::Message& m) {
  if (member_ || terminated_ || departed_) return;
  member_ = true;
  ready_ = true;
  parent_ = m.src;
  parent_size_ = static_cast<std::uint64_t>(m.b);
  my_size_ = weight_;
  emit_trace(trace::EventKind::kMemberJoin, parent_, 0,
             static_cast<std::int64_t>(weight_));
  if (leave_at_ >= 0) {
    leave_timer_armed_ = true;
    set_timer(std::max<sim::Time>(leave_at_ - now(), 0), kOverlayLeaveTimer);
  }
  start_idle_episode();
}

void OverlayPeer::begin_leave() {
  OLB_CHECK_MSG(!is_root(), "the overlay root cannot leave");
  OLB_CHECK(member_ && ready_ && !computing());
  // (1) Drain: residual work moves to the parent as a counted,
  // bridge-flagged transfer — it lands in the wave counters before the
  // kLeave snapshot below, so termination cannot race the handover.
  if (holds_work()) {
    ++bridge_sent_;
    send_work(parent_, std::move(work_), kReqBridge, 1.0);
  }
  // (2) Rewire every child to the parent. Children re-announce themselves
  // (kSizeUp) and re-send any open upward request on the new link.
  for (int c : children_) {
    send(c, make_msg(kRewire, parent_, static_cast<std::int64_t>(parent_size_)));
  }
  // (3) Hand the parent our child links, inherited phantoms and final
  // transfer counters in one message.
  auto msg = make_msg(kLeave, static_cast<std::int64_t>(weight_), id());
  auto payload = std::make_unique<LeavePayload>();
  payload->children.reserve(children_.size());
  for (std::size_t i = 0; i < children_.size(); ++i) {
    payload->children.push_back({children_[i], child_size_[i],
                                 pending_child_[i] != false,
                                 child_agg_[i].first, child_agg_[i].second});
  }
  payload->phantoms.reserve(phantoms_.size());
  for (const PhantomChild& ph : phantoms_) {
    payload->phantoms.push_back({ph.peer, ph.agg.first, ph.agg.second});
  }
  payload->sent = own_sent();
  payload->recv = own_recv();
  msg.payload = std::move(payload);
  send(parent_, std::move(msg));
  emit_trace(trace::EventKind::kMemberLeave, parent_, 0,
             static_cast<std::int64_t>(weight_));
  // (4) Retire. parent_ stays valid: the departed peer keeps forwarding
  // strays towards the member side and answering probes with its true
  // counters (the phantom entry at the parent points the waves here).
  if (idle_) emit_trace(trace::EventKind::kIdleEnd, parent_, kLeave, episode_);
  member_ = false;
  departed_ = true;
  idle_ = false;
  awaiting_child_ = -1;
  children_.clear();
  child_size_.clear();
  pending_child_.clear();
  child_agg_.clear();
  pending_bridges_.clear();
  phantoms_.clear();
  bridge_target_ = -1;
}

void OverlayPeer::on_leave(sim::Message m) {
  const auto* lp = static_cast<const LeavePayload*>(m.payload.get());
  OLB_CHECK(lp != nullptr);
  const int leaver = static_cast<int>(m.c);  // src is rewritten on forwards
  ++member_events_;
  dirty_outstanding_probe();
  const std::size_t idx = child_index(leaver);
  if (idx != kNpos) {
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(idx));
    child_size_.erase(child_size_.begin() + static_cast<std::ptrdiff_t>(idx));
    pending_child_.erase(pending_child_.begin() +
                         static_cast<std::ptrdiff_t>(idx));
    child_agg_.erase(child_agg_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  // Keep the leaver's final counters as a phantom child: subtree aggregates
  // retain its contribution, probes keep polling it directly.
  phantoms_.push_back({leaver, {lp->sent, lp->recv}});
  for (const auto& ph : lp->phantoms) {
    bool known = false;
    for (PhantomChild& mine : phantoms_) {
      if (mine.peer != ph.peer) continue;
      mine.agg.first = std::max(mine.agg.first, ph.sent);
      mine.agg.second = std::max(mine.agg.second, ph.recv);
      known = true;
      break;
    }
    if (!known) phantoms_.push_back({ph.peer, {ph.sent, ph.recv}});
  }
  apply_size_delta(-static_cast<std::int64_t>(m.b), /*forward_up=*/true);
  // Merge the transferred child links. A child may have introduced itself
  // already (its rewire-triggered kSizeUp/kReqUp raced this handover):
  // merge component-wise, never regress a pending flag or an aggregate.
  for (const auto& cl : lp->children) {
    const std::size_t ci = child_index(cl.peer);
    if (ci == kNpos) {
      const std::size_t ni = adopt_child(cl.peer, cl.size);
      pending_child_[ni] = cl.pending;
      child_agg_[ni] = {cl.agg_sent, cl.agg_recv};
    } else {
      child_size_[ci] = std::max(child_size_[ci], cl.size);
      pending_child_[ci] = pending_child_[ci] || cl.pending;
      child_agg_[ci].first = std::max(child_agg_[ci].first, cl.agg_sent);
      child_agg_[ci].second = std::max(child_agg_[ci].second, cl.agg_recv);
    }
  }
  trace_queue_depth();
  if (awaiting_child_ == leaver) {
    // Our open downward request went to the leaver; it answered (or will
    // answer) out of departed_dispatch, but advance defensively.
    awaiting_child_ = -1;
    ++down_pos_;
    ++down_req_seq_;
    advance_down();
  }
  if (is_root()) {
    if (probe_outstanding_) {
      recheck_after_probe_ = true;
    } else {
      check_root_termination();
    }
  } else if (idle_ && up_requested_) {
    if (std::pair{agg_sent(), agg_recv()} != last_sent_agg_) send_up_request();
  } else if (idle_ && awaiting_child_ == -1) {
    arm_retry_timer();
  }
}

void OverlayPeer::on_rewire(const sim::Message& m) {
  const int new_parent = static_cast<int>(m.b);
  if (new_parent == parent_) return;
  const int old_parent = parent_;
  parent_ = new_parent;
  parent_size_ = std::max<std::uint64_t>(static_cast<std::uint64_t>(m.c), 1);
  emit_trace(trace::EventKind::kReparent, parent_, 0, old_parent);
  // Introduce ourselves: the new parent may not have processed the kLeave
  // handover yet. kSizeUp registers us and refreshes our size there (the
  // refresh reply also updates parent_size_ precisely).
  if (my_size_ != 0) {
    send(parent_, make_msg(kSizeUp, static_cast<std::int64_t>(my_size_)));
  }
  // Our subtree-finished signal (if any) died with the old parent.
  if (idle_ && up_requested_) send_up_request();
}

void OverlayPeer::dirty_outstanding_probe() {
  if (probe_acks_missing_ > 0) probe_dirty_ = true;
}

void OverlayPeer::departed_dispatch(sim::Message m) {
  switch (m.type) {
    case kWork: {
      // Late serve of a request made before leaving (a parked bridge, an
      // in-flight answer). Forward it to the member side as a counted,
      // bridge-flagged transfer: both hops land in the wave counters, so
      // the counter rule still sees the work while it is in flight.
      if (m.b == 1) ++bridge_recv_;
      ++ft_recv_;
      ++bridge_sent_;
      auto* payload = static_cast<WorkPayload*>(m.payload.get());
      OLB_CHECK(payload != nullptr);
      send_work(parent_, std::move(payload->work), kReqBridge, 1.0);
      // Refresh the phantom ledger at our keeper so the pre-wave counter
      // gate catches up (the probes poll our true counters directly).
      send(parent_, make_msg(kReqUp, static_cast<std::int64_t>(own_sent()),
                             static_cast<std::int64_t>(own_recv())));
      break;
    }
    case kReqDown:
      send(m.src, make_msg(kNoWork, 0, m.c));
      break;
    case kProbe: {
      const auto* pp = static_cast<const ProbePayload*>(m.payload.get());
      OLB_CHECK(pp != nullptr);
      auto msg = make_msg(kProbeAck);
      auto ack = std::make_unique<ProbePayload>();
      ack->probe_id = pp->probe_id;
      ack->bridge_sent = own_sent();
      ack->bridge_recv = own_recv();
      ack->dirty = false;
      ack->crash_epoch = crash_epoch_;
      ack->member_events = member_events_;
      msg.payload = std::move(ack);
      send(m.src, std::move(msg));
      break;
    }
    case kTerminate:
      if (!terminated_) {
        terminated_ = true;
        done_time_ = now();
        emit_trace(trace::EventKind::kTerminated);
      }
      break;
    case kJoinReq:
      send(parent_, std::move(m));  // pass strays towards the member side
      break;
    case kLeave:
      // A child departed before processing its own rewire and addressed the
      // handover to us. Pass it to the member side whole: on_leave reads the
      // leaver from the payload fields, so the src rewrite on this hop is
      // harmless — dropping it would strand the leaver's child entry at its
      // keeper as never-pending and wedge termination.
      send(parent_, std::move(m));
      break;
    case kSizeDelta:
      // An in-flight size update racing our departure. Forward it whole:
      // the member side applies it to its own estimate and keeps relaying
      // upward (our old child re-announces its absolute size on rewire, and
      // kSizeUp refreshes never touch my_size_, so nothing double-counts) —
      // dropping it would leave every ancestor's estimate permanently stale.
      send(parent_, std::move(m));
      break;
    case kSizeUp:
    case kReqUp:
      // A live child still points here (its rewire raced ours). Redirect it:
      // on_rewire makes it re-introduce itself and re-send any open upward
      // request on the new link, so no pending flag is lost.
      send(m.src, make_msg(kRewire, parent_,
                           static_cast<std::int64_t>(parent_size_)));
      break;
    case kRewire:
      // Our old parent left too; future forwards go to its parent.
      parent_ = static_cast<int>(m.b);
      break;
    default:
      break;  // stale control chatter addressed to the old member
  }
}

void OverlayPeer::dormant_dispatch(sim::Message m) {
  switch (m.type) {
    case kJoinAccept:
      on_join_accept(m);
      break;
    case kTerminate:
      // The run ended before (or raced) our join: a kJoinReq reaching a
      // terminated member is answered with kTerminate addressed to us.
      if (!terminated_) {
        terminated_ = true;
        done_time_ = now();
        emit_trace(trace::EventKind::kTerminated);
      }
      break;
    default:
      break;  // e.g. a bridge request sampled towards a non-member
  }
}

// ------------------------------------------------------ bound diffusion ---

void OverlayPeer::diffuse_bound() {
  if (!is_root()) send(parent(), make_msg(kBound));
  for (int c : children_) send(c, make_msg(kBound));
}

void OverlayPeer::on_bound_msg(const sim::Message& m) {
  if (!note_bound(m.a)) return;
  if (bound_ >= diffused_bound_) return;
  diffused_bound_ = bound_;
  if (!is_root() && parent() != m.src) send(parent(), make_msg(kBound));
  for (int c : children_) {
    if (c != m.src) send(c, make_msg(kBound));
  }
}

// ------------------------------------------------------- fault recovery ---

int OverlayPeer::nearest_live_ancestor(int peer_id) const {
  // Root crashes are rejected by the driver, so the walk terminates.
  OLB_CHECK(peer_id != tree_->root());
  int p = tree_->parent(peer_id);
  while (p != tree_->root() && peer_down_[static_cast<std::size_t>(p)] != 0) {
    p = tree_->parent(p);
  }
  return p;
}

std::size_t OverlayPeer::adopt_child(int peer_id, std::uint64_t size_hint) {
  children_.push_back(peer_id);
  child_size_.push_back(size_hint);
  pending_child_.push_back(false);
  child_agg_.emplace_back(0, 0);
  if (!ready_ && size_hint == 0) ++sizes_missing_;
  return children_.size() - 1;
}

void OverlayPeer::rebuild_children() {
  const int n = num_peers();
  std::vector<int> now_children;
  for (int j = 0; j < n; ++j) {
    if (j == id() || j == tree_->root()) continue;  // the root has no parent
    if (peer_down_[static_cast<std::size_t>(j)] != 0) continue;
    if (nearest_live_ancestor(j) == id()) now_children.push_back(j);
  }
  std::vector<std::uint64_t> sizes;
  std::vector<bool> pending;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> aggs;
  sizes.reserve(now_children.size());
  pending.reserve(now_children.size());
  aggs.reserve(now_children.size());
  for (int j : now_children) {
    const std::size_t old = child_index(j);
    if (old != kNpos) {
      sizes.push_back(child_size_[old]);
      pending.push_back(pending_child_[old]);
      aggs.push_back(child_agg_[old]);
    } else {
      // Adopted orphan. The static subtree size is a placeholder split
      // weight until its kSizeUp refresh arrives; starting non-pending
      // blocks termination until the orphan re-requests upwards.
      sizes.push_back(tree_->subtree_size(j));
      pending.push_back(false);
      aggs.emplace_back(0, 0);
    }
  }
  children_ = std::move(now_children);
  child_size_ = std::move(sizes);
  pending_child_ = std::move(pending);
  child_agg_ = std::move(aggs);
  if (!ready_) {
    sizes_missing_ = static_cast<int>(
        std::count(child_size_.begin(), child_size_.end(), std::uint64_t{0}));
    // Removing a crashed child can complete the converge-cast by itself.
    if (sizes_missing_ == 0 && my_size_ == 0) finish_converge_cast();
  }
}

void OverlayPeer::on_peer_down(int peer) {
  OLB_CHECK(config_.fault_tolerant);
  const auto pidx = static_cast<std::size_t>(peer);
  if (pidx >= peer_down_.size() || peer_down_[pidx] != 0) return;
  peer_down_[pidx] = 1;
  ++crash_epoch_;
  if (terminated_) return;
  if (is_root()) have_clean_probe_ = false;  // wave pairs must share an epoch
  if (bridge_target_ == peer) bridge_target_ = -1;
  pending_bridges_.erase(
      std::remove_if(pending_bridges_.begin(), pending_bridges_.end(),
                     [peer](const auto& pb) { return pb.first == peer; }),
      pending_bridges_.end());
  // Subtree sizes along the crashed peer's ancestor path used to stay stale
  // until the next converge-cast refresh (which fault recovery never runs),
  // skewing every split fraction computed from them. Decrement the local
  // estimate and the child entry the crash hangs under; the dead peer's own
  // child entry (if direct) is rebuilt below, where its adopted orphans
  // bring their static sizes along. Capacity weights of remote peers are
  // unknown here, so a crashed peer counts as weight 1 — the same
  // approximation rebuild_children uses for adopted orphans.
  if (my_size_ != 0 && is_static_ancestor(id(), peer)) {
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (children_[i] == peer) break;  // direct child: handled by rebuild
      if (!is_static_ancestor(children_[i], peer)) continue;
      if (child_size_[i] > 1) --child_size_[i];
      break;
    }
    apply_size_delta(-1, /*forward_up=*/false);
  }
  const int old_parent = parent_;
  if (!is_root()) parent_ = nearest_live_ancestor(id());
  rebuild_children();
  if (!is_root() && parent_ != old_parent) {
    emit_trace(trace::EventKind::kReparent, parent_, 0, old_parent);
    // Split weights for the new parent are approximations until sizes are
    // refreshed; exactness only affects balance quality, not correctness.
    parent_size_ = tree_->subtree_size(parent_);
    if (my_size_ != 0) {
      send(parent_, make_msg(kSizeUp, static_cast<std::int64_t>(my_size_)));
    }
    // Our subtree-finished signal (if any) died with the old parent.
    if (idle_ && up_requested_) send_up_request();
  }
  if (awaiting_child_ == peer) {
    // The pending downward request can never be answered now.
    awaiting_child_ = -1;
    ++down_pos_;
    ++down_req_seq_;  // void the outstanding timeout
    advance_down();
  }
  if (idle_ && awaiting_child_ == -1 && !terminated_) arm_retry_timer();
}

void OverlayPeer::on_lease_tick() {
  if (terminated_) return;  // no re-arm: the timer dies with the protocol
  if (is_root()) {
    if (probe_outstanding_ &&
        now() - probe_launched_at_ >= config_.lease_interval) {
      // The wave lost a message (or its relay crashed); abandon it.
      count_retry(-1, kProbe, static_cast<std::int64_t>(cur_probe_));
      probe_outstanding_ = false;
      probe_acks_missing_ = 0;
    }
    check_root_termination();
  } else if (idle_ && up_requested_) {
    // Lease refresh: a lost upward request (or one swallowed by a crashed
    // parent before adoption kicked in) must not hang termination.
    count_retry(parent(), kReqUp, 0);
    send_up_request();
  }
  set_timer(config_.lease_interval, kOverlayLeaseTimer);
}

// ---------------------------------------------------------- termination ---

// Plain runs count only bridge transfers: tree serves are covered by the
// converge-cast discipline (a served child must report idle again before its
// subtree reads as quiet). FT and churn runs count every transfer instead —
// a crash or departure severs that discipline mid-flight (e.g. a tree serve
// in flight to a peer that just left is invisible to the bridge counters,
// and the departed peer's counted forward only starts at receipt), so the
// four-counter rule must see all work to keep the Mattern argument sound.
std::uint64_t OverlayPeer::own_sent() const {
  return config_.fault_tolerant || churn_enabled() ? ft_sent_ : bridge_sent_;
}

std::uint64_t OverlayPeer::own_recv() const {
  return config_.fault_tolerant || churn_enabled() ? ft_recv_ : bridge_recv_;
}


std::uint64_t OverlayPeer::agg_sent() const {
  std::uint64_t s = own_sent();
  for (const auto& [cs, cr] : child_agg_) s += cs;
  for (const PhantomChild& ph : phantoms_) s += ph.agg.first;
  return s;
}

std::uint64_t OverlayPeer::agg_recv() const {
  std::uint64_t r = own_recv();
  for (const auto& [cs, cr] : child_agg_) r += cr;
  for (const PhantomChild& ph : phantoms_) r += ph.agg.second;
  return r;
}

void OverlayPeer::check_root_termination() {
  if (!is_root() || terminated_) return;
  // Service mode: the gate owns end-of-stream. Until it says kSvcShutdown
  // more jobs may still be injected, so global quiescence means nothing.
  if (svc_enabled() && !svc_shutdown_) return;
  if (!locally_quiet() || !all_children_pending()) return;
  if (config_.fault_tolerant) {
    // Unreliable links can leave pending flags stale, so even pure tree
    // mode must confirm termination with counter waves.
    if (probe_outstanding_) {
      recheck_after_probe_ = true;
      return;
    }
    if (crash_epoch_ == 0 && agg_sent() != agg_recv()) return;
    // Pace the confirming wave one lease after the previous one: every
    // transfer in flight during wave k has landed (and bumped a receive
    // counter) before wave k+1 polls its receiver.
    if (have_clean_probe_ && now() - last_wave_end_ < config_.lease_interval) {
      return;  // the lease timer re-checks
    }
    launch_probe();
    return;
  }
  if (!config_.use_bridges && !churn_enabled()) {
    // Pure tree mode: a child's upward request proves its whole subtree is
    // finished, so the condition alone is exact. Under churn that proof
    // breaks — a serve can be in flight to a peer that already left (its
    // departed forward re-injects the work outside the tree discipline) —
    // so elastic runs always confirm with full-counter waves instead.
    declare_termination();
    return;
  }
  if (probe_outstanding_) {
    recheck_after_probe_ = true;
    return;
  }
  if (agg_sent() == agg_recv()) launch_probe();
  // Unbalanced counters: some receipt/send is still unreported; the owning
  // subtree will re-idle and refresh its upward request, re-triggering us.
}

void OverlayPeer::launch_probe() {
  probe_outstanding_ = true;
  probe_launched_at_ = now();
  recheck_after_probe_ = false;
  cur_probe_ = ++next_probe_id_;
  probe_s_ = own_sent();
  probe_r_ = own_recv();
  probe_me_ = member_events_;
  probe_dirty_ = false;
  probe_epoch_ = crash_epoch_;
  probe_acks_missing_ = static_cast<int>(children_.size() + phantoms_.size());
  emit_trace(trace::EventKind::kProbeWave, -1, 0,
             static_cast<std::int64_t>(cur_probe_));
  if (probe_acks_missing_ == 0) {
    finish_probe_at_root(probe_s_, probe_r_, probe_dirty_);
    return;
  }
  auto probe = [&](int dst) {
    auto msg = make_msg(kProbe);
    auto payload = std::make_unique<ProbePayload>();
    payload->probe_id = cur_probe_;
    msg.payload = std::move(payload);
    send(dst, std::move(msg));
  };
  for (int c : children_) probe(c);
  // Phantoms are polled directly: the departed peer answers with its *true*
  // counters, so a stale phantom ledger can only block termination (the
  // pre-wave gate), never falsely balance it.
  for (const PhantomChild& ph : phantoms_) probe(ph.peer);
}

void OverlayPeer::on_probe(sim::Message m) {
  if (terminated_) return;
  const auto* pp = static_cast<const ProbePayload*>(m.payload.get());
  const std::uint64_t pid = pp->probe_id;
  auto reply_dirty = [&] {
    auto msg = make_msg(kProbeAck);
    auto payload = std::make_unique<ProbePayload>();
    payload->probe_id = pid;
    payload->dirty = true;
    payload->crash_epoch = crash_epoch_;
    msg.payload = std::move(payload);
    send(m.src, std::move(msg));
  };
  if (!locally_quiet() || !all_children_pending()) {
    reply_dirty();
    return;
  }
  cur_probe_ = pid;
  probe_parent_ = m.src;
  probe_s_ = own_sent();
  probe_r_ = own_recv();
  probe_me_ = member_events_;
  probe_dirty_ = false;
  probe_epoch_ = crash_epoch_;
  probe_acks_missing_ = static_cast<int>(children_.size() + phantoms_.size());
  if (probe_acks_missing_ == 0) {
    auto msg = make_msg(kProbeAck);
    auto payload = std::make_unique<ProbePayload>();
    payload->probe_id = pid;
    payload->bridge_sent = probe_s_;
    payload->bridge_recv = probe_r_;
    payload->dirty = false;
    payload->crash_epoch = probe_epoch_;
    payload->member_events = probe_me_;
    msg.payload = std::move(payload);
    send(probe_parent_, std::move(msg));
    return;
  }
  auto probe = [&](int dst) {
    auto msg = make_msg(kProbe);
    auto payload = std::make_unique<ProbePayload>();
    payload->probe_id = pid;
    msg.payload = std::move(payload);
    send(dst, std::move(msg));
  };
  for (int c : children_) probe(c);
  for (const PhantomChild& ph : phantoms_) probe(ph.peer);
}

void OverlayPeer::on_probe_ack(sim::Message m) {
  if (terminated_) return;
  const auto* pp = static_cast<const ProbePayload*>(m.payload.get());
  if (pp->probe_id != cur_probe_ || probe_acks_missing_ == 0) return;  // stale
  probe_s_ += pp->bridge_sent;
  probe_r_ += pp->bridge_recv;
  probe_me_ += pp->member_events;
  probe_dirty_ = probe_dirty_ || pp->dirty;
  probe_epoch_ = std::max(probe_epoch_, pp->crash_epoch);
  if (--probe_acks_missing_ > 0) return;
  if (is_root()) {
    finish_probe_at_root(probe_s_, probe_r_, probe_dirty_);
    return;
  }
  const bool still_quiet = locally_quiet() && all_children_pending();
  auto msg = make_msg(kProbeAck);
  auto payload = std::make_unique<ProbePayload>();
  payload->probe_id = cur_probe_;
  payload->bridge_sent = probe_s_;
  payload->bridge_recv = probe_r_;
  payload->dirty = probe_dirty_ || !still_quiet;
  payload->crash_epoch = probe_epoch_;
  payload->member_events = probe_me_;
  msg.payload = std::move(payload);
  send(probe_parent_, std::move(msg));
}

void OverlayPeer::on_metrics(metrics::Registry& registry) {
  PeerBase::on_metrics(registry);
  if (is_root()) m_wave_ = registry.histogram("olb_term_wave_ns", id());
}

void OverlayPeer::finish_probe_at_root(std::uint64_t s, std::uint64_t r, bool dirty) {
  probe_outstanding_ = false;
  last_wave_end_ = now();
  // Wave latency = launch at the root to the last ack folding back in.
  if (m_wave_ != nullptr) [[unlikely]] {
    const sim::Time lat = last_wave_end_ - probe_launched_at_;
    metrics::record(m_wave_, static_cast<std::uint64_t>(lat > 0 ? lat : 0));
  }
  const bool still_quiet = locally_quiet() && all_children_pending();
  if (config_.fault_tolerant) {
    const int epoch = std::max(probe_epoch_, crash_epoch_);
    // With a known crash the crashed peer's counter contributions are gone
    // for good, so balance is only required while epoch == 0; stability
    // across a lease-separated pair (at one shared epoch) carries the
    // Mattern argument by itself.
    const bool clean =
        !dirty && still_quiet && (epoch > 0 || s == r) && epoch == crash_epoch_;
    emit_trace(trace::EventKind::kProbeWave, -1, clean ? 1 : 2,
               static_cast<std::int64_t>(cur_probe_),
               static_cast<std::int64_t>(s) - static_cast<std::int64_t>(r));
    if (clean) {
      if (have_clean_probe_ && clean_s_ == s && clean_r_ == r &&
          clean_epoch_ == epoch) {
        declare_termination();
        return;
      }
      have_clean_probe_ = true;
      clean_s_ = s;
      clean_r_ = r;
      clean_epoch_ = epoch;
      // The confirming wave launches from the lease timer, one lease later.
      return;
    }
    have_clean_probe_ = false;
    if (recheck_after_probe_) {
      recheck_after_probe_ = false;
      check_root_termination();
    }
    return;
  }
  const bool clean = !dirty && still_quiet && s == r;
  emit_trace(trace::EventKind::kProbeWave, -1, clean ? 1 : 2,
             static_cast<std::int64_t>(cur_probe_),
             static_cast<std::int64_t>(s) - static_cast<std::int64_t>(r));
  if (clean) {
    if (have_clean_probe_ && clean_s_ == s && clean_r_ == r &&
        clean_me_ == probe_me_) {
      // Mattern four-counter rule: two consecutive clean waves with
      // identical balanced counters — no transfer can be in flight. Under
      // churn the waves must also agree on the membership-event sum: a
      // join or leave between them (whose handover traffic the counters
      // may not have caught yet) forces another pair.
      declare_termination();
      return;
    }
    have_clean_probe_ = true;
    clean_s_ = s;
    clean_r_ = r;
    clean_me_ = probe_me_;
    launch_probe();
    return;
  }
  have_clean_probe_ = false;
  if (recheck_after_probe_) {
    recheck_after_probe_ = false;
    check_root_termination();
  }
}

void OverlayPeer::declare_termination() {
  OLB_CHECK(is_root());
  terminated_ = true;
  done_time_ = now();
  emit_trace(trace::EventKind::kTerminated);
  for (int c : children_) send(c, make_msg(kTerminate));
  for (const PhantomChild& ph : phantoms_) send(ph.peer, make_msg(kTerminate));
  // The gate sits outside the tree; tell it directly so it can exit.
  if (svc_enabled()) send(config_.service.gate, make_msg(kTerminate));
}

void OverlayPeer::on_terminate() {
  OLB_CHECK_MSG(!holds_work(), "terminate reached a peer still holding work");
  OLB_CHECK_MSG(!computing(), "terminate reached a peer still computing");
  terminated_ = true;
  done_time_ = now();
  emit_trace(trace::EventKind::kTerminated);
  idle_ = false;
  pending_bridges_.clear();
  for (int c : children_) send(c, make_msg(kTerminate));
  for (const PhantomChild& ph : phantoms_) send(ph.peer, make_msg(kTerminate));
}

// ------------------------------------------------ multi-job service mode ---
//
// Per-job completion is detected with root-led accounting waves (kJobProbe /
// kJobProbeAck) that ALWAYS recurse — busy peers answer too, unlike the
// termination probes — aggregating per job: transfer pieces sent, pieces
// received, and milli-units currently held. A job is declared done when two
// consecutive waves (ids w-1 and w) both read sent == recv, holds == 0, with
// the sent total unchanged between them: Mattern's stability argument per
// job. Sent/recv counters are monotone and execute-then-advance makes a
// peer's held amount externally consistent by the time it answers a probe,
// so a stable balanced pair proves no piece of the job is in flight and no
// peer holds any of it.

JobBag* OverlayPeer::bag() { return static_cast<JobBag*>(work_.get()); }

void OverlayPeer::svc_emit_chunks() {
  JobBag* b = bag();
  if (b == nullptr) return;
  for (const JobBag::ChunkRecord& cr : b->take_chunk_records()) {
    emit_trace(trace::EventKind::kJobChunk, -1, static_cast<int>(cr.job),
               static_cast<std::int64_t>(cr.units), cr.delta_milli);
  }
}

void OverlayPeer::on_job_inject(sim::Message m) {
  OLB_CHECK(svc_enabled() && is_root());
  OLB_CHECK_MSG(!terminated_, "inject after termination (gate bug)");
  auto* jp = static_cast<JobPayload*>(m.payload.get());
  OLB_CHECK(jp != nullptr && jp->work != nullptr);
  const std::uint64_t job = jp->job;
  // Done-eligibility is restricted to injected jobs: a wave that ran while
  // this inject was in flight must not declare the job done-by-absence.
  svc_injected_.insert(job);
  // The inject is not a peer transfer (the gate sits outside the fleet), so
  // it does not bump svc_counters_ — waves stay sent == recv symmetric. The
  // oracle's transfer balance instead pairs the gate's kJobXfer with this:
  emit_trace(trace::EventKind::kJobMerge, m.src, static_cast<int>(job),
             amount_milli(jp->work->amount()), 0);
  if (idle_) emit_trace(trace::EventKind::kIdleEnd, m.src, m.type, episode_);
  idle_ = false;
  awaiting_child_ = -1;
  auto piece = std::make_unique<JobBag>();
  piece->add_job(job, jp->job_class, std::move(jp->work));
  acquire_work(std::move(piece));
  serve_pending();
  continue_processing();
}

void OverlayPeer::svc_fill_own_stats() {
  svc_table_.clear();
  for (const auto& [job, sr] : svc_counters_) {
    JobStat& st = svc_table_[job];
    st.job = job;
    st.sent = sr.first;
    st.recv = sr.second;
  }
  const JobBag* b = bag();
  if (b != nullptr) {
    b->for_each_hold([&](std::uint64_t job, double amount) {
      JobStat& st = svc_table_[job];
      st.job = job;
      st.holds_milli += amount_milli(amount);
    });
  }
}

void OverlayPeer::svc_launch_wave() {
  OLB_CHECK(is_root());
  svc_wave_outstanding_ = true;
  svc_probe_id_ = ++svc_next_wave_;
  svc_fill_own_stats();
  svc_acks_missing_ = static_cast<int>(children_.size());
  if (svc_acks_missing_ == 0) {
    svc_finish_wave_at_root();
    return;
  }
  for (int c : children_) {
    auto msg = make_msg(kJobProbe);
    auto payload = std::make_unique<JobProbePayload>();
    payload->probe_id = svc_probe_id_;
    msg.payload = std::move(payload);
    send(c, std::move(msg));
  }
}

void OverlayPeer::on_job_probe(sim::Message m) {
  OLB_CHECK(svc_enabled());
  if (terminated_) return;
  const auto* pp = static_cast<const JobProbePayload*>(m.payload.get());
  svc_probe_id_ = pp->probe_id;
  svc_probe_parent_ = m.src;
  svc_fill_own_stats();
  svc_acks_missing_ = static_cast<int>(children_.size());
  if (svc_acks_missing_ == 0) {
    svc_reply_wave();
    return;
  }
  for (int c : children_) {
    auto msg = make_msg(kJobProbe);
    auto payload = std::make_unique<JobProbePayload>();
    payload->probe_id = svc_probe_id_;
    msg.payload = std::move(payload);
    send(c, std::move(msg));
  }
}

void OverlayPeer::on_job_probe_ack(sim::Message m) {
  OLB_CHECK(svc_enabled());
  if (terminated_) return;
  const auto* pp = static_cast<const JobProbePayload*>(m.payload.get());
  if (pp->probe_id != svc_probe_id_ || svc_acks_missing_ == 0) return;  // stale
  for (const JobStat& st : pp->stats) {
    JobStat& mine = svc_table_[st.job];
    mine.job = st.job;
    mine.sent += st.sent;
    mine.recv += st.recv;
    mine.holds_milli += st.holds_milli;
  }
  if (--svc_acks_missing_ > 0) return;
  if (is_root()) {
    svc_finish_wave_at_root();
  } else {
    svc_reply_wave();
  }
}

void OverlayPeer::svc_reply_wave() {
  auto msg = make_msg(kJobProbeAck);
  auto payload = std::make_unique<JobProbePayload>();
  payload->probe_id = svc_probe_id_;
  payload->stats.reserve(svc_table_.size());
  for (const auto& [job, st] : svc_table_) payload->stats.push_back(st);
  msg.payload = std::move(payload);
  send(svc_probe_parent_, std::move(msg));
}

void OverlayPeer::svc_finish_wave_at_root() {
  svc_wave_outstanding_ = false;
  const std::uint64_t wave = svc_next_wave_;
  for (const std::uint64_t job : svc_injected_) {
    if (svc_done_.count(job) != 0) continue;
    JobStat zero;
    zero.job = job;
    const auto it = svc_table_.find(job);
    const JobStat& st = it != svc_table_.end() ? it->second : zero;
    // A job the counters never saw (injected and fully drained at the root
    // between waves) reads sent == recv == 0, holds == 0: still a correct
    // quiet reading — the stability pair below does the rest.
    const bool quiet = st.holds_milli == 0 && st.sent == st.recv;
    if (!quiet) {
      svc_prev_.erase(job);
      continue;
    }
    const auto prev = svc_prev_.find(job);
    if (prev != svc_prev_.end() && prev->second.wave == wave - 1 &&
        prev->second.sent == st.sent) {
      svc_done_.insert(job);
      svc_prev_.erase(job);
      send(config_.service.gate,
           make_msg(kJobDone, 0, static_cast<std::int64_t>(job)));
      continue;
    }
    svc_prev_[job] = SvcPrev{st.sent, wave};
  }
}

// ------------------------------------------------------------- dispatch ---

void OverlayPeer::on_message(sim::Message m) {
  if (m.type != kTerminate) handle_piggyback(m);
  if (config_.fault_tolerant && m.src >= 0 &&
      peer_down_[static_cast<std::size_t>(m.src)] != 0 && m.type != kWork) {
    // In-flight message from a peer we know crashed. Work is still real and
    // must be kept (it bounces back off the dead peer); everything else is
    // protocol state of a dead participant.
    return;
  }
  if (churn_enabled() && !member_) {
    if (departed_) {
      departed_dispatch(std::move(m));
    } else {
      dormant_dispatch(std::move(m));
    }
    return;
  }
  if (terminated_) {
    // In-flight stragglers (requests/acks sent before the sender heard the
    // termination broadcast) are ignored; work must never straggle.
    OLB_CHECK(m.type != kWork);
    if (churn_enabled()) {
      // The membership protocol must not strand anyone the broadcast could
      // not reach: a joiner whose request raced termination, a leaver whose
      // handover (and the links it transferred) arrived after it.
      if (m.type == kJoinReq) {
        send(static_cast<int>(m.c), make_msg(kTerminate));
      } else if (m.type == kLeave) {
        const auto* lp = static_cast<const LeavePayload*>(m.payload.get());
        OLB_CHECK(lp != nullptr);
        send(static_cast<int>(m.c), make_msg(kTerminate));
        for (const auto& cl : lp->children) send(cl.peer, make_msg(kTerminate));
        for (const auto& ph : lp->phantoms) send(ph.peer, make_msg(kTerminate));
      } else if (m.type != kTerminate) {
        // E.g. a rewired child's kSizeUp/kReqUp introduction that the wave
        // never polled (it was quiet and linkless at declare time).
        send(m.src, make_msg(kTerminate));
      }
      return;
    }
    if (config_.fault_tolerant && m.type != kTerminate) {
      // The sender evidently missed the broadcast (e.g. its kTerminate was
      // dropped); its own lease retransmit reached us, so answer it.
      send(m.src, make_msg(kTerminate));
    }
    return;
  }
  switch (m.type) {
    case kSizeUp: on_size_up(m); break;
    case kSizeDown: on_size_down(m); break;
    case kReqDown: on_req_down(m); break;
    case kReqUp: on_req_up(m); break;
    case kReqBridge: on_req_bridge(m); break;
    case kWork: on_work(std::move(m)); break;
    case kJoinReq: on_join_req(std::move(m)); break;
    case kJoinAccept: break;  // duplicate accept for an already-joined member
    case kLeave: on_leave(std::move(m)); break;
    case kRewire: on_rewire(m); break;
    case kSizeDelta: on_size_delta(m); break;
    case kNoWork:
      if (idle_ && awaiting_child_ == m.src && m.c == episode_) {
        awaiting_child_ = -1;
        ++down_pos_;
        ++down_req_seq_;  // void the fault-tolerance timeout, if armed
        advance_down();
      }
      break;
    case kTerminate: on_terminate(); break;
    case kProbe: on_probe(std::move(m)); break;
    case kProbeAck: on_probe_ack(std::move(m)); break;
    case kBound: on_bound_msg(m); break;
    case kJobInject: on_job_inject(std::move(m)); break;
    case kJobProbe: on_job_probe(std::move(m)); break;
    case kJobProbeAck: on_job_probe_ack(std::move(m)); break;
    case kSvcShutdown:
      OLB_CHECK(svc_enabled() && is_root());
      svc_shutdown_ = true;
      check_root_termination();
      break;
    default: OLB_CHECK_MSG(false, "unexpected message type for OverlayPeer");
  }
}

StateTap OverlayPeer::state_tap() const {
  StateTap t = PeerBase::state_tap();
  t.transfers_sent = ft_sent_;
  t.transfers_recv = ft_recv_;
  t.pending_requests = pending_bridges_.size();
  t.subtree_size = my_size_;
  return t;
}

}  // namespace olb::lb
