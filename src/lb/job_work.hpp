// Multi-job work container for the service layer (src/svc).
//
// In service mode every peer's single lb::Work slot holds a JobBag: a set of
// per-job sub-works, each tagged with the job id and priority class it
// belongs to. The bag preserves the PeerBase contract (amount / split /
// merge / step) while keeping jobs strictly separate:
//
//  * step()  always processes the highest-priority slot (lowest class, ties
//            by lowest job id) — a starved low class can never block a
//            high-class job that has work on this peer;
//  * split() carves the piece from exactly ONE job (the largest slot), so
//            every kWork transfer in a service run is single-job and can be
//            tagged with its id — the invariant the JobConservationOracle
//            checks ("no unit ever carries another job's tag");
//  * merge() is slot-wise by job id, so pieces of different jobs never mix;
//  * bounds  never leave the bag: step() reports kNoBound upward (PeerBase's
//            global bound_ would smear one job's incumbent over another's
//            pruning), while each B&B sub-work keeps its own bound, which
//            travels inside split pieces exactly like single-job runs.
//
// The bag also keeps two ledgers the service layer harvests:
//  * per-job tallies (units processed, best bound seen) that survive a
//    slot's drain — post-run, summing tallies over all peers gives exact
//    per-job unit counts;
//  * per-chunk records (job, units, amount delta) drained by the overlay
//    peer after each compute span to emit kJobChunk trace events, the
//    oracle's conservation input.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lb/work.hpp"

namespace olb::lb {

/// Work amounts in job trace events / wave payloads travel as milli-units.
inline std::int64_t amount_milli(double amount) {
  return static_cast<std::int64_t>(amount * 1000.0 + 0.5);
}

class JobBag final : public Work {
 public:
  struct Slot {
    std::uint64_t job = 0;
    int job_class = 0;
    std::unique_ptr<Work> work;
  };
  /// Persists after the slot drains (post-run exact-count harvest).
  struct Tally {
    std::uint64_t job = 0;
    std::uint64_t units = 0;
    std::int64_t bound = kNoBound;
  };
  /// One completed compute chunk, for kJobChunk trace emission.
  struct ChunkRecord {
    std::uint64_t job = 0;
    std::uint64_t units = 0;
    std::int64_t delta_milli = 0;  ///< amount after - amount before
  };

  JobBag() = default;

  // --- Work interface ---
  double amount() const override;
  bool empty() const override;
  /// Single-job piece from the largest slot (ties: lowest job id). Whole-slot
  /// move when the target exceeds the slot; otherwise an inner split. Returns
  /// nullptr (bag unchanged) when the chosen slot cannot divide.
  std::unique_ptr<Work> split(double fraction) override;
  /// `other` must be a JobBag; merges slot-wise by job id.
  void merge(std::unique_ptr<Work> other) override;
  /// Steps the highest-priority slot; reports units and cost but never a
  /// bound (bounds stay per-job inside the bag).
  StepResult step(std::uint64_t max_units) override;
  /// No-op: a bag-level bound has no meaning across jobs.
  void observe_bound(std::int64_t bound) override { (void)bound; }

  // --- service-layer access ---
  /// Adds a fresh job (the root's kJobInject path).
  void add_job(std::uint64_t job, int job_class, std::unique_ptr<Work> work);
  /// The id/class of the bag's single slot; aborts unless exactly one slot
  /// (transfer pieces are single-job by construction).
  const Slot& sole_slot() const;
  std::size_t num_jobs() const { return slots_.size(); }
  /// Amount currently held for `job` (0 when absent).
  double amount_of(std::uint64_t job) const;
  /// Visits (job, amount) for every non-empty slot, ascending job id.
  template <typename Fn>
  void for_each_hold(Fn&& fn) const {
    for (const Slot& s : slots_) fn(s.job, s.work->amount());
  }
  /// Visits every tally, ascending job id.
  template <typename Fn>
  void for_each_tally(Fn&& fn) const {
    for (const Tally& t : tallies_) fn(t);
  }
  /// Drains the chunk records accumulated since the last call.
  std::vector<ChunkRecord> take_chunk_records();

 private:
  Slot* find_slot(std::uint64_t job);
  Tally& tally_for(std::uint64_t job);
  /// Inserts keeping slots_ ascending by job id (merge determinism: the
  /// thread backend merges pieces in arbitrary arrival order, but the bag's
  /// internal order — and so step()'s priority scan — depends only on ids).
  void insert_slot(Slot s);

  std::vector<Slot> slots_;     ///< ascending job id, all non-empty
  std::vector<Tally> tallies_;  ///< ascending job id, grows monotonically
  std::vector<ChunkRecord> chunks_;
};

}  // namespace olb::lb
