// Optional capability interfaces for interval-encoded work.
//
// The Master-Worker and AHMW baselines are interval-centric: the master
// tracks each worker's interval [position, end) from checkpoints and splits
// it from its own (possibly stale) view, notifying the owner to truncate.
// Workloads whose work is interval-encoded (B&B) implement these mixins;
// protocols discover them by dynamic_cast. UTS does not implement them —
// matching the paper, which evaluates MW/AHMW on B&B only.
#pragma once

#include <cstdint>
#include <memory>

#include "lb/work.hpp"

namespace olb::lb {

/// Implemented by Work types that expose their front interval.
class IntervalWork {
 public:
  virtual ~IntervalWork() = default;
  virtual std::uint64_t interval_position() const = 0;
  virtual std::uint64_t interval_end() const = 0;
  /// Master split notify: give up [new_end, end) of the front interval.
  virtual void interval_truncate(std::uint64_t new_end) = 0;
};

/// Implemented by Workloads that can mint work for an arbitrary interval.
class IntervalWorkload {
 public:
  virtual ~IntervalWorkload() = default;
  virtual std::uint64_t interval_total() const = 0;  ///< e.g. jobs!
  virtual std::unique_ptr<Work> make_interval_work(std::uint64_t begin,
                                                   std::uint64_t end) = 0;
};

}  // namespace olb::lb
