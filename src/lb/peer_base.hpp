// Common machinery of all load-balancing peers.
//
// A peer owns at most one lb::Work object and processes it in bounded chunks
// (chunk_units application units per compute span) so that protocol messages
// are serviced between chunks — the simulated analogue of a worker that
// polls its MPI channel inside the work loop. Subclasses implement the
// acquisition protocol (who to ask for work, how to answer requests) via the
// became_idle() hook and on_message().
#pragma once

#include <cstdint>
#include <memory>

#include "lb/messages.hpp"
#include "lb/work.hpp"
#include "simnet/engine.hpp"

namespace olb::lb {

struct PeerConfig {
  std::uint64_t chunk_units = 64;  ///< application units per compute span
  bool diffuse_bounds = true;      ///< forward improved bounds to neighbours
  /// Work below this amount is never split: shipping single-digit crumbs
  /// stalls the sender's critical path for a network round-trip that costs
  /// more than the work is worth (every real work-stealing runtime guards
  /// its queue with such a threshold).
  double min_split_amount = 4.0;
};

/// One peer's externally observable protocol state, snapshotted after a run
/// for the conformance oracles (src/check): final-state invariants like
/// "every live peer terminated holding nothing" and "transfers sent ==
/// transfers received" are checked against these instead of re-deriving
/// them from the trace.
struct StateTap {
  int peer = -1;
  bool crashed = false;
  bool departed = false;  ///< left gracefully via the membership protocol
  bool holds_work = false;
  double work_amount = 0;
  bool terminated = false;
  bool computing = false;
  std::uint64_t units_done = 0;
  std::uint64_t transfers_sent = 0;
  std::uint64_t transfers_recv = 0;
  std::uint64_t pending_requests = 0;
  /// Overlay only: the peer's final subtree-size estimate (capacity
  /// weights). At quiescence every size delta has been applied, so the
  /// root's entry must equal the live membership weight — the regression
  /// handle for stale sizes after crashes and churn.
  std::uint64_t subtree_size = 0;
};

class PeerBase : public sim::Actor {
 public:
  // --- post-run inspection (harness side) ---
  std::uint64_t units_done() const { return units_done_; }
  std::int64_t best_bound() const { return bound_; }
  sim::Time last_active() const { return last_active_; }
  bool saw_terminate() const { return terminated_; }
  bool holds_work() const { return work_ != nullptr && !work_->empty(); }
  /// The installed work object, null when none. The service layer downcasts
  /// this to lb::JobBag after a run to harvest per-job tallies.
  const Work* current_work() const { return work_.get(); }
  /// True once the peer completed a graceful leave (elastic membership).
  bool departed() const { return departed_; }
  /// Request retransmissions performed by this peer (fault tolerance).
  std::uint64_t retries() const { return retries_; }

  /// Snapshot for the conformance oracles; subclasses extend it with their
  /// transfer counters and pending-request state.
  virtual StateTap state_tap() const;

 protected:
  explicit PeerBase(PeerConfig config) : config_(config) {}

  /// Merges `w` into the local work (installing the local bound into it) and
  /// returns true if the peer now holds processable work.
  bool acquire_work(std::unique_ptr<Work> w);

  /// Splits `fraction` off the local work; nullptr if indivisible/absent.
  std::unique_ptr<Work> split_work(double fraction);

  /// Starts (or continues) chunked processing if work is available and no
  /// compute span is outstanding. Safe to call from any handler.
  void continue_processing();

  /// Updates the local bound from a message field; returns true if improved.
  bool note_bound(std::int64_t b);

  /// Called when the peer finishes its work and holds none; implement the
  /// acquisition protocol here.
  virtual void became_idle() = 0;

  /// Called after a chunk during which the local bound improved (either
  /// found locally or merged from received work); diffuse it here.
  virtual void diffuse_bound() {}

  /// Called after every completed chunk, before processing continues or
  /// became_idle() fires. Protocols use it to serve requesters that had to
  /// wait for work to become splittable.
  virtual void after_chunk() {}

  void on_compute_done() final;

  /// Fault injection: releases held work and reports it as lost.
  double on_crashed() override;

  /// Records one request retransmission (counter + kRetry trace event).
  void count_retry(int target, int msg_type, std::int64_t attempt);

  /// Live metrics: per-peer queue-depth / in-flight gauges, a units counter,
  /// and the sojourn-time histogram (idle-to-work latency), on top of the
  /// protocol-event counters the Actor base arms.
  void on_metrics(metrics::Registry& registry) override;
  /// Sampled recompute-and-set from state_tap(): gauges can never drift.
  void on_metrics_poll() override;

  const PeerConfig& peer_config() const { return config_; }

  std::unique_ptr<Work> work_;
  std::int64_t bound_ = kNoBound;
  std::int64_t diffused_bound_ = kNoBound;  ///< last value handed to diffuse_bound
  std::uint64_t units_done_ = 0;
  sim::Time last_active_ = 0;
  bool terminated_ = false;
  bool departed_ = false;  ///< set by the overlay's graceful-leave path
  std::uint64_t retries_ = 0;

 private:
  void maybe_diffuse();

  PeerConfig config_;

  // Live metrics (all null unless a hub is attached; see on_metrics). The
  // sojourn clock is gated on m_sojourn_ so metrics-off thread runs never
  // pay the now() syscall in acquire_work/on_compute_done.
  metrics::Gauge* m_queue_ = nullptr;     ///< olb_peer_queue_depth
  metrics::Gauge* m_inflight_ = nullptr;  ///< olb_peer_inflight_requests
  metrics::Counter* m_units_ = nullptr;   ///< olb_peer_units_total
  metrics::Histogram* m_sojourn_ = nullptr;  ///< olb_peer_sojourn_ns
  std::uint64_t m_units_reported_ = 0;
  sim::Time m_idle_since_ = -1;  ///< -1 = currently holding work
};

}  // namespace olb::lb
