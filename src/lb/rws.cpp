#include "lb/rws.hpp"

#include "support/check.hpp"

namespace olb::lb {

RwsPeer::RwsPeer(RwsConfig config, std::unique_ptr<Work> initial_work)
    : PeerBase(config.peer), config_(config), initial_work_(std::move(initial_work)) {}

void RwsPeer::on_start() {
  initiator_ = initial_work_ != nullptr;
  if (config_.fault_tolerant) {
    peer_down_.assign(static_cast<std::size_t>(num_peers()), 0);
    if (initiator_) set_timer(config_.lease_interval, kRwsTermPollTimer);
  }
  if (initiator_) {
    ds_.make_initiator();
    OLB_CHECK(acquire_work(std::move(initial_work_)));
    continue_processing();
  } else {
    became_idle();
  }
}

void RwsPeer::became_idle() {
  if (terminated_) return;
  emit_trace(trace::EventKind::kIdleBegin);
  // Under faults Dijkstra–Scholten is abandoned entirely (a lost signal
  // hangs it); the initiator's poll detects termination instead.
  if (!config_.fault_tolerant) maybe_detach();
  if (!terminated_) try_steal();
}

void RwsPeer::try_steal() {
  if (terminated_ || steal_outstanding_ || holds_work()) return;
  const int n = num_peers();
  if (n < 2) {
    // Nothing to steal from; the singleton initiator terminates on idle.
    return;
  }
  if (config_.fault_tolerant && crash_epoch_ >= n - 1) return;  // no live victim
  int victim;
  do {
    victim = static_cast<int>(rng().below(static_cast<std::uint64_t>(n)));
  } while (victim == id() ||
           (config_.fault_tolerant && peer_down_[victim] != 0));
  steal_outstanding_ = true;
  emit_trace(trace::EventKind::kRequest, victim, kSteal);
  if (config_.fault_tolerant) {
    steal_victim_ = victim;
    // The sequence number travels in the request, is echoed by kStealFail
    // and voids both stale failure replies and stale timeout timers.
    send(victim, make_msg(kSteal, ++steal_seq_));
    set_timer(config_.request_timeout,
              kRwsStealTimeoutTimer | (steal_seq_ << kTimerTagShift));
  } else {
    send(victim, make_msg(kSteal));
  }
}

void RwsPeer::maybe_detach() {
  const bool is_passive = !holds_work() && !computing();
  if (!ds_.can_detach(is_passive)) return;
  const int parent = ds_.detach();
  if (parent >= 0) {
    send(parent, make_msg(kSignal));
  } else {
    declare_termination();
  }
}

void RwsPeer::declare_termination() {
  terminated_ = true;
  done_time_ = now();
  for (int p = 0; p < num_peers(); ++p) {
    if (p == id()) continue;
    if (config_.fault_tolerant && peer_down_[p] != 0) continue;
    send(p, make_msg(kTerminate));
  }
}

void RwsPeer::diffuse_bound() {
  // No overlay to diffuse along: bounds piggyback on steal traffic (field a
  // of every message), which in RWS is abundant.
}

void RwsPeer::on_poll_tick() {
  if (terminated_) return;  // no re-arm
  const int n = num_peers();
  int live_others = 0;
  for (int p = 0; p < n; ++p) {
    if (p != id() && peer_down_[p] == 0) ++live_others;
  }
  poll_.begin_round(++poll_round_, n, live_others);
  for (int p = 0; p < n; ++p) {
    if (p == id() || peer_down_[p] != 0) continue;
    send(p, make_msg(kTermProbe, static_cast<std::int64_t>(poll_round_)));
  }
  if (live_others == 0) conclude_poll();  // sole survivor
  if (!terminated_) set_timer(config_.lease_interval, kRwsTermPollTimer);
}

void RwsPeer::conclude_poll() {
  if (poll_.conclude(passive(), work_sent_, work_recv_, crash_epoch_)) {
    declare_termination();
  }
}

void RwsPeer::on_peer_down(int peer) {
  OLB_CHECK(config_.fault_tolerant);
  const auto idx = static_cast<std::size_t>(peer);
  if (idx >= peer_down_.size() || peer_down_[idx] != 0) return;
  peer_down_[idx] = 1;
  ++crash_epoch_;
  if (terminated_) return;
  poll_.invalidate();  // snapshots across a crash boundary don't compare
  if (steal_outstanding_ && steal_victim_ == peer) {
    // The request died with the victim; move on immediately.
    steal_outstanding_ = false;
    ++steal_seq_;
    try_steal();
  }
}

void RwsPeer::on_timer(std::int64_t tag) {
  switch (tag & kTimerTagMask) {
    case kRwsRetryTimer:
      if (!terminated_ && !holds_work() && !steal_outstanding_) try_steal();
      return;
    case kRwsStealTimeoutTimer:
      if (terminated_ || !steal_outstanding_) return;
      if ((tag >> kTimerTagShift) != steal_seq_) return;  // answered
      count_retry(steal_victim_, kSteal, steal_seq_);
      steal_outstanding_ = false;
      if (!holds_work()) try_steal();
      return;
    case kRwsTermPollTimer:
      on_poll_tick();
      return;
    default:
      OLB_CHECK_MSG(false, "unexpected timer tag for RwsPeer");
  }
}

void RwsPeer::on_message(sim::Message m) {
  if (m.type != kTerminate) note_bound(m.a);
  if (config_.fault_tolerant && m.src >= 0 && m.src < (int)peer_down_.size() &&
      peer_down_[m.src] != 0 && m.type != kWork) {
    return;  // in-flight message of a dead peer (work still bounces back)
  }
  if (terminated_) {
    OLB_CHECK(m.type != kWork);
    if (config_.fault_tolerant && m.type != kTerminate) {
      // The sender missed the broadcast (dropped kTerminate); answer its
      // retransmitted request so it can stop too.
      send(m.src, make_msg(kTerminate));
    }
    return;
  }
  switch (m.type) {
    case kSteal: {
      if (holds_work()) {
        if (auto w = split_work(config_.steal_fraction)) {
          ds_.on_work_sent();
          ++work_sent_;  // pure counter: FT TermPoll and state taps read it
          emit_trace(trace::EventKind::kServe, m.src, kSteal,
                     trace::fraction_ppm(config_.steal_fraction),
                     static_cast<std::int64_t>(w->amount()));
          auto reply = make_msg(kWork);
          reply.payload = std::make_unique<WorkPayload>(std::move(w));
          send(m.src, std::move(reply));
          break;
        }
      }
      emit_trace(trace::EventKind::kNoServe, m.src, kSteal);
      send(m.src, make_msg(kStealFail, m.b));
      break;
    }
    case kStealFail: {
      if (config_.fault_tolerant && m.b != steal_seq_) break;  // stale/dup
      steal_outstanding_ = false;
      if (holds_work()) break;  // engaged meanwhile via another transfer
      if (config_.retry_delay > 0) {
        set_timer(config_.retry_delay, kRwsRetryTimer);
      } else {
        try_steal();
      }
      break;
    }
    case kWork: {
      steal_outstanding_ = false;
      ++work_recv_;  // pure counter, mirroring work_sent_
      if (config_.fault_tolerant) {
        ++steal_seq_;  // void any outstanding steal timeout
      }
      emit_trace(trace::EventKind::kIdleEnd, m.src, m.type);
      if (!config_.fault_tolerant && ds_.on_work_received(m.src)) {
        send(m.src, make_msg(kSignal));
      }
      auto* payload = static_cast<WorkPayload*>(m.payload.get());
      acquire_work(std::move(payload->work));
      continue_processing();
      break;
    }
    case kSignal: {
      ds_.on_signal();
      maybe_detach();
      break;
    }
    case kTermProbe: {
      send(m.src, make_msg(kTermAck,
                           pack_term_ack_b(static_cast<std::uint64_t>(m.b),
                                           passive()),
                           pack_term_ack_c(work_sent_, work_recv_)));
      break;
    }
    case kTermAck: {
      if (poll_.on_ack(term_ack_round(m.b), m.src, term_ack_passive(m.b),
                       term_ack_sent(m.c), term_ack_recv(m.c))) {
        conclude_poll();
      }
      break;
    }
    case kTerminate: {
      OLB_CHECK_MSG(!holds_work(), "terminate reached a peer still holding work");
      terminated_ = true;
      done_time_ = now();
      break;
    }
    default:
      OLB_CHECK_MSG(false, "unexpected message type for RwsPeer");
  }
}

}  // namespace olb::lb
