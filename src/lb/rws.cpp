#include "lb/rws.hpp"

#include "support/check.hpp"

namespace olb::lb {

RwsPeer::RwsPeer(RwsConfig config, std::unique_ptr<Work> initial_work)
    : PeerBase(config.peer), config_(config), initial_work_(std::move(initial_work)) {}

void RwsPeer::on_start() {
  if (initial_work_ != nullptr) {
    ds_.make_initiator();
    OLB_CHECK(acquire_work(std::move(initial_work_)));
    continue_processing();
  } else {
    became_idle();
  }
}

void RwsPeer::became_idle() {
  if (terminated_) return;
  emit_trace(trace::EventKind::kIdleBegin);
  maybe_detach();
  if (!terminated_) try_steal();
}

void RwsPeer::try_steal() {
  if (terminated_ || steal_outstanding_ || holds_work()) return;
  const int n = engine().num_actors();
  if (n < 2) {
    // Nothing to steal from; the singleton initiator terminates on idle.
    return;
  }
  int victim;
  do {
    victim = static_cast<int>(rng().below(static_cast<std::uint64_t>(n)));
  } while (victim == id());
  steal_outstanding_ = true;
  emit_trace(trace::EventKind::kRequest, victim, kSteal);
  send(victim, make_msg(kSteal));
}

void RwsPeer::maybe_detach() {
  const bool passive = !holds_work() && !computing();
  if (!ds_.can_detach(passive)) return;
  const int parent = ds_.detach();
  if (parent >= 0) {
    send(parent, make_msg(kSignal));
  } else {
    declare_termination();
  }
}

void RwsPeer::declare_termination() {
  terminated_ = true;
  done_time_ = now();
  for (int p = 0; p < engine().num_actors(); ++p) {
    if (p != id()) send(p, make_msg(kTerminate));
  }
}

void RwsPeer::diffuse_bound() {
  // No overlay to diffuse along: bounds piggyback on steal traffic (field a
  // of every message), which in RWS is abundant.
}

void RwsPeer::on_timer(std::int64_t tag) {
  OLB_CHECK(tag == kRwsRetryTimer);
  if (!terminated_ && !holds_work() && !steal_outstanding_) try_steal();
}

void RwsPeer::on_message(sim::Message m) {
  if (m.type != kTerminate) note_bound(m.a);
  if (terminated_) {
    OLB_CHECK(m.type != kWork);
    return;
  }
  switch (m.type) {
    case kSteal: {
      if (holds_work()) {
        if (auto w = split_work(config_.steal_fraction)) {
          ds_.on_work_sent();
          emit_trace(trace::EventKind::kServe, m.src, kSteal,
                     trace::fraction_ppm(config_.steal_fraction),
                     static_cast<std::int64_t>(w->amount()));
          auto reply = make_msg(kWork);
          reply.payload = std::make_unique<WorkPayload>(std::move(w));
          send(m.src, std::move(reply));
          break;
        }
      }
      emit_trace(trace::EventKind::kNoServe, m.src, kSteal);
      send(m.src, make_msg(kStealFail));
      break;
    }
    case kStealFail: {
      steal_outstanding_ = false;
      if (holds_work()) break;  // engaged meanwhile via another transfer
      if (config_.retry_delay > 0) {
        set_timer(config_.retry_delay, kRwsRetryTimer);
      } else {
        try_steal();
      }
      break;
    }
    case kWork: {
      steal_outstanding_ = false;
      emit_trace(trace::EventKind::kIdleEnd, m.src, m.type);
      if (ds_.on_work_received(m.src)) send(m.src, make_msg(kSignal));
      auto* payload = static_cast<WorkPayload*>(m.payload.get());
      acquire_work(std::move(payload->work));
      continue_processing();
      break;
    }
    case kSignal: {
      ds_.on_signal();
      maybe_detach();
      break;
    }
    case kTerminate: {
      OLB_CHECK_MSG(!holds_work(), "terminate reached a peer still holding work");
      terminated_ = true;
      done_time_ = now();
      break;
    }
    default:
      OLB_CHECK_MSG(false, "unexpected message type for RwsPeer");
  }
}

}  // namespace olb::lb
