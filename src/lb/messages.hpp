// Message vocabulary of the load-balancing protocols.
//
// All protocols share one numbering so the engine's per-type counters are
// comparable across strategies (e.g. "total work requests injected" in the
// paper's Fig. 2 counts kReqDown + kReqUp + kReqBridge + kSteal).
//
// Convention: field `a` of every protocol message carries the sender's best
// known bound (kNoBound when not applicable), implementing the paper's
// piggybacked best-bound diffusion at zero extra message cost. Fields `b`
// and `c` are per-type, documented below.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/work.hpp"
#include "simnet/message.hpp"

namespace olb::lb {

enum MsgType : int {
  // --- overlay protocol ---
  kSizeUp = 0,     ///< converge-cast: b = subtree size of sender
  kSizeDown = 1,   ///< b = sender's (the parent's) subtree size; start signal
  kReqDown = 2,    ///< parent asks child for work; c = requester episode
  kReqUp = 3,      ///< child asks parent; b/c = aggregated bridge sent/recv
  kReqBridge = 4,  ///< bridge request; b = requester's subtree size
  kNoWork = 5,     ///< negative reply to kReqDown; c = echoed episode
  kWork = 6,       ///< work transfer; payload = WorkPayload
  kTerminate = 7,  ///< root-initiated termination broadcast
  kProbe = 8,      ///< termination confirmation wave; payload = ProbePayload
  kProbeAck = 9,   ///< reply to kProbe; payload = ProbePayload
  kBound = 10,     ///< explicit bound diffusion (a = bound)

  // --- random work stealing ---
  kSteal = 11,      ///< steal attempt
  kStealFail = 12,  ///< negative reply to kSteal
  kSignal = 13,     ///< Dijkstra-Scholten completion signal

  // --- master-worker family ---
  kMWRequest = 14,     ///< worker asks the master for work
  kMWCheckpoint = 15,  ///< worker -> master progress update; b = position
  kMWSplitNotify = 16, ///< master -> owner: your interval shrank to b

  // --- fault-tolerant poll termination (RWS/AHMW under fault injection) ---
  kTermProbe = 17,  ///< initiator polls every live peer; b = round
  kTermAck = 18,    ///< reply; b = (round << 1) | passive, c = packed counters

  // --- overlay elastic membership (ChurnPlan-driven join/leave) ---
  kJoinReq = 19,     ///< joining peer -> root, routed down; b = joiner weight,
                     ///< c = joiner id (routing rewrites src, so the id rides
                     ///< in the body)
  kJoinAccept = 20,  ///< acceptor -> joiner; b = acceptor's subtree size
  kLeave = 21,       ///< leaver -> parent; b = leaver weight,
                     ///< payload = LeavePayload (children + drained counters)
  kRewire = 22,      ///< leaver -> each child; b = new parent id,
                     ///< c = new parent's last known subtree size
  kSizeDelta = 23,   ///< incremental subtree-size update up the ancestor
                     ///< path; b = signed delta

  // --- multi-job service layer (src/svc; only service-mode runs send
  // these, so single-job timelines never contain them) ---
  kJobInject = 24,    ///< gate -> root: admit a job into the fleet;
                      ///< b = priority class, c = job id,
                      ///< payload = JobPayload
  kJobDone = 25,      ///< root -> gate: job c fully drained (wave-confirmed)
  kJobProbe = 26,     ///< service accounting wave down the tree;
                      ///< payload = JobProbePayload
  kJobProbeAck = 27,  ///< reply to kJobProbe; payload = JobProbePayload
  kSvcShutdown = 28,  ///< gate -> root: stream exhausted, all jobs resolved —
                      ///< run the normal termination machinery

  kNumMsgTypes = 29,
};

/// Display name of a message type (trace exporters, debug output).
inline const char* msg_type_name(int type) {
  switch (type) {
    case kSizeUp: return "size_up";
    case kSizeDown: return "size_down";
    case kReqDown: return "req_down";
    case kReqUp: return "req_up";
    case kReqBridge: return "req_bridge";
    case kNoWork: return "no_work";
    case kWork: return "work";
    case kTerminate: return "terminate";
    case kProbe: return "probe";
    case kProbeAck: return "probe_ack";
    case kBound: return "bound";
    case kSteal: return "steal";
    case kStealFail: return "steal_fail";
    case kSignal: return "signal";
    case kMWRequest: return "mw_request";
    case kMWCheckpoint: return "mw_checkpoint";
    case kMWSplitNotify: return "mw_split_notify";
    case kTermProbe: return "term_probe";
    case kTermAck: return "term_ack";
    case kJoinReq: return "join_req";
    case kJoinAccept: return "join_accept";
    case kLeave: return "leave";
    case kRewire: return "rewire";
    case kSizeDelta: return "size_delta";
    case kJobInject: return "job_inject";
    case kJobDone: return "job_done";
    case kJobProbe: return "job_probe";
    case kJobProbeAck: return "job_probe_ack";
    case kSvcShutdown: return "svc_shutdown";
    default: return nullptr;
  }
}

/// Timer tags, namespaced per subsystem (high byte = subsystem) so a timer
/// added to a shared base class — e.g. a future periodic trace-flush in
/// PeerBase — can never alias a protocol timer of a subclass.
enum TimerTag : std::int64_t {
  kOverlayRetryTimer = 0x0101,
  kRwsRetryTimer = 0x0201,
  kMwCheckpointTimer = 0x0301,
  kAhmwRetryTimer = 0x0401,
  kTraceFlushTimer = 0x0501,  ///< reserved for the trace layer

  // --- fault-tolerance timers (armed only when a FaultPlan is enabled; a
  // fault-free run never sets any of them). Several encode a generation
  // counter in the bits above kTimerTagShift so stale timers self-cancel.
  kOverlayReqTimeoutTimer = 0x0102,  ///< kReqDown went unanswered
  kOverlaySetupTimer = 0x0103,       ///< kSizeUp retransmit until ready
  kOverlayLeaseTimer = 0x0104,       ///< root re-probe / peer lease refresh
  kRwsStealTimeoutTimer = 0x0202,    ///< kSteal went unanswered
  kRwsTermPollTimer = 0x0203,        ///< initiator poll-termination cadence
  kMwRequestTimeoutTimer = 0x0302,   ///< kMWRequest retransmit
  kAhmwRequestTimeoutTimer = 0x0402, ///< kMWRequest/kSteal retransmit

  // --- elastic-membership timers (armed only when a ChurnPlan is enabled;
  // a churn-free run never sets any of them).
  kOverlayJoinTimer = 0x0105,   ///< dormant peer's scheduled join instant
  kOverlayLeaveTimer = 0x0106,  ///< member's scheduled graceful leave

  // --- service-layer timers (armed only in service mode; single-job runs
  // never set either).
  kOverlayJobWaveTimer = 0x0107,  ///< root's per-job accounting-wave cadence
  kSvcArrivalTimer = 0x0601,      ///< the gate's next scheduled job arrival
};

/// Bits above this shift carry per-timer generation counters.
inline constexpr int kTimerTagShift = 16;
inline constexpr std::int64_t kTimerTagMask = (std::int64_t{1} << kTimerTagShift) - 1;

/// Payload of kProbe / kProbeAck (termination waves in bridge mode).
struct ProbePayload final : sim::MsgPayload {
  std::uint64_t probe_id = 0;
  std::uint64_t bridge_sent = 0;
  std::uint64_t bridge_recv = 0;
  bool dirty = false;  ///< some node in the subtree was active
  /// Max crash-epoch (count of known crashed peers) over the wave; the
  /// fault-tolerant root only terminates when two lease-separated waves
  /// agree on it (no crash was learned between them).
  int crash_epoch = 0;
  /// Sum of membership events (joins accepted + leaves absorbed) over the
  /// wave. Under churn the root requires the back-to-back clean waves to
  /// agree on this sum too — the membership analogue of the crash-epoch
  /// rule: a join or leave between the waves invalidates the pair.
  std::uint64_t member_events = 0;
};

/// Payload of kLeave: the graceful leaver's handover to its parent — the
/// child links being transferred (with the leaver's bookkeeping for each:
/// last known subtree size, an outstanding-request flag, and the per-child
/// aggregated bridge counters), plus the leaver's own cumulative transfer
/// counters *after* its final drain was sent and counted. The parent keeps
/// those counters as a "phantom child" entry so termination waves and the
/// root's counter gate still see the departed peer's contribution.
struct LeavePayload final : sim::MsgPayload {
  struct ChildLink {
    int peer = -1;
    std::uint64_t size = 1;
    bool pending = false;      ///< leaver owed this child a work reply
    std::uint64_t agg_sent = 0;
    std::uint64_t agg_recv = 0;
  };
  /// A phantom entry the leaver itself was keeping (an earlier departure in
  /// its subtree): ownership transfers to the parent, so every departed
  /// peer always has exactly one live keeper polling it in the waves.
  struct PhantomLink {
    int peer = -1;
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
  };
  std::vector<ChildLink> children;
  std::vector<PhantomLink> phantoms;
  std::uint64_t sent = 0;  ///< leaver's own cumulative transfer counters,
  std::uint64_t recv = 0;  ///< post-drain (the drain itself is included)
};

/// Payload of kJobInject: one admitted job entering the fleet. The job id
/// and class ride the payload as well as the message fields so a decoded
/// (wire) message is self-contained.
struct JobPayload final : sim::MsgPayload {
  std::uint64_t job = 0;
  int job_class = 0;  ///< lower = higher priority
  std::unique_ptr<Work> work;

  double amount() const override { return work != nullptr ? work->amount() : 0.0; }
};

/// One job's accounting row in a service wave: the subtree's transfer
/// counters for pieces tagged with this job, plus the work amount still held
/// (milli-units, like the kJob* trace events).
struct JobStat {
  std::uint64_t job = 0;
  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  std::int64_t holds_milli = 0;
};

/// Payload of kJobProbe / kJobProbeAck: the root's per-job accounting wave.
/// Unlike kProbe, a service wave always recurses — busy peers answer too —
/// because it measures *where each job's work is*, not whether the system is
/// quiet. The root declares a job done after two consecutive waves agree:
/// sent == recv, holds == 0, and sent unchanged between them (Mattern's
/// stability rule applied per job).
struct JobProbePayload final : sim::MsgPayload {
  std::uint64_t probe_id = 0;
  std::vector<JobStat> stats;  ///< sorted by job id (map iteration order)
};

/// Packing helpers for kTermAck (poll termination under faults): field b
/// carries (round, passive), field c the sender's cumulative work-transfer
/// counters (32 bits each suffice: counters grow by at most one per
/// transfer and runs are event-capped far below 2^32).
inline std::int64_t pack_term_ack_b(std::uint64_t round, bool passive) {
  return static_cast<std::int64_t>((round << 1) | (passive ? 1u : 0u));
}
inline std::int64_t pack_term_ack_c(std::uint64_t sent, std::uint64_t recv) {
  return static_cast<std::int64_t>((sent << 32) | (recv & 0xffffffffull));
}
inline std::uint64_t term_ack_round(std::int64_t b) {
  return static_cast<std::uint64_t>(b) >> 1;
}
inline bool term_ack_passive(std::int64_t b) { return (b & 1) != 0; }
inline std::uint64_t term_ack_sent(std::int64_t c) {
  return static_cast<std::uint64_t>(c) >> 32;
}
inline std::uint64_t term_ack_recv(std::int64_t c) {
  return static_cast<std::uint64_t>(c) & 0xffffffffull;
}

}  // namespace olb::lb
