#include "lb/peer_base.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace olb::lb {

bool PeerBase::acquire_work(std::unique_ptr<Work> w) {
  if (w == nullptr || w->empty()) return holds_work();
  // Sojourn metric: close an open idle episode — this acquisition is the
  // work the episode was waiting for. Gated on the instrument so metrics-off
  // runs never pay the now() read (a syscall on the thread backend).
  if (m_sojourn_ != nullptr && m_idle_since_ >= 0 && !holds_work())
      [[unlikely]] {
    const sim::Time waited = now() - m_idle_since_;
    metrics::record(m_sojourn_,
                    static_cast<std::uint64_t>(waited > 0 ? waited : 0));
    m_idle_since_ = -1;
  }
  if (work_ == nullptr) {
    work_ = std::move(w);
  } else {
    work_->merge(std::move(w));
  }
  if (bound_ != kNoBound) work_->observe_bound(bound_);
  return true;
}

std::unique_ptr<Work> PeerBase::split_work(double fraction) {
  if (!holds_work()) return nullptr;
  if (fraction <= 0.0) return nullptr;
  if (work_->amount() < config_.min_split_amount) return nullptr;
  fraction = std::min(fraction, 0.99);
  return work_->split(fraction);
}

void PeerBase::continue_processing() {
  if (computing()) return;
  if (!holds_work()) return;
  const StepResult result = work_->step(config_.chunk_units);
  units_done_ += result.units_done;
  if (result.bound < bound_) bound_ = result.bound;
  // Execute-then-advance: the work state is already final, but the results
  // become externally visible only when the compute span ends.
  start_compute(result.sim_cost);
}

bool PeerBase::note_bound(std::int64_t b) {
  if (b >= bound_) return false;
  bound_ = b;
  if (work_ != nullptr) work_->observe_bound(bound_);
  return true;
}

void PeerBase::on_compute_done() {
  // last_active_ only feeds the sim driver's last_compute_seconds metric;
  // on the thread backend nothing reads it, and a clock syscall per chunk
  // is exactly the overhead the chunk loop must not pay.
  if (time_is_free()) last_active_ = now();
  maybe_diffuse();
  after_chunk();
  if (holds_work()) {
    continue_processing();
  } else {
    // Sojourn metric: the idle episode starts when the last local chunk
    // finishes with nothing left, not when a request goes out.
    if (m_sojourn_ != nullptr && m_idle_since_ < 0) [[unlikely]] {
      m_idle_since_ = now();
    }
    became_idle();
  }
}

StateTap PeerBase::state_tap() const {
  StateTap t;
  t.peer = id();
  t.departed = departed_;
  t.holds_work = holds_work();
  t.work_amount = holds_work() ? work_->amount() : 0.0;
  t.terminated = terminated_;
  t.computing = computing();
  t.units_done = units_done_;
  return t;
}

double PeerBase::on_crashed() {
  const double lost = holds_work() ? work_->amount() : 0.0;
  work_.reset();
  return lost;
}

void PeerBase::count_retry(int target, int msg_type, std::int64_t attempt) {
  ++retries_;
  emit_trace(trace::EventKind::kRetry, target, msg_type, attempt);
}

void PeerBase::on_metrics(metrics::Registry& registry) {
  sim::Actor::on_metrics(registry);
  m_queue_ = registry.gauge("olb_peer_queue_depth", id());
  m_inflight_ = registry.gauge("olb_peer_inflight_requests", id());
  m_units_ = registry.counter("olb_peer_units_total", id());
  m_sojourn_ = registry.histogram("olb_peer_sojourn_ns", id());
  // Peers that start without work are idle from t=0: open their first
  // sojourn episode at run start so the initial work distribution shows up.
  if (!holds_work()) m_idle_since_ = 0;
}

void PeerBase::on_metrics_poll() {
  const StateTap tap = state_tap();
  m_queue_->set(static_cast<std::int64_t>(tap.work_amount));
  m_inflight_->set(static_cast<std::int64_t>(tap.pending_requests));
  m_units_->inc(units_done_ - m_units_reported_);
  m_units_reported_ = units_done_;
}

void PeerBase::maybe_diffuse() {
  if (!config_.diffuse_bounds) return;
  if (bound_ < diffused_bound_) {
    diffused_bound_ = bound_;
    diffuse_bound();
  }
}

}  // namespace olb::lb
