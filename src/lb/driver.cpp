#include "lb/driver.hpp"

#include <algorithm>
#include <memory>

#include "lb/ahmw.hpp"
#include "lb/interval_work.hpp"
#include "lb/messages.hpp"
#include "lb/mw.hpp"
#include "lb/rws.hpp"
#include "simnet/engine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/export.hpp"

namespace olb::lb {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kOverlayTD: return "TD";
    case Strategy::kOverlayTR: return "TR";
    case Strategy::kOverlayBTD: return "BTD";
    case Strategy::kRWS: return "RWS";
    case Strategy::kMW: return "MW";
    case Strategy::kAHMW: return "AHMW";
  }
  return "?";
}

sim::NetworkConfig paper_network(int num_peers) {
  sim::NetworkConfig net;
  net.cluster_capacity = num_peers >= 800 ? 736 : 0;
  return net;
}

SequentialMetrics run_sequential(Workload& workload) {
  auto work = workload.make_root_work();
  SequentialMetrics metrics;
  sim::Time total = 0;
  while (!work->empty()) {
    const StepResult r = work->step(1 << 16);
    metrics.units += r.units_done;
    total += r.sim_cost;
    if (r.bound != kNoBound) metrics.bound = r.bound;
  }
  metrics.exec_seconds = sim::to_seconds(total);
  return metrics;
}

namespace {

struct BuiltCluster {
  std::vector<PeerBase*> peers;          ///< all PeerBase-derived actors
  MwMaster* mw_master = nullptr;         ///< set for Strategy::kMW
  OverlayPeer* overlay_root = nullptr;   ///< set for overlay strategies
  RwsPeer* rws_initiator = nullptr;      ///< set for Strategy::kRWS
  AhmwPeer* ahmw_root = nullptr;         ///< set for Strategy::kAHMW
};

BuiltCluster build_cluster(sim::Engine& engine, Workload& workload,
                           const RunConfig& config) {
  BuiltCluster built;
  const int n = config.num_peers;
  OLB_CHECK(n >= 1);
  PeerConfig peer_config{config.chunk_units, config.diffuse_bounds,
                         config.min_split_amount};

  // Heterogeneity: a seeded subset of peers is slow.
  std::vector<double> speeds(static_cast<std::size_t>(n), 1.0);
  if (config.het_fraction > 0.0) {
    OLB_CHECK(config.het_slow_factor > 0.0);
    Xoshiro256 het_rng(mix64(config.seed ^ 0x6865746full));
    for (auto& s : speeds) {
      if (het_rng.uniform01() < config.het_fraction) s = config.het_slow_factor;
    }
  }
  auto weight_of = [&](int i) -> std::uint64_t {
    if (!config.capacity_weighted_overlay) return 1;
    // Integer capacity weights proportional to relative speed (x100).
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(speeds[static_cast<std::size_t>(i)] * 100.0));
  };

  switch (config.strategy) {
    case Strategy::kOverlayTD:
    case Strategy::kOverlayTR:
    case Strategy::kOverlayBTD: {
      auto tree = std::make_shared<const overlay::TreeOverlay>(
          config.strategy == Strategy::kOverlayTR
              ? overlay::TreeOverlay::randomized(n, mix64(config.seed ^ 0x7452))
              : overlay::TreeOverlay::deterministic(n, config.dmax));
      OverlayConfig oc;
      oc.peer = peer_config;
      oc.use_bridges = config.strategy == Strategy::kOverlayBTD;
      oc.split = config.split;
      oc.fixed_units = config.split_fixed_units;
      oc.retry_delay = config.overlay_retry_delay;
      oc.bridge_patience = config.overlay_bridge_patience;
      oc.capacity_weighted = config.capacity_weighted_overlay;
      for (int i = 0; i < n; ++i) {
        auto peer = std::make_unique<OverlayPeer>(
            tree, oc, i == 0 ? workload.make_root_work() : nullptr, weight_of(i));
        if (i == 0) built.overlay_root = peer.get();
        built.peers.push_back(peer.get());
        engine.add_actor(std::move(peer));
      }
      break;
    }
    case Strategy::kRWS: {
      RwsConfig rc;
      rc.peer = peer_config;
      // The paper pushes the application to a random node for RWS.
      const int initiator = static_cast<int>(
          mix64(config.seed ^ 0x7277u) % static_cast<std::uint64_t>(n));
      for (int i = 0; i < n; ++i) {
        auto peer = std::make_unique<RwsPeer>(
            rc, i == initiator ? workload.make_root_work() : nullptr);
        if (i == initiator) built.rws_initiator = peer.get();
        built.peers.push_back(peer.get());
        engine.add_actor(std::move(peer));
      }
      break;
    }
    case Strategy::kMW: {
      OLB_CHECK_MSG(n >= 2, "MW needs a master and at least one worker");
      auto* factory = dynamic_cast<IntervalWorkload*>(&workload);
      OLB_CHECK_MSG(factory != nullptr, "MW requires an interval workload");
      MwConfig mc;
      mc.peer = peer_config;
      mc.checkpoint_period = config.mw_checkpoint_period;
      auto master = std::make_unique<MwMaster>(mc, factory);
      built.mw_master = master.get();
      engine.add_actor(std::move(master));
      for (int i = 1; i < n; ++i) {
        auto worker = std::make_unique<MwWorker>(mc);
        built.peers.push_back(worker.get());
        engine.add_actor(std::move(worker));
      }
      break;
    }
    case Strategy::kAHMW: {
      auto* factory = dynamic_cast<IntervalWorkload*>(&workload);
      OLB_CHECK_MSG(factory != nullptr, "AHMW requires an interval workload");
      auto tree = std::make_shared<const overlay::TreeOverlay>(
          overlay::TreeOverlay::deterministic(n, config.dmax));
      AhmwConfig ac;
      ac.peer = peer_config;
      ac.hierarchy_degree = config.dmax;
      ac.decomposition_base = config.ahmw_decomposition;
      ac.total_amount = static_cast<double>(factory->interval_total());
      for (int i = 0; i < n; ++i) {
        auto peer = std::make_unique<AhmwPeer>(
            tree, ac, i == 0 ? workload.make_root_work() : nullptr);
        if (i == 0) built.ahmw_root = peer.get();
        built.peers.push_back(peer.get());
        engine.add_actor(std::move(peer));
      }
      break;
    }
  }
  for (int i = 0; i < engine.num_actors(); ++i) {
    engine.actor(i).set_speed(speeds[static_cast<std::size_t>(i)]);
  }
  return built;
}

}  // namespace

RunMetrics run_distributed(Workload& workload, const RunConfig& config) {
  sim::Engine engine(config.net, config.seed);
  engine.set_tracer(config.tracer);
  engine.enable_queue_delay_stats();
  BuiltCluster built = build_cluster(engine, workload, config);

  const auto result = engine.run(config.time_limit, config.event_limit);

  RunMetrics metrics;
  metrics.events = result.events;
  metrics.total_messages = engine.total_messages();
  metrics.work_requests = engine.total_sent_of_type(kReqDown) +
                          engine.total_sent_of_type(kReqUp) +
                          engine.total_sent_of_type(kReqBridge) +
                          engine.total_sent_of_type(kSteal) +
                          engine.total_sent_of_type(kMWRequest);
  metrics.work_transfers = engine.total_sent_of_type(kWork);
  metrics.sent_by_type.resize(kNumMsgTypes);
  for (int t = 0; t < kNumMsgTypes; ++t) {
    metrics.sent_by_type[static_cast<std::size_t>(t)] = engine.total_sent_of_type(t);
  }
  for (sim::Time busy : engine.busy_histogram()) {
    metrics.utilization.push_back(
        static_cast<double>(busy) /
        (static_cast<double>(config.num_peers) *
         static_cast<double>(sim::Engine::kBusyBucket)));
  }

  sim::Time last_compute = 0;
  bool all_done = true;
  for (PeerBase* peer : built.peers) {
    metrics.total_units += peer->units_done();
    metrics.best_bound = std::min(metrics.best_bound, peer->best_bound());
    last_compute = std::max(last_compute, peer->last_active());
    if (peer->holds_work() || !peer->saw_terminate()) all_done = false;
  }
  metrics.last_compute_seconds = sim::to_seconds(last_compute);

  sim::Time done_time = -1;
  switch (config.strategy) {
    case Strategy::kOverlayTD:
    case Strategy::kOverlayTR:
    case Strategy::kOverlayBTD:
      done_time = built.overlay_root->done_time();
      break;
    case Strategy::kRWS:
      done_time = built.rws_initiator->done_time();
      break;
    case Strategy::kMW:
      done_time = built.mw_master->done_time();
      metrics.best_bound = std::min(metrics.best_bound, built.mw_master->best_bound());
      if (!built.mw_master->protocol_terminated()) all_done = false;
      break;
    case Strategy::kAHMW:
      done_time = built.ahmw_root->done_time();
      break;
  }
  metrics.exec_seconds = sim::to_seconds(std::max<sim::Time>(done_time, 0));
  metrics.ok = result.quiesced && all_done && done_time >= 0;

  for (int i = 0; i < engine.num_actors(); ++i) {
    metrics.msgs_per_peer.push_back(engine.stats(i).msgs_sent);
  }

  metrics.queueing_delay_mean =
      engine.queueing_delay_mean() / 1e9;  // ns -> s, without truncating
  metrics.queueing_delay_max = sim::to_seconds(engine.queueing_delay_max());

  if (config.tracer != nullptr) {
    const auto events = config.tracer->snapshot();
    metrics.trace_events = events.size();
    metrics.trace_dropped = config.tracer->dropped();
    const trace::Timeline tl =
        trace::derive_timeline(events, sim::Engine::kBusyBucket, kWork);
    metrics.work_in_flight = tl.work_in_flight;
    metrics.idle_peers = tl.idle_peers;
    metrics.pending_depth = tl.pending_depth;
  }
  return metrics;
}

}  // namespace olb::lb
