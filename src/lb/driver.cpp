#include "lb/driver.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <memory>

#include "lb/ahmw.hpp"
#include "lb/interval_work.hpp"
#include "lb/messages.hpp"
#include "lb/mw.hpp"
#include "lb/rws.hpp"
#include "simnet/engine.hpp"
#include "simnet/sharded_engine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/export.hpp"

namespace olb::lb {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kOverlayTD: return "TD";
    case Strategy::kOverlayTR: return "TR";
    case Strategy::kOverlayBTD: return "BTD";
    case Strategy::kRWS: return "RWS";
    case Strategy::kMW: return "MW";
    case Strategy::kAHMW: return "AHMW";
  }
  return "?";
}

bool strategy_is_overlay(Strategy s) {
  return s == Strategy::kOverlayTD || s == Strategy::kOverlayTR ||
         s == Strategy::kOverlayBTD;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kThreads: return "threads";
    case Backend::kSockets: return "sockets";
  }
  return "?";
}

bool backend_from_name(std::string_view name, Backend* out) {
  auto lower = [](std::string_view s) {
    std::string r(s);
    for (char& c : r) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return r;
  };
  const std::string n = lower(name);
  if (n == "sim") {
    *out = Backend::kSim;
    return true;
  }
  if (n == "threads") {
    *out = Backend::kThreads;
    return true;
  }
  if (n == "sockets") {
    *out = Backend::kSockets;
    return true;
  }
  return false;
}

const std::vector<Strategy>& all_strategies() {
  static const std::vector<Strategy> kAll = {
      Strategy::kOverlayTD, Strategy::kOverlayTR, Strategy::kOverlayBTD,
      Strategy::kRWS,       Strategy::kMW,        Strategy::kAHMW,
  };
  return kAll;
}

bool strategy_from_name(std::string_view name, Strategy* out) {
  auto eq = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(a[i])) !=
          std::toupper(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return true;
  };
  for (Strategy s : all_strategies()) {
    if (eq(name, strategy_name(s))) {
      *out = s;
      return true;
    }
  }
  return false;
}

std::string strategy_names() {
  std::string names;
  for (Strategy s : all_strategies()) {
    if (!names.empty()) names += '|';
    names += strategy_name(s);
  }
  return names;
}

int rws_initiator(std::uint64_t seed, int num_peers) {
  return static_cast<int>(mix64(seed ^ 0x7277u) %
                          static_cast<std::uint64_t>(num_peers));
}

void validate_faults_for_strategy(const RunConfig& config) {
  if (!config.faults.enabled()) return;
  config.faults.validate(config.num_peers);
  if (config.faults.crashes.empty()) return;
  switch (config.strategy) {
    case Strategy::kOverlayTD:
    case Strategy::kOverlayTR:
    case Strategy::kOverlayBTD:
      for (const auto& c : config.faults.crashes) {
        OLB_CHECK_MSG(c.peer != 0, "the overlay root (peer 0) cannot crash");
      }
      break;
    case Strategy::kRWS: {
      const int initiator = rws_initiator(config.seed, config.num_peers);
      for (const auto& c : config.faults.crashes) {
        OLB_CHECK_MSG(c.peer != initiator,
                      "the RWS initiator cannot crash (see rws_initiator())");
      }
      break;
    }
    case Strategy::kMW:
      OLB_CHECK_MSG(static_cast<int>(config.faults.crashes.size()) <=
                        config.num_peers - 2,
                    "MW needs at least one surviving worker");
      for (const auto& c : config.faults.crashes) {
        OLB_CHECK_MSG(c.peer != 0, "the MW master (peer 0) cannot crash");
      }
      break;
    case Strategy::kAHMW: {
      const auto tree =
          overlay::TreeOverlay::deterministic(config.num_peers, config.dmax);
      for (const auto& c : config.faults.crashes) {
        OLB_CHECK_MSG(c.peer != 0 && tree.children(c.peer).empty(),
                      "AHMW only tolerates leaf crashes");
      }
      break;
    }
  }
}

void validate_churn(const RunConfig& config) {
  const ChurnPlan& plan = config.churn;
  if (!plan.enabled()) return;
  OLB_CHECK_MSG(strategy_is_overlay(config.strategy),
                "elastic membership requires an overlay strategy (TD/TR/BTD)");
  OLB_CHECK_MSG(!config.faults.enabled(),
                "churn and fault injection are mutually exclusive");
  OLB_CHECK_MSG(plan.initial_peers >= 1 &&
                    plan.initial_peers <= config.num_peers,
                "churn.initial_peers must be in [1, num_peers]");
  std::vector<sim::Time> join_at(static_cast<std::size_t>(config.num_peers), -1);
  std::vector<char> leaves(static_cast<std::size_t>(config.num_peers), 0);
  for (const ChurnEvent& e : plan.events) {
    OLB_CHECK_MSG(e.peer >= 0 && e.peer < config.num_peers,
                  "churn event names an out-of-range peer");
    OLB_CHECK_MSG(e.time >= 0, "churn event times must be non-negative");
    const auto idx = static_cast<std::size_t>(e.peer);
    if (e.join) {
      OLB_CHECK_MSG(e.peer >= plan.initial_peers,
                    "join events are for dormant peers (id >= initial_peers)");
      OLB_CHECK_MSG(join_at[idx] < 0, "at most one join per peer");
      join_at[idx] = e.time;
    } else {
      OLB_CHECK_MSG(e.peer != 0, "the overlay root (peer 0) cannot leave");
      OLB_CHECK_MSG(leaves[idx] == 0, "at most one leave per peer");
      leaves[idx] = 1;
    }
  }
  for (const ChurnEvent& e : plan.events) {
    if (e.join) continue;
    const auto idx = static_cast<std::size_t>(e.peer);
    if (e.peer >= plan.initial_peers) {
      OLB_CHECK_MSG(join_at[idx] >= 0 && join_at[idx] < e.time,
                    "a dormant peer's leave must follow its join");
    }
  }
  // A dormant peer with no scheduled join would never activate and never
  // hear the termination broadcast — the run could not complete.
  for (int i = plan.initial_peers; i < config.num_peers; ++i) {
    OLB_CHECK_MSG(join_at[static_cast<std::size_t>(i)] >= 0,
                  "every dormant peer needs a scheduled join");
  }
}

ChurnPlan make_random_churn(int joins, int leaves, int num_peers,
                            sim::Time from, sim::Time to, std::uint64_t seed) {
  OLB_CHECK(joins >= 0 && leaves >= 0);
  OLB_CHECK(from >= 0 && from <= to);
  OLB_CHECK_MSG(joins < num_peers, "need at least one initial member");
  const int initial = num_peers - joins;
  OLB_CHECK_MSG(leaves < initial,
                "leavers are drawn from the initial members (never the root)");
  ChurnPlan plan;
  if (joins == 0 && leaves == 0) return plan;
  plan.initial_peers = initial;
  Xoshiro256 rng(mix64(seed ^ 0x636875726eull));
  const auto span = static_cast<std::uint64_t>(to - from) + 1;
  const auto stamp = [&] {
    return from + static_cast<sim::Time>(rng() % span);
  };
  // Dormant peers are exactly [initial, num_peers): one join each.
  for (int peer = initial; peer < num_peers; ++peer) {
    plan.events.push_back(ChurnEvent{stamp(), peer, /*join=*/true});
  }
  // Leavers are distinct initial members (never peer 0), so no leave needs
  // ordering against a join.
  std::vector<char> leaving(static_cast<std::size_t>(initial), 0);
  int placed = 0;
  while (placed < leaves) {
    const int peer =
        1 + static_cast<int>(rng() % static_cast<std::uint64_t>(initial - 1));
    if (leaving[static_cast<std::size_t>(peer)] != 0) continue;
    leaving[static_cast<std::size_t>(peer)] = 1;
    plan.events.push_back(ChurnEvent{stamp(), peer, /*join=*/false});
    ++placed;
  }
  return plan;
}

sim::NetworkConfig paper_network(int num_peers) {
  sim::NetworkConfig net;
  net.cluster_capacity = num_peers >= 800 ? 736 : 0;
  return net;
}

SequentialMetrics run_sequential(Workload& workload) {
  auto work = workload.make_root_work();
  SequentialMetrics metrics;
  sim::Time total = 0;
  while (!work->empty()) {
    const StepResult r = work->step(1 << 16);
    metrics.units += r.units_done;
    total += r.sim_cost;
    if (r.bound != kNoBound) metrics.bound = r.bound;
  }
  metrics.exec_seconds = sim::to_seconds(total);
  return metrics;
}

namespace {

/// Fault-tolerant request/lease timing, derived from the worst-case round
/// trip unless overridden. The lease interval must dominate the maximum
/// message lifetime (see lease_termination.hpp); 4x RTT gives slack for
/// the serve-time between request and reply.
struct FtTiming {
  sim::Time request_timeout = 0;
  sim::Time lease_interval = 0;
};

FtTiming ft_timing(const RunConfig& config) {
  const sim::Time base = config.net.cluster_capacity > 0
                             ? config.net.inter_latency
                             : config.net.intra_latency;
  const sim::Time max_lat =
      sim::max_message_latency(base, config.net.latency_jitter, config.faults);
  const sim::Time rtt = 2 * (max_lat + config.net.msg_handling_cost);
  FtTiming t;
  t.request_timeout = config.overlay.request_timeout > 0
                          ? config.overlay.request_timeout
                          : std::max<sim::Time>(sim::milliseconds(1), 4 * rtt);
  t.lease_interval = config.overlay.lease_interval > 0
                         ? config.overlay.lease_interval
                         : std::max<sim::Time>(sim::milliseconds(2), 4 * rtt);
  return t;
}

struct BuiltCluster {
  std::vector<PeerBase*> peers;          ///< all PeerBase-derived actors
  MwMaster* mw_master = nullptr;         ///< set for Strategy::kMW
  OverlayPeer* overlay_root = nullptr;   ///< set for overlay strategies
  RwsPeer* rws_initiator = nullptr;      ///< set for Strategy::kRWS
  AhmwPeer* ahmw_root = nullptr;         ///< set for Strategy::kAHMW
};

// Templated over the engine so the sharded coordinator (sim::ShardedEngine)
// builds byte-identical clusters through the same code path as the plain
// engine — both expose the add_actor/num_actors/actor surface.
template <class EngineT>
BuiltCluster build_cluster(EngineT& engine, Workload& workload,
                           const RunConfig& config) {
  BuiltCluster built;
  const int n = config.num_peers;
  OLB_CHECK(n >= 1);
  PeerConfig peer_config{config.chunk_units, config.diffuse_bounds,
                         config.min_split_amount};

  const bool ft = config.faults.enabled();
  const FtTiming timing = ft_timing(config);

  // Heterogeneity: a seeded subset of peers is slow.
  std::vector<double> speeds(static_cast<std::size_t>(n), 1.0);
  if (config.het.fraction > 0.0) {
    OLB_CHECK(config.het.slow_factor > 0.0);
    Xoshiro256 het_rng(mix64(config.seed ^ 0x6865746full));
    for (auto& s : speeds) {
      if (het_rng.uniform01() < config.het.fraction) s = config.het.slow_factor;
    }
  }
  auto weight_of = [&](int i) -> std::uint64_t {
    if (!config.het.capacity_weighted) return 1;
    // Integer capacity weights proportional to relative speed (x100).
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(speeds[static_cast<std::size_t>(i)] * 100.0));
  };

  switch (config.strategy) {
    case Strategy::kOverlayTD:
    case Strategy::kOverlayTR:
    case Strategy::kOverlayBTD: {
      auto tree =
          std::make_shared<const overlay::TreeOverlay>(make_overlay_tree(config));
      const OverlayConfig oc = make_overlay_config(config);
      for (int i = 0; i < n; ++i) {
        auto peer = std::make_unique<OverlayPeer>(
            tree, oc, i == 0 ? workload.make_root_work() : nullptr, weight_of(i));
        if (i == 0) built.overlay_root = peer.get();
        built.peers.push_back(peer.get());
        engine.add_actor(std::move(peer));
      }
      break;
    }
    case Strategy::kRWS: {
      RwsConfig rc;
      rc.peer = peer_config;
      rc.fault_tolerant = ft;
      rc.request_timeout = timing.request_timeout;
      rc.lease_interval = timing.lease_interval;
      // The paper pushes the application to a random node for RWS.
      const int initiator = rws_initiator(config.seed, n);
      for (int i = 0; i < n; ++i) {
        auto peer = std::make_unique<RwsPeer>(
            rc, i == initiator ? workload.make_root_work() : nullptr);
        if (i == initiator) built.rws_initiator = peer.get();
        built.peers.push_back(peer.get());
        engine.add_actor(std::move(peer));
      }
      break;
    }
    case Strategy::kMW: {
      OLB_CHECK_MSG(n >= 2, "MW needs a master and at least one worker");
      auto* factory = dynamic_cast<IntervalWorkload*>(&workload);
      OLB_CHECK_MSG(factory != nullptr, "MW requires an interval workload");
      MwConfig mc;
      mc.peer = peer_config;
      mc.checkpoint_period = config.mw_checkpoint_period;
      mc.fault_tolerant = ft;
      mc.request_timeout = timing.request_timeout;
      auto master = std::make_unique<MwMaster>(mc, factory);
      built.mw_master = master.get();
      engine.add_actor(std::move(master));
      for (int i = 1; i < n; ++i) {
        auto worker = std::make_unique<MwWorker>(mc);
        built.peers.push_back(worker.get());
        engine.add_actor(std::move(worker));
      }
      break;
    }
    case Strategy::kAHMW: {
      auto* factory = dynamic_cast<IntervalWorkload*>(&workload);
      OLB_CHECK_MSG(factory != nullptr, "AHMW requires an interval workload");
      auto tree = std::make_shared<const overlay::TreeOverlay>(
          overlay::TreeOverlay::deterministic(n, config.dmax));
      AhmwConfig ac;
      ac.peer = peer_config;
      ac.hierarchy_degree = config.dmax;
      ac.decomposition_base = config.ahmw_decomposition;
      ac.total_amount = static_cast<double>(factory->interval_total());
      ac.fault_tolerant = ft;
      ac.request_timeout = timing.request_timeout;
      ac.lease_interval = timing.lease_interval;
      for (int i = 0; i < n; ++i) {
        auto peer = std::make_unique<AhmwPeer>(
            tree, ac, i == 0 ? workload.make_root_work() : nullptr);
        if (i == 0) built.ahmw_root = peer.get();
        built.peers.push_back(peer.get());
        engine.add_actor(std::move(peer));
      }
      break;
    }
  }
  for (int i = 0; i < engine.num_actors(); ++i) {
    engine.actor(i).set_speed(speeds[static_cast<std::size_t>(i)]);
  }
  return built;
}

/// Caps config.sim_shards to what the run supports: features that need one
/// global event order (or per-link state sized to the whole cluster) force a
/// single shard, with a one-time note so sweeps are not silently
/// reconfigured.
int effective_sim_shards(const RunConfig& config) {
  const int shards = std::max(config.sim_shards, 0);
  if (shards < 2) return shards;
  const char* why = nullptr;
  if (config.tracer != nullptr) {
    why = "tracing";
  } else if (config.metrics != nullptr) {
    why = "live metrics";
  } else if (config.faults.enabled()) {
    why = "fault injection";
  } else if (config.perturb.enabled()) {
    why = "schedule perturbation";
  } else if (config.plant.kind == PlantedBug::Kind::kLostWork) {
    why = "the lost-work bug plant";
  }
  if (why == nullptr) return shards;
  static bool noted = false;
  if (!noted) {
    noted = true;
    std::fprintf(stderr,
                 "note: %s needs a single global event order; running with "
                 "sim_shards=1 instead of %d\n",
                 why, shards);
  }
  return 1;
}

}  // namespace

overlay::TreeOverlay make_overlay_tree(const RunConfig& config) {
  OLB_CHECK(strategy_is_overlay(config.strategy));
  return config.strategy == Strategy::kOverlayTR
             ? overlay::TreeOverlay::randomized(config.num_peers,
                                                mix64(config.seed ^ 0x7452))
             : overlay::TreeOverlay::deterministic(config.num_peers, config.dmax);
}

OverlayConfig make_overlay_config(const RunConfig& config) {
  OLB_CHECK(strategy_is_overlay(config.strategy));
  const FtTiming timing = ft_timing(config);
  OverlayConfig oc;
  oc.peer = PeerConfig{config.chunk_units, config.diffuse_bounds,
                       config.min_split_amount};
  oc.use_bridges = config.strategy == Strategy::kOverlayBTD;
  oc.split = config.overlay.split;
  oc.fixed_units = config.overlay.split_fixed_units;
  oc.retry_delay = config.overlay.retry_delay;
  oc.bridge_patience = config.overlay.bridge_patience;
  oc.capacity_weighted = config.het.capacity_weighted;
  validate_churn(config);
  oc.churn = config.churn;
  oc.join_degree = std::max(1, config.dmax);
  oc.fault_tolerant = config.faults.enabled();
  oc.request_timeout = timing.request_timeout;
  oc.lease_interval = timing.lease_interval;
  // Lives here (not in run_distributed) so the plant reaches both backends.
  if (config.plant.kind == PlantedBug::Kind::kSplitBias) {
    oc.planted_split_bias = config.plant.split_bias;
  }
  return oc;
}

namespace {

// The whole run — configuration, cluster build, execution, metric harvest —
// shared between the plain engine and the sharded coordinator. Everything
// here reads the common accessor surface the two types mirror.
template <class EngineT>
RunMetrics run_on_engine(EngineT& engine, Workload& workload,
                         const RunConfig& config) {
  engine.set_tracer(config.tracer);
  engine.set_metrics(config.metrics);
  engine.enable_queue_delay_stats();
  BuiltCluster built = build_cluster(engine, workload, config);
  if (config.faults.enabled()) engine.set_faults(config.faults);
  engine.set_perturbation(config.perturb);
  if (config.plant.kind == PlantedBug::Kind::kLostWork) {
    engine.set_planted_payload_drop(config.plant.lose_nth);
  }

  engine.transport_start();  // lifecycle contract; a no-op on the simulator
  const auto result = engine.run(config.limits.time_limit, config.limits.event_limit);
  engine.transport_shutdown();

  RunMetrics metrics;
  metrics.events = result.events;
  metrics.total_messages = engine.total_messages();
  metrics.work_requests = engine.total_sent_of_type(kReqDown) +
                          engine.total_sent_of_type(kReqUp) +
                          engine.total_sent_of_type(kReqBridge) +
                          engine.total_sent_of_type(kSteal) +
                          engine.total_sent_of_type(kMWRequest);
  metrics.work_transfers = engine.total_sent_of_type(kWork);
  metrics.sent_by_type.resize(kNumMsgTypes);
  for (int t = 0; t < kNumMsgTypes; ++t) {
    metrics.sent_by_type[static_cast<std::size_t>(t)] = engine.total_sent_of_type(t);
  }
  for (sim::Time busy : engine.busy_histogram()) {
    metrics.utilization.push_back(
        static_cast<double>(busy) /
        (static_cast<double>(config.num_peers) *
         static_cast<double>(sim::Engine::kBusyBucket)));
  }

  sim::Time last_compute = 0;
  bool all_done = true;
  for (PeerBase* peer : built.peers) {
    metrics.total_units += peer->units_done();
    metrics.best_bound = std::min(metrics.best_bound, peer->best_bound());
    last_compute = std::max(last_compute, peer->last_active());
    metrics.retries += peer->retries();
    // A crashed peer neither finishes its work nor hears kTerminate; the
    // work it held is accounted in work_lost_units instead.
    if (engine.peer_crashed(peer->id())) continue;
    if (peer->holds_work() || !peer->saw_terminate()) all_done = false;
  }
  metrics.last_compute_seconds = sim::to_seconds(last_compute);

  sim::Time done_time = -1;
  switch (config.strategy) {
    case Strategy::kOverlayTD:
    case Strategy::kOverlayTR:
    case Strategy::kOverlayBTD:
      done_time = built.overlay_root->done_time();
      break;
    case Strategy::kRWS:
      done_time = built.rws_initiator->done_time();
      break;
    case Strategy::kMW:
      done_time = built.mw_master->done_time();
      metrics.best_bound = std::min(metrics.best_bound, built.mw_master->best_bound());
      if (!built.mw_master->protocol_terminated()) all_done = false;
      break;
    case Strategy::kAHMW:
      done_time = built.ahmw_root->done_time();
      break;
  }
  metrics.exec_seconds = sim::to_seconds(std::max<sim::Time>(done_time, 0));
  metrics.ok = result.quiesced && all_done && done_time >= 0;

  for (int i = 0; i < engine.num_actors(); ++i) {
    metrics.msgs_per_peer.push_back(engine.stats(i).msgs_sent);
  }

  metrics.queueing_delay_mean =
      engine.queueing_delay_mean() / 1e9;  // ns -> s, without truncating
  metrics.queueing_delay_max = sim::to_seconds(engine.queueing_delay_max());

  metrics.msgs_dropped = engine.msgs_dropped();
  metrics.msgs_duplicated = engine.msgs_duplicated();
  metrics.latency_spikes = engine.latency_spikes();
  metrics.work_bounced = engine.work_bounced();
  metrics.work_lost_units = engine.work_lost_units();
  for (int i = 0; i < engine.num_actors(); ++i) {
    if (engine.peer_crashed(i)) ++metrics.peers_crashed;
  }

  // Per-peer state taps for the conformance oracles, in peer-id order (the
  // MW master is engine actor 0 and not in built.peers).
  if (built.mw_master != nullptr) {
    metrics.final_state.push_back(built.mw_master->state_tap());
  }
  for (PeerBase* peer : built.peers) {
    metrics.final_state.push_back(peer->state_tap());
  }
  for (StateTap& tap : metrics.final_state) {
    tap.crashed = engine.peer_crashed(tap.peer);
  }

  if (config.tracer != nullptr) {
    const auto events = config.tracer->snapshot();
    metrics.trace_events = events.size();
    metrics.trace_dropped = config.tracer->dropped();
    const trace::Timeline tl =
        trace::derive_timeline(events, sim::Engine::kBusyBucket, kWork);
    metrics.work_in_flight = tl.work_in_flight;
    metrics.idle_peers = tl.idle_peers;
    metrics.pending_depth = tl.pending_depth;
  }
  return metrics;
}

}  // namespace

RunMetrics run_distributed(Workload& workload, const RunConfig& config) {
  OLB_CHECK_MSG(config.backend == Backend::kSim,
                "run_distributed is the simulator backend; threads/sockets "
                "runs go through runtime::run_threads / runtime::run_sockets");
  validate_faults_for_strategy(config);
  validate_churn(config);
  const int shards = effective_sim_shards(config);
  if (shards == 0) {
    // The pre-sharding code path, untouched: sim_shards=0 runs stay
    // byte-identical to every release before the sharded coordinator.
    sim::Engine engine(config.net, config.seed);
    RunMetrics metrics = run_on_engine(engine, workload, config);
    metrics.sim_shards = 1;
    return metrics;
  }
  sim::ShardedEngine engine(config.net, config.seed, config.num_peers, shards);
  RunMetrics metrics = run_on_engine(engine, workload, config);
  metrics.sim_shards = engine.num_shards();
  metrics.sim_windows = engine.windows_run();
  return metrics;
}

}  // namespace olb::lb
