// AHMW — Adaptive Hierarchical Master-Worker (Bendjoudi, Melab, Talbi;
// JPDC 2012 / FGCS 2012), the hierarchical B&B baseline of the paper's
// Table II.
//
// All peers are packed into a degree-10 hierarchy (the degree the AHMW
// papers report as best). Interior nodes act as masters, leaves as workers;
// every peer also explores its own pool. Work flows strictly downwards in
// level-dependent grains — a master at level L hands out pieces of
// ~total/B^(L+1) leaf ranks — so deeper masters deal finer work ("the B&B
// work grain is a function of the master's level"). An empty master pulls
// from its parent and, failing that, steals half from a random master of
// its own level (the papers' intra-level cooperation); an empty worker can
// only poll its master. Nobody ever splits a *busy* peer's work — the
// rigidity that makes AHMW collapse on instances whose hard regions land in
// one piece, visible in the paper's Table II (e.g. Ta21).
//
// Termination: Dijkstra-Scholten rooted at the top master, which then
// broadcasts kTerminate down the hierarchy.
//
// Fault tolerance (config.fault_tolerant, set by the driver iff a FaultPlan
// is enabled; only *leaf* crashes are supported — the driver rejects master
// victims): pulls and steals time out and are retried, Dijkstra–Scholten is
// replaced by the top master's poll termination (lease_termination.hpp),
// and terminated peers answer straggler pulls with kTerminate so a dropped
// broadcast cannot strand a worker.
#pragma once

#include <memory>
#include <vector>

#include "lb/ds_termination.hpp"
#include "lb/lease_termination.hpp"
#include "lb/peer_base.hpp"
#include "overlay/tree_overlay.hpp"

namespace olb::lb {

struct AhmwConfig {
  PeerConfig peer;
  int hierarchy_degree = 10;
  /// Grain divisor base: a level-L master serves pieces of total/B^(L+1).
  double decomposition_base = 30.0;
  /// Total problem size in work units (the driver sets this from the
  /// workload, e.g. jobs! for B&B); defines the absolute grain sizes.
  double total_amount = 0.0;
  /// Pause before re-polling after a failed pull.
  sim::Time retry_delay = sim::microseconds(500);

  // --- fault tolerance (driver sets these iff a FaultPlan is enabled) ---
  bool fault_tolerant = false;
  /// An unanswered pull/steal is abandoned and retried after this long.
  sim::Time request_timeout = sim::milliseconds(1);
  /// Poll-termination cadence; must exceed the maximum message lifetime.
  sim::Time lease_interval = sim::milliseconds(2);
};

class AhmwPeer final : public PeerBase {
 public:
  /// `initial_work` non-null exactly for the hierarchy root (peer 0).
  AhmwPeer(std::shared_ptr<const overlay::TreeOverlay> tree, AhmwConfig config,
           std::unique_ptr<Work> initial_work);

  bool protocol_terminated() const { return terminated_; }
  sim::Time done_time() const { return done_time_; }
  /// Number of crashed peers this peer has been notified about.
  int known_crashes() const { return crash_epoch_; }

  StateTap state_tap() const override {
    StateTap t = PeerBase::state_tap();
    t.transfers_sent = work_sent_;
    t.transfers_recv = work_recv_;
    t.pending_requests = request_outstanding_ ? 1 : 0;
    return t;
  }

 protected:
  void on_start() override;
  void on_message(sim::Message m) override;
  void on_timer(std::int64_t tag) override;
  void on_peer_down(int peer) override;
  void became_idle() override;
  void diffuse_bound() override;

 private:
  bool is_root() const { return id() == tree_->root(); }
  bool is_master() const { return !tree_->children(id()).empty(); }

  void pull_from_parent();
  void steal_from_sibling();
  void send_request(int target, int type);
  void arm_retry();
  void maybe_detach();
  void declare_termination();
  double grain_fraction() const;
  bool passive() const { return !holds_work() && !computing(); }
  void on_poll_tick();
  void conclude_poll();

  sim::Message make_msg(int type, std::int64_t b = 0, std::int64_t c = 0) const {
    return sim::Message(type, bound_, b, c);
  }

  std::shared_ptr<const overlay::TreeOverlay> tree_;
  AhmwConfig config_;
  std::unique_ptr<Work> initial_work_;
  std::vector<int> level_peers_;  ///< masters of the same hierarchy level
  DsTermination ds_;
  bool request_outstanding_ = false;
  bool retry_armed_ = false;
  sim::Time done_time_ = -1;

  // fault-tolerance state
  std::vector<char> peer_down_;
  int crash_epoch_ = 0;
  int request_target_ = -1;
  std::int64_t req_seq_ = 0;  ///< generation of the request-timeout timer
  std::uint64_t work_sent_ = 0;
  std::uint64_t work_recv_ = 0;
  TermPoll poll_;              ///< top master only
  std::uint64_t poll_round_ = 0;
};

}  // namespace olb::lb
