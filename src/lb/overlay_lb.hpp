// The paper's contribution: overlay-centric dynamic load balancing.
//
// Peers are organised in a tree overlay (TD / TR, see overlay::TreeOverlay);
// BTD additionally lets every idle peer ask one random bridge partner in
// parallel with the tree protocol. Protocol summary (paper §II):
//
//  Setup      — subtree sizes are computed by a distributed converge-cast
//               (kSizeUp to the root), then announced downwards (kSizeDown,
//               which also tells each peer its parent's size and acts as the
//               start signal). The root then begins processing the whole
//               problem.
//  Idle peer  — requests children first, sequentially, in uniformly random
//               order, skipping children whose own upward request is pending
//               here; children answer immediately (kWork or kNoWork). Only
//               when *all* children have requested upwards does the peer
//               send its single upward request — which therefore doubles as
//               the "my entire subtree is finished" signal. In BTD mode an
//               asynchronous bridge request is additionally sent to one
//               random peer per idle episode.
//  Serving    — a peer holding work answers a child's upward request with a
//               T_child/T_self share, a parent's downward request with
//               (T_parent - T_self)/T_parent, and a bridge request with
//               T_req/(T_self + T_req) (subtree-proportional policy; the
//               steal-half policy used for the paper's Fig. 2 comparison
//               replaces every fraction by 1/2). Requests that cannot be
//               served yet stay pending; "idle nodes should not be selfish":
//               the moment a pending peer acquires work it serves all of its
//               own pending requesters before continuing.
//  Termination— pure tree mode: the root terminates when it is idle and all
//               children have upward requests pending. Bridge mode: upward
//               requests carry aggregated per-subtree bridge-transfer
//               counters; when the sums balance, the root runs confirmation
//               waves down the tree (kProbe/kProbeAck) and terminates after
//               two consecutive clean waves with identical, balanced
//               counters (Mattern's four-counter rule) — our realisation of
//               the paper's "aggregated work request messages".
//
// Fault tolerance (config.fault_tolerant, set by the driver iff a FaultPlan
// is enabled; a fault-free run never takes any of these paths):
//
//  Links may drop or duplicate control messages, and peers may crash. The
//  protocol recovers with
//   * setup retransmission — kSizeUp is re-sent until the start signal
//     (kSizeDown) arrives; parents treat duplicates as refreshes;
//   * request timeouts — an unanswered kReqDown counts as kNoWork after
//     config.request_timeout;
//   * lease refresh — an idle peer re-sends its upward request every
//     config.lease_interval so a lost subtree-finished signal cannot hang
//     the run;
//   * re-parenting — every survivor deterministically re-attaches to its
//     nearest live *static* ancestor when a crash is announced; because all
//     survivors learn of a crash simultaneously and apply the same rule,
//     parent/child views stay consistent without a repair handshake.
//     Adopted children start out non-pending, which blocks termination until
//     they re-request upwards;
//   * wave-confirmed termination — the root only terminates after two
//     lease-separated clean waves whose *total* work-transfer counters (all
//     serves, not just bridges) and crash epochs agree; counters must
//     balance only while no crash is known (a crashed peer takes its counter
//     contributions with it). The lease exceeds the maximum message
//     lifetime, so any transfer in flight during one wave lands — and bumps
//     a counter — before the next wave polls its receiver. Work bounced off
//     a crashed peer re-enters through on_work like any other transfer.
//
// Elastic membership (config.churn, set by the driver iff a ChurnPlan is
// enabled; churn-free runs never take any of these paths — simulator
// timelines stay byte-identical):
//
//  Join  — a dormant peer sends kJoinReq towards the root; each member
//    either adopts it (fewer than join_degree children) or forwards the
//    request to a child chosen by a BON-style weighted coin favouring light
//    subtrees. The acceptor's kJoinAccept carries its post-adoption subtree
//    size; size deltas (+weight) ride kSizeDelta up the dynamic ancestor
//    path instead of a full converge-cast refresh.
//  Leave — a member (never the root) drains its deque to the parent as a
//    counted, bridge-flagged transfer, rewires each child to the parent
//    (kRewire; children re-send kSizeUp and any pending upward request),
//    then hands the parent a kLeave whose payload lists the transferred
//    child links and the leaver's final transfer counters. The parent keeps
//    those counters as a *phantom child*: termination probes visit phantoms
//    like children (the departed peer answers with its true counters), so
//    Mattern's counter rule still sees every transfer the leaver ever made.
//    Probes additionally sum membership events; the root requires the two
//    clean waves to agree on that sum, so a join or leave between the waves
//    — whose handover traffic could otherwise race the counters — forces
//    another wave pair.
// Multi-job service mode (config.service, set by src/svc; single-job runs
// never take any of these paths — simulator timelines stay byte-identical):
//
//  A JobGate actor (id == fleet size, outside the tree) streams jobs into
//  the root via kJobInject; every peer's work slot holds a lb::JobBag, so
//  each kWork transfer is a single-job piece tagged with its id (field c).
//  The root starts workless, termination is suppressed until the gate's
//  kSvcShutdown, and per-job completion is detected by root-led accounting
//  waves (kJobProbe/kJobProbeAck, always recursing — busy peers answer too)
//  that aggregate each job's {sent, recv, holds} over the tree: a job is
//  done after two consecutive waves agree on balanced, stable counters and
//  zero holdings (Mattern's stability rule applied per job). Completions go
//  back to the gate as kJobDone; after shutdown the classic single-job
//  termination machinery runs unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "lb/messages.hpp"
#include "lb/peer_base.hpp"
#include "overlay/tree_overlay.hpp"

namespace olb::lb {

class JobBag;

enum class SplitPolicy {
  kSubtreeProportional,  ///< the paper's overlay-dependent policy
  kHalf,                 ///< classical steal-half (Fig. 2 baseline)
  kFixedUnits,           ///< steal-k (the steal-1/steal-2 of Dinan et al.)
};

/// One scheduled membership change. Joins name a peer >= the initial member
/// count; leaves name a member (never the root). The plan is part of the
/// run configuration, so churn — like fault injection — is a deterministic,
/// replayable function of the config, not an external stimulus.
struct ChurnEvent {
  sim::Time time = 0;
  int peer = -1;
  bool join = true;  ///< false = graceful leave
};

/// Elastic-membership schedule. Disabled (the default) means the classic
/// fixed-n run: every peer is an initial member and no membership path is
/// ever taken, keeping zero-churn simulator timelines byte-identical.
struct ChurnPlan {
  /// Members at t=0; peers [initial_peers, n) start dormant and only
  /// activate at their scheduled join. 0 = everyone starts in (disabled).
  int initial_peers = 0;
  std::vector<ChurnEvent> events;

  bool enabled() const { return initial_peers > 0 || !events.empty(); }
};

struct OverlayConfig {
  PeerConfig peer;
  bool use_bridges = false;  ///< BTD when true, TD/TR when false
  SplitPolicy split = SplitPolicy::kSubtreeProportional;
  std::uint64_t fixed_units = 1;  ///< the k of SplitPolicy::kFixedUnits
  /// Backoff before re-running the downward phase when every non-pending
  /// child transiently answered "no work".
  sim::Time retry_delay = sim::microseconds(100);
  /// How long an unanswered bridge request is left parked before the peer
  /// abandons it and samples a new random partner. Re-picking keeps idle
  /// peers probing (like RWS) while the pacing bounds stale-service churn.
  sim::Time bridge_patience = sim::microseconds(300);
  /// Capacity-aware extension (the paper's stated future work): the
  /// converge-cast sums per-peer *capacity weights* instead of counting
  /// peers, so on heterogeneous hardware the proportional policy sends work
  /// where the compute power actually is. Weights are per-peer constructor
  /// arguments; this flag only disables the homogeneous-size sanity check.
  bool capacity_weighted = false;
  /// Conformance-harness bug plant: added to every computed split fraction
  /// *after* clamping, so served shares can exceed 1 — exactly the
  /// off-by-one-ish bug the split-fraction oracle must catch. 0 disables.
  double planted_split_bias = 0.0;

  // --- elastic membership (driver sets these iff a ChurnPlan is enabled;
  // churn and fault injection are mutually exclusive — see validate_churn) ---
  ChurnPlan churn;
  /// A member with fewer than this many children accepts a join in place;
  /// otherwise it forwards the request to a child picked by a BON-style
  /// weighted coin (lighter subtrees preferred). The driver sets it from
  /// RunConfig::dmax so joined peers respect the same degree bound as TD.
  int join_degree = 3;

  // --- multi-job service mode (src/svc sets these; a single-job run leaves
  // it disabled and never takes any service path, keeping its simulator
  // timeline byte-identical). Mutually exclusive with faults and churn. ---
  struct ServiceMode {
    bool enabled = false;
    /// The job gate's actor id (== fleet size: peers are [0, gate), the
    /// gate rides one past them). Bridge sampling excludes it.
    int gate = -1;
    /// Cadence of the root's per-job accounting waves.
    sim::Time wave_interval = sim::milliseconds(2);
  };
  ServiceMode service;

  // --- fault tolerance (driver sets these iff a FaultPlan is enabled) ---
  bool fault_tolerant = false;
  /// An unanswered kReqDown is treated as kNoWork after this long.
  sim::Time request_timeout = sim::milliseconds(1);
  /// Cadence of setup retransmits, upward-request refreshes and root
  /// re-probes. Must exceed twice the maximum one-way message latency (the
  /// driver derives both timeouts from the network model) — the termination
  /// argument needs every in-flight transfer to land between waves.
  sim::Time lease_interval = sim::milliseconds(2);
};

class OverlayPeer final : public PeerBase {
 public:
  /// `initial_work` must be non-null exactly for the overlay root (peer 0).
  /// `capacity_weight` is this peer's logical compute power (1 for
  /// homogeneous clusters; scale by relative speed in heterogeneous ones).
  OverlayPeer(std::shared_ptr<const overlay::TreeOverlay> tree, OverlayConfig config,
              std::unique_ptr<Work> initial_work, std::uint64_t capacity_weight = 1);

  // --- post-run inspection ---
  bool protocol_terminated() const { return terminated_; }
  sim::Time done_time() const { return done_time_; }
  /// Current dynamic parent (-1 for the root); equals the static parent
  /// until fault-driven re-parenting moves it.
  int current_parent() const { return parent_; }
  /// Number of crashed peers this peer has been notified about.
  int known_crashes() const { return crash_epoch_; }
  /// Current overlay membership (false while dormant or after a leave).
  bool is_member() const { return member_; }
  /// This peer's current subtree-size estimate (tests: the incremental
  /// delta machinery must keep it consistent across churn and crashes).
  std::uint64_t subtree_size_estimate() const { return my_size_; }
  /// Membership events (joins accepted + leaves absorbed) witnessed here.
  std::uint64_t member_events() const { return member_events_; }

  StateTap state_tap() const override;

 protected:
  void on_start() override;
  void on_message(sim::Message m) override;
  void on_timer(std::int64_t tag) override;
  void on_peer_down(int peer) override;
  void became_idle() override;
  void diffuse_bound() override;
  void after_chunk() override;
  /// Adds the root's termination-wave latency histogram (olb_term_wave_ns)
  /// on top of the PeerBase per-peer instruments.
  void on_metrics(metrics::Registry& registry) override;

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  bool is_root() const { return id() == tree_->root(); }
  int parent() const { return parent_; }
  std::size_t child_index(int child_id) const;  ///< kNpos if not a child
  bool all_children_pending() const;
  bool locally_quiet() const;  ///< idle, no work, no compute outstanding

  // setup
  void on_size_up(const sim::Message& m);
  void on_size_down(const sim::Message& m);
  void finish_converge_cast();
  void become_ready();

  // idle protocol
  void start_idle_episode();
  void send_bridge_request();
  void arm_retry_timer();
  void start_down_phase();
  void advance_down();
  void maybe_send_up();
  void send_up_request();

  // serving
  void on_req_down(const sim::Message& m);
  void on_req_up(const sim::Message& m);
  void on_req_bridge(const sim::Message& m);
  void on_work(sim::Message m);
  void serve_pending();
  void send_work(int dst, std::unique_ptr<Work> w, int req_type, double fraction);
  void trace_queue_depth();
  double apply_policy(double proportional) const;
  /// Clamps a computed split share into (0, 1]. After crash re-parenting the
  /// subtree aggregates feeding the share can be stale (placeholder sizes,
  /// or my_size_ exceeding a not-yet-refreshed parent_size_), producing
  /// shares <= 0, > 1 or NaN; serving must not stall on them. Emits
  /// kSplitClamp when it fires. `req_type` is the request being served.
  double clamp_fraction(double raw, int req_type);
  /// Applies the conformance-harness bug plant (planted_split_bias) *after*
  /// clamping so the sanitiser cannot mask it; identity when unset.
  double biased(double f) const { return f + config_.planted_split_bias; }
  double fraction_for_child(std::size_t child_idx, int req_type);
  double fraction_for_parent();
  double fraction_for_bridge(std::uint64_t requester_size);

  // bound diffusion
  void handle_piggyback(const sim::Message& m) { note_bound(m.a); }
  void on_bound_msg(const sim::Message& m);

  // fault recovery
  int nearest_live_ancestor(int peer_id) const;
  std::size_t adopt_child(int peer_id, std::uint64_t size_hint);
  void rebuild_children();
  void on_lease_tick();
  /// Whether `anc` is a strict ancestor of `node` in the *static* tree.
  bool is_static_ancestor(int anc, int node) const;

  // elastic membership (every path below is gated on churn_enabled())
  bool churn_enabled() const { return config_.churn.enabled(); }
  /// Applies a (possibly negative) delta to my_size_ — clamped at the
  /// peer's own weight — and forwards it up the dynamic parent chain, the
  /// incremental replacement for a full converge-cast refresh.
  void apply_size_delta(std::int64_t delta, bool forward_up);
  void on_join_timer();
  void on_join_req(sim::Message m);
  void accept_join(int joiner, std::uint64_t weight);
  void on_join_accept(const sim::Message& m);
  void begin_leave();
  void on_leave(sim::Message m);
  void on_rewire(const sim::Message& m);
  void on_size_delta(const sim::Message& m);
  /// Message dispatch for a peer that already left (phantom duties: forward
  /// strays, answer probes with its true counters, accept kTerminate).
  void departed_dispatch(sim::Message m);
  /// Message dispatch for a not-yet-joined peer.
  void dormant_dispatch(sim::Message m);
  /// Marks any outstanding probe at this node dirty — a membership event
  /// mid-wave must not let that wave read as clean.
  void dirty_outstanding_probe();

  // multi-job service mode (every path below is gated on svc_enabled())
  bool svc_enabled() const { return config_.service.enabled; }
  /// Peers eligible as bridge partners / tree members: excludes the gate.
  int fleet_size() const {
    return svc_enabled() ? config_.service.gate : num_peers();
  }
  /// The installed JobBag (null when no work). In service mode every
  /// acquire path installs bags only, so the downcast is total.
  JobBag* bag();
  void on_job_inject(sim::Message m);
  void svc_emit_chunks();
  /// Own (sent, recv, holds) per job into svc_table_.
  void svc_fill_own_stats();
  void svc_launch_wave();
  void on_job_probe(sim::Message m);
  void on_job_probe_ack(sim::Message m);
  void svc_reply_wave();
  void svc_finish_wave_at_root();

  // termination
  std::uint64_t own_sent() const;
  std::uint64_t own_recv() const;
  std::uint64_t agg_sent() const;
  std::uint64_t agg_recv() const;
  void check_root_termination();
  void launch_probe();
  void on_probe(sim::Message m);
  void on_probe_ack(sim::Message m);
  void finish_probe_at_root(std::uint64_t s, std::uint64_t r, bool dirty);
  void declare_termination();
  void on_terminate();

  sim::Message make_msg(int type, std::int64_t b = 0, std::int64_t c = 0) const {
    sim::Message m(type, bound_, b, c);
    return m;
  }

  std::shared_ptr<const overlay::TreeOverlay> tree_;
  OverlayConfig config_;
  std::unique_ptr<Work> initial_work_;
  std::uint64_t weight_ = 1;

  // sizes (learned through the distributed converge-cast)
  std::vector<int> children_;
  std::vector<std::uint64_t> child_size_;
  std::uint64_t my_size_ = 0;
  std::uint64_t parent_size_ = 0;
  int sizes_missing_ = 0;
  bool ready_ = false;

  // dynamic tree position (diverges from tree_ only after crashes)
  int parent_ = -1;

  // idle-episode state
  bool idle_ = false;
  std::int64_t episode_ = 0;
  std::vector<int> down_order_;
  std::size_t down_pos_ = 0;
  int awaiting_child_ = -1;
  bool up_requested_ = false;
  std::pair<std::uint64_t, std::uint64_t> last_sent_agg_{0, 0};
  bool retry_timer_armed_ = false;
  int bridge_target_ = -1;
  sim::Time bridge_sent_at_ = 0;

  // serving state
  std::vector<bool> pending_child_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> child_agg_;  ///< (S, R)
  std::vector<std::pair<int, std::uint64_t>> pending_bridges_;      ///< (peer, T_peer)

  // bridge-transfer counters (monotonic)
  std::uint64_t bridge_sent_ = 0;
  std::uint64_t bridge_recv_ = 0;

  // elastic-membership state
  bool member_ = true;  ///< false while dormant and after a graceful leave
  sim::Time join_at_ = -1;   ///< this peer's scheduled join (dormant peers)
  sim::Time leave_at_ = -1;  ///< this peer's scheduled leave (members)
  bool leave_timer_armed_ = false;
  bool leave_pending_ = false;  ///< leave deferred until the chunk ends
  /// Joins accepted + leaves absorbed here; summed across termination waves
  /// so the root can tell churn happened between two otherwise clean waves.
  std::uint64_t member_events_ = 0;
  /// A departed child's final transfer counters, kept by its parent so the
  /// subtree aggregates (agg_sent/agg_recv) never lose its contribution.
  /// Phantoms are probed like children (they answer with their live-polled
  /// counters) and receive the termination broadcast, but are never served.
  struct PhantomChild {
    int peer = -1;
    std::pair<std::uint64_t, std::uint64_t> agg{0, 0};  ///< (sent, recv)
  };
  std::vector<PhantomChild> phantoms_;
  /// kJoinReq accepted before this node finished its own converge-cast;
  /// processed in become_ready().
  std::vector<std::pair<int, std::uint64_t>> parked_joins_;  ///< (id, weight)
  std::uint64_t probe_me_ = 0;  ///< member-events sum of the current wave

  // service-mode state (all empty/idle unless config_.service.enabled)
  /// Per-job transfer counters of THIS peer: job -> (pieces sent, received).
  /// Monotone, like the bridge/ft counters; ordered so wave payloads are
  /// assembled in deterministic job order.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> svc_counters_;
  // wave state (any node)
  std::uint64_t svc_probe_id_ = 0;
  int svc_probe_parent_ = -1;
  int svc_acks_missing_ = 0;
  std::map<std::uint64_t, JobStat> svc_table_;  ///< subtree aggregate
  // root-only service state
  bool svc_wave_outstanding_ = false;
  std::uint64_t svc_next_wave_ = 0;
  std::set<std::uint64_t> svc_injected_;  ///< kJobInject processed here
  std::set<std::uint64_t> svc_done_;      ///< wave-confirmed and reported
  /// A job's qualifying reading from the previous wave: done needs the next
  /// wave to agree (same sent, consecutive wave ids).
  struct SvcPrev {
    std::uint64_t sent = 0;
    std::uint64_t wave = 0;
  };
  std::map<std::uint64_t, SvcPrev> svc_prev_;
  bool svc_shutdown_ = false;  ///< gate declared the stream exhausted

  // fault-tolerance state
  std::vector<char> peer_down_;   ///< peers known to have crashed
  int crash_epoch_ = 0;           ///< == count of set entries in peer_down_
  std::int64_t down_req_seq_ = 0; ///< generation of the kReqDown timeout
  // All work transfers, not just bridges: with unreliable links the pending
  // flags can go stale, so FT termination waves count every serve.
  std::uint64_t ft_sent_ = 0;
  std::uint64_t ft_recv_ = 0;

  // probe state (any node)
  std::uint64_t cur_probe_ = 0;
  int probe_parent_ = -1;
  int probe_acks_missing_ = 0;
  std::uint64_t probe_s_ = 0;
  std::uint64_t probe_r_ = 0;
  bool probe_dirty_ = false;
  int probe_epoch_ = 0;

  // root-only termination state
  bool probe_outstanding_ = false;
  sim::Time probe_launched_at_ = 0;
  /// Root-only wave-latency histogram (null unless metrics attached).
  metrics::Histogram* m_wave_ = nullptr;
  sim::Time last_wave_end_ = 0;
  std::uint64_t next_probe_id_ = 0;
  bool have_clean_probe_ = false;
  std::uint64_t clean_s_ = 0;
  std::uint64_t clean_r_ = 0;
  int clean_epoch_ = 0;
  std::uint64_t clean_me_ = 0;  ///< member-events sum of the clean wave
  bool recheck_after_probe_ = false;

  sim::Time done_time_ = -1;
};

}  // namespace olb::lb
