// Master-Worker (MW) — the B&B-specific baseline of Mezmaz, Melab, Talbi
// (IPDPS'07), as described in the paper's §IV-C.
//
// One dedicated master manages a global pool of interval descriptors
// {owner, begin, end}. Workers explore their interval, periodically
// checkpoint their position to the master, and request fresh work when
// empty. To serve a request, the master picks the pool interval with the
// *largest length from its own (possibly stale) view*, splits it in two
// halves, ships the right half to the requester and notifies the owner to
// truncate — an asynchronous steal-half that never blocks on the owner.
// Staleness can make the two workers overlap slightly (the paper reports
// 0.39 % redundant exploration; B&B is idempotent so only time is lost).
//
// All coordination flows through the master, whose per-message service time
// makes it a queueing hot spot — competitive at 200 cores, collapsing past
// ~600 (the paper's Fig. 4), both of which emerge from the simulation.
//
// Fault tolerance (config.fault_tolerant, set by the driver iff a FaultPlan
// is enabled; master crashes are rejected by the driver): worker requests
// carry an epoch and are retransmitted until served — the master ignores
// epochs it already answered, disambiguating retransmits from new requests.
// A crashed worker's pool entry is reclaimed (owner cleared, position as of
// its last checkpoint) and later served *whole* to the next requester;
// work bounced off the crashed worker is discarded at the master because
// the reclaimed entry still covers the interval — re-exploration from the
// checkpoint is idempotent. Termination counts live workers only.
#pragma once

#include <memory>
#include <vector>

#include "lb/interval_work.hpp"
#include "lb/peer_base.hpp"

namespace olb::lb {

struct MwConfig {
  PeerConfig peer;
  sim::Time checkpoint_period = sim::milliseconds(2);

  // --- fault tolerance (driver sets these iff a FaultPlan is enabled) ---
  bool fault_tolerant = false;
  /// An unanswered kMWRequest is retransmitted after this long.
  sim::Time request_timeout = sim::milliseconds(1);
};

/// The master: peer 0. Does not explore; owns the interval pool.
class MwMaster final : public sim::Actor {
 public:
  MwMaster(MwConfig config, IntervalWorkload* factory);

  bool protocol_terminated() const { return terminated_; }
  sim::Time done_time() const { return done_time_; }
  std::int64_t best_bound() const { return bound_; }

  /// Conformance-harness snapshot (the master is not a PeerBase, so this is
  /// a plain method, not an override). holds_work reports *unowned* pool
  /// entries — reclaimed intervals no live worker is exploring. parked_ is
  /// legitimately non-empty at termination (workers park, then the master
  /// terminates them), so it is exposed but not an invariant.
  StateTap state_tap() const {
    StateTap t;
    t.peer = id();
    t.terminated = terminated_;
    t.computing = computing();
    for (const Entry& e : pool_) {
      if (e.owner == -1 && e.length() > 0) {
        t.holds_work = true;
        t.work_amount += static_cast<double>(e.length());
      }
    }
    t.pending_requests = parked_.size();
    return t;
  }

 protected:
  void on_start() override;
  void on_message(sim::Message m) override;
  void on_peer_down(int peer) override;
  /// Adds the master's pool gauges (unowned backlog, parked workers) on top
  /// of the funnel counters the Actor base arms.
  void on_metrics(metrics::Registry& registry) override;
  void on_metrics_poll() override;

 private:
  struct Entry {
    int owner = -1;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint64_t length() const { return end > begin ? end - begin : 0; }
  };

  void on_request(int worker, std::int64_t epoch);
  void serve_parked();
  void drop_entry_of(int worker);
  Entry* largest_entry();
  void maybe_terminate();
  void broadcast_bound(int except);

  MwConfig config_;
  IntervalWorkload* factory_;
  std::vector<Entry> pool_;
  std::vector<int> parked_;  ///< workers waiting for work
  bool assigned_initial_ = false;
  std::int64_t bound_ = kNoBound;
  bool terminated_ = false;
  sim::Time done_time_ = -1;

  // Live metrics (null unless a hub is attached; see on_metrics).
  metrics::Gauge* m_pool_ = nullptr;    ///< olb_mw_pool_unowned
  metrics::Gauge* m_parked_ = nullptr;  ///< olb_mw_parked_workers

  // fault-tolerance state
  std::vector<char> worker_down_;
  int crashed_workers_ = 0;
  std::vector<std::int64_t> request_epoch_;  ///< latest epoch requested
  std::vector<std::int64_t> served_epoch_;   ///< latest epoch answered
};

/// A worker: explores intervals, checkpoints, requests when empty.
class MwWorker final : public PeerBase {
 public:
  explicit MwWorker(MwConfig config) : PeerBase(config.peer), config_(config) {}

  bool protocol_terminated() const { return terminated_; }

  StateTap state_tap() const override {
    StateTap t = PeerBase::state_tap();
    t.pending_requests = request_outstanding_ ? 1 : 0;
    return t;
  }

 protected:
  void on_start() override;
  void on_message(sim::Message m) override;
  void on_timer(std::int64_t tag) override;
  void became_idle() override;
  void diffuse_bound() override;

 private:
  static constexpr int kMasterId = 0;

  void request_work();

  MwConfig config_;
  bool request_outstanding_ = false;
  bool checkpoint_armed_ = false;
  std::int64_t req_epoch_ = 0;  ///< fault tolerance: current request epoch
};

}  // namespace olb::lb
