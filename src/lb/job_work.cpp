#include "lb/job_work.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace olb::lb {

double JobBag::amount() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.work->amount();
  return total;
}

bool JobBag::empty() const { return slots_.empty(); }

JobBag::Slot* JobBag::find_slot(std::uint64_t job) {
  for (Slot& s : slots_) {
    if (s.job == job) return &s;
  }
  return nullptr;
}

JobBag::Tally& JobBag::tally_for(std::uint64_t job) {
  auto it = std::lower_bound(
      tallies_.begin(), tallies_.end(), job,
      [](const Tally& t, std::uint64_t j) { return t.job < j; });
  if (it != tallies_.end() && it->job == job) return *it;
  return *tallies_.insert(it, Tally{job, 0, kNoBound});
}

void JobBag::insert_slot(Slot s) {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), s.job,
      [](const Slot& a, std::uint64_t j) { return a.job < j; });
  OLB_CHECK_MSG(it == slots_.end() || it->job != s.job,
                "insert_slot: job already present");
  slots_.insert(it, std::move(s));
}

void JobBag::add_job(std::uint64_t job, int job_class,
                     std::unique_ptr<Work> work) {
  OLB_CHECK(work != nullptr && !work->empty());
  Slot* existing = find_slot(job);
  if (existing != nullptr) {
    OLB_CHECK(existing->job_class == job_class);
    existing->work->merge(std::move(work));
    return;
  }
  insert_slot(Slot{job, job_class, std::move(work)});
}

const JobBag::Slot& JobBag::sole_slot() const {
  OLB_CHECK_MSG(slots_.size() == 1, "transfer piece must be single-job");
  return slots_.front();
}

double JobBag::amount_of(std::uint64_t job) const {
  for (const Slot& s : slots_) {
    if (s.job == job) return s.work->amount();
  }
  return 0.0;
}

std::unique_ptr<Work> JobBag::split(double fraction) {
  if (slots_.empty()) return nullptr;
  const double target = fraction * amount();
  if (target <= 0.0) return nullptr;
  // Largest slot (ties: lowest job id — slots_ is id-ascending, so the
  // strict > keeps the first of equals). Serving from the largest job keeps
  // the split closest to the requested share without crossing job lines.
  std::size_t pick = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].work->amount() > slots_[pick].work->amount()) pick = i;
  }
  Slot& s = slots_[pick];
  const double slot_amount = s.work->amount();
  auto piece = std::make_unique<JobBag>();
  if (target >= slot_amount) {
    // The requested share swallows the whole slot: move it (other slots
    // stay, so the bag still holds the remaining jobs).
    piece->insert_slot(std::move(s));
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(pick));
    return piece;
  }
  std::unique_ptr<Work> inner = s.work->split(target / slot_amount);
  if (inner == nullptr) return nullptr;  // slot indivisible; bag unchanged
  piece->insert_slot(Slot{s.job, s.job_class, std::move(inner)});
  return piece;
}

void JobBag::merge(std::unique_ptr<Work> other) {
  auto* bag = dynamic_cast<JobBag*>(other.get());
  OLB_CHECK_MSG(bag != nullptr, "JobBag can only merge another JobBag");
  for (Slot& s : bag->slots_) {
    add_job(s.job, s.job_class, std::move(s.work));
  }
  // Pieces carry no ledgers (split leaves tallies/chunks with the splitting
  // bag), but fold them in defensively so merge is ledger-lossless.
  for (const Tally& t : bag->tallies_) {
    Tally& mine = tally_for(t.job);
    mine.units += t.units;
    mine.bound = std::min(mine.bound, t.bound);
  }
  chunks_.insert(chunks_.end(), bag->chunks_.begin(), bag->chunks_.end());
}

StepResult JobBag::step(std::uint64_t max_units) {
  OLB_CHECK_MSG(!slots_.empty(), "step on an empty JobBag");
  // Highest priority = lowest class, ties by lowest job id (the scan order).
  std::size_t pick = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].job_class < slots_[pick].job_class) pick = i;
  }
  Slot& s = slots_[pick];
  const std::int64_t before = amount_milli(s.work->amount());
  const StepResult inner = s.work->step(max_units);
  const std::int64_t after = amount_milli(s.work->amount());
  Tally& tally = tally_for(s.job);
  tally.units += inner.units_done;
  if (inner.bound < tally.bound) tally.bound = inner.bound;
  chunks_.push_back(ChunkRecord{s.job, inner.units_done, after - before});
  if (s.work->empty()) {
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  // Units and cost pass through; the bound does not — it belongs to one job
  // and must not become the peer's global bound_.
  StepResult out;
  out.units_done = inner.units_done;
  out.sim_cost = inner.sim_cost;
  return out;
}

std::vector<JobBag::ChunkRecord> JobBag::take_chunk_records() {
  std::vector<ChunkRecord> out;
  out.swap(chunks_);
  return out;
}

}  // namespace olb::lb
