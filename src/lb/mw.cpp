#include "lb/mw.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace olb::lb {

// ---------------------------------------------------------------- master ---

MwMaster::MwMaster(MwConfig config, IntervalWorkload* factory)
    : config_(config), factory_(factory) {
  OLB_CHECK_MSG(factory_ != nullptr,
                "MW requires an interval-encoded workload (B&B)");
}

void MwMaster::on_metrics(metrics::Registry& registry) {
  sim::Actor::on_metrics(registry);
  m_pool_ = registry.gauge("olb_mw_pool_unowned", id());
  m_parked_ = registry.gauge("olb_mw_parked_workers", id());
}

void MwMaster::on_metrics_poll() {
  // Same definition as state_tap's holds_work: backlog is the unowned pool
  // length — intervals no live worker is exploring.
  std::int64_t backlog = 0;
  for (const Entry& e : pool_) {
    if (e.owner == -1) backlog += static_cast<std::int64_t>(e.length());
  }
  m_pool_->set(backlog);
  m_parked_->set(static_cast<std::int64_t>(parked_.size()));
}

void MwMaster::on_start() {
  if (config_.fault_tolerant) {
    const auto n = static_cast<std::size_t>(num_peers());
    worker_down_.assign(n, 0);
    request_epoch_.assign(n, -1);
    served_epoch_.assign(n, -1);
  }
}

MwMaster::Entry* MwMaster::largest_entry() {
  Entry* best = nullptr;
  for (Entry& e : pool_) {
    if (e.length() == 0) continue;
    if (best == nullptr || e.length() > best->length()) best = &e;
  }
  return best;
}

void MwMaster::drop_entry_of(int worker) {
  std::erase_if(pool_, [worker](const Entry& e) { return e.owner == worker; });
}

void MwMaster::on_request(int worker, std::int64_t epoch) {
  if (config_.fault_tolerant) {
    // Retransmit of a request we already answered (the kWork is, or was, in
    // flight) or of one still parked — the epoch disambiguates both from a
    // genuinely new request.
    if (epoch == served_epoch_[worker]) return;
    if (std::find(parked_.begin(), parked_.end(), worker) != parked_.end()) {
      return;
    }
    request_epoch_[worker] = epoch;
  }
  // A request implies the worker's interval is exhausted.
  drop_entry_of(worker);
  parked_.push_back(worker);
  serve_parked();
  emit_trace(trace::EventKind::kQueueDepth, -1, 0,
             static_cast<std::int64_t>(parked_.size()));
  maybe_terminate();
}

void MwMaster::serve_parked() {
  while (!parked_.empty()) {
    const int worker = parked_.front();
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    if (!assigned_initial_) {
      // First assignment: the whole problem.
      assigned_initial_ = true;
      begin = 0;
      end = factory_->interval_total();
    } else {
      // Reclaimed intervals of crashed workers are served whole: nobody is
      // exploring them, so halving would strand the remainder (and a
      // length-1 orphan could never be split at all).
      Entry* orphan = nullptr;
      if (config_.fault_tolerant) {
        for (Entry& e : pool_) {
          if (e.owner >= 0 || e.length() == 0) continue;
          if (orphan == nullptr || e.length() > orphan->length()) orphan = &e;
        }
      }
      if (orphan != nullptr) {
        begin = orphan->begin;
        end = orphan->end;
        orphan->end = orphan->begin;  // now empty; harmless in the pool
      } else {
        Entry* victim = largest_entry();
        if (victim == nullptr || victim->length() < 2) return;  // nothing to split
        const std::uint64_t mid = victim->begin + victim->length() / 2;
        begin = mid;
        end = victim->end;
        victim->end = mid;
        if (victim->owner >= 0) {
          // Epoch-pinned like checkpoints: a spike-delayed notify landing
          // after the owner was served a *newer* interval must not truncate
          // that one (the cut-away segment would never be explored).
          const std::int64_t epoch =
              config_.fault_tolerant ? served_epoch_[victim->owner] : 0;
          send(victim->owner, sim::Message(kMWSplitNotify, bound_,
                                           static_cast<std::int64_t>(mid),
                                           epoch));
        }
      }
    }
    parked_.erase(parked_.begin());
    pool_.push_back(Entry{worker, begin, end});
    if (config_.fault_tolerant) served_epoch_[worker] = request_epoch_[worker];
    emit_trace(trace::EventKind::kServe, worker, kMWRequest, 0,
               static_cast<std::int64_t>(end - begin));
    auto work = factory_->make_interval_work(begin, end);
    if (bound_ != kNoBound) work->observe_bound(bound_);
    sim::Message m(kWork, bound_);
    m.payload = std::make_unique<WorkPayload>(std::move(work));
    send(worker, std::move(m));
  }
}

void MwMaster::maybe_terminate() {
  if (terminated_) return;
  if (!assigned_initial_) return;  // no worker ever asked: impossible in runs
  const int live_workers = num_peers() - 1 - crashed_workers_;
  if (static_cast<int>(parked_.size()) != live_workers) return;
  for (const Entry& e : pool_) OLB_CHECK(e.length() == 0);
  terminated_ = true;
  done_time_ = now();
  for (int w = 1; w < num_peers(); ++w) {
    if (config_.fault_tolerant && worker_down_[w] != 0) continue;
    send(w, sim::Message(kTerminate, bound_));
  }
}

void MwMaster::broadcast_bound(int except) {
  for (int w = 1; w < num_peers(); ++w) {
    if (config_.fault_tolerant && worker_down_[w] != 0) continue;
    if (w != except) send(w, sim::Message(kBound, bound_));
  }
}

void MwMaster::on_peer_down(int peer) {
  OLB_CHECK(config_.fault_tolerant);
  const auto idx = static_cast<std::size_t>(peer);
  if (idx >= worker_down_.size() || worker_down_[idx] != 0) return;
  worker_down_[idx] = 1;
  ++crashed_workers_;
  if (terminated_) return;
  parked_.erase(std::remove(parked_.begin(), parked_.end(), peer), parked_.end());
  // Reclaim the crashed worker's interval as of its last checkpoint; it is
  // re-served whole, and B&B re-exploration is idempotent.
  for (Entry& e : pool_) {
    if (e.owner == peer) e.owner = -1;
  }
  serve_parked();  // the reclaimed interval may feed parked workers
  maybe_terminate();
}

void MwMaster::on_message(sim::Message m) {
  if (m.type != kTerminate && m.a < bound_) {
    bound_ = m.a;
    broadcast_bound(m.src);
  }
  if (config_.fault_tolerant) {
    if (m.src >= 0 && m.src < static_cast<int>(worker_down_.size()) &&
        worker_down_[m.src] != 0 && m.type != kWork) {
      return;  // in-flight message of a dead worker
    }
    if (terminated_) {
      if (m.type == kMWRequest) {
        // The worker missed the broadcast (dropped kTerminate).
        send(m.src, sim::Message(kTerminate, bound_));
      }
      return;
    }
  }
  switch (m.type) {
    case kMWRequest:
      on_request(m.src, m.b);
      break;
    case kMWCheckpoint: {
      // A latency-spiked checkpoint can arrive after the worker's interval
      // was dropped (its next request overtook it) and a fresh one served;
      // applying the stale position to the fresh entry would advance its
      // begin over never-explored work — silently pruning the search space.
      // The epoch pins the checkpoint to the serve it progresses (found by
      // the conformance fuzzer: a "lossless" MW run missing the optimum).
      if (config_.fault_tolerant && m.c != served_epoch_[m.src]) break;
      const auto pos = static_cast<std::uint64_t>(m.b);
      for (Entry& e : pool_) {
        if (e.owner == m.src) {
          e.begin = std::min(std::max(e.begin, pos), e.end);
          break;
        }
      }
      break;
    }
    case kBound:
      break;  // bound already absorbed above
    case kWork:
      // Work bounced off a crashed worker. Discard: the reclaimed pool
      // entry still covers this interval and will be re-served.
      OLB_CHECK_MSG(config_.fault_tolerant, "unexpected kWork at MwMaster");
      break;
    default:
      OLB_CHECK_MSG(false, "unexpected message type for MwMaster");
  }
}

// ---------------------------------------------------------------- worker ---

void MwWorker::on_start() { request_work(); }

void MwWorker::request_work() {
  if (request_outstanding_ || terminated_) return;
  request_outstanding_ = true;
  emit_trace(trace::EventKind::kIdleBegin);
  emit_trace(trace::EventKind::kRequest, kMasterId, kMWRequest);
  if (config_.fault_tolerant) {
    ++req_epoch_;
    send(kMasterId, sim::Message(kMWRequest, bound_, req_epoch_));
    set_timer(config_.request_timeout,
              kMwRequestTimeoutTimer | (req_epoch_ << kTimerTagShift));
  } else {
    send(kMasterId, sim::Message(kMWRequest, bound_));
  }
}

void MwWorker::became_idle() { request_work(); }

void MwWorker::diffuse_bound() {
  // Workers report improvements to the master, which rebroadcasts.
  send(kMasterId, sim::Message(kBound, bound_));
}

void MwWorker::on_timer(std::int64_t tag) {
  switch (tag & kTimerTagMask) {
    case kMwCheckpointTimer: {
      checkpoint_armed_ = false;
      if (terminated_ || !holds_work()) return;
      const auto* iv = dynamic_cast<const IntervalWork*>(work_.get());
      OLB_CHECK(iv != nullptr);
      // The epoch ties the checkpoint to the serve that produced this
      // interval; the master must not apply it to a later one.
      send(kMasterId,
           sim::Message(kMWCheckpoint, bound_,
                        static_cast<std::int64_t>(iv->interval_position()),
                        req_epoch_));
      checkpoint_armed_ = true;
      set_timer(config_.checkpoint_period, kMwCheckpointTimer);
      return;
    }
    case kMwRequestTimeoutTimer:
      if (terminated_ || !request_outstanding_) return;
      if ((tag >> kTimerTagShift) != req_epoch_) return;  // answered
      count_retry(kMasterId, kMWRequest, req_epoch_);
      send(kMasterId, sim::Message(kMWRequest, bound_, req_epoch_));
      set_timer(config_.request_timeout,
                kMwRequestTimeoutTimer | (req_epoch_ << kTimerTagShift));
      return;
    default:
      OLB_CHECK_MSG(false, "unexpected timer tag for MwWorker");
  }
}

void MwWorker::on_message(sim::Message m) {
  if (m.type != kTerminate) note_bound(m.a);
  if (terminated_) {
    OLB_CHECK(m.type != kWork);
    return;
  }
  switch (m.type) {
    case kWork: {
      request_outstanding_ = false;
      emit_trace(trace::EventKind::kIdleEnd, m.src, m.type);
      auto* payload = static_cast<WorkPayload*>(m.payload.get());
      acquire_work(std::move(payload->work));
      if (!checkpoint_armed_) {
        checkpoint_armed_ = true;
        set_timer(config_.checkpoint_period, kMwCheckpointTimer);
      }
      continue_processing();
      break;
    }
    case kMWSplitNotify: {
      // Stale notify for an interval this worker already exhausted (its
      // next request overtook the notify); truncating the current interval
      // would silently orphan the cut-away segment. Found by the
      // conformance fuzzer as a "lossless" run missing the optimum.
      if (config_.fault_tolerant && m.c != req_epoch_) break;
      if (work_ != nullptr) {
        auto* iv = dynamic_cast<IntervalWork*>(work_.get());
        OLB_CHECK(iv != nullptr);
        iv->interval_truncate(static_cast<std::uint64_t>(m.b));
        if (!holds_work() && !computing()) request_work();
      }
      break;
    }
    case kBound:
      break;  // absorbed by note_bound above
    case kTerminate:
      OLB_CHECK_MSG(!holds_work(), "terminate reached a worker still holding work");
      terminated_ = true;
      break;
    default:
      OLB_CHECK_MSG(false, "unexpected message type for MwWorker");
  }
}

}  // namespace olb::lb
