#include "lb/ahmw.hpp"

#include <cmath>

#include "support/check.hpp"

namespace olb::lb {

AhmwPeer::AhmwPeer(std::shared_ptr<const overlay::TreeOverlay> tree,
                   AhmwConfig config, std::unique_ptr<Work> initial_work)
    : PeerBase(config.peer), tree_(std::move(tree)), config_(config),
      initial_work_(std::move(initial_work)) {}

void AhmwPeer::on_start() {
  OLB_CHECK((initial_work_ != nullptr) == is_root());
  if (config_.fault_tolerant) {
    peer_down_.assign(static_cast<std::size_t>(num_peers()), 0);
    if (is_root()) set_timer(config_.lease_interval, kRwsTermPollTimer);
  }
  if (is_master()) {
    const int my_level = tree_->depth(id());
    for (int p = 0; p < tree_->size(); ++p) {
      if (p != id() && !tree_->children(p).empty() && tree_->depth(p) == my_level) {
        level_peers_.push_back(p);
      }
    }
  }
  if (is_root()) {
    ds_.make_initiator();
    OLB_CHECK(acquire_work(std::move(initial_work_)));
    continue_processing();
  } else {
    became_idle();
  }
}

double AhmwPeer::grain_fraction() const {
  // A level-L master hands out absolute pieces of total/B^(L+1) work units,
  // converted here into a fraction of its current local amount.
  const double amount = work_ != nullptr ? work_->amount() : 0.0;
  if (amount <= 0.0) return 0.0;
  OLB_CHECK_MSG(config_.total_amount > 0.0, "AhmwConfig::total_amount unset");
  const double level = static_cast<double>(tree_->depth(id()));
  const double piece =
      config_.total_amount / std::pow(config_.decomposition_base, level + 1.0);
  return std::min(0.5, piece / amount);
}

void AhmwPeer::became_idle() {
  if (terminated_) return;
  emit_trace(trace::EventKind::kIdleBegin);
  // Under faults Dijkstra–Scholten is abandoned (a lost signal hangs it);
  // the top master's poll detects termination instead.
  if (!config_.fault_tolerant) maybe_detach();
  if (terminated_ || request_outstanding_) return;
  if (is_root()) return;  // the top master only waits for its subtree
  pull_from_parent();
}

void AhmwPeer::send_request(int target, int type) {
  request_outstanding_ = true;
  emit_trace(trace::EventKind::kRequest, target, type);
  if (config_.fault_tolerant) {
    request_target_ = target;
    // The sequence number travels in the request, is echoed by kStealFail
    // and voids both stale failure replies and stale timeout timers.
    send(target, make_msg(type, ++req_seq_));
    set_timer(config_.request_timeout,
              kAhmwRequestTimeoutTimer | (req_seq_ << kTimerTagShift));
  } else {
    send(target, make_msg(type));
  }
}

void AhmwPeer::pull_from_parent() {
  if (terminated_ || request_outstanding_ || holds_work()) return;
  send_request(tree_->parent(id()), kMWRequest);
}

void AhmwPeer::steal_from_sibling() {
  if (terminated_ || request_outstanding_ || holds_work()) return;
  if (level_peers_.empty()) {
    arm_retry();
    return;
  }
  const int target =
      level_peers_[rng().below(static_cast<std::uint64_t>(level_peers_.size()))];
  send_request(target, kSteal);
}

void AhmwPeer::arm_retry() {
  if (retry_armed_ || terminated_) return;
  retry_armed_ = true;
  set_timer(config_.retry_delay, kAhmwRetryTimer);
}

void AhmwPeer::on_timer(std::int64_t tag) {
  switch (tag & kTimerTagMask) {
    case kAhmwRetryTimer:
      retry_armed_ = false;
      if (terminated_ || holds_work() || request_outstanding_) return;
      if (!is_root()) pull_from_parent();
      return;
    case kAhmwRequestTimeoutTimer:
      if (terminated_ || !request_outstanding_) return;
      if ((tag >> kTimerTagShift) != req_seq_) return;  // answered
      count_retry(request_target_, kMWRequest, req_seq_);
      request_outstanding_ = false;
      if (!holds_work() && !is_root()) pull_from_parent();
      return;
    case kRwsTermPollTimer:
      on_poll_tick();
      return;
    default:
      OLB_CHECK_MSG(false, "unexpected timer tag for AhmwPeer");
  }
}

void AhmwPeer::maybe_detach() {
  const bool is_passive = !holds_work() && !computing();
  if (!ds_.can_detach(is_passive)) return;
  const int parent = ds_.detach();
  if (parent >= 0) {
    send(parent, make_msg(kSignal));
  } else {
    declare_termination();
  }
}

void AhmwPeer::declare_termination() {
  terminated_ = true;
  done_time_ = now();
  for (int c : tree_->children(id())) {
    if (config_.fault_tolerant && peer_down_[c] != 0) continue;
    send(c, make_msg(kTerminate));
  }
}

void AhmwPeer::diffuse_bound() {
  if (!is_root()) send(tree_->parent(id()), make_msg(kBound));
  for (int c : tree_->children(id())) {
    if (config_.fault_tolerant && peer_down_[c] != 0) continue;
    send(c, make_msg(kBound));
  }
}

void AhmwPeer::on_poll_tick() {
  if (terminated_) return;  // no re-arm
  const int n = num_peers();
  int live_others = 0;
  for (int p = 0; p < n; ++p) {
    if (p != id() && peer_down_[p] == 0) ++live_others;
  }
  poll_.begin_round(++poll_round_, n, live_others);
  for (int p = 0; p < n; ++p) {
    if (p == id() || peer_down_[p] != 0) continue;
    send(p, make_msg(kTermProbe, static_cast<std::int64_t>(poll_round_)));
  }
  if (live_others == 0) conclude_poll();  // sole survivor
  if (!terminated_) set_timer(config_.lease_interval, kRwsTermPollTimer);
}

void AhmwPeer::conclude_poll() {
  if (poll_.conclude(passive(), work_sent_, work_recv_, crash_epoch_)) {
    declare_termination();
  }
}

void AhmwPeer::on_peer_down(int peer) {
  OLB_CHECK(config_.fault_tolerant);
  const auto idx = static_cast<std::size_t>(peer);
  if (idx >= peer_down_.size() || peer_down_[idx] != 0) return;
  peer_down_[idx] = 1;
  ++crash_epoch_;
  if (terminated_) return;
  poll_.invalidate();  // snapshots across a crash boundary don't compare
  if (request_outstanding_ && request_target_ == peer) {
    // The pull died with its target; retry against the hierarchy.
    request_outstanding_ = false;
    ++req_seq_;
    if (!holds_work() && !is_root()) pull_from_parent();
  }
}

void AhmwPeer::on_message(sim::Message m) {
  if (m.type != kTerminate) note_bound(m.a);
  if (config_.fault_tolerant && m.src >= 0 &&
      m.src < static_cast<int>(peer_down_.size()) && peer_down_[m.src] != 0 &&
      m.type != kWork) {
    return;  // in-flight message of a dead peer (work still bounces back)
  }
  if (terminated_) {
    OLB_CHECK(m.type != kWork);
    if (m.type == kMWRequest || m.type == kSteal) {
      // Straggler pull from a peer the broadcast has not reached yet. Under
      // faults the sender may have *missed* the broadcast entirely, so tell
      // it to stop; fault-free it just gets a plain failure.
      send(m.src, make_msg(config_.fault_tolerant ? kTerminate : kStealFail,
                           config_.fault_tolerant ? 0 : m.b));
    } else if (config_.fault_tolerant && m.type == kTermProbe) {
      send(m.src, make_msg(kTerminate));
    }
    return;
  }
  switch (m.type) {
    case kMWRequest: {  // a child pulls a level-grain piece
      if (holds_work()) {
        const double fraction = grain_fraction();
        if (auto w = split_work(fraction)) {
          ds_.on_work_sent();
          ++work_sent_;  // pure counter: FT TermPoll and state taps read it
          emit_trace(trace::EventKind::kServe, m.src, kMWRequest,
                     trace::fraction_ppm(fraction),
                     static_cast<std::int64_t>(w->amount()));
          auto reply = make_msg(kWork);
          reply.payload = std::make_unique<WorkPayload>(std::move(w));
          send(m.src, std::move(reply));
          break;
        }
      }
      send(m.src, make_msg(kStealFail, m.b));
      break;
    }
    case kSteal: {  // an empty same-level master steals half
      if (holds_work()) {
        if (auto w = split_work(0.5)) {
          ds_.on_work_sent();
          ++work_sent_;  // pure counter, as above
          emit_trace(trace::EventKind::kServe, m.src, kSteal,
                     trace::fraction_ppm(0.5),
                     static_cast<std::int64_t>(w->amount()));
          auto reply = make_msg(kWork);
          reply.payload = std::make_unique<WorkPayload>(std::move(w));
          send(m.src, std::move(reply));
          break;
        }
      }
      send(m.src, make_msg(kStealFail, m.b));
      break;
    }
    case kStealFail: {
      if (config_.fault_tolerant && m.b != req_seq_) break;  // stale/dup
      request_outstanding_ = false;
      if (holds_work()) break;
      // Parent dry: masters try a same-level peer before backing off.
      if (is_master() && m.src == tree_->parent(id())) {
        steal_from_sibling();
      } else {
        arm_retry();
      }
      break;
    }
    case kWork: {
      request_outstanding_ = false;
      ++work_recv_;  // pure counter, mirroring work_sent_
      if (config_.fault_tolerant) {
        ++req_seq_;  // void any outstanding request timeout
      }
      emit_trace(trace::EventKind::kIdleEnd, m.src, m.type);
      if (!config_.fault_tolerant && ds_.on_work_received(m.src)) {
        send(m.src, make_msg(kSignal));
      }
      auto* payload = static_cast<WorkPayload*>(m.payload.get());
      acquire_work(std::move(payload->work));
      continue_processing();
      break;
    }
    case kSignal: {
      ds_.on_signal();
      maybe_detach();
      break;
    }
    case kTermProbe: {
      send(m.src, make_msg(kTermAck,
                           pack_term_ack_b(static_cast<std::uint64_t>(m.b),
                                           passive()),
                           pack_term_ack_c(work_sent_, work_recv_)));
      break;
    }
    case kTermAck: {
      if (poll_.on_ack(term_ack_round(m.b), m.src, term_ack_passive(m.b),
                       term_ack_sent(m.c), term_ack_recv(m.c))) {
        conclude_poll();
      }
      break;
    }
    case kBound:
      // Forward improvements along the hierarchy.
      if (bound_ < diffused_bound_) {
        diffused_bound_ = bound_;
        if (!is_root() && tree_->parent(id()) != m.src) {
          send(tree_->parent(id()), make_msg(kBound));
        }
        for (int c : tree_->children(id())) {
          if (c != m.src &&
              !(config_.fault_tolerant && peer_down_[c] != 0)) {
            send(c, make_msg(kBound));
          }
        }
      }
      break;
    case kTerminate: {
      OLB_CHECK_MSG(!holds_work(), "terminate reached a peer still holding work");
      terminated_ = true;
      done_time_ = now();
      for (int c : tree_->children(id())) {
        if (config_.fault_tolerant && peer_down_[c] != 0) continue;
        send(c, make_msg(kTerminate));
      }
      break;
    }
    default:
      OLB_CHECK_MSG(false, "unexpected message type for AhmwPeer");
  }
}

}  // namespace olb::lb
