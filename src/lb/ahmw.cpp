#include "lb/ahmw.hpp"

#include <cmath>

#include "support/check.hpp"

namespace olb::lb {

AhmwPeer::AhmwPeer(std::shared_ptr<const overlay::TreeOverlay> tree,
                   AhmwConfig config, std::unique_ptr<Work> initial_work)
    : PeerBase(config.peer), tree_(std::move(tree)), config_(config),
      initial_work_(std::move(initial_work)) {}

void AhmwPeer::on_start() {
  OLB_CHECK((initial_work_ != nullptr) == is_root());
  if (is_master()) {
    const int my_level = tree_->depth(id());
    for (int p = 0; p < tree_->size(); ++p) {
      if (p != id() && !tree_->children(p).empty() && tree_->depth(p) == my_level) {
        level_peers_.push_back(p);
      }
    }
  }
  if (is_root()) {
    ds_.make_initiator();
    OLB_CHECK(acquire_work(std::move(initial_work_)));
    continue_processing();
  } else {
    became_idle();
  }
}

double AhmwPeer::grain_fraction() const {
  // A level-L master hands out absolute pieces of total/B^(L+1) work units,
  // converted here into a fraction of its current local amount.
  const double amount = work_ != nullptr ? work_->amount() : 0.0;
  if (amount <= 0.0) return 0.0;
  OLB_CHECK_MSG(config_.total_amount > 0.0, "AhmwConfig::total_amount unset");
  const double level = static_cast<double>(tree_->depth(id()));
  const double piece =
      config_.total_amount / std::pow(config_.decomposition_base, level + 1.0);
  return std::min(0.5, piece / amount);
}

void AhmwPeer::became_idle() {
  if (terminated_) return;
  emit_trace(trace::EventKind::kIdleBegin);
  maybe_detach();
  if (terminated_ || request_outstanding_) return;
  if (is_root()) return;  // the top master only waits for its subtree
  pull_from_parent();
}

void AhmwPeer::pull_from_parent() {
  if (terminated_ || request_outstanding_ || holds_work()) return;
  request_outstanding_ = true;
  emit_trace(trace::EventKind::kRequest, tree_->parent(id()), kMWRequest);
  send(tree_->parent(id()), make_msg(kMWRequest));
}

void AhmwPeer::steal_from_sibling() {
  if (terminated_ || request_outstanding_ || holds_work()) return;
  if (level_peers_.empty()) {
    arm_retry();
    return;
  }
  const int target =
      level_peers_[rng().below(static_cast<std::uint64_t>(level_peers_.size()))];
  request_outstanding_ = true;
  emit_trace(trace::EventKind::kRequest, target, kSteal);
  send(target, make_msg(kSteal));
}

void AhmwPeer::arm_retry() {
  if (retry_armed_ || terminated_) return;
  retry_armed_ = true;
  set_timer(config_.retry_delay, kAhmwRetryTimer);
}

void AhmwPeer::on_timer(std::int64_t tag) {
  OLB_CHECK(tag == kAhmwRetryTimer);
  retry_armed_ = false;
  if (terminated_ || holds_work() || request_outstanding_) return;
  if (!is_root()) pull_from_parent();
}

void AhmwPeer::maybe_detach() {
  const bool passive = !holds_work() && !computing();
  if (!ds_.can_detach(passive)) return;
  const int parent = ds_.detach();
  if (parent >= 0) {
    send(parent, make_msg(kSignal));
  } else {
    declare_termination();
  }
}

void AhmwPeer::declare_termination() {
  terminated_ = true;
  done_time_ = now();
  for (int c : tree_->children(id())) send(c, make_msg(kTerminate));
}

void AhmwPeer::diffuse_bound() {
  if (!is_root()) send(tree_->parent(id()), make_msg(kBound));
  for (int c : tree_->children(id())) send(c, make_msg(kBound));
}

void AhmwPeer::on_message(sim::Message m) {
  if (m.type != kTerminate) note_bound(m.a);
  if (terminated_) {
    OLB_CHECK(m.type != kWork);
    if (m.type == kMWRequest || m.type == kSteal) {
      // Straggler pull from a peer the broadcast has not reached yet.
      send(m.src, make_msg(kStealFail));
    }
    return;
  }
  switch (m.type) {
    case kMWRequest: {  // a child pulls a level-grain piece
      if (holds_work()) {
        const double fraction = grain_fraction();
        if (auto w = split_work(fraction)) {
          ds_.on_work_sent();
          emit_trace(trace::EventKind::kServe, m.src, kMWRequest,
                     trace::fraction_ppm(fraction),
                     static_cast<std::int64_t>(w->amount()));
          auto reply = make_msg(kWork);
          reply.payload = std::make_unique<WorkPayload>(std::move(w));
          send(m.src, std::move(reply));
          break;
        }
      }
      send(m.src, make_msg(kStealFail));
      break;
    }
    case kSteal: {  // an empty same-level master steals half
      if (holds_work()) {
        if (auto w = split_work(0.5)) {
          ds_.on_work_sent();
          emit_trace(trace::EventKind::kServe, m.src, kSteal,
                     trace::fraction_ppm(0.5),
                     static_cast<std::int64_t>(w->amount()));
          auto reply = make_msg(kWork);
          reply.payload = std::make_unique<WorkPayload>(std::move(w));
          send(m.src, std::move(reply));
          break;
        }
      }
      send(m.src, make_msg(kStealFail));
      break;
    }
    case kStealFail: {
      request_outstanding_ = false;
      if (holds_work()) break;
      // Parent dry: masters try a same-level peer before backing off.
      if (is_master() && m.src == tree_->parent(id())) {
        steal_from_sibling();
      } else {
        arm_retry();
      }
      break;
    }
    case kWork: {
      request_outstanding_ = false;
      emit_trace(trace::EventKind::kIdleEnd, m.src, m.type);
      if (ds_.on_work_received(m.src)) send(m.src, make_msg(kSignal));
      auto* payload = static_cast<WorkPayload*>(m.payload.get());
      acquire_work(std::move(payload->work));
      continue_processing();
      break;
    }
    case kSignal: {
      ds_.on_signal();
      maybe_detach();
      break;
    }
    case kBound:
      // Forward improvements along the hierarchy.
      if (bound_ < diffused_bound_) {
        diffused_bound_ = bound_;
        if (!is_root() && tree_->parent(id()) != m.src) {
          send(tree_->parent(id()), make_msg(kBound));
        }
        for (int c : tree_->children(id())) {
          if (c != m.src) send(c, make_msg(kBound));
        }
      }
      break;
    case kTerminate: {
      OLB_CHECK_MSG(!holds_work(), "terminate reached a peer still holding work");
      terminated_ = true;
      done_time_ = now();
      for (int c : tree_->children(id())) send(c, make_msg(kTerminate));
      break;
    }
    default:
      OLB_CHECK_MSG(false, "unexpected message type for AhmwPeer");
  }
}

}  // namespace olb::lb
