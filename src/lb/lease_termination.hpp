// Lease-style poll termination for the flat protocols under fault injection.
//
// Dijkstra–Scholten bookkeeping is not fault-tolerant: a lost kSignal hangs
// the diffusing computation forever and a duplicated one underflows a
// deficit counter. Rather than patch DS, the fault-tolerant RWS and AHMW
// variants replace it with an initiator-led poll — Mattern's four-counter
// method over a star:
//
//   every lease interval the initiator broadcasts kTermProbe(round); each
//   live peer replies kTermAck carrying (passive?, cumulative work
//   transfers sent, cumulative work transfers received).
//
// The initiator declares termination after two *completed, all-passive*
// rounds that are one lease apart and agree exactly on the summed counters
// and on the number of known crashes. Why this is safe: the lease interval
// exceeds the maximum one-message lifetime, so a work transfer in flight
// during round k lands before round k+1 is polled and bumps the receiver's
// counter — two identical lease-separated snapshots therefore prove no
// transfer was in flight between them. When no peer has crashed the global
// counters must additionally balance (sent == recv); a crashed peer takes
// its counter contributions with it, so after crashes only cross-round
// stability (at an unchanged crash count) is required. Duplicate probes or
// acks are absorbed by per-peer dedup; lost ones simply leave a round
// incomplete, superseded at the next lease tick.
#pragma once

#include <cstdint>
#include <vector>

namespace olb::lb {

class TermPoll {
 public:
  /// Starts (or restarts) a poll round. `expected_acks` is the number of
  /// live peers being polled (excluding the initiator itself).
  void begin_round(std::uint64_t round, int num_peers, int expected_acks) {
    round_ = round;
    expected_ = expected_acks;
    responded_.assign(static_cast<std::size_t>(num_peers), 0);
    acks_ = 0;
    sum_sent_ = 0;
    sum_recv_ = 0;
    all_passive_ = true;
  }

  std::uint64_t round() const { return round_; }

  /// Feeds one kTermAck; returns true iff it just completed the round.
  /// Stale-round and duplicate acks are ignored.
  bool on_ack(std::uint64_t round, int peer, bool passive, std::uint64_t sent,
              std::uint64_t recv) {
    if (round != round_ || responded_.empty()) return false;
    const auto idx = static_cast<std::size_t>(peer);
    if (idx >= responded_.size() || responded_[idx] != 0) return false;
    responded_[idx] = 1;
    ++acks_;
    all_passive_ = all_passive_ && passive;
    sum_sent_ += sent;
    sum_recv_ += recv;
    return acks_ == expected_;
  }

  bool all_passive() const { return all_passive_; }

  /// Call after a completed round, adding the initiator's own state.
  /// Returns true when the termination condition described above is met.
  bool conclude(bool self_passive, std::uint64_t self_sent,
                std::uint64_t self_recv, int crash_count) {
    if (!all_passive_ || !self_passive) {
      have_prev_ = false;
      return false;
    }
    const Snapshot cur{sum_sent_ + self_sent, sum_recv_ + self_recv, crash_count};
    if (crash_count == 0 && cur.sent != cur.recv) {
      have_prev_ = false;
      return false;
    }
    if (have_prev_ && prev_.sent == cur.sent && prev_.recv == cur.recv &&
        prev_.crashes == cur.crashes) {
      return true;
    }
    prev_ = cur;
    have_prev_ = true;
    return false;
  }

  /// Forgets the previous clean round (call when a new crash is learned:
  /// snapshots across a crash boundary are not comparable).
  void invalidate() { have_prev_ = false; }

 private:
  struct Snapshot {
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    int crashes = 0;
  };

  std::uint64_t round_ = 0;
  int expected_ = 0;
  int acks_ = 0;
  std::uint64_t sum_sent_ = 0;
  std::uint64_t sum_recv_ = 0;
  bool all_passive_ = true;
  std::vector<char> responded_;
  Snapshot prev_;
  bool have_prev_ = false;
};

}  // namespace olb::lb
