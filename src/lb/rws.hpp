// Random Work Stealing (RWS) — the paper's generic reference baseline.
//
// An idle peer picks a victim uniformly at random, sends a steal request and
// waits for the answer: half the victim's work (steal-half, the strategy the
// literature and the paper retain as best) or a failure, after which the
// thief immediately retries with a new random victim. Termination is
// detected with Dijkstra–Scholten over the work-transfer graph, rooted at
// the peer the problem was initially pushed to; that initiator broadcasts
// kTerminate when the diffusing computation collapses.
//
// RWS can be read as work stealing over a *complete* overlay: idle peers
// probe blindly, which is competitive at low scale and degrades at high
// scale — the effect the paper measures in Fig. 5.
#pragma once

#include <memory>

#include "lb/ds_termination.hpp"
#include "lb/peer_base.hpp"

namespace olb::lb {

struct RwsConfig {
  PeerConfig peer;
  double steal_fraction = 0.5;  ///< steal-half
  /// Pause between a failed steal and the next attempt (0 = immediate).
  sim::Time retry_delay = 0;
};

class RwsPeer final : public PeerBase {
 public:
  /// `initial_work` non-null exactly for the initiator peer.
  RwsPeer(RwsConfig config, std::unique_ptr<Work> initial_work);

  bool protocol_terminated() const { return terminated_; }
  sim::Time done_time() const { return done_time_; }

 protected:
  void on_start() override;
  void on_message(sim::Message m) override;
  void on_timer(std::int64_t tag) override;
  void became_idle() override;
  void diffuse_bound() override;

 private:
  void try_steal();
  void maybe_detach();
  void declare_termination();

  sim::Message make_msg(int type, std::int64_t b = 0, std::int64_t c = 0) const {
    return sim::Message(type, bound_, b, c);
  }

  RwsConfig config_;
  std::unique_ptr<Work> initial_work_;
  DsTermination ds_;
  bool steal_outstanding_ = false;
  sim::Time done_time_ = -1;
};

}  // namespace olb::lb
