// Random Work Stealing (RWS) — the paper's generic reference baseline.
//
// An idle peer picks a victim uniformly at random, sends a steal request and
// waits for the answer: half the victim's work (steal-half, the strategy the
// literature and the paper retain as best) or a failure, after which the
// thief immediately retries with a new random victim. Termination is
// detected with Dijkstra–Scholten over the work-transfer graph, rooted at
// the peer the problem was initially pushed to; that initiator broadcasts
// kTerminate when the diffusing computation collapses.
//
// RWS can be read as work stealing over a *complete* overlay: idle peers
// probe blindly, which is competitive at low scale and degrades at high
// scale — the effect the paper measures in Fig. 5.
//
// Fault tolerance (config.fault_tolerant, set by the driver iff a FaultPlan
// is enabled): steal requests time out and are retried against a fresh live
// victim, and Dijkstra–Scholten — which a single lost or duplicated kSignal
// corrupts — is replaced by the initiator-led poll termination of
// lease_termination.hpp over per-peer work-transfer counters.
#pragma once

#include <memory>

#include "lb/ds_termination.hpp"
#include "lb/lease_termination.hpp"
#include "lb/peer_base.hpp"

namespace olb::lb {

struct RwsConfig {
  PeerConfig peer;
  double steal_fraction = 0.5;  ///< steal-half
  /// Pause between a failed steal and the next attempt (0 = immediate).
  sim::Time retry_delay = 0;

  // --- fault tolerance (driver sets these iff a FaultPlan is enabled) ---
  bool fault_tolerant = false;
  /// An unanswered kSteal is abandoned and retried after this long.
  sim::Time request_timeout = sim::milliseconds(1);
  /// Poll-termination cadence; must exceed the maximum message lifetime.
  sim::Time lease_interval = sim::milliseconds(2);
};

class RwsPeer final : public PeerBase {
 public:
  /// `initial_work` non-null exactly for the initiator peer.
  RwsPeer(RwsConfig config, std::unique_ptr<Work> initial_work);

  bool protocol_terminated() const { return terminated_; }
  sim::Time done_time() const { return done_time_; }
  /// Number of crashed peers this peer has been notified about.
  int known_crashes() const { return crash_epoch_; }

  StateTap state_tap() const override {
    StateTap t = PeerBase::state_tap();
    t.transfers_sent = work_sent_;
    t.transfers_recv = work_recv_;
    t.pending_requests = steal_outstanding_ ? 1 : 0;
    return t;
  }

 protected:
  void on_start() override;
  void on_message(sim::Message m) override;
  void on_timer(std::int64_t tag) override;
  void on_peer_down(int peer) override;
  void became_idle() override;
  void diffuse_bound() override;

 private:
  void try_steal();
  void maybe_detach();
  void declare_termination();
  bool passive() const { return !holds_work() && !computing(); }
  void on_poll_tick();
  void conclude_poll();

  sim::Message make_msg(int type, std::int64_t b = 0, std::int64_t c = 0) const {
    return sim::Message(type, bound_, b, c);
  }

  RwsConfig config_;
  std::unique_ptr<Work> initial_work_;
  DsTermination ds_;
  bool steal_outstanding_ = false;
  sim::Time done_time_ = -1;

  // fault-tolerance state
  bool initiator_ = false;
  std::vector<char> peer_down_;
  int crash_epoch_ = 0;
  int steal_victim_ = -1;
  std::int64_t steal_seq_ = 0;  ///< generation of the steal-timeout timer
  std::uint64_t work_sent_ = 0;
  std::uint64_t work_recv_ = 0;
  TermPoll poll_;               ///< initiator only
  std::uint64_t poll_round_ = 0;
};

}  // namespace olb::lb
