// Dijkstra–Scholten diffusing-computation termination detection.
//
// Used by the RWS and AHMW baselines (the paper: "we use the standard tree
// based Dijkstra termination detection algorithm taken from previous work
// stealing studies"). Work transfers are the basic messages of the diffusing
// computation: the first transfer that reaches an unengaged peer makes the
// sender its detection-tree parent; every other transfer is signalled
// immediately; a peer signals its parent and detaches once it is passive
// with a zero deficit. The initiator detects global termination when it is
// passive with zero deficit.
#pragma once

#include "support/check.hpp"

namespace olb::lb {

class DsTermination {
 public:
  /// Marks this peer as the diffusing computation's initiator (the peer the
  /// initial work is pushed to). The initiator never has a parent.
  void make_initiator() {
    engaged_ = true;
    initiator_ = true;
  }

  /// Records an incoming work message from `src`. Returns true if the
  /// receiver must signal `src` immediately (it was already engaged);
  /// returns false if the message engaged the receiver (signal deferred
  /// until detach()).
  bool on_work_received(int src) {
    if (engaged_) return true;
    engaged_ = true;
    parent_ = src;
    return false;
  }

  void on_work_sent() { ++deficit_; }

  void on_signal() {
    OLB_CHECK(deficit_ > 0);
    --deficit_;
  }

  /// True when this peer may detach (or, for the initiator, declare global
  /// termination): engaged, zero deficit, and the caller says it is passive.
  bool can_detach(bool passive) const { return engaged_ && passive && deficit_ == 0; }

  /// Detaches and returns the parent to signal (-1 for the initiator, which
  /// instead declares termination).
  int detach() {
    OLB_CHECK(engaged_ && deficit_ == 0);
    engaged_ = false;
    const int p = parent_;
    parent_ = -1;
    return initiator_ ? -1 : p;
  }

  bool engaged() const { return engaged_; }
  bool initiator() const { return initiator_; }
  int deficit() const { return deficit_; }

 private:
  bool engaged_ = false;
  bool initiator_ = false;
  int parent_ = -1;
  int deficit_ = 0;
};

}  // namespace olb::lb
