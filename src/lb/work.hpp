// The application-facing work abstraction.
//
// The paper's protocols are generic: they move "work" between peers without
// knowing whether it is a UTS node deque or a B&B interval. Everything a
// protocol needs is captured here:
//
//  * amount()  — the application's own work measure (UTS: pending nodes;
//                B&B: interval length). The paper's subtree-proportional
//                policy splits this quantity.
//  * split(f)  — carve off a transferable fraction f of the work.
//  * merge()   — logically append work acquired from several sources
//                (tree neighbour + bridge), as §II-B of the paper requires.
//  * step(k)   — process up to k work units, reporting simulated cost and
//                any improved incumbent bound (B&B only).
//
// Bound handling: protocols diffuse the best known bound through messages;
// works receive it via observe_bound() and report improvements via
// StepResult so exploration is driven *only* by information that actually
// travelled through the simulated network.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "simnet/message.hpp"
#include "simnet/time.hpp"

namespace olb::lb {

/// Sentinel for "no bound known" (problems are minimisation problems).
inline constexpr std::int64_t kNoBound = std::numeric_limits<std::int64_t>::max();

struct StepResult {
  std::uint64_t units_done = 0;     ///< application units processed
  sim::Time sim_cost = 0;           ///< simulated time the processing took
  bool improved_bound = false;      ///< true if `bound` improved this step
  std::int64_t bound = kNoBound;    ///< best bound known after the step
};

class Work {
 public:
  virtual ~Work() = default;

  Work(const Work&) = delete;
  Work& operator=(const Work&) = delete;

  /// Application-specific work measure; 0 iff empty().
  virtual double amount() const = 0;
  virtual bool empty() const = 0;

  /// Splits off ~fraction (in (0,1)) of this work for transfer to another
  /// peer. Returns nullptr when the work is too small to divide; in that
  /// case this work is unchanged.
  virtual std::unique_ptr<Work> split(double fraction) = 0;

  /// Appends `other` (same concrete type) to this work.
  virtual void merge(std::unique_ptr<Work> other) = 0;

  /// Processes up to max_units units and returns what happened.
  virtual StepResult step(std::uint64_t max_units) = 0;

  /// Installs a bound learnt from the network (no-op for UTS).
  virtual void observe_bound(std::int64_t bound) { (void)bound; }

 protected:
  Work() = default;
};

/// One experiment instance: knows how to create the initial root work.
class Workload {
 public:
  virtual ~Workload() = default;

  /// The entire problem as a single work item (placed on the initial peer).
  virtual std::unique_ptr<Work> make_root_work() = 0;

  /// Human-readable name for reports.
  virtual const char* name() const = 0;
};

/// Message payload moving work across the simulated network.
struct WorkPayload final : sim::MsgPayload {
  explicit WorkPayload(std::unique_ptr<Work> w) : work(std::move(w)) {}
  std::unique_ptr<Work> work;

  double amount() const override {
    return work != nullptr ? work->amount() : 0.0;
  }
};

}  // namespace olb::lb
