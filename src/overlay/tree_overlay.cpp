#include "overlay/tree_overlay.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::overlay {

TreeOverlay TreeOverlay::deterministic(int n, int dmax) {
  OLB_CHECK(n >= 1);
  OLB_CHECK(dmax >= 1);
  std::vector<int> parent(static_cast<std::size_t>(n));
  parent[0] = -1;
  for (int i = 1; i < n; ++i) {
    parent[static_cast<std::size_t>(i)] = (i - 1) / dmax;
  }
  return TreeOverlay(std::move(parent));
}

TreeOverlay TreeOverlay::randomized(int n, std::uint64_t seed) {
  OLB_CHECK(n >= 1);
  Xoshiro256 rng(seed);
  std::vector<int> parent(static_cast<std::size_t>(n));
  parent[0] = -1;
  for (int i = 1; i < n; ++i) {
    parent[static_cast<std::size_t>(i)] =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(i)));
  }
  return TreeOverlay(std::move(parent));
}

TreeOverlay TreeOverlay::from_parents(std::vector<int> parent) {
  return TreeOverlay(std::move(parent));
}

TreeOverlay::TreeOverlay(std::vector<int> parent) : parent_(std::move(parent)) {
  const int n = size();
  OLB_CHECK(n >= 1);
  OLB_CHECK_MSG(parent_[0] == -1, "node 0 must be the root");
  depth_.assign(static_cast<std::size_t>(n), 0);
  subtree_size_.assign(static_cast<std::size_t>(n), 1);
  // Child lists via counting sort into CSR storage: count, prefix-sum,
  // scatter. Scattering ids in ascending order keeps each list ascending —
  // the same order the per-node vectors used to hold.
  child_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 1; i < n; ++i) {
    const int p = parent_[static_cast<std::size_t>(i)];
    OLB_CHECK_MSG(p >= 0 && p < i, "parent ids must precede children");
    ++child_offset_[static_cast<std::size_t>(p) + 1];
    depth_[static_cast<std::size_t>(i)] = depth_[static_cast<std::size_t>(p)] + 1;
    height_ = std::max(height_, depth_[static_cast<std::size_t>(i)]);
  }
  for (int v = 0; v < n; ++v) {
    child_offset_[static_cast<std::size_t>(v) + 1] +=
        child_offset_[static_cast<std::size_t>(v)];
  }
  child_flat_.resize(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  std::vector<std::uint32_t> cursor(child_offset_.begin(), child_offset_.end() - 1);
  for (int i = 1; i < n; ++i) {
    const auto p = static_cast<std::size_t>(parent_[static_cast<std::size_t>(i)]);
    child_flat_[cursor[p]++] = i;
  }
  // parent[i] < i makes a single reverse sweep sufficient for subtree sizes.
  for (int i = n - 1; i >= 1; --i) {
    subtree_size_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(i)])] +=
        subtree_size_[static_cast<std::size_t>(i)];
  }
  validate();
}

int TreeOverlay::max_degree() const {
  std::uint32_t best = 0;
  for (int v = 0; v < size(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    best = std::max(best, child_offset_[i + 1] - child_offset_[i]);
  }
  return static_cast<int>(best);
}

int TreeOverlay::distance(int u, int v) const {
  OLB_CHECK(u >= 0 && u < size() && v >= 0 && v < size());
  int du = depth(u);
  int dv = depth(v);
  int hops = 0;
  while (du > dv) {
    u = parent(u);
    --du;
    ++hops;
  }
  while (dv > du) {
    v = parent(v);
    --dv;
    ++hops;
  }
  while (u != v) {
    u = parent(u);
    v = parent(v);
    hops += 2;
  }
  return hops;
}

std::vector<int> TreeOverlay::bfs_order() const {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(size()));
  std::deque<int> frontier{root()};
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop_front();
    order.push_back(v);
    for (int c : children(v)) frontier.push_back(c);
  }
  return order;
}

void TreeOverlay::validate() const {
  const int n = size();
  OLB_CHECK(subtree_size_[0] == static_cast<std::uint64_t>(n));
  std::uint64_t total_children = 0;
  for (int v = 0; v < n; ++v) {
    std::uint64_t sum = 1;
    for (int c : children(v)) {
      OLB_CHECK(parent(c) == v);
      OLB_CHECK(depth(c) == depth(v) + 1);
      sum += subtree_size(c);
    }
    OLB_CHECK(sum == subtree_size(v));
    total_children += children(v).size();
  }
  OLB_CHECK(total_children == static_cast<std::uint64_t>(n - 1));
}

}  // namespace olb::overlay
