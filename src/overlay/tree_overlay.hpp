// Logical tree overlays connecting the computing peers.
//
// The paper structures n peers (one per core) into a tree overlay and uses
// the *sizes of the induced subtrees* as a proxy for logical computing power
// when deciding how much work to transfer. Two constructions are studied:
//
//  * TD — deterministic tree with an out-degree bound dmax: peers are packed
//    level by level, at most dmax children per node (a complete dmax-ary
//    tree). Peer ids coincide with BFS labels, matching the paper's Fig. 1
//    x-axis.
//  * TR — randomised recursive tree: peer i >= 1 attaches to a parent chosen
//    uniformly at random among peers 0..i-1.
//
// Both constructions guarantee parent id < child id, which the subtree-size
// computation and several protocol invariants rely on.
#pragma once

#include <cstdint>
#include <vector>

namespace olb::overlay {

class TreeOverlay {
 public:
  /// Complete dmax-ary tree on n nodes (the paper's TD). dmax >= 1.
  static TreeOverlay deterministic(int n, int dmax);

  /// Random recursive tree on n nodes (the paper's TR).
  static TreeOverlay randomized(int n, std::uint64_t seed);

  /// Builds from an explicit parent vector (parent[0] must be -1 and
  /// parent[i] < i for i >= 1). Used by tests and custom topologies.
  static TreeOverlay from_parents(std::vector<int> parent);

  int size() const { return static_cast<int>(parent_.size()); }
  int root() const { return 0; }

  int parent(int v) const { return parent_[static_cast<std::size_t>(v)]; }
  const std::vector<int>& children(int v) const {
    return children_[static_cast<std::size_t>(v)];
  }
  /// Number of nodes in the subtree rooted at v (>= 1).
  std::uint64_t subtree_size(int v) const {
    return subtree_size_[static_cast<std::size_t>(v)];
  }
  int depth(int v) const { return depth_[static_cast<std::size_t>(v)]; }
  /// Height of the tree (max depth).
  int height() const { return height_; }
  /// Maximum out-degree over all nodes.
  int max_degree() const;

  /// Hop distance between u and v along tree edges.
  int distance(int u, int v) const;

  /// BFS labelling: bfs_order()[k] is the id of the k-th node in BFS order
  /// (children visited in stored order). For TD this is the identity.
  std::vector<int> bfs_order() const;

  /// Structural sanity checks (single root, acyclic, sizes consistent);
  /// aborts on violation. Cheap; called by the builders.
  void validate() const;

 private:
  explicit TreeOverlay(std::vector<int> parent);

  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<std::uint64_t> subtree_size_;
  std::vector<int> depth_;
  int height_ = 0;
};

}  // namespace olb::overlay
