// Logical tree overlays connecting the computing peers.
//
// The paper structures n peers (one per core) into a tree overlay and uses
// the *sizes of the induced subtrees* as a proxy for logical computing power
// when deciding how much work to transfer. Two constructions are studied:
//
//  * TD — deterministic tree with an out-degree bound dmax: peers are packed
//    level by level, at most dmax children per node (a complete dmax-ary
//    tree). Peer ids coincide with BFS labels, matching the paper's Fig. 1
//    x-axis.
//  * TR — randomised recursive tree: peer i >= 1 attaches to a parent chosen
//    uniformly at random among peers 0..i-1.
//
// Both constructions guarantee parent id < child id, which the subtree-size
// computation and several protocol invariants rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace olb::overlay {

/// Non-owning view of one node's child list inside the overlay's CSR
/// storage (see TreeOverlay below). Supports exactly what the protocol
/// call sites need — ranged-for, size/empty, indexing — so child lists
/// read like the std::vector they used to be.
class ChildSpan {
 public:
  ChildSpan(const int* data, std::size_t size) : data_(data), size_(size) {}

  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int operator[](std::size_t i) const { return data_[i]; }
  int front() const { return data_[0]; }
  int back() const { return data_[size_ - 1]; }

 private:
  const int* data_;
  std::size_t size_;
};

class TreeOverlay {
 public:
  /// Complete dmax-ary tree on n nodes (the paper's TD). dmax >= 1.
  static TreeOverlay deterministic(int n, int dmax);

  /// Random recursive tree on n nodes (the paper's TR).
  static TreeOverlay randomized(int n, std::uint64_t seed);

  /// Builds from an explicit parent vector (parent[0] must be -1 and
  /// parent[i] < i for i >= 1). Used by tests and custom topologies.
  static TreeOverlay from_parents(std::vector<int> parent);

  int size() const { return static_cast<int>(parent_.size()); }
  int root() const { return 0; }

  int parent(int v) const { return parent_[static_cast<std::size_t>(v)]; }
  ChildSpan children(int v) const {
    const auto i = static_cast<std::size_t>(v);
    const std::uint32_t begin = child_offset_[i];
    return ChildSpan(child_flat_.data() + begin, child_offset_[i + 1] - begin);
  }
  /// Number of nodes in the subtree rooted at v (>= 1).
  std::uint64_t subtree_size(int v) const {
    return subtree_size_[static_cast<std::size_t>(v)];
  }
  int depth(int v) const { return depth_[static_cast<std::size_t>(v)]; }
  /// Height of the tree (max depth).
  int height() const { return height_; }
  /// Maximum out-degree over all nodes.
  int max_degree() const;

  /// Hop distance between u and v along tree edges.
  int distance(int u, int v) const;

  /// BFS labelling: bfs_order()[k] is the id of the k-th node in BFS order
  /// (children visited in stored order). For TD this is the identity.
  std::vector<int> bfs_order() const;

  /// Structural sanity checks (single root, acyclic, sizes consistent);
  /// aborts on violation. Cheap; called by the builders.
  void validate() const;

  /// Bytes of heap storage behind this overlay — the memory-per-peer
  /// accounting hook (docs/SCALING.md). O(n) total: the child lists are one
  /// flat CSR array, not n separate vectors.
  std::size_t memory_bytes() const {
    return parent_.capacity() * sizeof(int) +
           child_offset_.capacity() * sizeof(std::uint32_t) +
           child_flat_.capacity() * sizeof(int) +
           subtree_size_.capacity() * sizeof(std::uint64_t) +
           depth_.capacity() * sizeof(int);
  }

 private:
  explicit TreeOverlay(std::vector<int> parent);

  std::vector<int> parent_;
  /// Child lists in CSR form: node v's children are
  /// child_flat_[child_offset_[v] .. child_offset_[v+1]), each list in
  /// ascending id order. One allocation of n-1 ints instead of n vectors —
  /// at n = 10^6 that is the difference between ~4 MB and ~50 MB of
  /// header+allocator overhead (docs/SCALING.md has the accounting table).
  std::vector<std::uint32_t> child_offset_;  ///< n+1 entries
  std::vector<int> child_flat_;              ///< n-1 entries
  std::vector<std::uint64_t> subtree_size_;
  std::vector<int> depth_;
  int height_ = 0;
};

}  // namespace olb::overlay
