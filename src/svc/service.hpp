// Load-balancing-as-a-service: one shared overlay fleet, a stream of jobs.
//
// run_service() builds the same overlay cluster a RunConfig describes, but
// in multi-job service mode: peers start workless, every work slot holds a
// lb::JobBag, and an extra gate actor (svc::JobGate, id == fleet size) feeds
// the root kJobInject messages from seeded open-loop arrival processes —
// Poisson, bursty on/off, or a diurnal ramp per priority class. Admission
// control (bounded pending queue, shed on overload) runs at the gate;
// per-job completion is detected by the root's epoch-tagged accounting
// waves (see overlay_lb.cpp, "multi-job service mode").
//
// Scope mirrors the thread backend's: overlay strategies only, fault-free,
// churn-free, homogeneous; backends sim and threads. Single-job runs are
// untouched — service mode only exists behind OverlayConfig::service.
#pragma once

#include <memory>
#include <vector>

#include "bb/bb_work.hpp"
#include "lb/driver.hpp"
#include "svc/arrivals.hpp"
#include "svc/gate.hpp"
#include "uts/uts_work.hpp"

namespace olb::svc {

/// One priority class of jobs: what a job looks like plus how often one
/// arrives. The index of a class in ServiceConfig::classes IS its priority
/// (0 = highest — the JobBag steps lower classes first).
struct JobClass {
  enum class Kind { kUts, kFlowshop };
  Kind kind = Kind::kUts;
  ArrivalProcess arrivals;
  /// UTS template: job j runs with root_seed = uts.root_seed + j, so jobs
  /// are distinct but deterministic across backends and reruns.
  uts::Params uts;
  uts::CostModel uts_costs;
  /// Flowshop template: job j solves the Taillard instance generated from
  /// time seed fs_seed + j.
  int fs_jobs = 6;
  int fs_machines = 3;
  std::int64_t fs_seed = 1;
  bb::CostModel bb_costs;
};

struct ServiceConfig {
  /// Fleet description: overlay strategy, num_peers, dmax, seed, network,
  /// limits, tracer/metrics, and the backend (kSim or kThreads).
  lb::RunConfig run;
  std::vector<JobClass> classes;
  AdmissionConfig admission;
  /// Cadence of the root's per-job accounting waves.
  sim::Time wave_interval = sim::milliseconds(2);
  /// Run the per-job sequential reference so JobRecord::expected_* are
  /// filled (exact UTS counts, B&B optima). Benches may turn it off.
  bool compute_expected = true;
};

/// Per-job outcome, indexed by job id (= arrival order).
struct JobRecord {
  std::uint64_t job = 0;
  int job_class = 0;
  JobClass::Kind kind = JobClass::Kind::kUts;
  bool rejected = false;
  sim::Time submitted = -1;
  sim::Time injected = -1;  ///< -1 for rejected jobs
  sim::Time done = -1;
  double root_amount = 0;  ///< work amount at submission
  // Harvested from the fleet's JobBag tallies after the run:
  std::uint64_t units = 0;               ///< exact per-job units processed
  std::int64_t bound = lb::kNoBound;     ///< best bound seen (B&B optimum)
  // Sequential reference (when ServiceConfig::compute_expected):
  std::uint64_t expected_units = 0;
  std::int64_t expected_bound = lb::kNoBound;

  sim::Time sojourn() const {
    return done >= 0 && submitted >= 0 ? done - submitted : -1;
  }
  sim::Time queueing() const {
    return injected >= 0 && submitted >= 0 ? injected - submitted : -1;
  }
};

struct ServiceMetrics {
  bool ok = false;  ///< terminated everywhere, every admitted job completed
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::size_t peak_pending = 0;
  std::uint64_t bad_rejects = 0;  ///< rejects with queue room (must be 0)
  std::vector<JobRecord> jobs;    ///< indexed by job id
  double exec_seconds = 0;  ///< until the root declared termination
  double wall_seconds = 0;  ///< threads backend only
  std::uint64_t total_messages = 0;
  std::uint64_t work_transfers = 0;
  /// Post-run per-peer protocol snapshots (fleet only, peer-id order) for
  /// the conformance oracles.
  std::vector<lb::StateTap> final_state;
};

/// Aborts (OLB_CHECK) unless the config is in service scope: overlay
/// strategy, sim or threads backend, no faults/churn/heterogeneity/plants,
/// at least one class, sane admission bounds.
void validate_service(const ServiceConfig& config);

/// Deterministic per-job workload factory — shared by run_service and the
/// sequential reference so both see the identical job.
std::unique_ptr<lb::Workload> make_job_workload(const JobClass& cls,
                                                std::uint64_t job);

/// Builds the merged, time-sorted arrival schedule of all classes (job ids
/// assigned in arrival order). Exposed for tests pinning determinism.
std::vector<JobGate::Arrival> make_schedule(const ServiceConfig& config);

/// Runs the service loop to completion and returns per-job outcomes.
ServiceMetrics run_service(const ServiceConfig& config);

}  // namespace olb::svc
