// The job gate: a non-fleet actor (id == fleet size) that turns a
// precomputed arrival schedule into kJobInject messages for the overlay
// root, enforcing priority-aware admission control on the way.
//
// Lifecycle of a job at the gate (doc table: trace/trace.hpp):
//
//   submitted  the arrival timer fires; kJobSubmit is recorded.
//   admitted   there is a free service slot (inject immediately) or room in
//              the bounded pending queue (park, highest priority first);
//              kJobAdmit is recorded either way.
//   rejected   no slot and the queue is full: the job is shed with
//              kJobReject and never enters the fleet (open-loop overload
//              protection — the kJobRejected outcome of admission control).
//   injected   kJobXfer to the root carries the job's root work.
//   done       the root's per-job accounting waves confirmed the job drained
//              (kJobDone message); the gate records the sojourn and refills
//              free slots from the pending queue in (class, id) order.
//
// When the schedule is exhausted, the queue empty, and nothing in service,
// the gate sends kSvcShutdown — only then may the root's ordinary
// termination detection declare and broadcast kTerminate, which the gate
// also receives (it sits outside the tree, the root notifies it directly).
#pragma once

#include <cstdint>
#include <vector>

#include "lb/messages.hpp"
#include "lb/work.hpp"
#include "metrics/metrics.hpp"
#include "simnet/engine.hpp"

namespace olb::svc {

struct AdmissionConfig {
  int max_in_service = 3;       ///< concurrent jobs multiplexed on the fleet
  std::size_t queue_bound = 8;  ///< cap on the pending (admitted) queue
};

class JobGate final : public sim::Actor {
 public:
  struct Arrival {
    sim::Time time = 0;
    std::uint64_t job = 0;  ///< dense ids in schedule (= arrival) order
    int job_class = 0;      ///< lower = higher priority
  };
  /// Per-job outcome for post-run harvest (indexed by job id). Times are
  /// -1 until the corresponding transition happened.
  struct Outcome {
    bool rejected = false;
    sim::Time submitted = -1;
    sim::Time injected = -1;
    sim::Time done = -1;
    double amount = 0;  ///< root work amount at submission
  };

  /// `schedule` must be time-sorted with dense job ids 0..size-1;
  /// `factories[job]` builds job's root work (not owned, outlives the run).
  JobGate(std::vector<Arrival> schedule, std::vector<lb::Workload*> factories,
          AdmissionConfig admission, int root, int num_classes);

  // --- post-run inspection (harness side) ---
  bool saw_terminate() const { return terminated_; }
  const std::vector<Outcome>& outcomes() const { return outcomes_; }
  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t completed() const { return completed_; }
  std::size_t peak_pending() const { return peak_pending_; }
  /// Rejections issued while the queue still had room — impossible by
  /// construction; the counter exists so tests can pin the property.
  std::uint64_t bad_rejects() const { return bad_rejects_; }

 protected:
  void on_start() override;
  void on_message(sim::Message m) override;
  void on_timer(std::int64_t tag) override;
  void on_metrics(metrics::Registry& registry) override;

 private:
  void process_arrivals();
  void arm_next_arrival();
  void admit_or_shed(const Arrival& a);
  void inject(std::uint64_t job);
  void on_job_done(std::uint64_t job);
  void maybe_shutdown();

  std::vector<Arrival> schedule_;
  std::vector<lb::Workload*> factories_;
  AdmissionConfig admission_;
  int root_ = 0;
  int num_classes_ = 1;

  std::size_t next_ = 0;  ///< first unprocessed schedule entry
  /// Admitted jobs waiting for a service slot, sorted by (class, job id) —
  /// the pop order; job ids are arrival-ordered, so within a class the
  /// queue is FIFO.
  std::vector<std::uint64_t> pending_;
  std::vector<std::unique_ptr<lb::Work>> cached_;  ///< parked root work
  std::vector<int> class_of_;                      ///< by job id
  int in_service_ = 0;
  bool shutdown_sent_ = false;
  bool terminated_ = false;

  std::vector<Outcome> outcomes_;
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint64_t bad_rejects_ = 0;

  // Live metrics (null unless a hub is attached): per-class latency
  // histograms, keyed by class id.
  std::vector<metrics::Histogram*> m_sojourn_;
  std::vector<metrics::Histogram*> m_queueing_;
};

}  // namespace olb::svc
