#include "svc/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::svc {

const char* arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

std::vector<sim::Time> arrival_times(const ArrivalProcess& p,
                                     std::uint64_t seed) {
  OLB_CHECK_MSG(p.rate_per_sec > 0.0, "arrival rate must be positive");
  OLB_CHECK_MSG(p.horizon > 0, "arrival horizon must be positive");
  if (p.kind == ArrivalKind::kBursty) {
    OLB_CHECK_MSG(p.on_period > 0 && p.off_period >= 0,
                  "bursty arrivals need a positive on window");
  }
  // Thinning: draw a homogeneous process at the peak rate, keep each point
  // with probability rate(t) / peak. The peak of the diurnal ramp
  // rate(t) = rate * 2t/h is 2x the mean rate.
  const double peak_per_sec =
      p.kind == ArrivalKind::kDiurnal ? 2.0 * p.rate_per_sec : p.rate_per_sec;
  const double mean_gap_ns = 1e9 / peak_per_sec;
  const double horizon_ns = static_cast<double>(p.horizon);
  const double cycle_ns =
      static_cast<double>(p.on_period) + static_cast<double>(p.off_period);

  Xoshiro256 rng(mix64(seed ^ 0x61727276616cull));
  std::vector<sim::Time> out;
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival; clamp u away from 0 so log() stays finite.
    const double u = std::max(rng.uniform01(), 1e-12);
    t += -std::log(u) * mean_gap_ns;
    if (t >= horizon_ns) break;
    double accept = 1.0;
    switch (p.kind) {
      case ArrivalKind::kPoisson:
        break;
      case ArrivalKind::kBursty:
        accept = std::fmod(t, cycle_ns) < static_cast<double>(p.on_period)
                     ? 1.0
                     : 0.0;
        break;
      case ArrivalKind::kDiurnal:
        accept = t / horizon_ns;  // rate(t) / peak = (2t/h) / 2
        break;
    }
    if (accept >= 1.0 || rng.uniform01() < accept) {
      out.push_back(static_cast<sim::Time>(t));
    }
  }
  return out;
}

}  // namespace olb::svc
