#include "svc/gate.hpp"

#include <algorithm>
#include <utility>

#include "lb/job_work.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace olb::svc {

JobGate::JobGate(std::vector<Arrival> schedule,
                 std::vector<lb::Workload*> factories,
                 AdmissionConfig admission, int root, int num_classes)
    : schedule_(std::move(schedule)),
      factories_(std::move(factories)),
      admission_(admission),
      root_(root),
      num_classes_(num_classes) {
  OLB_CHECK(admission_.max_in_service >= 1);
  OLB_CHECK(num_classes_ >= 1);
  OLB_CHECK(factories_.size() == schedule_.size());
  cached_.resize(schedule_.size());
  class_of_.resize(schedule_.size(), 0);
  outcomes_.resize(schedule_.size());
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    OLB_CHECK_MSG(schedule_[i].job == i, "schedule job ids must be dense");
    OLB_CHECK(i == 0 || schedule_[i - 1].time <= schedule_[i].time);
    class_of_[i] = schedule_[i].job_class;
  }
}

void JobGate::on_start() {
  if (schedule_.empty()) {
    maybe_shutdown();
    return;
  }
  arm_next_arrival();
}

void JobGate::arm_next_arrival() {
  if (next_ >= schedule_.size()) return;
  const sim::Time delay = schedule_[next_].time - now();
  set_timer(delay > 0 ? delay : 0, lb::kSvcArrivalTimer);
}

void JobGate::on_timer(std::int64_t tag) {
  if ((tag & lb::kTimerTagMask) != lb::kSvcArrivalTimer) return;
  if (terminated_) return;
  process_arrivals();
}

void JobGate::process_arrivals() {
  while (next_ < schedule_.size() && schedule_[next_].time <= now()) {
    admit_or_shed(schedule_[next_]);
    ++next_;
  }
  arm_next_arrival();
  maybe_shutdown();  // e.g. the tail of the schedule was shed entirely
}

void JobGate::admit_or_shed(const Arrival& a) {
  auto work = factories_[a.job]->make_root_work();
  const std::int64_t am = lb::amount_milli(work->amount());
  Outcome& rec = outcomes_[a.job];
  rec.submitted = now();
  rec.amount = work->amount();
  ++submitted_;
  emit_trace(trace::EventKind::kJobSubmit, -1, static_cast<int>(a.job),
             a.job_class, am);
  if (in_service_ < admission_.max_in_service) {
    ++admitted_;
    emit_trace(trace::EventKind::kJobAdmit, -1, static_cast<int>(a.job),
               a.job_class, am);
    cached_[a.job] = std::move(work);
    inject(a.job);
    return;
  }
  if (pending_.size() < admission_.queue_bound) {
    ++admitted_;
    emit_trace(trace::EventKind::kJobAdmit, -1, static_cast<int>(a.job),
               a.job_class, am);
    cached_[a.job] = std::move(work);
    // Keep pending_ sorted by (class, job id): pop order = priority order.
    const auto pos = std::lower_bound(
        pending_.begin(), pending_.end(), a.job,
        [&](std::uint64_t x, std::uint64_t y) {
          const int cx = class_of_[x], cy = class_of_[y];
          return cx != cy ? cx < cy : x < y;
        });
    pending_.insert(pos, a.job);
    peak_pending_ = std::max(peak_pending_, pending_.size());
    return;
  }
  // Shed: both the slots and the queue are full.
  if (pending_.size() < admission_.queue_bound) ++bad_rejects_;
  ++rejected_;
  rec.rejected = true;
  emit_trace(trace::EventKind::kJobReject, -1, static_cast<int>(a.job),
             a.job_class, static_cast<std::int64_t>(pending_.size()));
}

void JobGate::inject(std::uint64_t job) {
  Outcome& rec = outcomes_[static_cast<std::size_t>(job)];
  rec.injected = now();
  ++in_service_;
  auto work = std::move(cached_[static_cast<std::size_t>(job)]);
  OLB_CHECK(work != nullptr);
  const int cls = class_of_[static_cast<std::size_t>(job)];
  emit_trace(trace::EventKind::kJobXfer, root_, static_cast<int>(job),
             lb::amount_milli(work->amount()), 0);
  sim::Message msg(lb::kJobInject, 0, cls, static_cast<std::int64_t>(job));
  auto payload = std::make_unique<lb::JobPayload>();
  payload->job = job;
  payload->job_class = cls;
  payload->work = std::move(work);
  msg.payload = std::move(payload);
  send(root_, std::move(msg));
}

void JobGate::on_job_done(std::uint64_t job) {
  Outcome& rec = outcomes_[static_cast<std::size_t>(job)];
  OLB_CHECK_MSG(rec.injected >= 0 && rec.done < 0,
                "kJobDone for a job not in service");
  rec.done = now();
  --in_service_;
  ++completed_;
  const int cls = class_of_[static_cast<std::size_t>(job)];
  const sim::Time sojourn = rec.done - rec.submitted;
  const sim::Time queueing = rec.injected - rec.submitted;
  emit_trace(trace::EventKind::kJobDone, -1, static_cast<int>(job), cls,
             sojourn);
  if (!m_sojourn_.empty()) [[unlikely]] {
    metrics::record(m_sojourn_[static_cast<std::size_t>(cls)],
                    static_cast<std::uint64_t>(sojourn > 0 ? sojourn : 0));
    metrics::record(m_queueing_[static_cast<std::size_t>(cls)],
                    static_cast<std::uint64_t>(queueing > 0 ? queueing : 0));
  }
  while (in_service_ < admission_.max_in_service && !pending_.empty()) {
    const std::uint64_t refill = pending_.front();
    pending_.erase(pending_.begin());
    inject(refill);
  }
  maybe_shutdown();
}

void JobGate::maybe_shutdown() {
  if (shutdown_sent_ || terminated_) return;
  if (next_ < schedule_.size() || !pending_.empty() || in_service_ > 0) return;
  shutdown_sent_ = true;
  send(root_, sim::Message(lb::kSvcShutdown, 0, 0, 0));
}

void JobGate::on_message(sim::Message m) {
  switch (m.type) {
    case lb::kJobDone:
      if (!terminated_) on_job_done(static_cast<std::uint64_t>(m.c));
      break;
    case lb::kTerminate:
      terminated_ = true;
      break;
    default:
      OLB_CHECK_MSG(false, "unexpected message type for JobGate");
  }
}

void JobGate::on_metrics(metrics::Registry& registry) {
  sim::Actor::on_metrics(registry);
  for (int c = 0; c < num_classes_; ++c) {
    m_sojourn_.push_back(registry.histogram("olb_svc_sojourn_ns", c));
    m_queueing_.push_back(registry.histogram("olb_svc_queueing_ns", c));
  }
}

}  // namespace olb::svc
