#include "svc/service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "bb/flowshop.hpp"
#include "lb/job_work.hpp"
#include "runtime/thread_net.hpp"
#include "simnet/engine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::svc {

std::unique_ptr<lb::Workload> make_job_workload(const JobClass& cls,
                                                std::uint64_t job) {
  if (cls.kind == JobClass::Kind::kUts) {
    uts::Params p = cls.uts;
    p.root_seed = cls.uts.root_seed + static_cast<std::uint32_t>(job);
    return std::make_unique<uts::UtsWorkload>(p, cls.uts_costs);
  }
  auto inst = bb::FlowshopInstance::taillard(
      "svc-job-" + std::to_string(job), cls.fs_jobs, cls.fs_machines,
      cls.fs_seed + static_cast<std::int64_t>(job));
  return std::make_unique<bb::BBWorkload>(std::move(inst),
                                          bb::BoundKind::kTwoMachine,
                                          cls.bb_costs);
}

void validate_service(const ServiceConfig& config) {
  const lb::RunConfig& rc = config.run;
  OLB_CHECK_MSG(lb::strategy_is_overlay(rc.strategy),
                "service mode requires an overlay strategy (TD/TR/BTD)");
  OLB_CHECK_MSG(rc.backend != lb::Backend::kSockets,
                "service mode runs on the sim and thread backends");
  OLB_CHECK_MSG(!rc.faults.enabled(), "service mode is fault-free");
  OLB_CHECK_MSG(!rc.churn.enabled(), "service mode is churn-free");
  OLB_CHECK_MSG(!rc.plant.enabled(),
                "planted bugs target single-job conformance runs");
  OLB_CHECK_MSG(rc.het.fraction == 0.0, "service mode is homogeneous");
  OLB_CHECK(rc.num_peers >= 1);
  OLB_CHECK_MSG(!config.classes.empty(), "need at least one job class");
  OLB_CHECK(config.admission.max_in_service >= 1);
  OLB_CHECK(config.wave_interval > 0);
}

std::vector<JobGate::Arrival> make_schedule(const ServiceConfig& config) {
  struct Entry {
    sim::Time t;
    int cls;
  };
  std::vector<Entry> entries;
  for (std::size_t c = 0; c < config.classes.size(); ++c) {
    const auto times = arrival_times(
        config.classes[c].arrivals,
        mix64(config.run.seed ^ (0x73766300ull + c)));
    for (sim::Time t : times) entries.push_back({t, static_cast<int>(c)});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.t != b.t ? a.t < b.t : a.cls < b.cls;
                   });
  std::vector<JobGate::Arrival> schedule;
  schedule.reserve(entries.size());
  for (std::size_t j = 0; j < entries.size(); ++j) {
    schedule.push_back({entries[j].t, j, entries[j].cls});
  }
  return schedule;
}

namespace {

/// Folds the per-job tallies every fleet peer's JobBag accumulated into the
/// job records — the exact-count/optimum harvest.
void harvest_tallies(const std::vector<lb::OverlayPeer*>& peers,
                     std::vector<JobRecord>& jobs) {
  for (const lb::OverlayPeer* p : peers) {
    const auto* bag = dynamic_cast<const lb::JobBag*>(p->current_work());
    if (bag == nullptr) continue;
    bag->for_each_tally([&](const lb::JobBag::Tally& t) {
      OLB_CHECK(t.job < jobs.size());
      JobRecord& rec = jobs[static_cast<std::size_t>(t.job)];
      rec.units += t.units;
      rec.bound = std::min(rec.bound, t.bound);
    });
  }
}

void harvest_gate(const JobGate& gate, ServiceMetrics& out) {
  out.submitted = gate.submitted();
  out.admitted = gate.admitted();
  out.rejected = gate.rejected();
  out.completed = gate.completed();
  out.peak_pending = gate.peak_pending();
  out.bad_rejects = gate.bad_rejects();
  const auto& recs = gate.outcomes();
  for (std::size_t j = 0; j < recs.size(); ++j) {
    JobRecord& rec = out.jobs[j];
    rec.rejected = recs[j].rejected;
    rec.submitted = recs[j].submitted;
    rec.injected = recs[j].injected;
    rec.done = recs[j].done;
    rec.root_amount = recs[j].amount;
  }
}

}  // namespace

ServiceMetrics run_service(const ServiceConfig& config) {
  validate_service(config);
  lb::RunConfig rc = config.run;
  // Peer-level bound diffusion is meaningless across jobs (the bags never
  // report a bound upward; per-job bounds travel inside split pieces), so
  // keep the machinery off rather than idling.
  rc.diffuse_bounds = false;
  const int n = rc.num_peers;

  const auto schedule = make_schedule(config);

  ServiceMetrics out;
  std::vector<std::unique_ptr<lb::Workload>> workloads;
  std::vector<lb::Workload*> raw;
  for (const JobGate::Arrival& a : schedule) {
    const JobClass& cls = config.classes[static_cast<std::size_t>(a.job_class)];
    workloads.push_back(make_job_workload(cls, a.job));
    raw.push_back(workloads.back().get());
    JobRecord rec;
    rec.job = a.job;
    rec.job_class = a.job_class;
    rec.kind = cls.kind;
    out.jobs.push_back(rec);
  }
  if (config.compute_expected) {
    // Fresh workload instances: the service run's B&B incumbent recorders
    // must not see the reference run's solutions.
    for (const JobGate::Arrival& a : schedule) {
      auto ref = make_job_workload(
          config.classes[static_cast<std::size_t>(a.job_class)], a.job);
      const auto seq = lb::run_sequential(*ref);
      out.jobs[static_cast<std::size_t>(a.job)].expected_units = seq.units;
      out.jobs[static_cast<std::size_t>(a.job)].expected_bound = seq.bound;
    }
  }

  auto tree = std::make_shared<const overlay::TreeOverlay>(
      lb::make_overlay_tree(rc));
  lb::OverlayConfig oc = lb::make_overlay_config(rc);
  oc.peer.diffuse_bounds = false;
  oc.service.enabled = true;
  oc.service.gate = n;  // gate id == fleet size, outside the tree
  oc.service.wave_interval = config.wave_interval;

  const int num_classes = static_cast<int>(config.classes.size());
  std::vector<lb::OverlayPeer*> peers;
  bool all_done = false;
  sim::Time done_time = -1;

  // Peers are owned by the engine/net, so everything read from them must
  // happen before the backend object leaves scope.
  auto finish = [&] {
    harvest_tallies(peers, out.jobs);
    for (lb::OverlayPeer* peer : peers) {
      if (peer->holds_work() || !peer->saw_terminate()) all_done = false;
      out.final_state.push_back(peer->state_tap());
    }
    done_time = peers.front()->done_time();
  };

  if (rc.backend == lb::Backend::kSim) {
    sim::Engine engine(rc.net, rc.seed);
    engine.set_tracer(rc.tracer);
    engine.set_metrics(rc.metrics);
    for (int i = 0; i < n; ++i) {
      auto peer = std::make_unique<lb::OverlayPeer>(tree, oc, nullptr);
      peers.push_back(peer.get());
      engine.add_actor(std::move(peer));
    }
    auto gate_owner = std::make_unique<JobGate>(schedule, raw,
                                                config.admission, 0,
                                                num_classes);
    JobGate* gate = gate_owner.get();
    engine.add_actor(std::move(gate_owner));

    engine.transport_start();
    const auto result =
        engine.run(rc.limits.time_limit, rc.limits.event_limit);
    engine.transport_shutdown();

    out.total_messages = engine.total_messages();
    out.work_transfers = engine.total_sent_of_type(lb::kWork);
    all_done = result.quiesced && gate->saw_terminate();
    harvest_gate(*gate, out);
    finish();
  } else {
    runtime::ThreadNet net(rc.seed);
    std::unique_ptr<trace::LockedSink> locked;
    if (rc.tracer != nullptr) {
      locked = std::make_unique<trace::LockedSink>(rc.tracer);
      net.set_tracer(locked.get());
    }
    if (rc.metrics != nullptr) net.set_metrics(rc.metrics);
    for (int i = 0; i < n; ++i) {
      auto peer = std::make_unique<lb::OverlayPeer>(tree, oc, nullptr);
      peers.push_back(peer.get());
      net.add_actor(std::move(peer));
    }
    auto gate_owner = std::make_unique<JobGate>(schedule, raw,
                                                config.admission, 0,
                                                num_classes);
    JobGate* gate = gate_owner.get();
    net.add_actor(std::move(gate_owner));

    net.transport_start();
    const auto result = net.run(
        [](const sim::Actor& a) {
          if (const auto* p = dynamic_cast<const lb::PeerBase*>(&a)) {
            return p->saw_terminate();
          }
          return static_cast<const JobGate&>(a).saw_terminate();
        },
        rc.limits.time_limit);
    net.transport_shutdown();

    out.wall_seconds = result.wall_seconds;
    out.total_messages = net.total_messages();
    out.work_transfers = net.total_sent_of_type(lb::kWork);
    all_done = result.completed && gate->saw_terminate();
    harvest_gate(*gate, out);
    finish();
  }

  out.exec_seconds = sim::to_seconds(std::max<sim::Time>(done_time, 0));
  out.ok = all_done && done_time >= 0 && out.completed == out.admitted &&
           out.submitted == out.jobs.size();
  return out;
}

}  // namespace olb::svc
