// B&B adapter for the generic lb::Work interface.
//
// A peer's B&B work is a small pool of disjoint leaf-rank intervals (the
// paper: work acquired from a tree neighbour and over a bridge is "logically
// appended"). amount() is the total interval length; split(f) carves
// sub-intervals off the pool's far end; step() drives the front explorer.
//
// The incumbent bound is per-peer knowledge: works carry the bound they knew
// when split off, receive network-learnt bounds via observe_bound(), and
// report improvements through StepResult so the owning protocol can diffuse
// them. Pruning never peeks at global state.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "bb/interval_bb.hpp"
#include "lb/interval_work.hpp"
#include "lb/work.hpp"
#include "simnet/time.hpp"

namespace olb::bb {

/// Simulated cost model for B&B node evaluations.
struct CostModel {
  sim::Time per_node = sim::microseconds(20);  ///< one bound/leaf evaluation
};

class BBWork final : public lb::Work, public lb::IntervalWork {
 public:
  BBWork(std::shared_ptr<const FlowshopInstance> inst, BoundKind bound_kind,
         CostModel costs, BestSolution* recorder, std::int64_t ub);

  /// The whole problem [0, jobs!) as one interval.
  static std::unique_ptr<BBWork> whole_problem(
      std::shared_ptr<const FlowshopInstance> inst, BoundKind bound_kind,
      CostModel costs, BestSolution* recorder,
      std::int64_t initial_ub = lb::kNoBound);

  double amount() const override { return static_cast<double>(total_remaining()); }
  bool empty() const override { return total_remaining() == 0; }
  std::unique_ptr<lb::Work> split(double fraction) override;
  void merge(std::unique_ptr<lb::Work> other) override;
  lb::StepResult step(std::uint64_t max_units) override;
  void observe_bound(std::int64_t bound) override;

  std::uint64_t total_remaining() const;
  std::int64_t local_bound() const { return ub_; }
  std::size_t pool_size() const { return pool_.size(); }

  // --- interval bookkeeping used by the Master-Worker baseline, whose
  // master tracks worker intervals by [position, end) and splits them from
  // its own (possibly stale) view ---

  /// Current DFS position of the front interval (0 if none).
  std::uint64_t interval_position() const override;
  /// Right edge of the front interval (0 if none).
  std::uint64_t interval_end() const override;
  /// Truncates the front interval to end at `new_end` (master split notify):
  /// drops it entirely when the position has already passed new_end.
  void interval_truncate(std::uint64_t new_end) override;

  /// Appends an explorer for [begin, end) to the pool.
  void push_interval(std::uint64_t begin, std::uint64_t end);

  /// Visits pool intervals front-to-back as fn(position, end) — the
  /// remaining [position, end) ranges, for wire serialisation.
  template <typename Fn>
  void visit_intervals(Fn&& fn) const {
    for (const IntervalExplorer& e : pool_) fn(e.position(), e.end());
  }

 private:
  std::shared_ptr<const FlowshopInstance> inst_;
  BoundKind bound_kind_;
  CostModel costs_;
  BestSolution* recorder_;  ///< not owned; outlives the run
  std::int64_t ub_;
  std::deque<IntervalExplorer> pool_;
};

/// Workload wrapper used by experiment drivers. Owns the shared incumbent
/// recorder for one run.
class BBWorkload final : public lb::Workload, public lb::IntervalWorkload {
 public:
  BBWorkload(FlowshopInstance inst, BoundKind bound_kind, CostModel costs,
             std::int64_t initial_ub = lb::kNoBound)
      : inst_(std::make_shared<const FlowshopInstance>(std::move(inst))),
        bound_kind_(bound_kind), costs_(costs), initial_ub_(initial_ub) {}

  std::unique_ptr<lb::Work> make_root_work() override {
    return BBWork::whole_problem(inst_, bound_kind_, costs_, &best_, initial_ub_);
  }
  const char* name() const override { return inst_->name().c_str(); }

  std::uint64_t interval_total() const override { return factorial(inst_->jobs()); }
  std::unique_ptr<lb::Work> make_interval_work(std::uint64_t begin,
                                               std::uint64_t end) override {
    auto work = std::make_unique<BBWork>(inst_, bound_kind_, costs_, &best_, initial_ub_);
    if (begin < end) work->push_interval(begin, end);
    return work;
  }

  const FlowshopInstance& instance() const { return *inst_; }
  const BestSolution& best() const { return best_; }
  /// Mutable incumbent access for merging remotely-found solutions
  /// (socket backend result exchange).
  BestSolution& best() { return best_; }

 private:
  std::shared_ptr<const FlowshopInstance> inst_;
  BoundKind bound_kind_;
  CostModel costs_;
  std::int64_t initial_ub_;
  BestSolution best_;
};

}  // namespace olb::bb
