// The permutation flowshop scheduling problem (PFSP), F|perm|Cmax.
//
// n jobs each pass through machines 0..m-1 in order; a schedule is a single
// permutation of jobs common to all machines; the objective is to minimise
// the makespan (completion time of the last job on the last machine).
//
// Instances come from Taillard's generator (E. Taillard, "Benchmarks for
// basic scheduling problems", EJOR 64(2), 1993): a portable Lehmer LCG
// (a=16807, m=2^31-1, Schrage decomposition) draws processing times in
// [1, 99], machine-major. We embed the published time seeds of the Ta-20x20
// family (instances Ta21..Ta30 used in the paper) and derive *scaled
// analogues* by taking the leading n_jobs x n_machines submatrix of the full
// 20x20 instance — the paper's workload at a size solvable on one host.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace olb::bb {

/// Taillard's portable uniform generator. Reproduces his published streams
/// exactly; also reusable wherever the repo needs his RNG.
class TaillardRng {
 public:
  explicit TaillardRng(std::int64_t seed);

  /// Uniform integer in [low, high].
  int next(int low, int high);

  std::int64_t state() const { return seed_; }

 private:
  std::int64_t seed_;
};

class FlowshopInstance {
 public:
  FlowshopInstance(std::string name, int jobs, int machines,
                   std::vector<int> processing);  ///< machine-major p[k*jobs + j]

  /// Generates a jobs x machines instance from a Taillard time seed.
  static FlowshopInstance taillard(std::string name, int jobs, int machines,
                                   std::int64_t time_seed);

  /// Scaled analogue of Ta(21 + index): leading jobs x machines submatrix of
  /// the full 20x20 instance generated from the published seed. index in [0, 10).
  static FlowshopInstance ta20x20_scaled(int index, int jobs, int machines);

  /// The published time seeds of Taillard's 20x20 family (Ta21..Ta30).
  static std::span<const std::int64_t> ta20x20_seeds();

  const std::string& name() const { return name_; }
  int jobs() const { return jobs_; }
  int machines() const { return machines_; }

  /// Processing time of job j on machine k.
  int p(int j, int k) const {
    return processing_[static_cast<std::size_t>(k) * static_cast<std::size_t>(jobs_) +
                       static_cast<std::size_t>(j)];
  }

  /// Makespan of a complete permutation (size jobs()).
  std::int64_t makespan(std::span<const int> permutation) const;

  /// Appends job j to a partial schedule's machine-completion vector
  /// (size machines(); all zero = empty schedule).
  void advance(std::span<std::int64_t> completion, int j) const;

  /// Sum of processing times of job j on machines (k, machines-1].
  std::int64_t tail_after(int j, int k) const {
    return tail_[static_cast<std::size_t>(j) * static_cast<std::size_t>(machines_ + 1) +
                 static_cast<std::size_t>(k + 1)];
  }

  /// Total processing time of job j across all machines.
  std::int64_t total_time(int j) const { return tail_after(j, -1); }

 private:
  std::string name_;
  int jobs_;
  int machines_;
  std::vector<int> processing_;      ///< machine-major
  std::vector<std::int64_t> tail_;   ///< tail_[j*(m+1)+k] = sum of p(j, k..m-1)
};

/// NEH constructive heuristic (Nawaz-Enscore-Ham 1983): returns a good
/// permutation; used for warm-starting bounds and as a test oracle anchor.
std::vector<int> neh_heuristic(const FlowshopInstance& inst);

/// Exact optimum by exhaustive permutation scan. Only for jobs() <= 10.
std::int64_t brute_force_optimum(const FlowshopInstance& inst,
                                 std::vector<int>* best_perm = nullptr);

}  // namespace olb::bb
