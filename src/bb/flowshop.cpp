#include "bb/flowshop.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "support/check.hpp"

namespace olb::bb {

TaillardRng::TaillardRng(std::int64_t seed) : seed_(seed) {
  OLB_CHECK_MSG(seed > 0 && seed < 2147483647, "Taillard seeds lie in (0, 2^31-1)");
}

int TaillardRng::next(int low, int high) {
  // Lehmer generator x <- 16807*x mod (2^31-1), Schrage's decomposition —
  // exactly the portable generator of Taillard (1993), Appendix.
  constexpr std::int64_t kM = 2147483647;
  constexpr std::int64_t kA = 16807;
  constexpr std::int64_t kB = 127773;
  constexpr std::int64_t kC = 2836;
  const std::int64_t k = seed_ / kB;
  seed_ = kA * (seed_ % kB) - k * kC;
  if (seed_ < 0) seed_ += kM;
  const double value01 = static_cast<double>(seed_) / static_cast<double>(kM);
  return low + static_cast<int>(value01 * static_cast<double>(high - low + 1));
}

FlowshopInstance::FlowshopInstance(std::string name, int jobs, int machines,
                                   std::vector<int> processing)
    : name_(std::move(name)), jobs_(jobs), machines_(machines),
      processing_(std::move(processing)) {
  OLB_CHECK(jobs_ >= 1 && machines_ >= 1);
  OLB_CHECK(processing_.size() ==
            static_cast<std::size_t>(jobs_) * static_cast<std::size_t>(machines_));
  for (int v : processing_) OLB_CHECK(v >= 0);

  tail_.assign(static_cast<std::size_t>(jobs_) * static_cast<std::size_t>(machines_ + 1), 0);
  for (int j = 0; j < jobs_; ++j) {
    for (int k = machines_ - 1; k >= 0; --k) {
      tail_[static_cast<std::size_t>(j) * static_cast<std::size_t>(machines_ + 1) +
            static_cast<std::size_t>(k)] =
          tail_[static_cast<std::size_t>(j) * static_cast<std::size_t>(machines_ + 1) +
                static_cast<std::size_t>(k + 1)] +
          p(j, k);
    }
  }
}

FlowshopInstance FlowshopInstance::taillard(std::string name, int jobs, int machines,
                                            std::int64_t time_seed) {
  TaillardRng rng(time_seed);
  std::vector<int> processing(static_cast<std::size_t>(jobs) *
                              static_cast<std::size_t>(machines));
  // Taillard's published order: outer loop over machines, inner over jobs.
  for (int k = 0; k < machines; ++k) {
    for (int j = 0; j < jobs; ++j) {
      processing[static_cast<std::size_t>(k) * static_cast<std::size_t>(jobs) +
                 static_cast<std::size_t>(j)] = rng.next(1, 99);
    }
  }
  return FlowshopInstance(std::move(name), jobs, machines, std::move(processing));
}

std::span<const std::int64_t> FlowshopInstance::ta20x20_seeds() {
  static constexpr std::array<std::int64_t, 10> kSeeds = {
      479340445, 268827376, 1958948863, 918272953,  555010963,
      2010851491, 1519833303, 1650692823, 1899368766, 659404659};
  return kSeeds;
}

FlowshopInstance FlowshopInstance::ta20x20_scaled(int index, int jobs, int machines) {
  OLB_CHECK(index >= 0 && index < 10);
  OLB_CHECK(jobs >= 1 && jobs <= 20 && machines >= 1 && machines <= 20);
  const FlowshopInstance full = taillard("full", 20, 20, ta20x20_seeds()[static_cast<std::size_t>(index)]);
  std::vector<int> processing(static_cast<std::size_t>(jobs) *
                              static_cast<std::size_t>(machines));
  for (int k = 0; k < machines; ++k) {
    for (int j = 0; j < jobs; ++j) {
      processing[static_cast<std::size_t>(k) * static_cast<std::size_t>(jobs) +
                 static_cast<std::size_t>(j)] = full.p(j, k);
    }
  }
  std::string name = "Ta" + std::to_string(21 + index) + "s";
  return FlowshopInstance(std::move(name), jobs, machines, std::move(processing));
}

std::int64_t FlowshopInstance::makespan(std::span<const int> permutation) const {
  OLB_CHECK(static_cast<int>(permutation.size()) == jobs_);
  std::vector<std::int64_t> completion(static_cast<std::size_t>(machines_), 0);
  for (int j : permutation) advance(completion, j);
  return completion[static_cast<std::size_t>(machines_ - 1)];
}

void FlowshopInstance::advance(std::span<std::int64_t> completion, int j) const {
  OLB_CHECK(static_cast<int>(completion.size()) == machines_);
  OLB_CHECK(j >= 0 && j < jobs_);
  std::int64_t prev = 0;
  for (int k = 0; k < machines_; ++k) {
    const std::int64_t start = std::max(prev, completion[static_cast<std::size_t>(k)]);
    prev = start + p(j, k);
    completion[static_cast<std::size_t>(k)] = prev;
  }
}

std::vector<int> neh_heuristic(const FlowshopInstance& inst) {
  const int n = inst.jobs();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return inst.total_time(a) > inst.total_time(b);
  });

  std::vector<int> sequence;
  sequence.reserve(static_cast<std::size_t>(n));
  for (int j : order) {
    std::size_t best_pos = 0;
    std::int64_t best_mk = -1;
    for (std::size_t pos = 0; pos <= sequence.size(); ++pos) {
      std::vector<int> candidate = sequence;
      candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos), j);
      std::vector<std::int64_t> completion(static_cast<std::size_t>(inst.machines()), 0);
      for (int job : candidate) inst.advance(completion, job);
      const std::int64_t mk = completion[static_cast<std::size_t>(inst.machines() - 1)];
      if (best_mk < 0 || mk < best_mk) {
        best_mk = mk;
        best_pos = pos;
      }
    }
    sequence.insert(sequence.begin() + static_cast<std::ptrdiff_t>(best_pos), j);
  }
  return sequence;
}

std::int64_t brute_force_optimum(const FlowshopInstance& inst,
                                 std::vector<int>* best_perm) {
  OLB_CHECK_MSG(inst.jobs() <= 10, "brute force limited to 10 jobs");
  std::vector<int> perm(static_cast<std::size_t>(inst.jobs()));
  std::iota(perm.begin(), perm.end(), 0);
  std::int64_t best = -1;
  do {
    const std::int64_t mk = inst.makespan(perm);
    if (best < 0 || mk < best) {
      best = mk;
      if (best_perm != nullptr) *best_perm = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace olb::bb
