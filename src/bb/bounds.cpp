#include "bb/bounds.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/check.hpp"

namespace olb::bb {

namespace {

std::int64_t one_machine_bound(const FlowshopInstance& inst,
                               std::span<const std::int64_t> completion,
                               std::span<const int> remaining) {
  const int m = inst.machines();
  std::int64_t best = completion[static_cast<std::size_t>(m - 1)];
  for (int k = 0; k < m; ++k) {
    std::int64_t load = 0;
    std::int64_t min_tail = std::numeric_limits<std::int64_t>::max();
    for (int j : remaining) {
      load += inst.p(j, k);
      min_tail = std::min(min_tail, inst.tail_after(j, k));
    }
    const std::int64_t lb = completion[static_cast<std::size_t>(k)] + load + min_tail;
    best = std::max(best, lb);
  }
  return best;
}

}  // namespace

std::int64_t johnson_cmax(const FlowshopInstance& inst, std::span<const int> jobs,
                          int ka, int kb) {
  // Johnson's rule: jobs with p_a < p_b first in increasing p_a, then jobs
  // with p_a >= p_b in decreasing p_b.
  std::vector<int> order(jobs.begin(), jobs.end());
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    const std::int64_t key_x = std::min<std::int64_t>(inst.p(x, ka), inst.p(x, kb));
    const std::int64_t key_y = std::min<std::int64_t>(inst.p(y, ka), inst.p(y, kb));
    const bool x_first = inst.p(x, ka) < inst.p(x, kb);
    const bool y_first = inst.p(y, ka) < inst.p(y, kb);
    if (x_first != y_first) return x_first;
    if (x_first) return inst.p(x, ka) < inst.p(y, ka) ||
                        (inst.p(x, ka) == inst.p(y, ka) && x < y);
    (void)key_x;
    (void)key_y;
    return inst.p(x, kb) > inst.p(y, kb) ||
           (inst.p(x, kb) == inst.p(y, kb) && x < y);
  });
  std::int64_t ta = 0;
  std::int64_t tb = 0;
  for (int j : order) {
    ta += inst.p(j, ka);
    tb = std::max(tb, ta) + inst.p(j, kb);
  }
  return tb;
}

std::int64_t lower_bound(const FlowshopInstance& inst,
                         std::span<const std::int64_t> completion,
                         std::span<const int> remaining, BoundKind kind) {
  OLB_CHECK(static_cast<int>(completion.size()) == inst.machines());
  if (remaining.empty()) {
    return completion[static_cast<std::size_t>(inst.machines() - 1)];
  }
  std::int64_t best = one_machine_bound(inst, completion, remaining);
  if (kind == BoundKind::kTwoMachine) {
    const int m = inst.machines();
    for (int k = 0; k + 1 < m; ++k) {
      std::int64_t min_tail = std::numeric_limits<std::int64_t>::max();
      for (int j : remaining) {
        min_tail = std::min(min_tail, inst.tail_after(j, k + 1));
      }
      const std::int64_t lb = completion[static_cast<std::size_t>(k)] +
                              johnson_cmax(inst, remaining, k, k + 1) + min_tail;
      best = std::max(best, lb);
    }
  }
  return best;
}

}  // namespace olb::bb
