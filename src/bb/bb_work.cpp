#include "bb/bb_work.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/factorial.hpp"

namespace olb::bb {

BBWork::BBWork(std::shared_ptr<const FlowshopInstance> inst, BoundKind bound_kind,
               CostModel costs, BestSolution* recorder, std::int64_t ub)
    : inst_(std::move(inst)), bound_kind_(bound_kind), costs_(costs),
      recorder_(recorder), ub_(ub) {}

std::unique_ptr<BBWork> BBWork::whole_problem(
    std::shared_ptr<const FlowshopInstance> inst, BoundKind bound_kind,
    CostModel costs, BestSolution* recorder, std::int64_t initial_ub) {
  auto work = std::make_unique<BBWork>(inst, bound_kind, costs, recorder, initial_ub);
  work->pool_.emplace_back(inst, 0, factorial(inst->jobs()), bound_kind);
  return work;
}

std::uint64_t BBWork::total_remaining() const {
  std::uint64_t total = 0;
  for (const auto& e : pool_) total += e.remaining();
  return total;
}

std::unique_ptr<lb::Work> BBWork::split(double fraction) {
  OLB_CHECK(fraction > 0.0 && fraction < 1.0);
  const std::uint64_t total = total_remaining();
  if (total < 2) return nullptr;
  auto target = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(total)));
  target = std::clamp<std::uint64_t>(target, 1, total - 1);

  // The transferred work inherits the victim's bound knowledge — in the real
  // system the bound piggybacks on the work message.
  auto out = std::make_unique<BBWork>(inst_, bound_kind_, costs_, recorder_, ub_);
  while (target > 0) {
    OLB_CHECK(!pool_.empty());
    IntervalExplorer& back = pool_.back();
    const std::uint64_t r = back.remaining();
    if (r == 0) {
      pool_.pop_back();
      continue;
    }
    if (r <= target) {
      out->pool_.push_front(std::move(back));
      pool_.pop_back();
      target -= r;
    } else {
      const std::uint64_t new_end = back.end() - target;
      out->pool_.push_front(IntervalExplorer(inst_, new_end, back.end(), bound_kind_));
      back.shrink_end(new_end);
      target = 0;
    }
  }
  return out;
}

void BBWork::merge(std::unique_ptr<lb::Work> other) {
  auto* bb = dynamic_cast<BBWork*>(other.get());
  OLB_CHECK_MSG(bb != nullptr, "cannot merge foreign work into BBWork");
  ub_ = std::min(ub_, bb->ub_);
  for (auto& e : bb->pool_) {
    if (!e.done()) pool_.push_back(std::move(e));
  }
  bb->pool_.clear();
}

lb::StepResult BBWork::step(std::uint64_t max_units) {
  lb::StepResult result;
  const std::int64_t ub_before = ub_;
  while (result.units_done < max_units && !pool_.empty()) {
    IntervalExplorer& front = pool_.front();
    if (front.done()) {
      pool_.pop_front();
      continue;
    }
    const auto progress = front.run(max_units - result.units_done, ub_, recorder_);
    result.units_done += progress.nodes;
    if (progress.nodes == 0 && !front.done()) {
      // Defensive: an explorer with remaining work must make progress.
      OLB_CHECK_MSG(false, "IntervalExplorer stalled");
    }
  }
  result.sim_cost = static_cast<sim::Time>(result.units_done) * costs_.per_node;
  result.bound = ub_;
  result.improved_bound = ub_ < ub_before;
  return result;
}

void BBWork::observe_bound(std::int64_t bound) { ub_ = std::min(ub_, bound); }

void BBWork::push_interval(std::uint64_t begin, std::uint64_t end) {
  OLB_CHECK(begin < end);
  pool_.emplace_back(inst_, begin, end, bound_kind_);
}

std::uint64_t BBWork::interval_position() const {
  return pool_.empty() ? 0 : pool_.front().position();
}

std::uint64_t BBWork::interval_end() const {
  return pool_.empty() ? 0 : pool_.front().end();
}

void BBWork::interval_truncate(std::uint64_t new_end) {
  if (pool_.empty()) return;
  IntervalExplorer& front = pool_.front();
  if (new_end >= front.end()) return;  // nothing to give up
  if (front.position() >= new_end) {
    pool_.pop_front();  // the whole remainder was reassigned
    return;
  }
  front.shrink_end(new_end);
}

}  // namespace olb::bb
