#include "bb/interval_bb.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace olb::bb {

IntervalExplorer::IntervalExplorer(std::shared_ptr<const FlowshopInstance> inst,
                                   std::uint64_t begin, std::uint64_t end,
                                   BoundKind bound_kind)
    : inst_(std::move(inst)), bound_kind_(bound_kind), pos_(begin), end_(end) {
  const int n = inst_->jobs();
  OLB_CHECK(n <= kMaxFactorialArg);
  OLB_CHECK(begin <= end && end <= factorial(n));
  const auto depths = static_cast<std::size_t>(n) + 1;
  remaining_.resize(depths);
  completion_.resize(depths);
  for (auto& c : completion_) c.assign(static_cast<std::size_t>(inst_->machines()), 0);
  path_.assign(static_cast<std::size_t>(n), -1);
  remaining_[0].resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) remaining_[0][static_cast<std::size_t>(j)] = j;
  stack_.reserve(depths);
  if (pos_ < end_) stack_.push_back(Frame{0, 0});
}

void IntervalExplorer::shrink_end(std::uint64_t new_end) {
  OLB_CHECK(pos_ < new_end && new_end < end_);
  end_ = new_end;
}

IntervalExplorer::Progress IntervalExplorer::run(std::uint64_t max_nodes,
                                                 std::int64_t& ub,
                                                 BestSolution* recorder) {
  Progress progress;
  const int n = inst_->jobs();
  const int m = inst_->machines();

  while (progress.nodes < max_nodes && !stack_.empty() && pos_ < end_) {
    const int d = static_cast<int>(stack_.size()) - 1;
    Frame& frame = stack_.back();
    const int num_kids = n - d;
    if (frame.next_child >= num_kids) {
      stack_.pop_back();
      continue;
    }
    const std::uint64_t child_width = factorial(n - d - 1);
    const std::uint64_t child_lo =
        frame.lo + static_cast<std::uint64_t>(frame.next_child) * child_width;
    const std::uint64_t child_hi = child_lo + child_width;
    if (child_hi <= pos_) {
      // Entirely before our position: already handled (resume fast-forward).
      ++frame.next_child;
      continue;
    }
    if (child_lo >= end_) {
      // This and all later siblings belong to a thief now.
      frame.next_child = num_kids;
      continue;
    }

    const auto child_idx = static_cast<std::size_t>(frame.next_child);
    ++frame.next_child;
    const int job = remaining_[static_cast<std::size_t>(d)][child_idx];
    path_[static_cast<std::size_t>(d)] = job;

    auto& child_completion = completion_[static_cast<std::size_t>(d + 1)];
    child_completion = completion_[static_cast<std::size_t>(d)];
    inst_->advance(child_completion, job);
    ++progress.nodes;

    if (d + 1 == n) {
      // Complete permutation.
      const std::int64_t mk = child_completion[static_cast<std::size_t>(m - 1)];
      if (mk < ub) {
        ub = mk;
        progress.improved = true;
        if (recorder != nullptr) recorder->offer(mk, path_);
      }
      pos_ = child_hi;
      continue;
    }

    auto& child_remaining = remaining_[static_cast<std::size_t>(d + 1)];
    child_remaining = remaining_[static_cast<std::size_t>(d)];
    child_remaining.erase(child_remaining.begin() + static_cast<std::ptrdiff_t>(child_idx));

    const std::int64_t lb =
        lower_bound(*inst_, child_completion, child_remaining, bound_kind_);
    if (lb >= ub) {
      pos_ = child_hi;  // prune the whole child subtree
    } else {
      stack_.push_back(Frame{child_lo, 0});
    }
  }

  if (stack_.empty()) {
    // Every leaf rank below end_ has been handled.
    pos_ = end_;
  }
  return progress;
}

SequentialResult solve_sequential(const FlowshopInstance& inst, BoundKind bound_kind,
                                  std::int64_t initial_ub) {
  auto shared = std::make_shared<const FlowshopInstance>(inst);
  IntervalExplorer explorer(shared, 0, factorial(inst.jobs()), bound_kind);
  BestSolution best;
  std::int64_t ub = initial_ub;
  SequentialResult result;
  while (!explorer.done()) {
    const auto progress = explorer.run(1 << 20, ub, &best);
    result.nodes += progress.nodes;
  }
  result.optimum = ub;
  result.permutation = best.permutation();
  return result;
}

}  // namespace olb::bb
