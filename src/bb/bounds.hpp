// Lower bounds for partial flowshop schedules.
//
// The paper uses "the well-known algorithm proposed in [16]" — Lageweg,
// Lenstra, Rinnooy Kan, "A general bounding scheme for the permutation
// flow-shop problem" (Operations Research 26(1), 1978). We implement two
// members of that bounding family:
//
//  * kOneMachine — for every machine k: the machine cannot finish the
//    remaining jobs before C[k] + sum of their processing times on k, and
//    the last of them still needs at least the smallest tail through the
//    downstream machines.
//  * kTwoMachine — additionally, for every adjacent machine pair (k, k+1):
//    C[k] + the optimal two-machine makespan of the remaining jobs (Johnson's
//    rule, exact for F2) + the smallest downstream tail. Shifting both
//    machine release times down to min(C[k], C[k+1]) = C[k] keeps the bound
//    valid for any continuation.
//
// Soundness (LB <= makespan of every completion of the prefix) is covered by
// property tests against exhaustive enumeration on small instances.
#pragma once

#include <cstdint>
#include <span>

#include "bb/flowshop.hpp"

namespace olb::bb {

enum class BoundKind {
  kOneMachine,
  kTwoMachine,  ///< one-machine bound strengthened with adjacent Johnson pairs
};

/// Lower bound on the makespan of any completion of a partial schedule.
/// `completion` is the machine-completion vector of the fixed prefix
/// (size machines(), all zero for the empty prefix); `remaining` lists the
/// unscheduled jobs. With empty `remaining` this returns the prefix makespan.
std::int64_t lower_bound(const FlowshopInstance& inst,
                         std::span<const std::int64_t> completion,
                         std::span<const int> remaining, BoundKind kind);

/// Exact minimum makespan of a two-machine flowshop on the given jobs using
/// processing times of machines (ka, kb), by Johnson's rule. Released at 0.
std::int64_t johnson_cmax(const FlowshopInstance& inst, std::span<const int> jobs,
                          int ka, int kb);

}  // namespace olb::bb
