// Interval-encoded sequential Branch-and-Bound for the flowshop problem.
//
// Work encoding (Mezmaz, Melab, Talbi — IPDPS'07): the permutation tree is
// labelled so that the subtree fixing a length-d prefix covers a contiguous
// range of (jobs-d)! leaf ranks; any piece of B&B work is therefore just an
// interval [begin, end) of [0, jobs!). The paper uses the *interval length*
// as the work amount, splits work by handing over a right-hand sub-interval,
// and merges pieces by keeping a small pool of disjoint intervals.
//
// IntervalExplorer performs a budgeted DFS over one interval with
// best-first-free lexicographic branching and LB pruning. The right edge
// (`end`) may shrink at any chunk boundary when a thief steals a
// sub-interval; the DFS re-checks every child range against the current
// edge, so stolen regions are never explored locally.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bb/bounds.hpp"
#include "bb/flowshop.hpp"
#include "support/factorial.hpp"

namespace olb::bb {

/// Write-only global incumbent recorder shared by every peer of a run.
/// Peers *prune* only with knowledge that travelled through the simulated
/// network; this recorder exists so the harness can read the final solution
/// (and so tests can verify optimality).
class BestSolution {
 public:
  void offer(std::int64_t makespan, std::vector<int> permutation) {
    std::scoped_lock lock(mu_);
    if (makespan < makespan_) {
      makespan_ = makespan;
      permutation_ = std::move(permutation);
    }
  }

  std::int64_t makespan() const {
    std::scoped_lock lock(mu_);
    return makespan_;
  }

  std::vector<int> permutation() const {
    std::scoped_lock lock(mu_);
    return permutation_;
  }

 private:
  mutable std::mutex mu_;
  std::int64_t makespan_ = std::numeric_limits<std::int64_t>::max();
  std::vector<int> permutation_;
};

class IntervalExplorer {
 public:
  /// Explores [begin, end) of the instance's [0, jobs!) leaf-rank space.
  IntervalExplorer(std::shared_ptr<const FlowshopInstance> inst,
                   std::uint64_t begin, std::uint64_t end, BoundKind bound_kind);

  IntervalExplorer(IntervalExplorer&&) noexcept = default;
  IntervalExplorer& operator=(IntervalExplorer&&) noexcept = default;

  struct Progress {
    std::uint64_t nodes = 0;   ///< bound/leaf evaluations performed
    bool improved = false;     ///< ub was improved during this call
  };

  /// Runs up to max_nodes evaluations. `ub` is the caller's incumbent
  /// (in-out); improvements are also offered to `recorder` if non-null.
  Progress run(std::uint64_t max_nodes, std::int64_t& ub, BestSolution* recorder);

  std::uint64_t position() const { return pos_; }
  std::uint64_t end() const { return end_; }
  std::uint64_t remaining() const { return end_ > pos_ ? end_ - pos_ : 0; }
  bool done() const { return remaining() == 0; }

  /// Gives away [new_end, end): shrinks this explorer's right edge.
  /// Requires position() < new_end < end().
  void shrink_end(std::uint64_t new_end);

 private:
  struct Frame {
    std::uint64_t lo = 0;  ///< leaf rank of the first leaf under this prefix
    int next_child = 0;    ///< index into the depth's remaining-jobs list
  };

  std::shared_ptr<const FlowshopInstance> inst_;
  BoundKind bound_kind_;
  std::uint64_t pos_;  ///< lowest unexplored leaf rank
  std::uint64_t end_;

  // Per-depth scratch, preallocated once: remaining jobs (ascending, for
  // lexicographic rank order), machine-completion vectors, chosen path.
  std::vector<Frame> stack_;
  std::vector<std::vector<int>> remaining_;
  std::vector<std::vector<std::int64_t>> completion_;
  std::vector<int> path_;
};

/// Convenience: fully sequential B&B over the whole instance.
struct SequentialResult {
  std::int64_t optimum = 0;
  std::vector<int> permutation;
  std::uint64_t nodes = 0;  ///< node evaluations performed
};
SequentialResult solve_sequential(const FlowshopInstance& inst, BoundKind bound_kind,
                                  std::int64_t initial_ub = std::numeric_limits<std::int64_t>::max());

}  // namespace olb::bb
