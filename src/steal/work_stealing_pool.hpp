// A shared-memory work-stealing thread pool built on ChaseLevDeque.
//
// Each worker owns a deque of task pointers; idle workers steal from random
// victims (the same random-victim/steal policy the paper's RWS baseline uses
// across a cluster). Tasks may spawn subtasks; the pool runs until every
// spawned task has finished (atomic outstanding-task counter — the
// shared-memory analogue of distributed termination detection).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "steal/chase_lev_deque.hpp"
#include "support/rng.hpp"

namespace olb::steal {

class WorkStealingPool {
 public:
  /// A task receives the pool so it can spawn() children.
  using TaskFn = std::function<void(WorkStealingPool&)>;

  explicit WorkStealingPool(unsigned num_threads =
                                std::max(1u, std::thread::hardware_concurrency()));
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues a task. From inside a task it pushes onto the local worker's
  /// deque (owner-only fast path); from outside it goes through a locked
  /// injection queue — a Chase-Lev deque has a single producer, so external
  /// threads must never push into a worker's deque directly.
  void spawn(TaskFn fn);

  /// Blocks until all spawned tasks (including transitively spawned ones)
  /// have completed. Callable from any non-worker thread.
  void wait_idle();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Total successful steals across the pool (for tests/benchmarks).
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct Task {
    TaskFn fn;
  };

  struct Worker {
    ChaseLevDeque<Task*> deque;
    std::thread thread;
  };

  void worker_loop(std::size_t index);
  Task* find_task(std::size_t self, Xoshiro256& rng);
  void run_task(Task* task);
  void wake_workers(bool all);

  static thread_local std::size_t tls_worker_index_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> steals_{0};

  std::mutex inject_mutex_;
  std::deque<Task*> inject_queue_;  ///< externally spawned tasks

  // Worker sleep/wake (eventcount): a producer bumps wake_epoch_ under
  // wake_mutex_ *after* publishing its task, a sleeper re-scans after
  // reading the epoch and only blocks while the epoch is unchanged — the
  // push either happens before the re-scan or bumps the epoch the sleeper
  // is watching, so no wakeup can be lost.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::uint64_t wake_epoch_ = 0;  ///< guarded by wake_mutex_

  // wait_idle() rendezvous: the last task's completion notifies under
  // idle_mutex_, closing the decrement-to-wait window on the waiter side.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace olb::steal
