// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory-order fixes
// per Lê et al., PPoPP'13).
//
// The companion shared-memory artefact of this repo: the same work-stealing
// ideas the paper studies across a cluster, in their classic single-node
// form. One owner pushes/pops at the bottom; any number of thieves steal
// from the top. Lock-free; the owner's fast path is a single relaxed load.
//
// T must be trivially copyable (slots are overwritten concurrently with
// reads that lose the race — harmless only for trivial types; store
// pointers for anything richer).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

// TSan does not model std::atomic_thread_fence, so the fence-based
// publication below (put -> release fence -> relaxed bottom store, read back
// through an acquire bottom load) looks like a race on whatever the slots
// point at. Under TSan we move the ordering onto the bottom_/top_ operations
// themselves — same happens-before edges, expressed in a vocabulary the
// checker understands; the plain build keeps the cheaper fence formulation.
#if defined(__SANITIZE_THREAD__)
#define OLB_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OLB_TSAN 1
#endif
#endif

namespace olb::steal {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* old : retired_) delete old;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push at the bottom. Grows the buffer when full (old buffers
  /// are retired, not freed, so racing thieves stay safe).
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->put(b, value);
#ifdef OLB_TSAN
    bottom_.store(b + 1, std::memory_order_release);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only: pop from the bottom (LIFO).
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
#ifdef OLB_TSAN
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = buf->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Any thread: steal from the top (FIFO side).
  std::optional<T> steal() {
#ifdef OLB_TSAN
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t >= b) return std::nullopt;
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T value = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return value;
  }

  /// Approximate size (exact only when quiescent).
  std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap) : capacity(cap), slots(cap) {}
    std::size_t capacity;
    std::vector<std::atomic<T>> slots;

    T get(std::int64_t i) {
      return slots[static_cast<std::size_t>(i) & (capacity - 1)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T value) {
      slots[static_cast<std::size_t>(i) & (capacity - 1)].store(
          value, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t cap = 8;
    while (cap < n) cap *= 2;
    return cap;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // freed at destruction; thieves may still read
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only
};

}  // namespace olb::steal
