#include "steal/work_stealing_pool.hpp"

namespace olb::steal {

namespace {
constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);
}

thread_local std::size_t WorkStealingPool::tls_worker_index_ = kNotAWorker;

WorkStealingPool::WorkStealingPool(unsigned num_threads) {
  OLB_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  stopping_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

void WorkStealingPool::spawn(TaskFn fn) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  auto* task = new Task{std::move(fn)};
  const std::size_t self = tls_worker_index_;
  if (self != kNotAWorker) {
    workers_[self]->deque.push(task);
  } else {
    std::scoped_lock lock(inject_mutex_);
    inject_queue_.push_back(task);
  }
  idle_cv_.notify_one();
}

void WorkStealingPool::wait_idle() {
  // Busy-check with a short sleep: simple and correct (the counter reaches 0
  // only when every task, including spawned descendants, has run).
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

WorkStealingPool::Task* WorkStealingPool::find_task(std::size_t self,
                                                    Xoshiro256& rng) {
  if (auto task = workers_[self]->deque.pop()) return *task;
  {
    std::scoped_lock lock(inject_mutex_);
    if (!inject_queue_.empty()) {
      Task* task = inject_queue_.front();
      inject_queue_.pop_front();
      return task;
    }
  }
  // Random-victim stealing, a few rounds before giving up this poll.
  const std::size_t n = workers_.size();
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    const std::size_t victim = static_cast<std::size_t>(rng.below(n));
    if (victim == self) continue;
    if (auto task = workers_[victim]->deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return *task;
    }
  }
  return nullptr;
}

void WorkStealingPool::run_task(Task* task) {
  task->fn(*this);
  delete task;
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
}

void WorkStealingPool::worker_loop(std::size_t index) {
  tls_worker_index_ = index;
  Xoshiro256 rng(mix64(0x706f6f6cull) ^ mix64(index + 1));
  while (true) {
    if (Task* task = find_task(index, rng)) {
      run_task(task);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    std::unique_lock lock(idle_mutex_);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

}  // namespace olb::steal
