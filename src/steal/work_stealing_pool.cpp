#include "steal/work_stealing_pool.hpp"

namespace olb::steal {

namespace {
constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);
}

thread_local std::size_t WorkStealingPool::tls_worker_index_ = kNotAWorker;

WorkStealingPool::WorkStealingPool(unsigned num_threads) {
  OLB_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  {
    std::scoped_lock lock(wake_mutex_);
    stopping_.store(true, std::memory_order_release);
    ++wake_epoch_;  // sleepers watching the old epoch must re-check stopping_
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

void WorkStealingPool::wake_workers(bool all) {
  {
    std::scoped_lock lock(wake_mutex_);
    ++wake_epoch_;
  }
  if (all) {
    wake_cv_.notify_all();
  } else {
    wake_cv_.notify_one();
  }
}

void WorkStealingPool::spawn(TaskFn fn) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  auto* task = new Task{std::move(fn)};
  const std::size_t self = tls_worker_index_;
  if (self != kNotAWorker) {
    workers_[self]->deque.push(task);
  } else {
    std::scoped_lock lock(inject_mutex_);
    inject_queue_.push_back(task);
  }
  // The epoch bump happens-after the push above, so a sleeper that missed
  // the task in its re-scan is guaranteed to observe the changed epoch
  // (or be notified) instead of sleeping through it.
  wake_workers(/*all=*/false);
}

void WorkStealingPool::wait_idle() {
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

WorkStealingPool::Task* WorkStealingPool::find_task(std::size_t self,
                                                    Xoshiro256& rng) {
  if (auto task = workers_[self]->deque.pop()) return *task;
  {
    std::scoped_lock lock(inject_mutex_);
    if (!inject_queue_.empty()) {
      Task* task = inject_queue_.front();
      inject_queue_.pop_front();
      return task;
    }
  }
  // Random-victim stealing, a few rounds before giving up this poll.
  const std::size_t n = workers_.size();
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    const std::size_t victim = static_cast<std::size_t>(rng.below(n));
    if (victim == self) continue;
    if (auto task = workers_[victim]->deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return *task;
    }
  }
  return nullptr;
}

void WorkStealingPool::run_task(Task* task) {
  task->fn(*this);
  delete task;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task done. Taking (and dropping) idle_mutex_ orders this
    // notification after any waiter's predicate check that read the old
    // counter value, so the waiter is inside wait() when notify lands —
    // without it the notify could fall between the waiter's check and its
    // block, and wait_idle() would hang until the next (never) completion.
    { std::scoped_lock lock(idle_mutex_); }
    idle_cv_.notify_all();
  }
}

void WorkStealingPool::worker_loop(std::size_t index) {
  tls_worker_index_ = index;
  Xoshiro256 rng(mix64(0x706f6f6cull) ^ mix64(index + 1));
  while (true) {
    if (Task* task = find_task(index, rng)) {
      run_task(task);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    // Eventcount sleep: snapshot the epoch, re-scan, and only block while
    // the epoch is still the snapshot. Any spawn after the snapshot bumps
    // the epoch under the mutex, so it either surfaces in the re-scan or
    // voids the wait predicate.
    std::uint64_t epoch;
    {
      std::scoped_lock lock(wake_mutex_);
      epoch = wake_epoch_;
    }
    if (Task* task = find_task(index, rng)) {
      run_task(task);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    std::unique_lock lock(wake_mutex_);
    wake_cv_.wait(lock, [&] {
      return wake_epoch_ != epoch || stopping_.load(std::memory_order_acquire);
    });
  }
}

}  // namespace olb::steal
