#include "uts/uts_work.hpp"

#include <cmath>

#include "support/check.hpp"

namespace olb::uts {

std::unique_ptr<UtsWork> UtsWork::whole_tree(const Params& params,
                                             const CostModel& costs) {
  auto work = std::make_unique<UtsWork>(params, costs);
  work->pending_.push_back({root_state(params), 0});
  return work;
}

std::unique_ptr<lb::Work> UtsWork::split(double fraction) {
  OLB_CHECK(fraction > 0.0 && fraction < 1.0);
  if (pending_.size() < 2) return nullptr;  // a single node is indivisible
  auto take = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(pending_.size())));
  if (take == 0) take = 1;
  if (take >= pending_.size()) take = pending_.size() - 1;

  auto out = std::make_unique<UtsWork>(params_, costs_);
  for (std::size_t i = 0; i < take; ++i) {
    out->pending_.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return out;
}

void UtsWork::merge(std::unique_ptr<lb::Work> other) {
  auto* uts = dynamic_cast<UtsWork*>(other.get());
  OLB_CHECK_MSG(uts != nullptr, "cannot merge foreign work into UtsWork");
  for (auto& p : uts->pending_) pending_.push_back(std::move(p));
  nodes_counted_ += uts->nodes_counted_;
  uts->pending_.clear();
  uts->nodes_counted_ = 0;
}

lb::StepResult UtsWork::step(std::uint64_t max_units) {
  lb::StepResult result;
  while (result.units_done < max_units && !pending_.empty()) {
    const Pending item = pending_.back();
    pending_.pop_back();
    ++result.units_done;
    ++nodes_counted_;
    result.sim_cost += costs_.per_node;
    const int kids = num_children(params_, item.state, item.depth);
    for (int i = 0; i < kids; ++i) {
      pending_.push_back({child_state(params_, item.state, static_cast<std::uint32_t>(i)),
                          item.depth + 1});
      result.sim_cost += costs_.per_child;
    }
  }
  return result;
}

}  // namespace olb::uts
