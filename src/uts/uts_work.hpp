// UTS adapter for the generic lb::Work interface.
//
// Pending (generated but unexplored) tree nodes live in a deque: DFS
// processing pops from the back, stealing splits off the *front* — the
// oldest, shallowest entries, which statistically root the largest subtrees
// (the classic work-stealing convention). amount() is the deque length.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "lb/work.hpp"
#include "simnet/time.hpp"
#include "uts/uts.hpp"

namespace olb::uts {

/// Simulated cost model for processing UTS nodes.
struct CostModel {
  sim::Time per_node = sim::microseconds(1);   ///< per node visited
  sim::Time per_child = sim::microseconds(1);  ///< per child state generated
};

class UtsWork final : public lb::Work {
 public:
  UtsWork(Params params, CostModel costs) : params_(params), costs_(costs) {}

  /// The whole tree as one pending node (the root).
  static std::unique_ptr<UtsWork> whole_tree(const Params& params,
                                             const CostModel& costs);

  double amount() const override { return static_cast<double>(pending_.size()); }
  bool empty() const override { return pending_.empty(); }
  std::unique_ptr<lb::Work> split(double fraction) override;
  void merge(std::unique_ptr<lb::Work> other) override;
  lb::StepResult step(std::uint64_t max_units) override;

  std::uint64_t nodes_counted() const { return nodes_counted_; }

  // --- wire-serialisation access (runtime work codec) ---

  std::size_t pending_count() const { return pending_.size(); }
  /// Visits pending nodes front-to-back as fn(const NodeState&, int depth).
  template <typename Fn>
  void visit_pending(Fn&& fn) const {
    for (const Pending& p : pending_) fn(p.state, p.depth);
  }
  /// Appends one pending node at the back (decode rebuilds in visit order).
  void push_pending(const NodeState& state, int depth) {
    pending_.push_back(Pending{state, depth});
  }
  void add_nodes_counted(std::uint64_t n) { nodes_counted_ += n; }

 private:
  struct Pending {
    NodeState state;
    int depth = 0;
  };

  Params params_;
  CostModel costs_;
  std::deque<Pending> pending_;
  std::uint64_t nodes_counted_ = 0;
};

/// Workload wrapper used by experiment drivers.
class UtsWorkload final : public lb::Workload {
 public:
  UtsWorkload(Params params, CostModel costs) : params_(params), costs_(costs) {}

  std::unique_ptr<lb::Work> make_root_work() override {
    return UtsWork::whole_tree(params_, costs_);
  }
  const char* name() const override { return "UTS"; }

  const Params& params() const { return params_; }
  const CostModel& costs() const { return costs_; }

 private:
  Params params_;
  CostModel costs_;
};

}  // namespace olb::uts
