#include "uts/uts.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::uts {

double Params::expected_size() const {
  if (shape == TreeShape::kBinomial) {
    const double mq = static_cast<double>(m) * q;
    if (mq >= 1.0) return std::numeric_limits<double>::infinity();
    return static_cast<double>(b0) / (1.0 - mq) + 1.0;
  }
  // GEO with linear shape: product over depths of mean branching; report the
  // crude geometric-series estimate with the depth-0 mean.
  double total = 1.0;
  double level = 1.0;
  for (int d = 0; d < gen_mx; ++d) {
    level *= static_cast<double>(b0) * (1.0 - static_cast<double>(d) / gen_mx);
    total += level;
  }
  return total;
}

double NodeState::uniform01() const {
  return static_cast<double>(random31()) * 0x1.0p-31;
}

std::uint32_t NodeState::random31() const {
  std::uint32_t v = 0;
  // Big-endian read of the first 4 state bytes, truncated to 31 bits —
  // the same convention as the reference benchmark's rng_rand().
  for (int i = 0; i < 4; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v >> 1;
}

namespace {

NodeState fast_state(std::uint64_t value) {
  NodeState s;
  for (int i = 0; i < 8; ++i) {
    s.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value >> (56 - 8 * i));
  }
  return s;
}

std::uint64_t fast_value(const NodeState& s) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | s.bytes[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

NodeState root_state(const Params& params) {
  if (params.hash == HashMode::kSha1) {
    // Hash the 4-byte big-endian seed, as the reference rng_init does in
    // spirit: the root state is a digest of the seed alone.
    std::array<std::uint8_t, 4> seed_bytes{};
    for (int i = 0; i < 4; ++i) {
      seed_bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(params.root_seed >> (24 - 8 * i));
    }
    NodeState s;
    s.bytes = Sha1::hash(seed_bytes);
    return s;
  }
  return fast_state(mix64(0x5554535f726f6f74ull ^ params.root_seed));
}

NodeState child_state(const Params& params, const NodeState& parent,
                      std::uint32_t index) {
  if (params.hash == HashMode::kSha1) {
    Sha1 h;
    h.update(parent.bytes.data(), parent.bytes.size());
    std::array<std::uint8_t, 4> idx_bytes{};
    for (int i = 0; i < 4; ++i) {
      idx_bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(index >> (24 - 8 * i));
    }
    h.update(idx_bytes.data(), idx_bytes.size());
    NodeState s;
    s.bytes = h.finish();
    return s;
  }
  const std::uint64_t parent_value = fast_value(parent);
  return fast_state(mix64(parent_value ^ mix64(0x63686c64ull + index)));
}

int num_children(const Params& params, const NodeState& state, int depth) {
  if (params.shape == TreeShape::kBinomial) {
    if (depth == 0) return params.b0;
    return state.uniform01() < params.q ? params.m : 0;
  }
  // Geometric with linear shape.
  if (depth >= params.gen_mx) return 0;
  const double b_d =
      static_cast<double>(params.b0) *
      (1.0 - static_cast<double>(depth) / static_cast<double>(params.gen_mx));
  if (b_d <= 0.0) return 0;
  const double p = 1.0 / (1.0 + b_d);  // geometric parameter with mean b_d
  const double u = state.uniform01();
  const int k = static_cast<int>(std::floor(std::log1p(-u) / std::log1p(-p)));
  return k;
}

TreeStats count_tree(const Params& params) {
  struct Item {
    NodeState state;
    int depth;
  };
  std::vector<Item> stack;
  stack.push_back({root_state(params), 0});
  TreeStats stats;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    ++stats.nodes;
    if (item.depth > stats.max_depth) stats.max_depth = item.depth;
    const int kids = num_children(params, item.state, item.depth);
    if (kids == 0) {
      ++stats.leaves;
      continue;
    }
    for (int i = 0; i < kids; ++i) {
      stack.push_back({child_state(params, item.state, static_cast<std::uint32_t>(i)),
                       item.depth + 1});
    }
  }
  return stats;
}

}  // namespace olb::uts
