// The Unbalanced Tree Search (UTS) benchmark (Olivier et al., LCPC'06).
//
// UTS counts the nodes of an implicitly defined random tree whose subtree
// sizes have extreme variance, making it the reference adversary for dynamic
// load balancing. A node is identified by a splittable deterministic random
// state; the state of child i is a cryptographic hash of the parent state
// and i, so any node's subtree can be regenerated anywhere from 20 bytes —
// exactly the property that makes UTS work cheap to ship between peers.
//
// Tree shapes:
//  * Binomial (BIN): the root has b0 children; every other node has m
//    children with probability q and none with probability 1-q. With
//    m*q -> 1 the process is near-critical and subtree sizes are wildly
//    unbalanced. The paper's instances are BIN (b=2000, m=2, q≈0.4999995).
//  * Geometric (GEO): the number of children is geometrically distributed
//    with depth-dependent mean b(d) = b0 * (1 - d/gen_mx) (linear shape),
//    zero beyond depth gen_mx.
//
// Hash modes:
//  * kSha1 — child state = SHA-1(parent state || be32(child index)); matches
//    the construction of the reference benchmark.
//  * kFast — 64-bit splitmix mixing; ~20x faster, same statistics. Scaled
//    experiments default to kFast; fidelity tests cover kSha1.
#pragma once

#include <array>
#include <cstdint>

#include "support/sha1.hpp"

namespace olb::uts {

enum class TreeShape { kBinomial, kGeometric };
enum class HashMode { kSha1, kFast };

struct Params {
  TreeShape shape = TreeShape::kBinomial;
  HashMode hash = HashMode::kFast;
  int b0 = 2000;        ///< root branching factor
  double q = 0.4999;    ///< BIN: probability of having m children
  int m = 2;            ///< BIN: number of children when spawning
  int gen_mx = 6;       ///< GEO: maximum depth
  std::uint32_t root_seed = 599;  ///< the paper's "r" parameter

  /// Expected BIN tree size b0/(1 - m*q) + 1 (infinite if m*q >= 1).
  double expected_size() const;
};

/// A node's 20-byte splittable random state (kFast uses the first 8 bytes).
struct NodeState {
  std::array<std::uint8_t, 20> bytes{};

  /// Uniform value in [0, 1) derived from the state.
  double uniform01() const;
  /// Raw 31-bit value (mirrors the reference benchmark's rng_rand()).
  std::uint32_t random31() const;
};

/// State of the tree root for the given parameters.
NodeState root_state(const Params& params);

/// State of child `index` of a node with state `parent`.
NodeState child_state(const Params& params, const NodeState& parent,
                      std::uint32_t index);

/// Number of children of a node with the given state and depth.
int num_children(const Params& params, const NodeState& state, int depth);

/// Result of a full sequential traversal.
struct TreeStats {
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  int max_depth = 0;
};

/// Sequentially counts the whole tree (DFS, explicit stack).
TreeStats count_tree(const Params& params);

}  // namespace olb::uts
