// Messages exchanged between simulated peers.
//
// A message carries an application-defined integer type tag, three scalar
// fields (enough for the protocols in this repo: request flags, counters,
// bound values), and an optional owned payload for work transfers. Messages
// are move-only: work travels, it is never duplicated.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "simnet/time.hpp"

namespace olb::sim {

/// Base class for owned message payloads (e.g. a chunk of work).
/// Applications downcast via static_cast after checking the message type.
struct MsgPayload {
  virtual ~MsgPayload() = default;

  /// Application units carried by this payload; the engine charges it to
  /// the work-lost ledger when fault injection destroys the message.
  virtual double amount() const { return 0.0; }
};

struct Message {
  int type = 0;
  /// Engine-assigned sequence number; pairs the send/deliver trace events of
  /// one message (31 bits keep Message at its pre-tracing size — ids recycle
  /// after 2^31 sends, far beyond any run's event watchdog). Only written
  /// when a tracer is attached; 0 otherwise.
  std::uint32_t id : 31 = 0;
  /// Set by the engine when a payload-carrying message reached a crashed
  /// peer and was returned to its sender (fault injection only). A bounce
  /// that hits a second crashed peer is destroyed, not bounced again.
  /// Shares id's unit: both are cold fields, and a separate bool would
  /// grow every Message (and so every queued Event) by eight padded bytes.
  std::uint32_t bounced : 1 = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::unique_ptr<MsgPayload> payload;

  // Filled in by the engine on send / arrival.
  int src = -1;
  int dst = -1;
  Time arrived_at = 0;  ///< when the message entered the receiver's inbox

  Message() = default;
  Message(int type_, std::int64_t a_ = 0, std::int64_t b_ = 0, std::int64_t c_ = 0)
      : type(type_), a(a_), b(b_), c(c_) {}

  Message(Message&&) noexcept = default;
  Message& operator=(Message&&) noexcept = default;
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
};
static_assert(sizeof(Message) == 3 * sizeof(std::int64_t) + sizeof(void*) +
                                     2 * sizeof(int) + sizeof(Time) + 8,
              "type/id/bounced must form one 8-byte leading unit");

/// FIFO of messages backed by a growable power-of-two ring.
///
/// This is the actor inbox. std::deque paid a chunk-map indirection plus a
/// non-trivial iterator on every push/pop, and those two calls sit on the
/// engine's hottest path (every delivered message passes through once).
/// The ring is one contiguous buffer, two masked indices, and — like the
/// event slab — it never shrinks: capacity is the inbox's high-water mark,
/// small for every protocol here.
class MessageRing {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Oldest message. Precondition: !empty().
  Message& front() { return buf_[head_]; }
  const Message& front() const { return buf_[head_]; }

  /// The i-th oldest message, i < size() (for crash accounting sweeps).
  const Message& at(std::size_t i) const {
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  void push_back(Message&& m) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(m);
    ++size_;
  }

  /// Drops the oldest message. Callers move front() out first; the slot
  /// keeps the moved-from shell (payload null) until overwritten.
  void pop_front() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  /// Destroys all queued messages (releases their payloads).
  void clear() {
    while (size_ > 0) {
      buf_[head_] = Message();
      pop_front();
    }
    head_ = 0;
  }

 private:
  void grow() {
    std::vector<Message> bigger(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<Message> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Message type tag reserved by the engine for timer expiry. Application
/// message types must be >= 0.
inline constexpr int kTimerMsgType = -1;

/// Reserved by the engine for failure-detector notifications: field `a`
/// holds the id of the crashed peer. Dispatched to Actor::on_peer_down(),
/// never to on_message(). Only ever sent when fault injection is active.
inline constexpr int kPeerDownMsgType = -2;

}  // namespace olb::sim
