// Messages exchanged between simulated peers.
//
// A message carries an application-defined integer type tag, three scalar
// fields (enough for the protocols in this repo: request flags, counters,
// bound values), and an optional owned payload for work transfers. Messages
// are move-only: work travels, it is never duplicated.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>

#include "simnet/time.hpp"

namespace olb::sim {

/// Base class for owned message payloads (e.g. a chunk of work).
/// Applications downcast via static_cast after checking the message type.
struct MsgPayload {
  virtual ~MsgPayload() = default;
};

struct Message {
  int type = 0;
  /// Engine-assigned sequence number; pairs the send/deliver trace events of
  /// one message (32 bits keep Message at its pre-tracing size — ids recycle
  /// after 2^32 sends, far beyond any run's event watchdog). Only written
  /// when a tracer is attached; 0 otherwise.
  std::uint32_t id = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::unique_ptr<MsgPayload> payload;

  // Filled in by the engine on send / arrival.
  int src = -1;
  int dst = -1;
  Time arrived_at = 0;  ///< when the message entered the receiver's inbox

  Message() = default;
  Message(int type_, std::int64_t a_ = 0, std::int64_t b_ = 0, std::int64_t c_ = 0)
      : type(type_), a(a_), b(b_), c(c_) {}

  Message(Message&&) noexcept = default;
  Message& operator=(Message&&) noexcept = default;
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
};
static_assert(sizeof(Message::type) + sizeof(Message::id) == 8,
              "type/id must form one 8-byte leading unit");

/// Message type tag reserved by the engine for timer expiry. Application
/// message types must be >= 0.
inline constexpr int kTimerMsgType = -1;

}  // namespace olb::sim
