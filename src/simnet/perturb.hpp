// Seeded schedule perturbation for adversarial-order exploration.
//
// A deterministic simulation is a strength for reproducibility but a
// weakness for coverage: one seed explores exactly one message interleaving,
// and protocol bugs that need a particular race stay invisible. A
// SchedulePerturbation widens the explored space while keeping runs pure
// functions of (actors, config, seed, perturbation seed):
//
//  * shuffle_ties — simultaneous events (equal timestamps) are ordered by a
//    per-event random priority instead of insertion order, so every
//    same-time race is resolved differently per perturbation seed;
//  * extra_jitter — every message's latency gains a uniform extra delay in
//    [0, extra_jitter], creating new ties and cross-link overtakings that
//    the base network model (fixed per-link latency + small jitter) never
//    produces. Per-link delivery order is preserved (arrivals are clamped
//    to stay behind the link's last scheduled one): the protocols'
//    termination arguments assume non-overtaking links, an assumption the
//    base network meets structurally because consecutive same-link sends
//    are spaced by at least msg_handling_cost > latency_jitter. Jitter that
//    reordered a link would explore schedules outside the protocol's
//    contract — the fuzzer demonstrated a (legitimate) termination failure
//    there, with a finished-signal overtaking the final work transfer.
//
// A disabled perturbation (seed == 0, the default) leaves the engine
// byte-identical to one that never heard of this header: the tie key stays
// 0 for every event and no extra random draws happen, so event order and
// all downstream RNG streams are untouched — the conformance harness
// (src/check) asserts this.
#pragma once

#include <cstdint>

#include "simnet/time.hpp"

namespace olb::sim {

struct SchedulePerturbation {
  /// Seed of the dedicated perturbation RNG stream; 0 disables the whole
  /// feature (runs stay byte-identical to an unperturbed engine).
  std::uint64_t seed = 0;
  /// Break timestamp ties by random priority instead of insertion order.
  bool shuffle_ties = true;
  /// Uniform extra per-message latency in [0, extra_jitter] (0 = none).
  Time extra_jitter = 0;

  bool enabled() const { return seed != 0 && (shuffle_ties || extra_jitter > 0); }
};

}  // namespace olb::sim
