#include "simnet/faults.hpp"

#include <algorithm>

namespace olb::sim {

void FaultPlan::validate(int num_peers) const {
  auto check_prob = [](double p) { OLB_CHECK_MSG(p >= 0.0 && p <= 1.0, "fault probability outside [0, 1]"); };
  check_prob(link.drop_prob);
  check_prob(link.dup_prob);
  check_prob(link.spike_prob);
  OLB_CHECK(link.spike_latency >= 0);
  OLB_CHECK(detection_delay >= 0);
  for (const CrashEvent& c : crashes) {
    OLB_CHECK_MSG(c.peer >= 0 && c.peer < num_peers, "crash victim out of range");
    OLB_CHECK(c.at >= 0);
  }
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    for (std::size_t j = i + 1; j < crashes.size(); ++j) {
      OLB_CHECK_MSG(crashes[i].peer != crashes[j].peer, "peer crashes twice");
    }
  }
  for (const StallEvent& s : stalls) {
    OLB_CHECK_MSG(s.peer >= 0 && s.peer < num_peers, "stall victim out of range");
    OLB_CHECK(s.at >= 0);
    OLB_CHECK(s.duration >= 0);
  }
}

FaultPlan make_random_crashes(int count, int num_peers, Time from, Time to,
                              std::uint64_t seed) {
  OLB_CHECK(count >= 0);
  OLB_CHECK_MSG(count < num_peers - 1, "cannot crash (almost) every peer");
  OLB_CHECK(from <= to);
  FaultPlan plan;
  Xoshiro256 rng(mix64(seed ^ 0x637261736865ull));
  std::vector<int> victims;
  while (static_cast<int>(victims.size()) < count) {
    const int v = 1 + static_cast<int>(
                          rng.below(static_cast<std::uint64_t>(num_peers - 1)));
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  for (int v : victims) {
    const Time at =
        to > from ? from + static_cast<Time>(rng.below(
                               static_cast<std::uint64_t>(to - from)))
                  : from;
    plan.add_crash(v, at);
  }
  return plan;
}

Time max_message_latency(Time base_latency, Time jitter, const FaultPlan& plan) {
  Time t = base_latency + jitter;
  if (plan.link.spike_prob > 0.0) t += plan.link.spike_latency;
  return t;
}

}  // namespace olb::sim
