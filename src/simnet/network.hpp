// Cluster topology and link latency model.
//
// Mirrors the paper's testbed: one or two clusters of peers; links inside a
// cluster are fast, links between clusters are slower, and every message
// pays a small seeded jitter so ties and lock-step effects do not occur.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/time.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::sim {

struct NetworkConfig {
  Time intra_latency = microseconds(20);
  Time inter_latency = microseconds(200);
  Time latency_jitter = microseconds(4);  ///< uniform in [0, jitter)
  Time msg_handling_cost = microseconds(5);  ///< receiver busy time per message

  /// Peers per cluster; peers are assigned to clusters in contiguous blocks.
  /// 0 means a single cluster. The paper's C1 holds 736 cores, so scale-1000
  /// runs put peers 736.. in a second cluster.
  int cluster_capacity = 0;
};

class Network {
 public:
  Network(NetworkConfig config, std::uint64_t seed)
      : config_(config), rng_(mix64(seed ^ 0x6e657477ull)) {}

  const NetworkConfig& config() const { return config_; }

  int cluster_of(int peer) const {
    OLB_CHECK(peer >= 0);
    if (config_.cluster_capacity <= 0) return 0;
    return peer / config_.cluster_capacity;
  }

  /// Latency of one message from src to dst (includes jitter draw).
  Time latency(int src, int dst) {
    const Time base = cluster_of(src) == cluster_of(dst) ? config_.intra_latency
                                                         : config_.inter_latency;
    const Time jitter =
        config_.latency_jitter > 0
            ? static_cast<Time>(rng_.below(static_cast<std::uint64_t>(config_.latency_jitter)))
            : 0;
    return base + jitter;
  }

 private:
  NetworkConfig config_;
  Xoshiro256 rng_;
};

}  // namespace olb::sim
