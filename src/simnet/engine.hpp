// Discrete-event simulation engine with queueing-accurate actors.
//
// Every peer of the simulated cluster is an Actor with single-server FIFO
// semantics: handling a message occupies the actor for
// NetworkConfig::msg_handling_cost, and application compute occupies it for
// the durations the actor requests via start_compute(). Messages that arrive
// while the actor is busy wait in its inbox. At a compute-chunk boundary all
// queued messages are serviced before the next chunk starts — the same
// behaviour as a message-passing worker that polls its channel between work
// chunks. These semantics are what make hot-spot effects (e.g. the
// Master-Worker collapse at high core counts in the paper's Fig. 4) emerge
// from first principles instead of being scripted.
//
// Determinism: all randomness (latency jitter, per-actor RNG streams) is
// derived from the engine seed, and simultaneous events are ordered by a
// global insertion counter, so a run is a pure function of (actors, config,
// seed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "metrics/metrics.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/faults.hpp"
#include "simnet/message.hpp"
#include "simnet/network.hpp"
#include "simnet/perturb.hpp"
#include "simnet/time.hpp"
#include "simnet/transport.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace olb::runtime {
class ThreadNet;  // the shared-memory backend (src/runtime), befriended below
class SocketNet;  // the TCP multi-process backend (src/runtime), ditto
}

namespace olb::metrics {
class MetricsHub;  // src/metrics/hub.hpp; engine.cpp sees the full type
}

namespace olb::sim {

class Engine;

/// Per-actor accounting used for efficiency and message-load reports.
struct ActorStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  Time compute_time = 0;   ///< simulated time spent on application work
  Time overhead_time = 0;  ///< simulated time spent handling messages
  std::vector<std::uint64_t> sent_by_type;  ///< indexed by message type
};

/// Base class for protocol peers. Subclasses implement the protocol by
/// overriding the on_* hooks and calling send()/start_compute()/set_timer()
/// from inside them. All hooks run with the actor exclusively scheduled
/// (simulator) or on the actor's own thread (runtime::ThreadNet); either
/// way no locking is ever needed inside a hook.
class Actor {
 public:
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  int id() const { return id_; }

  /// Relative compute speed of this peer (1.0 = nominal). Durations passed
  /// to start_compute() are divided by it — the knob for simulating
  /// heterogeneous hardware. Set before run().
  void set_speed(double speed) {
    OLB_CHECK(speed > 0.0);
    speed_ = speed;
  }
  double speed() const { return speed_; }

  /// True once fault injection has fail-stopped this actor.
  bool crashed() const { return crashed_; }

 protected:
  Actor() = default;

  /// Called once at simulated time 0, before any message delivery.
  virtual void on_start() {}

  /// Called for each delivered application message.
  virtual void on_message(Message m) = 0;

  /// Called when a timer set with set_timer() fires.
  virtual void on_timer(std::int64_t tag) { (void)tag; }

  /// Fault injection: called the instant this actor fail-stops, after its
  /// inbox has been discarded. Must release any held work and return the
  /// application units destroyed with it (for the work-lost ledger). The
  /// actor receives no further hooks after this.
  virtual double on_crashed() { return 0.0; }

  /// Fault injection: failure-detector notification that `peer` crashed,
  /// delivered `FaultPlan::detection_delay` after the crash. Never called
  /// in fault-free runs.
  virtual void on_peer_down(int peer) { (void)peer; }

  /// Called when a compute span started with start_compute() completes and
  /// all messages that arrived during the span have been serviced.
  virtual void on_compute_done() {}

  /// Called once at run start when a metrics hub is attached: create this
  /// actor's instruments from the registry and stash the pointers. The base
  /// implementation arms the protocol-event counters (requests, serves,
  /// declines, retries, idle episodes) that emit_trace derives for every
  /// strategy; overriders must call it.
  virtual void on_metrics(metrics::Registry& registry);

  /// Metrics sampling hook, called on the owning thread (simulator: at every
  /// snapshot flush; thread backend: periodically inside the actor's own
  /// loop and before it sleeps). Recompute-and-set gauges from current state
  /// here — sampled gauges can never drift, unlike incrementally-maintained
  /// ones. Never called unless a hub is attached.
  virtual void on_metrics_poll() {}

  // --- services available inside hooks ---

  Time now() const;
  void send(int dst, Message m);
  /// Occupies this actor for `duration / speed()`; on_compute_done() fires
  /// afterwards. At most one compute span may be outstanding.
  void start_compute(Time duration);
  bool computing() const { return compute_pending_; }
  void set_timer(Time delay, std::int64_t tag);
  Xoshiro256& rng() { return rng_; }
  /// True when now() is a field read (simulator); false when it is a real
  /// clock syscall (thread backend). Per-chunk bookkeeping that only feeds
  /// reporting checks this before stamping timestamps.
  bool time_is_free() const { return transport_->transport_time_is_free(); }
  /// Cluster size (peer ids are dense 0..num_peers()-1 on both backends).
  int num_peers() const;
  const ActorStats& stats() const { return stats_; }
  /// Records a protocol-level trace event on this actor's track (no-op
  /// unless a tracer is attached to the engine).
  void emit_trace(trace::EventKind kind, int peer = -1, int type = 0,
                  std::int64_t a = 0, std::int64_t b = 0);

 private:
  friend class Engine;
  friend class olb::runtime::ThreadNet;
  friend class olb::runtime::SocketNet;

  // Field order packs id_ against the flag block: one 8-byte line holds the
  // id plus all four bools instead of two half-empty ones — 8 bytes per
  // actor, which is a whole level of the overlay at 10^6 peers
  // (docs/SCALING.md has the per-peer budget).
  Transport* transport_ = nullptr;
  double speed_ = 1.0;
  Xoshiro256 rng_;

  Time busy_until_ = 0;
  int id_ = -1;
  bool started_ = false;
  bool compute_pending_ = false;
  bool wake_pending_ = false;
  bool crashed_ = false;
  MessageRing inbox_;
  ActorStats stats_;
  /// Armed by on_metrics, bumped at the emit_trace funnel (see engine.cpp).
  metrics::ActorEventCounters mcounters_;
};

class Engine final : public Transport {
 public:
  Engine(NetworkConfig config, std::uint64_t seed);

  /// Takes ownership; returns the actor's id (dense, starting at id_base —
  /// 0 unless this engine is a shard). All actors must be added before run().
  int add_actor(std::unique_ptr<Actor> actor);

  int num_actors() const { return static_cast<int>(actors_.size()); }
  Actor& actor(int id) { return *local(id); }
  const ActorStats& stats(int id) const { return local(id)->stats_; }

  // --- shard support (ShardedEngine, sharded_engine.hpp) ---

  /// Declares this engine a shard owning the contiguous global id range
  /// [id_base, id_base + local count) out of `global_peers` total. Actor
  /// ids, their RNG streams and transport_num_peers() all use global
  /// values, so a shard's actors are bit-identical to the same actors
  /// inside an unsharded engine. Sends to non-local destinations divert to
  /// the remote outbox instead of the event queue. Call before add_actor().
  /// The default state (base 0, global -1) means unsharded: every peer is
  /// local and num_peers() == num_actors().
  void configure_shard(int id_base, int global_peers) {
    OLB_CHECK_MSG(actors_.empty(), "configure_shard before add_actor");
    OLB_CHECK(id_base >= 0 && global_peers > id_base);
    id_base_ = id_base;
    global_peers_ = global_peers;
  }
  int id_base() const { return id_base_; }
  bool is_local(int id) const {
    return id >= id_base_ && id < id_base_ + num_actors();
  }

  /// A message bound for another shard: the send-side work (stats, latency
  /// draw) is already done; `at` is the arrival time at the destination.
  struct RemoteSend {
    Time at;
    Message msg;  ///< src/dst are global ids
  };
  /// Cross-shard sends since the last drain, in send order. The shard
  /// coordinator moves them into the destination engines at each window
  /// barrier — conservative lookahead guarantees `at` is still in every
  /// destination's future (see sharded_engine.hpp).
  std::vector<RemoteSend>& remote_outbox() { return remote_out_; }

  /// Queues an arrival handed over from another shard. Stamps this engine's
  /// own insertion sequence, so cross-shard delivery order is exactly the
  /// coordinator's (deterministic) drain order. The sending engine already
  /// counted the message, so totals summed over shards stay per-message.
  void inject_arrival(Message m, Time at) {
    OLB_CHECK_MSG(at >= now_, "cross-shard arrival would be in the past");
    push_arrival(std::move(m), at);
  }

  /// One-shot: queues the start wakes and any fault-plan events. run() calls
  /// it implicitly; the sharded coordinator calls it before its first window
  /// so next_event_time() sees the start wakes when picking the window base.
  void schedule_startup();

  /// Earliest pending event time, kTimeMax when the queue is empty — the
  /// coordinator's window-base input.
  Time next_event_time() const {
    return queue_.empty() ? kTimeMax : queue_.peek_time();
  }

  /// Bytes of heap storage behind the event queue and remote outbox.
  std::size_t queue_memory_bytes() const {
    return queue_.memory_bytes() + remote_out_.capacity() * sizeof(RemoteSend);
  }

  struct RunResult {
    Time end_time = 0;          ///< time of the last processed event
    std::uint64_t events = 0;   ///< events processed
    bool quiesced = false;      ///< event queue drained (natural completion)
  };

  /// Runs until the event queue drains or a limit is hit.
  RunResult run(Time time_limit = kTimeMax,
                std::uint64_t event_limit = ~std::uint64_t{0});

  Time now() const { return now_; }
  Network& network() { return network_; }

  /// Installs a fault plan (validated against the actor count, so call
  /// after all actors are added and before run()). A disabled plan is a
  /// no-op: the run stays byte-identical to one that never called this.
  void set_faults(const FaultPlan& plan) {
    OLB_CHECK_MSG(!running_, "faults must be configured before run()");
    injector_.configure(plan, num_actors(), seed_);
    faults_on_ = injector_.active();
    link_faults_on_ = injector_.link_active();
  }
  const FaultPlan& fault_plan() const { return injector_.plan(); }
  bool peer_crashed(int id) const { return injector_.crashed(id); }

  /// Installs a schedule perturbation (see perturb.hpp): random tie-breaking
  /// among simultaneous events and/or bounded extra latency jitter, driven
  /// by a dedicated RNG stream so the actors' own streams are untouched.
  /// Call before run(). A disabled perturbation (the default) is a strict
  /// no-op: the run stays byte-identical to one that never called this.
  void set_perturbation(const SchedulePerturbation& p) {
    OLB_CHECK_MSG(!running_, "perturbation must be configured before run()");
    if (!p.enabled()) return;
    perturb_ties_ = p.shuffle_ties;
    perturb_jitter_ = p.extra_jitter;
    perturb_rng_ = Xoshiro256(mix64(p.seed ^ 0x70657274ull) ^ mix64(seed_));
  }

  /// Conformance-harness bug plant: silently discards the nth payload-
  /// carrying message instead of delivering it — a "lost transfer" the
  /// oracles must catch. 0 (default) disables. Call before run().
  void set_planted_payload_drop(int nth) {
    OLB_CHECK_MSG(!running_, "bug plants must be configured before run()");
    planted_drop_nth_ = nth;
  }

  // --- fault accounting (all zero in fault-free runs) ---
  std::uint64_t msgs_dropped() const { return msgs_dropped_; }
  std::uint64_t msgs_duplicated() const { return msgs_duplicated_; }
  std::uint64_t latency_spikes() const { return latency_spikes_; }
  std::uint64_t work_bounced() const { return work_bounced_; }
  int crashes_applied() const { return crashes_applied_; }
  /// Application units destroyed by crashes: work held by the victim plus
  /// payloads in its inbox or addressed to it that could not be bounced.
  double work_lost_units() const { return work_lost_units_; }

  std::uint64_t total_messages() const { return total_messages_; }
  /// Sum of a message-type counter over all actors.
  std::uint64_t total_sent_of_type(int type) const;

  /// Aggregate compute time per kBusyBucket window of simulated time —
  /// cluster utilisation over time (bucket i covers [i, i+1) * kBusyBucket).
  static constexpr Time kBusyBucket = milliseconds(1);
  const std::vector<Time>& busy_histogram() const { return busy_buckets_; }

  /// Attaches a trace sink (not owned; must outlive run()). nullptr (the
  /// default) disables tracing at the cost of one branch per event site.
  /// Attaching a tracer also turns on queueing-delay accounting.
  void set_tracer(trace::TraceSink* tracer) {
    tracer_ = tracer;
    if (tracer != nullptr) measure_queue_delay_ = true;
    instrumented_ = tracer_ != nullptr || measure_queue_delay_;
  }
  trace::TraceSink* tracer() const { return tracer_; }

  /// Queueing-delay accounting: how long application messages sat in an
  /// inbox behind a busy actor before being handled — the paper's
  /// Master-Worker collapse is exactly this number exploding at the master.
  /// Off by default to keep the raw event loop at full speed; the lb driver
  /// switches it on for every run.
  void enable_queue_delay_stats() {
    measure_queue_delay_ = true;
    instrumented_ = true;
  }
  /// Attaches a live-metrics hub (not owned; must outlive run()). The engine
  /// registers its own instruments, arms every actor's via on_metrics, and
  /// flushes a snapshot whenever simulated time crosses the hub's interval —
  /// so the cadence is deterministic simulated milliseconds. nullptr (the
  /// default) disables metrics; like tracing, the metered run_loop flavour
  /// is only entered when a hub is attached, and metrics only *read* actor
  /// state, so runs stay byte-identical with or without a hub.
  void set_metrics(metrics::MetricsHub* hub);
  metrics::MetricsHub* metrics_hub() const { return metrics_hub_; }

  Time queueing_delay_max() const { return queue_delay_max_; }
  std::uint64_t queueing_delay_samples() const { return queue_delay_samples_; }
  double queueing_delay_mean() const {
    return queue_delay_samples_ > 0
               ? static_cast<double>(queue_delay_sum_) /
                     static_cast<double>(queue_delay_samples_)
               : 0.0;
  }

 private:
  friend class Actor;

  /// Maps a global actor id to the owned actor (ids are global everywhere;
  /// only the storage index is shard-relative).
  const std::unique_ptr<Actor>& local(int id) const {
    OLB_CHECK(is_local(id));
    return actors_[static_cast<std::size_t>(id - id_base_)];
  }

  // Transport services (Actor dispatches here; see transport.hpp).
  Time transport_now() const override { return now_; }
  int transport_num_peers() const override {
    return global_peers_ >= 0 ? global_peers_ : num_actors();
  }
  trace::TraceSink* transport_tracer() const override { return tracer_; }
  void transport_send(Actor& from, int dst, Message m) override {
    send_from(from, dst, std::move(m));
  }
  void transport_set_timer(Actor& from, Time delay, std::int64_t tag) override;
  void transport_compute_started(Actor& from, Time duration) override;

  void send_from(Actor& from, int dst, Message m);
  void schedule_wake(Actor& a, Time at);
  void service(Actor& a, Time t);
  void service_instrumented(Actor& a, Time t);
  /// `Metered` adds the snapshot-deadline probe per event; like the other
  /// two flavours it is chosen once in run() so metrics-off loops carry no
  /// trace of it.
  template <bool Instrumented, bool Faulty, bool Metered>
  RunResult run_loop(Time time_limit, std::uint64_t event_limit);
  template <bool Instrumented, bool Faulty>
  RunResult run_metered(Time time_limit, std::uint64_t event_limit);
  /// Polls every live actor's gauges, updates the engine's own instruments,
  /// and flushes a snapshot stamped `now_`. Cold path (once per interval).
  void flush_metrics(std::uint64_t events_so_far);

  /// Single choke point for event insertion: stamps the insertion sequence
  /// and the random tie-break key when tie shuffling is active (0 otherwise,
  /// preserving FIFO order). Returns the slab-resident event so callers fill
  /// the message in place — no whole-Event moves on the send path. The
  /// reference dies at the next queue operation.
  Event& emplace_event(Time at, int dst, Event::Kind kind) {
    std::uint64_t tie = 0;
    if (perturb_ties_) [[unlikely]] tie = perturb_rng_();
    return queue_.emplace(at, tie, next_seq_++, dst, kind);
  }
  void push_arrival(Message&& m, Time at);
  /// Cold continuation of send_from when link faults are enabled: fate
  /// draw, spike accounting, drop/duplicate handling.
  void send_faulty(Actor& from, int dst, Message&& m, Time latency);
  void arrival_at_crashed(Event e);
  void apply_crash(int peer);
  void apply_stall(int peer, Time duration);

  void record_busy(Time start, Time duration);

  NetworkConfig config_;
  Network network_;
  std::uint64_t seed_;
  std::vector<Time> busy_buckets_;
  std::vector<std::unique_ptr<Actor>> actors_;
  EventQueue queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t total_messages_ = 0;
  Time now_ = 0;
  bool running_ = false;
  // Shard state (see configure_shard; inert in unsharded engines).
  int id_base_ = 0;
  int global_peers_ = -1;
  std::vector<RemoteSend> remote_out_;
  /// One-shot guards: the windowed sharded driver calls run() thousands of
  /// times per simulation, so start wakes and fault-plan events must be
  /// scheduled exactly once, not per call.
  bool startup_scheduled_ = false;
  // Fault injection (inactive by default; every hot-path probe is one
  // predicted-not-taken branch, and zero-fault runs take none of them).
  FaultInjector injector_;
  bool faults_on_ = false;
  bool link_faults_on_ = false;
  std::uint64_t msgs_dropped_ = 0;
  std::uint64_t msgs_duplicated_ = 0;
  std::uint64_t latency_spikes_ = 0;
  std::uint64_t work_bounced_ = 0;
  int crashes_applied_ = 0;
  double work_lost_units_ = 0.0;
  // Schedule perturbation (off by default; the tie stamp is one
  // predicted-not-taken branch per event, the jitter one per send).
  bool perturb_ties_ = false;
  Time perturb_jitter_ = 0;
  Xoshiro256 perturb_rng_;
  /// Last scheduled arrival per ordered (src, dst) link, indexed
  /// src * num_actors() + dst; allocated lazily on the jittered send path
  /// only, so unperturbed runs never touch it. Keeps extra_jitter from
  /// reordering a link (see send_from).
  std::vector<Time> perturb_link_last_;
  // Conformance-harness bug plant (see set_planted_payload_drop).
  int planted_drop_nth_ = 0;
  int planted_payload_seen_ = 0;
  // Tracing / queueing-delay state lives after the event-loop hot members so
  // attaching the subsystem does not shift their cache-line layout.
  trace::TraceSink* tracer_ = nullptr;
  bool instrumented_ = false;  ///< tracer_ != nullptr || measure_queue_delay_
  bool measure_queue_delay_ = false;
  Time queue_delay_sum_ = 0;
  Time queue_delay_max_ = 0;
  std::uint64_t queue_delay_samples_ = 0;
  // Live metrics (cold like tracing: nothing below is touched unless a hub
  // is attached, and the metered loop flavour is only entered then).
  metrics::MetricsHub* metrics_hub_ = nullptr;
  Time metrics_next_ = kTimeMax;  ///< next snapshot deadline (simulated)
  struct EngineInstruments {
    metrics::Counter* events = nullptr;
    metrics::Gauge* queue_len = nullptr;
    metrics::Counter* dropped = nullptr;
    metrics::Counter* duplicated = nullptr;
    metrics::Counter* spikes = nullptr;
    metrics::Counter* crashes = nullptr;
    metrics::Gauge* work_lost = nullptr;
  } em_;
  // Deltas since the last flush (the engine's own tallies are plain fields;
  // the counters advance by difference at each snapshot).
  std::uint64_t m_last_events_ = 0;
  std::uint64_t m_last_dropped_ = 0;
  std::uint64_t m_last_duplicated_ = 0;
  std::uint64_t m_last_spikes_ = 0;
  int m_last_crashes_ = 0;
};

}  // namespace olb::sim
