// Sharded discrete-event simulation: k Engines, conservative lookahead.
//
// One Engine comfortably simulates ~10^3..10^4 peers; the scale ladder in
// the paper's Fig. 5 extension wants 10^5..10^6. ShardedEngine splits the
// peer range into contiguous shards — aligned to cluster boundaries when the
// topology has them — and gives each shard its own Engine and event queue.
// Shards synchronise with the classic conservative-window protocol
// (Chandy/Misra/Bryant flavoured, barrier-stepped):
//
//   T   := min over shards of the earliest pending event time
//   L   := lookahead = the minimum base latency of any cross-shard link
//   run every shard through the window [T, T + L), i.e. time_limit T + L - 1
//   drain cross-shard outboxes into the destination shards, repeat
//
// Safety: a message sent at time t >= T arrives at t + latency >= T + L,
// which is strictly after the window, so injecting arrivals only at window
// barriers can never place an event in a shard's past. The engines assert
// exactly that (Engine::inject_arrival).
//
// When every shard boundary coincides with a cluster boundary, every
// cross-shard link is a cross-cluster link and L is the inter-cluster
// latency (200us under the paper topology — thousands of events per peer
// window at realistic loads). Otherwise L falls back to the intra-cluster
// latency, which lower-bounds every link.
//
// Determinism: within a window shards share nothing, and the barrier drains
// outboxes in shard-id order (each a FIFO), stamping the destination
// engine's own insertion sequence — so the threaded execution is
// bit-identical to running the shards one after another. A run is still a
// pure function of (actors, config, seed, shard count).
//
// Identity: with a single shard there is exactly one Engine, configured over
// the whole peer range, and run() forwards to it verbatim — byte-identical
// timelines to the unsharded engine, which CI enforces on pinned seeds.
// With k >= 2 the timeline is deterministic but *different* (each shard owns
// a jitter RNG stream), so only schedule-independent outputs — e.g. exact
// UTS unit counts — are comparable across shard counts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "simnet/engine.hpp"

namespace olb::sim {

class ShardedEngine {
 public:
  /// Splits `num_peers` into (at most) `num_shards` contiguous shards.
  /// When the topology has clusters, shards own whole clusters and the
  /// shard count is clamped to the cluster count; use num_shards() for the
  /// effective value. `threaded` selects the worker-pool execution path
  /// (identical results either way; the serial path exists for tests and
  /// for single-shard runs, which bypass the window loop entirely).
  ShardedEngine(NetworkConfig config, std::uint64_t seed, int num_peers,
                int num_shards, bool threaded = true);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return static_cast<int>(engines_.size()); }
  Time lookahead() const { return lookahead_; }
  int shard_base(int s) const { return bases_[static_cast<std::size_t>(s)]; }
  int shard_of(int id) const;
  Engine& shard(int s) { return *engines_[static_cast<std::size_t>(s)]; }

  /// Mirrors Engine::add_actor: ids are dense 0..num_peers-1 in add order,
  /// routed to the owning shard. Exactly `num_peers` actors must be added.
  int add_actor(std::unique_ptr<Actor> actor);
  int num_actors() const { return next_id_; }
  Actor& actor(int id) { return owner(id).actor(id); }
  const ActorStats& stats(int id) const { return owner(id).stats(id); }

  /// Runs the conservative-window loop until every shard quiesces or a
  /// limit trips. `event_limit` is enforced per window — each shard's
  /// window is capped by the budget remaining at the window barrier, so a
  /// k-shard run can overshoot the limit by at most a factor of k (it is a
  /// runaway backstop, not an exact meter).
  Engine::RunResult run(Time time_limit = kTimeMax,
                        std::uint64_t event_limit = ~std::uint64_t{0});

  /// Number of conservative windows executed so far (1 window == 1 barrier).
  std::uint64_t windows_run() const { return windows_; }

  // --- aggregated Engine mirrors (the lb driver reads these; see
  // driver.cpp's templated metric tail) ---
  Time now() const;
  std::uint64_t total_messages() const;
  std::uint64_t total_sent_of_type(int type) const;
  /// Bucket-wise sum of the per-shard busy histograms (same kBusyBucket).
  const std::vector<Time>& busy_histogram() const;
  void enable_queue_delay_stats();
  Time queueing_delay_max() const;
  double queueing_delay_mean() const;
  std::uint64_t msgs_dropped() const;
  std::uint64_t msgs_duplicated() const;
  std::uint64_t latency_spikes() const;
  std::uint64_t work_bounced() const;
  int crashes_applied() const;
  double work_lost_units() const;
  bool peer_crashed(int id) const { return owner(id).peer_crashed(id); }
  const FaultPlan& fault_plan() const { return engines_[0]->fault_plan(); }

  // --- single-shard-only features ---
  // Tracing, metrics, faults, perturbation and bug plants all assume one
  // global event order (or per-pair link state sized to the local actor
  // count), so the driver declines them for k >= 2; the k == 1 forwarding
  // keeps the CI byte-identity gate honest (shards=1 runs carry the full
  // instrument set of the unsharded engine).
  void set_tracer(trace::TraceSink* tracer);
  trace::TraceSink* tracer() const { return engines_[0]->tracer(); }
  void set_metrics(metrics::MetricsHub* hub);
  void set_faults(const FaultPlan& plan);
  void set_perturbation(const SchedulePerturbation& p);
  void set_planted_payload_drop(int nth);

  /// Bytes of heap memory behind the event queues and remote outboxes —
  /// the simulator's own share of the bytes-per-peer budget.
  std::size_t queue_memory_bytes() const;

  /// Lifecycle pass-throughs (no-ops on the simulator; kept so the driver's
  /// templated run path treats both engine types uniformly).
  void transport_start() {
    for (auto& e : engines_) e->transport_start();
  }
  void transport_shutdown() {
    for (auto& e : engines_) e->transport_shutdown();
  }

 private:
  Engine& owner(int id) { return *engines_[static_cast<std::size_t>(shard_of(id))]; }
  const Engine& owner(int id) const {
    return *engines_[static_cast<std::size_t>(shard_of(id))];
  }

  /// Moves every shard's remote outbox into the destination engines, in
  /// shard-id order (the deterministic cross-shard FIFO).
  void drain_outboxes();

  /// Runs shard s through the current window. Called from the coordinator
  /// (serial mode) or a pinned worker thread (threaded mode).
  void run_shard_window(int s);

  void start_workers();
  void stop_workers();

  std::vector<int> bases_;  ///< shard s owns global ids [bases_[s], bases_[s+1])
  Time lookahead_ = 0;
  std::vector<std::unique_ptr<Engine>> engines_;
  int next_id_ = 0;
  std::uint64_t windows_ = 0;
  bool threaded_ = false;

  // Window state shared with the worker pool (all barrier-synchronised;
  // workers only touch their own engine between barriers).
  Time window_end_ = 0;
  std::uint64_t window_budget_ = 0;
  std::vector<Engine::RunResult> window_results_;

  // Worker pool: one thread per shard, stepped by a generation counter.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;

  mutable std::vector<Time> merged_busy_;  ///< cache for busy_histogram()
};

}  // namespace olb::sim
