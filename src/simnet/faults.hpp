// Seeded fault injection for the simulated cluster.
//
// A FaultPlan describes everything that may go wrong in one run:
//
//  * link faults  — every control message is independently dropped,
//    duplicated or hit by a latency spike with the configured
//    probabilities. Payload-carrying messages (work transfers) are exempt:
//    they model a reliable bulk-data channel, so faults can delay work but
//    never silently destroy or clone it — cloning work would corrupt the
//    application state, and destroying it is modelled explicitly through
//    crashes instead.
//  * crashes      — a peer fail-stops at an absolute simulated time: its
//    inbox is discarded, future arrivals bounce or vanish, and it never
//    speaks again. All surviving peers learn about the crash after
//    `detection_delay` (an eventually-perfect failure detector).
//  * stalls       — a peer freezes for a duration (GC pause, OS jitter)
//    and then resumes; no state is lost.
//
// Determinism: fault decisions are drawn from a dedicated RNG stream keyed
// by (engine seed, FaultPlan::salt), so enabling faults never perturbs the
// latency-jitter or per-actor streams — a faulty run differs from the
// fault-free run only by the injected faults themselves, and a plan with
// all probabilities zero and no schedules is exactly the fault-free run.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/time.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace olb::sim {

/// Per-link (in fact, global: all links behave identically) fault rates.
struct LinkFaults {
  double drop_prob = 0.0;   ///< P(control message silently lost)
  double dup_prob = 0.0;    ///< P(control message delivered twice)
  double spike_prob = 0.0;  ///< P(message delayed by spike_latency extra)
  Time spike_latency = milliseconds(2);

  bool any() const { return drop_prob > 0.0 || dup_prob > 0.0 || spike_prob > 0.0; }
};

struct CrashEvent {
  int peer = -1;
  Time at = 0;
};

struct StallEvent {
  int peer = -1;
  Time at = 0;
  Time duration = 0;
};

struct FaultPlan {
  LinkFaults link;
  std::vector<CrashEvent> crashes;
  std::vector<StallEvent> stalls;
  /// How long after a crash every surviving peer is notified (failure
  /// detector latency). All survivors are notified at the same instant.
  Time detection_delay = milliseconds(1);
  /// Extra key folded into the fault RNG stream, so sweeps can vary the
  /// fault pattern independently of the workload seed.
  std::uint64_t salt = 0;

  bool enabled() const { return link.any() || !crashes.empty() || !stalls.empty(); }

  /// Aborts on malformed plans (out-of-range peers, negative times or
  /// probabilities, duplicate crash victims).
  void validate(int num_peers) const;

  // Builder-style helpers for tests and sweeps.
  FaultPlan& add_crash(int peer, Time at) {
    crashes.push_back({peer, at});
    return *this;
  }
  FaultPlan& add_stall(int peer, Time at, Time duration) {
    stalls.push_back({peer, at, duration});
    return *this;
  }
};

/// `count` distinct crash victims drawn uniformly from [1, num_peers) —
/// peer 0 is spared because every strategy roots its protocol there — at
/// times uniform in [from, to). Deterministic in `seed`.
FaultPlan make_random_crashes(int count, int num_peers, Time from, Time to,
                              std::uint64_t seed);

/// Engine-side fault decision maker. Owns the dedicated RNG stream and the
/// crashed-peer bitmap; the engine consults it on every send and arrival.
class FaultInjector {
 public:
  /// Must be called before the run when the plan is enabled.
  void configure(const FaultPlan& plan, int num_peers, std::uint64_t engine_seed) {
    plan.validate(num_peers);
    plan_ = plan;
    active_ = plan.enabled();
    rng_ = Xoshiro256(mix64(engine_seed ^ 0x6661756c74ull) ^ mix64(plan.salt));
    crashed_.assign(static_cast<std::size_t>(num_peers), 0);
  }

  bool active() const { return active_; }
  bool link_active() const { return active_ && plan_.link.any(); }
  const FaultPlan& plan() const { return plan_; }

  /// The fate of one control message, drawn from the fault stream. Exactly
  /// three uniform draws per call regardless of outcome, so the stream
  /// position (and hence every later decision) does not depend on earlier
  /// outcomes — this is what makes fault sweeps comparable across rates.
  struct Fate {
    bool drop = false;
    bool duplicate = false;
    Time extra_latency = 0;
  };
  Fate draw_fate() {
    Fate f;
    const double u_drop = rng_.uniform01();
    const double u_dup = rng_.uniform01();
    const double u_spike = rng_.uniform01();
    f.drop = u_drop < plan_.link.drop_prob;
    f.duplicate = u_dup < plan_.link.dup_prob;
    if (u_spike < plan_.link.spike_prob) f.extra_latency = plan_.link.spike_latency;
    return f;
  }

  bool crashed(int peer) const {
    return !crashed_.empty() && crashed_[static_cast<std::size_t>(peer)] != 0;
  }
  void mark_crashed(int peer) { crashed_[static_cast<std::size_t>(peer)] = 1; }
  int crash_count() const {
    int n = 0;
    for (char c : crashed_) n += c != 0;
    return n;
  }

 private:
  FaultPlan plan_;
  bool active_ = false;
  Xoshiro256 rng_;
  std::vector<char> crashed_;
};

/// Upper bound on one message's in-flight time under this (network, plan)
/// combination — the quantity protocol lease intervals must dominate for
/// lease-based termination rules to be safe.
Time max_message_latency(Time base_latency, Time jitter, const FaultPlan& plan);

}  // namespace olb::sim
