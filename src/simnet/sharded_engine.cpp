#include "simnet/sharded_engine.hpp"

#include <algorithm>

namespace olb::sim {

ShardedEngine::ShardedEngine(NetworkConfig config, std::uint64_t seed,
                             int num_peers, int num_shards, bool threaded) {
  OLB_CHECK(num_peers >= 1);
  OLB_CHECK(num_shards >= 1);
  int k = std::min(num_shards, num_peers);
  bool cluster_aligned = false;
  if (config.cluster_capacity > 0) {
    // Shards own whole clusters: every cross-shard link is then a
    // cross-cluster link, which buys the large (inter-cluster) lookahead.
    const int clusters =
        (num_peers + config.cluster_capacity - 1) / config.cluster_capacity;
    k = std::min(k, clusters);
    cluster_aligned = true;
    bases_.resize(static_cast<std::size_t>(k) + 1);
    for (int s = 0; s <= k; ++s) {
      const auto cluster_begin =
          static_cast<long long>(clusters) * s / k;
      bases_[static_cast<std::size_t>(s)] = static_cast<int>(
          std::min<long long>(cluster_begin * config.cluster_capacity,
                              num_peers));
    }
  } else {
    // Single uniform cluster: even peer split, intra-latency lookahead.
    bases_.resize(static_cast<std::size_t>(k) + 1);
    for (int s = 0; s <= k; ++s) {
      bases_[static_cast<std::size_t>(s)] =
          static_cast<int>(static_cast<long long>(num_peers) * s / k);
    }
  }
  lookahead_ = std::max<Time>(
      1, cluster_aligned && k >= 2 ? config.inter_latency : config.intra_latency);
  threaded_ = threaded && k >= 2;
  engines_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    auto engine = std::make_unique<Engine>(config, seed);
    engine->configure_shard(bases_[static_cast<std::size_t>(s)], num_peers);
    engines_.push_back(std::move(engine));
  }
}

ShardedEngine::~ShardedEngine() { stop_workers(); }

int ShardedEngine::shard_of(int id) const {
  OLB_CHECK(id >= 0 && id < bases_.back());
  const auto it = std::upper_bound(bases_.begin(), bases_.end(), id);
  return static_cast<int>(it - bases_.begin()) - 1;
}

int ShardedEngine::add_actor(std::unique_ptr<Actor> actor) {
  const int id = next_id_++;
  OLB_CHECK_MSG(id < bases_.back(), "more actors than the declared peer count");
  const int got = owner(id).add_actor(std::move(actor));
  OLB_CHECK(got == id);  // global add order fills each shard contiguously
  return id;
}

Engine::RunResult ShardedEngine::run(Time time_limit,
                                     std::uint64_t event_limit) {
  if (num_shards() == 1) {
    // Identity path: one Engine over the whole peer range, one run() call —
    // byte-identical to the unsharded simulator (CI enforces this).
    return engines_[0]->run(time_limit, event_limit);
  }
  Engine::RunResult total;
  std::uint64_t remaining = event_limit;
  window_results_.assign(engines_.size(), {});
  // Seed every shard's start wakes up front: the window base below is the
  // min of next_event_time() across shards, which must already see them.
  for (auto& e : engines_) e->schedule_startup();
  if (threaded_ && workers_.empty()) start_workers();
  for (;;) {
    drain_outboxes();
    Time t = kTimeMax;
    for (const auto& e : engines_) t = std::min(t, e->next_event_time());
    if (t == kTimeMax) {
      total.quiesced = true;
      break;
    }
    if (t > time_limit || remaining == 0) break;
    window_end_ = std::min(time_limit, t + (lookahead_ - 1));
    window_budget_ = remaining;
    if (threaded_) {
      std::unique_lock<std::mutex> lk(mu_);
      pending_ = num_shards();
      ++generation_;
      work_cv_.notify_all();
      done_cv_.wait(lk, [this] { return pending_ == 0; });
    } else {
      for (int s = 0; s < num_shards(); ++s) run_shard_window(s);
    }
    ++windows_;
    std::uint64_t window_events = 0;
    for (const Engine::RunResult& r : window_results_) {
      window_events += r.events;
      total.end_time = std::max(total.end_time, r.end_time);
    }
    total.events += window_events;
    remaining -= std::min(remaining, window_events);
  }
  return total;
}

void ShardedEngine::run_shard_window(int s) {
  window_results_[static_cast<std::size_t>(s)] =
      engines_[static_cast<std::size_t>(s)]->run(window_end_, window_budget_);
}

void ShardedEngine::drain_outboxes() {
  // Shard-id order, each outbox in send order: the deterministic
  // cross-shard FIFO. inject_arrival stamps the destination's own
  // insertion sequence, so delivery order is exactly this drain order.
  for (auto& e : engines_) {
    auto& out = e->remote_outbox();
    for (Engine::RemoteSend& rs : out) {
      owner(rs.msg.dst).inject_arrival(std::move(rs.msg), rs.at);
    }
    out.clear();
  }
}

void ShardedEngine::start_workers() {
  workers_.reserve(engines_.size());
  for (int s = 0; s < num_shards(); ++s) {
    workers_.emplace_back([this, s] {
      std::uint64_t seen = 0;
      for (;;) {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        lk.unlock();
        run_shard_window(s);
        lk.lock();
        if (--pending_ == 0) done_cv_.notify_one();
      }
    });
  }
}

void ShardedEngine::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  shutdown_ = false;
}

Time ShardedEngine::now() const {
  Time t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

std::uint64_t ShardedEngine::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->total_messages();
  return total;
}

std::uint64_t ShardedEngine::total_sent_of_type(int type) const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->total_sent_of_type(type);
  return total;
}

const std::vector<Time>& ShardedEngine::busy_histogram() const {
  merged_busy_.clear();
  for (const auto& e : engines_) {
    const std::vector<Time>& h = e->busy_histogram();
    if (h.size() > merged_busy_.size()) merged_busy_.resize(h.size(), 0);
    for (std::size_t i = 0; i < h.size(); ++i) merged_busy_[i] += h[i];
  }
  return merged_busy_;
}

void ShardedEngine::enable_queue_delay_stats() {
  for (auto& e : engines_) e->enable_queue_delay_stats();
}

Time ShardedEngine::queueing_delay_max() const {
  Time m = 0;
  for (const auto& e : engines_) m = std::max(m, e->queueing_delay_max());
  return m;
}

double ShardedEngine::queueing_delay_mean() const {
  double sum = 0.0;
  std::uint64_t samples = 0;
  for (const auto& e : engines_) {
    sum += e->queueing_delay_mean() *
           static_cast<double>(e->queueing_delay_samples());
    samples += e->queueing_delay_samples();
  }
  return samples > 0 ? sum / static_cast<double>(samples) : 0.0;
}

std::uint64_t ShardedEngine::msgs_dropped() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->msgs_dropped();
  return total;
}

std::uint64_t ShardedEngine::msgs_duplicated() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->msgs_duplicated();
  return total;
}

std::uint64_t ShardedEngine::latency_spikes() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->latency_spikes();
  return total;
}

std::uint64_t ShardedEngine::work_bounced() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->work_bounced();
  return total;
}

int ShardedEngine::crashes_applied() const {
  int total = 0;
  for (const auto& e : engines_) total += e->crashes_applied();
  return total;
}

double ShardedEngine::work_lost_units() const {
  double total = 0.0;
  for (const auto& e : engines_) total += e->work_lost_units();
  return total;
}

void ShardedEngine::set_tracer(trace::TraceSink* tracer) {
  OLB_CHECK_MSG(tracer == nullptr || num_shards() == 1,
                "tracing requires a single shard (one global event order)");
  engines_[0]->set_tracer(tracer);
}

void ShardedEngine::set_metrics(metrics::MetricsHub* hub) {
  OLB_CHECK_MSG(hub == nullptr || num_shards() == 1,
                "live metrics require a single shard");
  engines_[0]->set_metrics(hub);
}

void ShardedEngine::set_faults(const FaultPlan& plan) {
  OLB_CHECK_MSG(num_shards() == 1,
                "fault injection requires a single shard");
  engines_[0]->set_faults(plan);
}

void ShardedEngine::set_perturbation(const SchedulePerturbation& p) {
  OLB_CHECK_MSG(!p.enabled() || num_shards() == 1,
                "schedule perturbation requires a single shard");
  engines_[0]->set_perturbation(p);
}

void ShardedEngine::set_planted_payload_drop(int nth) {
  OLB_CHECK_MSG(nth == 0 || num_shards() == 1,
                "bug plants require a single shard");
  engines_[0]->set_planted_payload_drop(nth);
}

std::size_t ShardedEngine::queue_memory_bytes() const {
  std::size_t total = 0;
  for (const auto& e : engines_) total += e->queue_memory_bytes();
  return total;
}

}  // namespace olb::sim
