// Simulated time: signed 64-bit nanoseconds.
//
// Integer time keeps event ordering exact and platform-independent; at
// nanosecond resolution the representable span (~292 years) dwarfs any
// experiment.
#pragma once

#include <cstdint>
#include <limits>

namespace olb::sim {

using Time = std::int64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t n) { return n * 1'000; }
constexpr Time milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr Time seconds(double s) { return static_cast<Time>(s * 1e9); }

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_micros(Time t) { return static_cast<double>(t) * 1e-3; }

}  // namespace olb::sim
