#include "simnet/engine.hpp"

namespace olb::sim {

Time Actor::now() const { return engine_->now(); }

void Actor::send(int dst, Message m) { engine_->send_from(*this, dst, std::move(m)); }

void Actor::start_compute(Time duration) {
  OLB_CHECK_MSG(!compute_pending_, "actor already has an outstanding compute span");
  OLB_CHECK(duration >= 0);
  if (speed_ != 1.0) {
    duration = static_cast<Time>(static_cast<double>(duration) / speed_);
  }
  const Time base = busy_until_ > engine_->now() ? busy_until_ : engine_->now();
  busy_until_ = base + duration;
  compute_pending_ = true;
  stats_.compute_time += duration;
  engine_->record_busy(base, duration);
  trace::emit(engine_->tracer_, base, trace::EventKind::kComputeSpan, id_, -1, 0,
              duration);
}

void Actor::emit_trace(trace::EventKind kind, int peer, int type, std::int64_t a,
                       std::int64_t b) {
  trace::emit(engine_->tracer_, engine_->now_, kind, id_, peer, type, a, b);
}

void Engine::record_busy(Time start, Time duration) {
  const auto bucket = static_cast<std::size_t>(start / kBusyBucket);
  if (busy_buckets_.size() <= bucket) busy_buckets_.resize(bucket + 1, 0);
  busy_buckets_[bucket] += duration;
}

void Actor::set_timer(Time delay, std::int64_t tag) {
  OLB_CHECK(delay >= 0);
  trace::emit(engine_->tracer_, engine_->now(), trace::EventKind::kTimerSet, id_,
              -1, 0, tag, delay);
  Message m(kTimerMsgType, tag);
  m.src = id_;
  m.dst = id_;
  Event e;
  e.time = engine_->now() + delay;
  e.seq = engine_->next_seq_++;
  e.dst = id_;
  e.kind = Event::Kind::kArrival;
  e.msg = std::move(m);
  engine_->queue_.push(std::move(e));
}

Engine::Engine(NetworkConfig config, std::uint64_t seed)
    : config_(config), network_(config, seed), seed_(seed) {}

int Engine::add_actor(std::unique_ptr<Actor> actor) {
  OLB_CHECK_MSG(!running_, "actors must be added before run()");
  const int id = static_cast<int>(actors_.size());
  actor->engine_ = this;
  actor->id_ = id;
  actor->rng_ = Xoshiro256(mix64(seed_ + 0x9e3779b9u) ^ mix64(static_cast<std::uint64_t>(id)));
  actors_.push_back(std::move(actor));
  return id;
}

std::uint64_t Engine::total_sent_of_type(int type) const {
  OLB_CHECK(type >= 0);
  std::uint64_t total = 0;
  const auto idx = static_cast<std::size_t>(type);
  for (const auto& a : actors_) {
    if (idx < a->stats_.sent_by_type.size()) total += a->stats_.sent_by_type[idx];
  }
  return total;
}

void Engine::send_from(Actor& from, int dst, Message m) {
  OLB_CHECK(dst >= 0 && dst < num_actors());
  OLB_CHECK_MSG(m.type >= 0, "application message types must be >= 0");
  m.src = from.id_;
  m.dst = dst;
  ++from.stats_.msgs_sent;
  ++total_messages_;
  const auto type_idx = static_cast<std::size_t>(m.type);
  if (from.stats_.sent_by_type.size() <= type_idx) {
    from.stats_.sent_by_type.resize(type_idx + 1, 0);
  }
  ++from.stats_.sent_by_type[type_idx];
  const Time latency = network_.latency(from.id_, dst);
  if (trace::kTraceCompiled && tracer_ != nullptr) [[unlikely]] {
    // The id store lives under the tracer check: writing a bit-field is a
    // read-modify-write of the whole type/id unit, too costly for a field
    // nothing reads in untraced runs.
    m.id = static_cast<std::uint32_t>(total_messages_);
    trace::emit(tracer_, now_, trace::EventKind::kMsgSend, from.id_, dst, m.type,
                static_cast<std::int64_t>(m.id), latency);
  }

  Event e;
  e.time = now_ + latency;
  e.seq = next_seq_++;
  e.dst = dst;
  e.kind = Event::Kind::kArrival;
  e.msg = std::move(m);
  queue_.push(std::move(e));
}

void Engine::schedule_wake(Actor& a, Time at) {
  OLB_CHECK(!a.wake_pending_);
  a.wake_pending_ = true;
  Event e;
  e.time = at;
  e.seq = next_seq_++;
  e.dst = a.id_;
  e.kind = Event::Kind::kWake;
  queue_.push(std::move(e));
}

void Engine::service(Actor& a, Time t) {
  // Invariant: wakes are only scheduled at or after busy_until_, and
  // busy_until_ only advances inside wakes (of which there is at most one
  // outstanding per actor), so the actor is guaranteed free here.
  OLB_CHECK(t >= a.busy_until_);

  if (!a.started_) {
    a.started_ = true;
    a.on_start();
  } else if (!a.inbox_.empty()) {
    Message m = std::move(a.inbox_.front());
    a.inbox_.pop_front();
    ++a.stats_.msgs_received;
    a.busy_until_ = t + config_.msg_handling_cost;
    a.stats_.overhead_time += config_.msg_handling_cost;
    if (m.type == kTimerMsgType) {
      a.on_timer(m.a);
    } else {
      a.on_message(std::move(m));
    }
  } else if (a.compute_pending_) {
    a.compute_pending_ = false;
    a.on_compute_done();
  }

  if (!a.inbox_.empty() || a.compute_pending_) {
    schedule_wake(a, a.busy_until_ > t ? a.busy_until_ : t);
  }
}

// Keep this in lockstep with service() above: same dispatch, plus trace
// emission and queueing-delay accounting. run() picks one loop flavour up
// front so an untraced run's event loop is byte-for-byte the plain one.
void Engine::service_instrumented(Actor& a, Time t) {
  OLB_CHECK(t >= a.busy_until_);

  if (!a.started_) {
    a.started_ = true;
    a.on_start();
  } else if (!a.inbox_.empty()) {
    Message m = std::move(a.inbox_.front());
    a.inbox_.pop_front();
    ++a.stats_.msgs_received;
    a.busy_until_ = t + config_.msg_handling_cost;
    a.stats_.overhead_time += config_.msg_handling_cost;
    if (m.type == kTimerMsgType) {
      trace::emit(tracer_, t, trace::EventKind::kTimerFire, a.id_, -1, 0, m.a,
                  t - m.arrived_at);
      a.on_timer(m.a);
    } else {
      if (measure_queue_delay_) {
        const Time inbox_wait = t - m.arrived_at;
        queue_delay_sum_ += inbox_wait;
        ++queue_delay_samples_;
        if (inbox_wait > queue_delay_max_) queue_delay_max_ = inbox_wait;
      }
      trace::emit(tracer_, t, trace::EventKind::kMsgDeliver, a.id_, m.src,
                  m.type, static_cast<std::int64_t>(m.id), t - m.arrived_at);
      a.on_message(std::move(m));
    }
  } else if (a.compute_pending_) {
    a.compute_pending_ = false;
    a.on_compute_done();
  }

  if (!a.inbox_.empty() || a.compute_pending_) {
    schedule_wake(a, a.busy_until_ > t ? a.busy_until_ : t);
  } else if (a.started_) {
    // Nothing queued and no compute outstanding: the actor goes idle once
    // its current busy period (if any) drains.
    trace::emit(tracer_, a.busy_until_ > t ? a.busy_until_ : t,
                trace::EventKind::kActorIdle, a.id_);
  }
}

template <bool Instrumented>
Engine::RunResult Engine::run_loop(Time time_limit, std::uint64_t event_limit) {
  RunResult result;
  while (!queue_.empty()) {
    if (queue_.peek().time > time_limit || result.events >= event_limit) {
      return result;  // limit hit; queue intentionally left intact
    }
    Event e = queue_.pop();
    now_ = e.time;
    ++result.events;
    result.end_time = now_;
    Actor& a = *actors_[static_cast<std::size_t>(e.dst)];
    switch (e.kind) {
      case Event::Kind::kArrival:
        if constexpr (Instrumented) e.msg.arrived_at = now_;
        a.inbox_.push_back(std::move(e.msg));
        if (!a.wake_pending_) {
          schedule_wake(a, a.busy_until_ > now_ ? a.busy_until_ : now_);
        }
        break;
      case Event::Kind::kWake:
        a.wake_pending_ = false;
        if constexpr (Instrumented) {
          service_instrumented(a, now_);
        } else {
          service(a, now_);
        }
        break;
    }
  }
  result.quiesced = true;
  return result;
}

Engine::RunResult Engine::run(Time time_limit, std::uint64_t event_limit) {
  running_ = true;
  for (auto& a : actors_) {
    if (!a->started_ && !a->wake_pending_) schedule_wake(*a, 0);
  }
  return instrumented_ ? run_loop<true>(time_limit, event_limit)
                       : run_loop<false>(time_limit, event_limit);
}

}  // namespace olb::sim
