#include "simnet/engine.hpp"

#include "metrics/hub.hpp"

namespace olb::sim {

Time Actor::now() const { return transport_->transport_now(); }

void Actor::send(int dst, Message m) {
  transport_->transport_send(*this, dst, std::move(m));
}

int Actor::num_peers() const { return transport_->transport_num_peers(); }

void Actor::start_compute(Time duration) {
  OLB_CHECK_MSG(!compute_pending_, "actor already has an outstanding compute span");
  OLB_CHECK(duration >= 0);
  if (speed_ != 1.0) {
    duration = static_cast<Time>(static_cast<double>(duration) / speed_);
  }
  compute_pending_ = true;
  stats_.compute_time += duration;
  transport_->transport_compute_started(*this, duration);
}

void Actor::emit_trace(trace::EventKind kind, int peer, int type, std::int64_t a,
                       std::int64_t b) {
  // Metrics tap: every protocol already marks its request/serve/decline/
  // retry/idle moments here, so counting at the funnel instruments all four
  // strategies (and works even when tracing is compiled out or detached).
  if constexpr (metrics::kMetricsCompiled) {
    if (mcounters_.armed()) [[unlikely]] {
      switch (kind) {
        case trace::EventKind::kRequest:
          mcounters_.requests->inc();
          break;
        case trace::EventKind::kServe:
          mcounters_.serves->inc();
          break;
        case trace::EventKind::kNoServe:
          mcounters_.declines->inc();
          break;
        case trace::EventKind::kRetry:
          mcounters_.retries->inc();
          break;
        case trace::EventKind::kIdleBegin:
          mcounters_.idle->inc();
          break;
        default:
          break;
      }
    }
  }
  trace::emit(transport_->transport_tracer(), transport_->transport_now(), kind,
              id_, peer, type, a, b);
}

void Actor::on_metrics(metrics::Registry& registry) {
  mcounters_.requests = registry.counter("olb_peer_requests_total", id_);
  mcounters_.serves = registry.counter("olb_peer_serves_total", id_);
  mcounters_.declines = registry.counter("olb_peer_declines_total", id_);
  mcounters_.retries = registry.counter("olb_peer_retries_total", id_);
  mcounters_.idle = registry.counter("olb_peer_idle_episodes_total", id_);
}

void Actor::set_timer(Time delay, std::int64_t tag) {
  OLB_CHECK(delay >= 0);
  trace::emit(transport_->transport_tracer(), transport_->transport_now(),
              trace::EventKind::kTimerSet, id_, -1, 0, tag, delay);
  transport_->transport_set_timer(*this, delay, tag);
}

void Engine::transport_compute_started(Actor& from, Time duration) {
  // The busy-clock advance is what makes the span *occupy* the simulated
  // actor; the thread backend has no analogue (there the CPU was genuinely
  // occupied), which is why this lives behind the Transport seam.
  const Time base = from.busy_until_ > now_ ? from.busy_until_ : now_;
  from.busy_until_ = base + duration;
  record_busy(base, duration);
  trace::emit(tracer_, base, trace::EventKind::kComputeSpan, from.id_, -1, 0,
              duration);
}

void Engine::record_busy(Time start, Time duration) {
  const auto bucket = static_cast<std::size_t>(start / kBusyBucket);
  if (busy_buckets_.size() <= bucket) busy_buckets_.resize(bucket + 1, 0);
  busy_buckets_[bucket] += duration;
}

void Engine::transport_set_timer(Actor& from, Time delay, std::int64_t tag) {
  Message m(kTimerMsgType, tag);
  m.src = from.id_;
  m.dst = from.id_;
  emplace_event(now_ + delay, from.id_, Event::Kind::kArrival).msg = std::move(m);
}

Engine::Engine(NetworkConfig config, std::uint64_t seed)
    : config_(config), network_(config, seed), seed_(seed) {}

int Engine::add_actor(std::unique_ptr<Actor> actor) {
  OLB_CHECK_MSG(!running_, "actors must be added before run()");
  const int id = id_base_ + static_cast<int>(actors_.size());
  OLB_CHECK_MSG(global_peers_ < 0 || id < global_peers_,
                "shard overfilled beyond its global peer count");
  actor->transport_ = this;
  actor->id_ = id;
  actor->rng_ = Xoshiro256(mix64(seed_ + 0x9e3779b9u) ^ mix64(static_cast<std::uint64_t>(id)));
  actors_.push_back(std::move(actor));
  return id;
}

std::uint64_t Engine::total_sent_of_type(int type) const {
  OLB_CHECK(type >= 0);
  std::uint64_t total = 0;
  const auto idx = static_cast<std::size_t>(type);
  for (const auto& a : actors_) {
    if (idx < a->stats_.sent_by_type.size()) total += a->stats_.sent_by_type[idx];
  }
  return total;
}

void Engine::send_from(Actor& from, int dst, Message m) {
  OLB_CHECK(dst >= 0 && dst < transport_num_peers());
  OLB_CHECK_MSG(m.type >= 0, "application message types must be >= 0");
  m.src = from.id_;
  m.dst = dst;
  ++from.stats_.msgs_sent;
  ++total_messages_;
  const auto type_idx = static_cast<std::size_t>(m.type);
  if (from.stats_.sent_by_type.size() <= type_idx) {
    from.stats_.sent_by_type.resize(type_idx + 1, 0);
  }
  ++from.stats_.sent_by_type[type_idx];
  Time latency = network_.latency(from.id_, dst);
  if (!is_local(dst)) [[unlikely]] {
    // Cross-shard send: all send-side effects (stats, latency draw) are
    // done, so the coordinator can inject the arrival verbatim on the
    // destination shard at the next window barrier. The perturbation,
    // link-fault, tracing and bug-plant features below are declined by the
    // driver whenever more than one shard is active, so skipping them on
    // this path cannot change behaviour.
    remote_out_.push_back(RemoteSend{now_ + latency, std::move(m)});
    return;
  }
  if (perturb_jitter_ > 0) [[unlikely]] {
    latency += static_cast<Time>(
        perturb_rng_.below(static_cast<std::uint64_t>(perturb_jitter_) + 1));
    // The jitter must not let a message overtake an earlier one on the same
    // ordered link: the overlay termination rules treat an upward request as
    // the subtree-finished signal, which is only sound on non-overtaking
    // links (DESIGN.md, conformance notes). The base network keeps that
    // promise structurally — consecutive same-link sends are spaced by at
    // least msg_handling_cost, which exceeds its latency_jitter — but an
    // extra_jitter larger than that spacing would break it (the fuzzer
    // found exactly this: a finished-signal overtaking the final work
    // transfer, stranding work at a terminated root). So perturbed arrivals
    // are clamped to stay strictly behind the link's last scheduled one;
    // strict monotonicity also keeps tie shuffling from swapping them.
    if (perturb_link_last_.empty()) {
      perturb_link_last_.resize(static_cast<std::size_t>(num_actors()) *
                                    static_cast<std::size_t>(num_actors()),
                                0);
    }
    Time& last = perturb_link_last_[static_cast<std::size_t>(from.id_) *
                                        static_cast<std::size_t>(num_actors()) +
                                    static_cast<std::size_t>(dst)];
    if (now_ + latency <= last) latency = last + 1 - now_;
    last = now_ + latency;
  }

  // Link faults apply to control messages only: payload-carrying transfers
  // model a reliable bulk channel (see faults.hpp), so work is never
  // silently destroyed or cloned by the network. The whole faulty path is
  // out of line so the fault-free send stays at its pre-fault-layer shape.
  if (link_faults_on_ && m.payload == nullptr) [[unlikely]] {
    send_faulty(from, dst, std::move(m), latency);
    return;
  }

  if (trace::kTraceCompiled && tracer_ != nullptr) [[unlikely]] {
    // The id store lives under the tracer check: writing a bit-field is a
    // read-modify-write of the whole type/id unit, too costly for a field
    // nothing reads in untraced runs.
    m.id = static_cast<std::uint32_t>(total_messages_);
    trace::emit(tracer_, now_, trace::EventKind::kMsgSend, from.id_, dst, m.type,
                static_cast<std::int64_t>(m.id), latency);
  }

  // Conformance-harness bug plant: the nth transfer vanishes *after* its
  // kMsgSend was traced — exactly what a lost-ack bug looks like to the
  // conservation oracle.
  if (planted_drop_nth_ != 0 && m.payload != nullptr) [[unlikely]] {
    if (++planted_payload_seen_ == planted_drop_nth_) return;
  }

  push_arrival(std::move(m), now_ + latency);
}

void Engine::send_faulty(Actor& from, int dst, Message&& m, Time latency) {
  const FaultInjector::Fate fate = injector_.draw_fate();
  if (fate.extra_latency > 0) {
    latency += fate.extra_latency;
    ++latency_spikes_;
  }

  if (trace::kTraceCompiled && tracer_ != nullptr) {
    m.id = static_cast<std::uint32_t>(total_messages_);
    trace::emit(tracer_, now_, trace::EventKind::kMsgSend, from.id_, dst, m.type,
                static_cast<std::int64_t>(m.id), latency);
  }

  if (fate.drop) {
    ++msgs_dropped_;
    trace::emit(tracer_, now_, trace::EventKind::kMsgDrop, from.id_, dst, m.type,
                static_cast<std::int64_t>(m.id), 0);
    return;
  }
  if (fate.duplicate) {
    ++msgs_duplicated_;
    trace::emit(tracer_, now_, trace::EventKind::kMsgDup, from.id_, dst, m.type,
                static_cast<std::int64_t>(m.id), 0);
    Message copy(m.type, m.a, m.b, m.c);
    copy.id = m.id;
    copy.src = m.src;
    copy.dst = m.dst;
    push_arrival(std::move(copy), now_ + latency);
  }
  push_arrival(std::move(m), now_ + latency);
}

void Engine::push_arrival(Message&& m, Time at) {
  const int dst = m.dst;
  emplace_event(at, dst, Event::Kind::kArrival).msg = std::move(m);
}

void Engine::schedule_wake(Actor& a, Time at) {
  OLB_CHECK(!a.wake_pending_);
  a.wake_pending_ = true;
  // Wake events never read msg, so the recycled slot's moved-from shell
  // (payload always null after consumption) is left as-is.
  emplace_event(at, a.id_, Event::Kind::kWake);
}

void Engine::service(Actor& a, Time t) {
  // Invariant: wakes are only scheduled at or after busy_until_, and
  // busy_until_ only advances inside wakes (of which there is at most one
  // outstanding per actor), so the actor is guaranteed free here — except
  // when a fault-injected stall extended busy_until_ behind our back; then
  // the wake is simply re-queued for when the actor thaws.
  if (t < a.busy_until_) [[unlikely]] {
    schedule_wake(a, a.busy_until_);
    return;
  }

  if (!a.started_) {
    a.started_ = true;
    a.on_start();
  } else if (!a.inbox_.empty()) {
    Message m = std::move(a.inbox_.front());
    a.inbox_.pop_front();
    ++a.stats_.msgs_received;
    a.busy_until_ = t + config_.msg_handling_cost;
    a.stats_.overhead_time += config_.msg_handling_cost;
    // Application messages (type >= 0) first: one compare on the hot path,
    // the engine-reserved negative types pay the second.
    if (m.type >= 0) {
      a.on_message(std::move(m));
    } else if (m.type == kTimerMsgType) {
      a.on_timer(m.a);
    } else {
      a.on_peer_down(static_cast<int>(m.a));
    }
  } else if (a.compute_pending_) {
    a.compute_pending_ = false;
    a.on_compute_done();
  }

  if (!a.inbox_.empty() || a.compute_pending_) {
    schedule_wake(a, a.busy_until_ > t ? a.busy_until_ : t);
  }
}

// Keep this in lockstep with service() above: same dispatch, plus trace
// emission and queueing-delay accounting. run() picks one loop flavour up
// front so an untraced run's event loop is byte-for-byte the plain one.
void Engine::service_instrumented(Actor& a, Time t) {
  if (t < a.busy_until_) [[unlikely]] {
    schedule_wake(a, a.busy_until_);
    return;
  }

  if (!a.started_) {
    a.started_ = true;
    a.on_start();
  } else if (!a.inbox_.empty()) {
    Message m = std::move(a.inbox_.front());
    a.inbox_.pop_front();
    ++a.stats_.msgs_received;
    a.busy_until_ = t + config_.msg_handling_cost;
    a.stats_.overhead_time += config_.msg_handling_cost;
    if (m.type >= 0) {
      if (measure_queue_delay_) {
        const Time inbox_wait = t - m.arrived_at;
        queue_delay_sum_ += inbox_wait;
        ++queue_delay_samples_;
        if (inbox_wait > queue_delay_max_) queue_delay_max_ = inbox_wait;
      }
      trace::emit(tracer_, t, trace::EventKind::kMsgDeliver, a.id_, m.src,
                  m.type, static_cast<std::int64_t>(m.id), t - m.arrived_at);
      a.on_message(std::move(m));
    } else if (m.type == kTimerMsgType) {
      trace::emit(tracer_, t, trace::EventKind::kTimerFire, a.id_, -1, 0, m.a,
                  t - m.arrived_at);
      a.on_timer(m.a);
    } else {
      a.on_peer_down(static_cast<int>(m.a));
    }
  } else if (a.compute_pending_) {
    a.compute_pending_ = false;
    a.on_compute_done();
  }

  if (!a.inbox_.empty() || a.compute_pending_) {
    schedule_wake(a, a.busy_until_ > t ? a.busy_until_ : t);
  } else if (a.started_) {
    // Nothing queued and no compute outstanding: the actor goes idle once
    // its current busy period (if any) drains.
    trace::emit(tracer_, a.busy_until_ > t ? a.busy_until_ : t,
                trace::EventKind::kActorIdle, a.id_);
  }
}

// `Faulty` compiles the crash/stall handling out of fault-free runs: their
// event kinds are never queued without a plan, and the crashed-actor probes
// would otherwise cost a load + branch on every event. `Metered` likewise
// compiles the snapshot-deadline probe out of metrics-off runs.
template <bool Instrumented, bool Faulty, bool Metered>
Engine::RunResult Engine::run_loop(Time time_limit, std::uint64_t event_limit) {
  RunResult result;
  while (!queue_.empty()) {
    if (queue_.peek_time() > time_limit || result.events >= event_limit) {
      return result;  // limit hit; queue intentionally left intact
    }
    // The event is consumed in place: scalars are copied out, an arrival's
    // message is moved straight into the inbox, and drop_top() recycles the
    // slot — the Event body itself never moves. `e` is dead after drop_top
    // (anything that schedules — schedule_wake, service — may reuse the
    // slot), so each branch drops before it emplaces.
    Event& e = queue_.top();
    now_ = e.time;
    ++result.events;
    result.end_time = now_;
    if constexpr (Metered) {
      if (now_ >= metrics_next_) [[unlikely]] flush_metrics(result.events);
    }
    const int dst = e.dst;
    const Event::Kind kind = e.kind;
    Actor& a = *actors_[static_cast<std::size_t>(dst - id_base_)];
    switch (kind) {
      case Event::Kind::kArrival:
        if constexpr (Faulty) {
          if (a.crashed_) [[unlikely]] {
            Event dead = queue_.pop();
            arrival_at_crashed(std::move(dead));
            break;
          }
        }
        if constexpr (Instrumented) e.msg.arrived_at = now_;
        a.inbox_.push_back(std::move(e.msg));
        queue_.drop_top();
        if (!a.wake_pending_) {
          schedule_wake(a, a.busy_until_ > now_ ? a.busy_until_ : now_);
        }
        break;
      case Event::Kind::kWake:
        queue_.drop_top();
        a.wake_pending_ = false;
        if constexpr (Faulty) {
          if (a.crashed_) [[unlikely]] break;
        }
        if constexpr (Instrumented) {
          service_instrumented(a, now_);
        } else {
          service(a, now_);
        }
        break;
      case Event::Kind::kCrash:
        queue_.drop_top();
        if constexpr (Faulty) apply_crash(dst);
        break;
      case Event::Kind::kStall: {
        const Time stall = e.msg.a;
        queue_.drop_top();
        if constexpr (Faulty) apply_stall(dst, stall);
        break;
      }
    }
  }
  result.quiesced = true;
  return result;
}

// A message reaching a fail-stopped peer. Control messages vanish. A work
// transfer is bounced back to its sender once — modelling a sender that
// detects the failed delivery and keeps the data — so no work is lost and
// the sender's transfer counters re-balance. A bounce that itself lands on
// a crashed peer (sender died meanwhile) is destroyed and accounted.
void Engine::arrival_at_crashed(Event e) {
  Message m = std::move(e.msg);
  if (m.payload != nullptr && !m.bounced && m.src >= 0 && is_local(m.src) &&
      !actors_[static_cast<std::size_t>(m.src - id_base_)]->crashed_) {
    ++work_bounced_;
    const int sender = m.src;
    m.src = e.dst;
    m.dst = sender;
    m.bounced = true;
    push_arrival(std::move(m), now_ + network_.latency(e.dst, sender));
    return;
  }
  ++msgs_dropped_;
  if (m.payload != nullptr) {
    work_lost_units_ += m.payload->amount();
    trace::emit(tracer_, now_, trace::EventKind::kMsgDrop, m.src, e.dst, m.type,
                static_cast<std::int64_t>(m.id), 2);
  } else {
    trace::emit(tracer_, now_, trace::EventKind::kMsgDrop, m.src, e.dst, m.type,
                static_cast<std::int64_t>(m.id), 1);
  }
}

void Engine::apply_crash(int peer) {
  Actor& a = *local(peer);
  if (a.crashed_) return;
  a.crashed_ = true;
  injector_.mark_crashed(peer);
  ++crashes_applied_;
  // Arrived-but-unserviced messages die with the peer; their payloads are
  // genuinely lost (the sender already considers them delivered).
  for (std::size_t i = 0; i < a.inbox_.size(); ++i) {
    const Message& m = a.inbox_.at(i);
    if (m.payload != nullptr) work_lost_units_ += m.payload->amount();
  }
  a.inbox_.clear();
  const double held = a.on_crashed();
  work_lost_units_ += held;
  trace::emit(tracer_, now_, trace::EventKind::kPeerCrash, peer, -1, 0,
              static_cast<std::int64_t>(held));
  // Failure detector: every survivor hears about it after detection_delay.
  const Time heard_at = now_ + injector_.plan().detection_delay;
  for (auto& other : actors_) {
    if (other->id_ == peer || other->crashed_) continue;
    Message n;
    n.type = kPeerDownMsgType;
    n.a = peer;
    n.src = peer;
    n.dst = other->id_;
    push_arrival(std::move(n), heard_at);
  }
}

void Engine::apply_stall(int peer, Time duration) {
  Actor& a = *local(peer);
  if (a.crashed_) return;
  const Time base = a.busy_until_ > now_ ? a.busy_until_ : now_;
  a.busy_until_ = base + duration;
  trace::emit(tracer_, now_, trace::EventKind::kPeerStall, peer, -1, 0, duration);
}

void Engine::set_metrics(metrics::MetricsHub* hub) {
  if constexpr (!metrics::kMetricsCompiled) {
    (void)hub;
    return;  // never arm: the metered loop flavour stays unreachable
  }
  OLB_CHECK_MSG(!running_, "metrics must be attached before run()");
  metrics_hub_ = hub;
  if (hub == nullptr) return;
  metrics::Registry& r = hub->registry();
  em_.events = r.counter("olb_sim_events_total");
  em_.queue_len = r.gauge("olb_sim_queue_len");
  em_.dropped = r.counter("olb_sim_msgs_dropped_total");
  em_.duplicated = r.counter("olb_sim_msgs_duplicated_total");
  em_.spikes = r.counter("olb_sim_latency_spikes_total");
  em_.crashes = r.counter("olb_sim_crashes_total");
  em_.work_lost = r.gauge("olb_sim_work_lost_units");
}

void Engine::flush_metrics(std::uint64_t events_so_far) {
  em_.events->inc(events_so_far - m_last_events_);
  m_last_events_ = events_so_far;
  em_.queue_len->set(static_cast<std::int64_t>(queue_.size()));
  em_.dropped->inc(msgs_dropped_ - m_last_dropped_);
  m_last_dropped_ = msgs_dropped_;
  em_.duplicated->inc(msgs_duplicated_ - m_last_duplicated_);
  m_last_duplicated_ = msgs_duplicated_;
  em_.spikes->inc(latency_spikes_ - m_last_spikes_);
  m_last_spikes_ = latency_spikes_;
  em_.crashes->inc(static_cast<std::uint64_t>(crashes_applied_ - m_last_crashes_));
  m_last_crashes_ = crashes_applied_;
  em_.work_lost->set(static_cast<std::int64_t>(work_lost_units_));
  for (auto& a : actors_) {
    if (!a->crashed_) a->on_metrics_poll();
  }
  metrics_hub_->flush(static_cast<std::uint64_t>(now_));
  metrics_next_ = now_ + metrics_hub_->interval_ns();
}

template <bool Instrumented, bool Faulty>
Engine::RunResult Engine::run_metered(Time time_limit, std::uint64_t event_limit) {
  // Arm instruments once per run: get-or-create is idempotent, so resumed
  // runs (limit hit, then run() again) just re-fetch the same pointers.
  for (auto& a : actors_) a->on_metrics(metrics_hub_->registry());
  m_last_events_ = 0;  // result.events restarts per run(); deltas must too
  metrics_next_ = now_ + metrics_hub_->interval_ns();
  RunResult result = run_loop<Instrumented, Faulty, true>(time_limit, event_limit);
  flush_metrics(result.events);  // final window, so short runs still export
  return result;
}

void Engine::schedule_startup() {
  // One-shot startup: the sharded coordinator re-enters run() once per
  // conservative window (thousands of times per simulation), and the
  // fault-plan events in particular must not be scheduled again — a resumed
  // run would otherwise replay every crash/stall. The coordinator also calls
  // this *before* its first window, since it needs next_event_time() to see
  // the start wakes when picking the window base.
  if (startup_scheduled_) return;
  startup_scheduled_ = true;
  for (auto& a : actors_) {
    if (!a->started_ && !a->wake_pending_) schedule_wake(*a, 0);
  }
  if (faults_on_) {
    for (const CrashEvent& c : injector_.plan().crashes) {
      emplace_event(c.at, c.peer, Event::Kind::kCrash);
    }
    for (const StallEvent& s : injector_.plan().stalls) {
      emplace_event(s.at, s.peer, Event::Kind::kStall).msg.a = s.duration;
    }
  }
}

Engine::RunResult Engine::run(Time time_limit, std::uint64_t event_limit) {
  running_ = true;
  schedule_startup();
  if (metrics_hub_ != nullptr) [[unlikely]] {
    if (faults_on_) {
      return instrumented_ ? run_metered<true, true>(time_limit, event_limit)
                           : run_metered<false, true>(time_limit, event_limit);
    }
    return instrumented_ ? run_metered<true, false>(time_limit, event_limit)
                         : run_metered<false, false>(time_limit, event_limit);
  }
  if (faults_on_) {
    return instrumented_ ? run_loop<true, true, false>(time_limit, event_limit)
                         : run_loop<false, true, false>(time_limit, event_limit);
  }
  return instrumented_ ? run_loop<true, false, false>(time_limit, event_limit)
                       : run_loop<false, false, false>(time_limit, event_limit);
}

}  // namespace olb::sim
