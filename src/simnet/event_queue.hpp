// Slab-backed binary min-heap of simulation events.
//
// std::priority_queue cannot hand back move-only elements, and we need a
// deterministic total order (time, then insertion sequence), so we keep a
// hand-rolled heap. Two layout decisions make it the engine's fastest
// component instead of its bottleneck:
//
//  * Event bodies live in a slab (`slots_`) and are recycled through a
//    freelist — the heap itself holds 32-byte POD entries carrying only the
//    ordering key (time, tie, seq) plus the slot index. Sift operations
//    therefore shuffle trivially-copyable entries instead of ~100-byte
//    move-only Events (whose Message member drags a unique_ptr along), and
//    an Event's bytes never move between its push and its pop.
//  * Sifts use hole percolation (shift parents/children into the hole, place
//    the moving entry once) rather than std::swap chains — one copy per
//    level instead of three.
//
// The slab never shrinks: it holds as many slots as the queue's high-water
// mark, which for the protocols here is small (events per actor are O(1)).
// Ordering is byte-for-byte the pre-slab order — the comparator reads the
// same (time, tie, seq) triple — so seeded runs reproduce exactly.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "simnet/message.hpp"
#include "simnet/time.hpp"

namespace olb::sim {

struct Event {
  enum class Kind : std::uint8_t {
    kArrival,  ///< a message reaches its destination's inbox
    kWake,     ///< the destination actor should service its queues
    kCrash,    ///< fault injection: the destination peer fail-stops
    kStall,    ///< fault injection: the destination freezes for msg.a ns
  };

  Time time = 0;
  std::uint64_t seq = 0;  ///< global insertion counter; ties broken FIFO
  /// Random tie-break key, always 0 unless schedule perturbation is active
  /// (see simnet/perturb.hpp) — then simultaneous events are ordered by it
  /// instead of insertion order, exploring a different interleaving per
  /// perturbation seed while staying fully deterministic.
  std::uint64_t tie = 0;
  int dst = -1;
  Kind kind = Kind::kWake;
  Message msg;  ///< valid only for kArrival (kStall borrows msg.a)
};

class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void push(Event e) {
    const Entry entry{e.time, e.tie, e.seq, acquire_slot(std::move(e))};
    std::size_t i = heap_.size();
    heap_.push_back(entry);  // placeholder; sift_up writes the final position
    sift_up(entry, i);
  }

  /// Constructs the event in its slab slot and returns a reference for the
  /// caller to finish (typically moving a Message into `.msg`). Skips the
  /// two whole-Event moves push() pays; the reference is valid only until
  /// the next queue operation (emplace may grow or recycle the slab).
  Event& emplace(Time time, std::uint64_t tie, std::uint64_t seq, int dst,
                 Event::Kind kind) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      Event& ev = slots_[slot];
      ev.time = time;
      ev.tie = tie;
      ev.seq = seq;
      ev.dst = dst;
      ev.kind = kind;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      Event& ev = slots_.emplace_back();
      ev.time = time;
      ev.tie = tie;
      ev.seq = seq;
      ev.dst = dst;
      ev.kind = kind;
    }
    const Entry entry{time, tie, seq, slot};
    std::size_t i = heap_.size();
    heap_.push_back(entry);  // placeholder; sift_up writes the final position
    sift_up(entry, i);
    return slots_[slot];
  }

  /// Removes and returns the earliest event. Precondition: !empty().
  Event pop() {
    const std::uint32_t slot = heap_.front().slot;
    pop_entry();
    Event out = std::move(slots_[slot]);
    free_.push_back(slot);
    return out;
  }

  /// The earliest event, mutable so callers can consume `.msg` in place
  /// before drop_top() — the zero-move alternative to pop(). Precondition:
  /// !empty().
  Event& top() { return slots_[heap_.front().slot]; }

  /// Discards the earliest event without moving it out; pair with top().
  /// Any reference from top()/emplace() is dead after this (the slot is
  /// recycled). Precondition: !empty().
  void drop_top() {
    free_.push_back(heap_.front().slot);
    pop_entry();
  }

  /// Timestamp of the earliest event. Precondition: !empty().
  Time peek_time() const { return heap_.front().time; }

  const Event& peek() const { return slots_[heap_.front().slot]; }

  /// Bytes of heap storage behind the queue. Tracks the slab's high-water
  /// mark (the slab never shrinks) — the honest number for the
  /// bytes-per-peer accounting in docs/SCALING.md.
  std::size_t memory_bytes() const {
    return heap_.capacity() * sizeof(Entry) +
           slots_.capacity() * sizeof(Event) +
           free_.capacity() * sizeof(std::uint32_t);
  }

 private:
  /// Heap entry: the deterministic ordering key plus the slab slot holding
  /// the full Event. Trivially copyable by design — sifts copy these.
  struct Entry {
    Time time;
    std::uint64_t tie;
    std::uint64_t seq;
    std::uint32_t slot;

    bool before(const Entry& other) const {
      if (time != other.time) return time < other.time;
      if (tie != other.tie) return tie < other.tie;
      return seq < other.seq;
    }
  };

  /// Removes the root entry and restores the heap (slot not freed here).
  void pop_entry() {
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(last);
  }

  std::uint32_t acquire_slot(Event&& e) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(e);
      return slot;
    }
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(e));
    return slot;
  }

  /// Percolates `e` up from the hole at `i`.
  void sift_up(Entry e, std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!e.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Percolates `e` down from the hole at the root.
  void sift_down(Entry e) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].before(heap_[child])) ++child;
      if (!heap_[child].before(e)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
  std::vector<Event> slots_;          ///< slab of event bodies, slot-indexed
  std::vector<std::uint32_t> free_;   ///< recycled slots
};

}  // namespace olb::sim
