// Binary min-heap of simulation events.
//
// std::priority_queue cannot hand back move-only elements, and we need a
// deterministic total order (time, then insertion sequence), so we keep a
// small hand-rolled heap.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "simnet/message.hpp"
#include "simnet/time.hpp"

namespace olb::sim {

struct Event {
  enum class Kind : std::uint8_t {
    kArrival,  ///< a message reaches its destination's inbox
    kWake,     ///< the destination actor should service its queues
    kCrash,    ///< fault injection: the destination peer fail-stops
    kStall,    ///< fault injection: the destination freezes for msg.a ns
  };

  Time time = 0;
  std::uint64_t seq = 0;  ///< global insertion counter; ties broken FIFO
  /// Random tie-break key, always 0 unless schedule perturbation is active
  /// (see simnet/perturb.hpp) — then simultaneous events are ordered by it
  /// instead of insertion order, exploring a different interleaving per
  /// perturbation seed while staying fully deterministic.
  std::uint64_t tie = 0;
  int dst = -1;
  Kind kind = Kind::kWake;
  Message msg;  ///< valid only for kArrival (kStall borrows msg.a)

  bool before(const Event& other) const {
    if (time != other.time) return time < other.time;
    if (tie != other.tie) return tie < other.tie;
    return seq < other.seq;
  }
};

class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void push(Event e) {
    heap_.push_back(std::move(e));
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the earliest event. Precondition: !empty().
  Event pop() {
    Event top = std::move(heap_.front());
    if (heap_.size() > 1) {
      // With one element front and back alias, and self-move-assigning the
      // Message's unique_ptr members would be undefined.
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return top;
  }

  const Event& peek() const { return heap_.front(); }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      std::size_t best = i;
      if (left < n && heap_[left].before(heap_[best])) best = left;
      if (right < n && heap_[right].before(heap_[best])) best = right;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Event> heap_;
};

}  // namespace olb::sim
