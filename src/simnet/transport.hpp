// The seam between protocol code and its execution substrate.
//
// Every service an Actor uses from inside its hooks — sending, timers,
// compute spans, the clock, the cluster size — goes through this interface.
// Three implementations exist:
//
//  * sim::Engine (engine.hpp): the discrete-event simulator. Time is
//    simulated, sends become queued arrival events, compute spans advance a
//    virtual busy-clock. Deterministic; reproduces the paper's cluster model.
//  * runtime::ThreadNet (src/runtime): real threads, one per peer. Time is
//    the wall clock, sends push into lock-free MPSC mailboxes, compute spans
//    are the actual CPU time of the application work.
//  * runtime::SocketNet (src/runtime): real processes, one per peer, joined
//    by TCP. Time is the wall clock relative to a bootstrap-synchronised
//    epoch; sends are serialised through the versioned wire codec
//    (runtime/wire.hpp) and delivered by an epoll event loop.
//
// Protocol classes (OverlayPeer and friends) are written once against Actor's
// services and run unmodified on any substrate — the point of the split.
// Methods carry a transport_ prefix so Engine can implement them while
// keeping its richer public API (now(), tracer(), ...) unshadowed.
//
// ## Actor/transport lifecycle contract
//
// A transport moves through three explicit stages, driven by its harness
// (sim::Engine::run, runtime::run_threads, runtime::run_sockets):
//
//  1. transport_start() — acquire external resources and rendezvous with
//     the rest of the cluster. After it returns, transport_now(),
//     transport_num_peers() and transport_send() are fully operational.
//     In-process backends need nothing here (the default no-op); SocketNet
//     binds its listener, connects to every peer and runs the bootstrap
//     barrier, so actors on all processes observe time 0 together.
//  2. The run: each actor gets on_start() exactly once, then an arbitrary
//     interleaving of on_message / on_timer / on_compute_done, always on
//     its own logical thread of control (no hook ever needs locking).
//     Actors may call send()/set_timer()/start_compute() from any hook.
//  3. transport_shutdown() — flush and release external resources
//     (SocketNet: drain outbound queues, write the NDJSON trace, close
//     sockets). Idempotent; also invoked by the transport's destructor, so
//     an exceptional exit still releases OS resources. After shutdown no
//     actor hook will run and transport_send() must not be called.
//
// Harnesses call the pair unconditionally on every backend; backends that
// need no bring-up simply inherit the no-ops.
#pragma once

#include <cstdint>

#include "simnet/message.hpp"
#include "simnet/time.hpp"
#include "trace/trace.hpp"

namespace olb::sim {

class Actor;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Lifecycle stage 1 (see the contract above): acquire external
  /// resources and rendezvous with the cluster. No-op for in-process
  /// backends.
  virtual void transport_start() {}

  /// Lifecycle stage 3: flush and release external resources. Must be
  /// idempotent (destructors call it too). No-op for in-process backends.
  virtual void transport_shutdown() {}

  /// Current time in nanoseconds (simulated or wall, see above).
  virtual Time transport_now() const = 0;

  /// Number of peers in the cluster (dense ids 0..n-1).
  virtual int transport_num_peers() const = 0;

  /// Trace sink events should go to; nullptr when tracing is off (always
  /// nullptr on the thread backend — the sinks are single-threaded).
  virtual trace::TraceSink* transport_tracer() const = 0;

  /// Delivers `m` to `dst`'s inbox/mailbox. Fills in src/dst and updates the
  /// sender's ActorStats.
  virtual void transport_send(Actor& from, int dst, Message m) = 0;

  /// Arranges for `from.on_timer(tag)` after `delay`. Timers are always
  /// self-addressed; both backends deliver them on the actor's own
  /// (simulated or real) execution thread.
  virtual void transport_set_timer(Actor& from, Time delay,
                                   std::int64_t tag) = 0;

  /// Notification that `from` started a compute span of (speed-scaled)
  /// `duration`. The simulator advances the actor's busy-clock and
  /// utilisation histogram here; the thread backend needs no bookkeeping —
  /// the span *is* the CPU time the work already consumed.
  virtual void transport_compute_started(Actor& from, Time duration) = 0;

  /// Whether reading the clock is effectively free on this substrate. True
  /// for the simulator (now() is a field read); false for the thread
  /// backend, where it is a real clock syscall. Per-chunk bookkeeping that
  /// only feeds reporting (PeerBase::last_active) consults this so the
  /// thread backend's chunk loop stays clock-free.
  bool transport_time_is_free() const { return time_is_free_; }

 protected:
  bool time_is_free_ = true;  ///< cleared by the real-time backends' ctors
};

}  // namespace olb::sim
