#include "metrics/metrics.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace olb::metrics {

namespace {
std::atomic<int> g_next_shard{0};
}  // namespace

int current_shard(int shards) {
  if (shards <= 1) return 0;
  thread_local int slot = g_next_shard.fetch_add(1, std::memory_order_relaxed);
  return slot % shards;
}

// --- Histogram ------------------------------------------------------------

std::size_t Histogram::bucket_of(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  if (v > kMaxValue) v = kMaxValue;
  // v in [2^k, 2^{k+1}) lands in group k-kSubBits, which splits the range
  // into kSubBuckets/2 linear sub-buckets of width 2^{k-kSubBits+1}.
  const int k = std::bit_width(v) - 1;  // k >= kSubBits
  const int shift = k - kSubBits + 1;
  const std::uint64_t sub = (v >> shift) - (kSubBuckets / 2);
  return kSubBuckets +
         static_cast<std::size_t>(k - kSubBits) * (kSubBuckets / 2) +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_upper(std::size_t idx) {
  OLB_CHECK(idx < kNumBuckets);
  if (idx < kSubBuckets) return idx;
  const std::size_t rel = idx - kSubBuckets;
  const int k = kSubBits + static_cast<int>(rel / (kSubBuckets / 2));
  const std::uint64_t sub = rel % (kSubBuckets / 2);
  const int shift = k - kSubBits + 1;
  return (((kSubBuckets / 2) + sub + 1) << shift) - 1;
}

Histogram::Histogram(int shards, bool single_writer)
    : single_writer_(single_writer) {
  const int n = single_writer ? 1 : shards;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

void Histogram::record(std::uint64_t v) {
  if (v > kMaxValue) v = kMaxValue;
  const std::size_t b = bucket_of(v);
  Shard& s = *shards_[shards_.size() == 1
                          ? 0
                          : static_cast<std::size_t>(current_shard(
                                static_cast<int>(shards_.size())))];
  if (single_writer_) {
    // Plain-field cost: only the owning thread writes this shard.
    auto bump = [](std::atomic<std::uint64_t>& a, std::uint64_t d) {
      a.store(a.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
    };
    bump(s.counts[b], 1);
    bump(s.count, 1);
    bump(s.sum, v);
    if (v < s.min.load(std::memory_order_relaxed))
      s.min.store(v, std::memory_order_relaxed);
    if (v > s.max.load(std::memory_order_relaxed))
      s.max.store(v, std::memory_order_relaxed);
    return;
  }
  s.counts[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !s.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->count.load(std::memory_order_relaxed);
  return total;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.min = ~std::uint64_t{0};
  for (const auto& s : shards_) {
    out.count += s->count.load(std::memory_order_relaxed);
    out.sum += s->sum.load(std::memory_order_relaxed);
    out.min = std::min(out.min, s->min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s->max.load(std::memory_order_relaxed));
  }
  if (out.count == 0) {
    out.min = 0;
    return out;
  }
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    std::uint64_t c = 0;
    for (const auto& s : shards_)
      c += s->counts[b].load(std::memory_order_relaxed);
    if (c != 0) out.buckets.emplace_back(static_cast<std::uint32_t>(b), c);
  }
  return out;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Target the same order statistic SortedSample interpolates around:
  // rank p*(n-1) in 0-based sorted order, then interpolate linearly inside
  // the bucket that holds it.
  const double target = p * static_cast<double>(count - 1);
  std::uint64_t before = 0;
  for (const auto& [idx, c] : buckets) {
    if (static_cast<double>(before + c) > target) {
      const std::uint64_t upper = bucket_upper(idx);
      const std::uint64_t lower = idx == 0 ? 0 : bucket_upper(idx - 1) + 1;
      const double frac =
          (target - static_cast<double>(before)) / static_cast<double>(c);
      double est = static_cast<double>(lower) +
                   frac * static_cast<double>(upper - lower);
      est = std::clamp(est, static_cast<double>(min), static_cast<double>(max));
      return est;
    }
    before += c;
  }
  return static_cast<double>(max);
}

// --- Registry -------------------------------------------------------------

Registry::Registry(int shards) : shards_(std::max(1, shards)) {}

Registry::Entry* Registry::get_or_create(std::string_view name, int peer,
                                         Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->peer == peer && e->name == name) {
      OLB_CHECK_MSG(e->kind == kind, "instrument re-registered with a different kind");
      return e.get();
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->peer = peer;
  e->kind = kind;
  // Per-peer instruments are only touched from the owning actor's hooks, so
  // they always take the single-writer (plain-store) path; globals shard
  // unless the whole registry is single-threaded (simulator backend).
  const bool single_writer = peer >= 0 || shards_ == 1;
  switch (kind) {
    case Kind::kCounter:
      e->c.reset(new Counter(shards_, single_writer));
      break;
    case Kind::kGauge:
      e->g.reset(new Gauge());
      break;
    case Kind::kHistogram:
      e->h.reset(new Histogram(shards_, single_writer));
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

const Registry::Entry* Registry::find(std::string_view name, int peer,
                                      Kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e->peer == peer && e->kind == kind && e->name == name) return e.get();
  return nullptr;
}

Counter* Registry::counter(std::string_view name, int peer) {
  return get_or_create(name, peer, Kind::kCounter)->c.get();
}

Gauge* Registry::gauge(std::string_view name, int peer) {
  return get_or_create(name, peer, Kind::kGauge)->g.get();
}

Histogram* Registry::histogram(std::string_view name, int peer) {
  return get_or_create(name, peer, Kind::kHistogram)->h.get();
}

Counter* Registry::find_counter(std::string_view name, int peer) const {
  const Entry* e = find(name, peer, Kind::kCounter);
  return e == nullptr ? nullptr : e->c.get();
}

Gauge* Registry::find_gauge(std::string_view name, int peer) const {
  const Entry* e = find(name, peer, Kind::kGauge);
  return e == nullptr ? nullptr : e->g.get();
}

Histogram* Registry::find_histogram(std::string_view name, int peer) const {
  const Entry* e = find(name, peer, Kind::kHistogram);
  return e == nullptr ? nullptr : e->h.get();
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsSnapshot Registry::snapshot(std::uint64_t t_ns) const {
  MetricsSnapshot snap;
  snap.t_ns = t_ns;
  std::lock_guard<std::mutex> lock(mu_);
  snap.entries.reserve(entries_.size());
  for (const auto& e : entries_) {
    SnapshotEntry out;
    out.name = e->name;
    out.peer = e->peer;
    out.kind = e->kind;
    switch (e->kind) {
      case Kind::kCounter:
        out.counter = e->c->value();
        break;
      case Kind::kGauge:
        out.gauge = e->g->value();
        break;
      case Kind::kHistogram:
        out.hist = e->h->snapshot();
        break;
    }
    snap.entries.push_back(std::move(out));
  }
  return snap;
}

}  // namespace olb::metrics
