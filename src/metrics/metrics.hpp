// Live metrics: named counters, gauges and log-linear histograms that are
// cheap enough to leave on during a measured run.
//
// Traces (src/trace) answer "what happened, in order" after the fact; this
// layer answers "what is the cluster doing right now" while a run is in
// flight — queue depths, in-flight requests, serve rates and sojourn-time
// percentiles, snapshotted on a time window and exported as Prometheus text
// or an NDJSON time series (src/metrics/export.hpp, hub.hpp).
//
// Design constraints, in order:
//
//  * Zero cost when off. Every instrumentation site goes through the inline
//    helpers at the bottom (inc/set_gauge/record), which test a pointer that
//    is null unless a MetricsHub was attached — one predicted branch, the
//    same discipline as trace::emit. With -DOLB_METRICS_DISABLED the helpers
//    fold to nothing and no pointer is ever armed.
//  * One write path for both backends. A Registry is built with a shard
//    count: 1 on the simulator (writes compile to plain load/store on an
//    uncontended atomic — field cost), >1 on the thread backend (writers are
//    spread over cache-line-padded shards and use relaxed fetch_add; the
//    merge happens at snapshot time, never on the write path). Per-peer
//    instruments are single-cell and rely on the actor contract — every
//    hook runs on the owning thread — so they take the plain-store path on
//    both backends.
//  * Reads never stop writers. snapshot() sums the shards with relaxed
//    loads; a snapshot is consistent per-cell, not across cells, which is
//    what monitoring needs (and all a lock-free design can promise).
//
// Histograms use HdrHistogram-style log-linear bucketing: values below 32
// are exact, above that each power-of-two range is cut into 16 linear
// sub-buckets, giving a worst-case relative error of 1/16 (~6%) over the
// full range [0, 2^48) with 720 fixed buckets — no configuration, no
// allocation on record().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace olb::metrics {

/// Compile-time kill switch: with -DOLB_METRICS_DISABLED the inline helpers
/// below are empty and no hub ever arms an instrument pointer.
#ifdef OLB_METRICS_DISABLED
inline constexpr bool kMetricsCompiled = false;
#else
inline constexpr bool kMetricsCompiled = true;
#endif

class Registry;

/// Returns this thread's shard slot in [0, shards): threads are assigned
/// round-robin on first use and keep their slot for life. shards == 1 short
/// circuits before the thread-local is touched.
int current_shard(int shards);

namespace detail {
/// One padded counter cell; the padding keeps two shards from false-sharing
/// a cache line when different threads hammer adjacent cells.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic event count. Sharded writers, merged reads.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (single_writer_) {
      // Owner-thread (or simulator) path: a relaxed load+store pair compiles
      // to the same code as a plain field increment.
      auto& c = cells_[0].v;
      c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
      return;
    }
    cells_[static_cast<std::size_t>(current_shard(shards_))].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class Registry;
  Counter(int shards, bool single_writer)
      : cells_(static_cast<std::size_t>(single_writer ? 1 : shards)),
        shards_(single_writer ? 1 : shards),
        single_writer_(single_writer) {}

  std::vector<detail::Cell> cells_;
  int shards_;
  bool single_writer_;
};

/// Point-in-time signed value. Gauges have a single writer by contract (the
/// owning actor, the engine, or the hub's collect callback), so set() is a
/// plain relaxed store; concurrent readers see the latest published value.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) {
    v_.store(v_.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::int64_t> v_{0};
};

/// Log-linear histogram of non-negative 64-bit values (typically ns).
class Histogram {
 public:
  /// Exact buckets below kSubBuckets; 1/16 relative resolution above.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBits;  // 32
  static constexpr int kMaxExponent = 48;
  static constexpr std::uint64_t kMaxValue = (std::uint64_t{1} << kMaxExponent) - 1;
  /// 32 exact + 16 per power-of-two range [2^5, 2^48).
  static constexpr std::size_t kNumBuckets =
      kSubBuckets + (kMaxExponent - kSubBits) * (kSubBuckets / 2);

  static std::size_t bucket_of(std::uint64_t v);
  /// Inclusive upper bound of bucket `idx` (lower bound is the previous
  /// bucket's upper bound + 1, or 0 for bucket 0).
  static std::uint64_t bucket_upper(std::size_t idx);

  void record(std::uint64_t v);

  /// Merged read-side view; percentile() interpolates inside a bucket, so
  /// results agree with an exact sample within the bucket resolution.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /// (bucket index, count) for every non-empty bucket, ascending.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    /// p in [0,1]; 0 for an empty histogram.
    double percentile(double p) const;
  };
  Snapshot snapshot() const;

  std::uint64_t count() const;

 private:
  friend class Registry;
  Histogram(int shards, bool single_writer);

  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    Shard() : counts(kNumBuckets) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  bool single_writer_;
};

enum class Kind { kCounter, kGauge, kHistogram };

/// One instrument's merged state at snapshot time.
struct SnapshotEntry {
  std::string name;
  int peer = -1;  ///< per-peer label; -1 = cluster/engine-global
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  Histogram::Snapshot hist;
};

/// All instruments at one point in time; `t_ns` is simulated ns (simulator
/// backend) or wall ns since run start (thread backend).
struct MetricsSnapshot {
  std::uint64_t t_ns = 0;
  std::vector<SnapshotEntry> entries;
};

/// Get-or-create registry of named instruments. Creation takes a mutex (it
/// happens at run setup, never on the hot path); the returned pointers are
/// stable for the registry's lifetime and are what instrumented code holds.
///
/// `peer` labels an instrument with a peer id; per-peer instruments
/// (peer >= 0) are single-cell and MUST only be written from the actor hooks
/// of that peer (the backends guarantee those run on one thread). Global
/// instruments (peer == -1) are sharded and safe from any thread.
class Registry {
 public:
  explicit Registry(int shards = 1);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view name, int peer = -1);
  Gauge* gauge(std::string_view name, int peer = -1);
  Histogram* histogram(std::string_view name, int peer = -1);

  /// Looks an instrument up without creating it (tests, exporters).
  Counter* find_counter(std::string_view name, int peer = -1) const;
  Gauge* find_gauge(std::string_view name, int peer = -1) const;
  Histogram* find_histogram(std::string_view name, int peer = -1) const;

  MetricsSnapshot snapshot(std::uint64_t t_ns) const;

  int shards() const { return shards_; }
  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    int peer;
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry* get_or_create(std::string_view name, int peer, Kind kind);
  const Entry* find(std::string_view name, int peer, Kind kind) const;

  mutable std::mutex mu_;
  int shards_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Per-actor protocol-event counters, armed by Actor::on_metrics and bumped
/// at the emit_trace funnel — every protocol already marks requests, serves,
/// declines, retries and idle episodes there, so deriving the counters at
/// the funnel instruments all four strategies without touching their code.
struct ActorEventCounters {
  Counter* requests = nullptr;  ///< kRequest (RWS steals, overlay req*, MW asks)
  Counter* serves = nullptr;    ///< kServe
  Counter* declines = nullptr;  ///< kNoServe
  Counter* retries = nullptr;   ///< kRetry
  Counter* idle = nullptr;      ///< kIdleBegin (idle episodes entered)

  bool armed() const { return requests != nullptr; }
};

// --- the instrumentation-site helpers -------------------------------------
// All hot-path call sites go through these: a null instrument (metrics off)
// costs one predicted-not-taken branch, and OLB_METRICS_DISABLED folds the
// whole call away.

inline void inc(Counter* c, std::uint64_t n = 1) {
  if constexpr (kMetricsCompiled) {
    if (c != nullptr) [[unlikely]] c->inc(n);
  } else {
    (void)c, (void)n;
  }
}

inline void set_gauge(Gauge* g, std::int64_t v) {
  if constexpr (kMetricsCompiled) {
    if (g != nullptr) [[unlikely]] g->set(v);
  } else {
    (void)g, (void)v;
  }
}

inline void record(Histogram* h, std::uint64_t v) {
  if constexpr (kMetricsCompiled) {
    if (h != nullptr) [[unlikely]] h->record(v);
  } else {
    (void)h, (void)v;
  }
}

}  // namespace olb::metrics
