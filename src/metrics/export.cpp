#include "metrics/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace olb::metrics {

namespace {

bool worth_emitting(const SnapshotEntry& e) {
  switch (e.kind) {
    case Kind::kCounter:
      return e.counter != 0;
    case Kind::kGauge:
      return true;  // 0 is a real reading
    case Kind::kHistogram:
      return e.hist.count != 0;
  }
  return false;
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "hist";
  }
  return "?";
}

/// "{peer=\"3\"}" or "" for globals; buf must hold ~24 bytes.
const char* peer_label(int peer, char* buf, std::size_t n) {
  if (peer < 0) return "";
  std::snprintf(buf, n, "{peer=\"%d\"}", peer);
  return buf;
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsSnapshot& snap) {
  // Group instruments of the same name under one # TYPE header, as the
  // exposition format requires.
  std::vector<const SnapshotEntry*> live;
  live.reserve(snap.entries.size());
  for (const auto& e : snap.entries)
    if (worth_emitting(e)) live.push_back(&e);
  std::stable_sort(live.begin(), live.end(),
                   [](const SnapshotEntry* a, const SnapshotEntry* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->peer < b->peer;
                   });

  char line[256];
  char label[24];
  const char* prev_name = "";
  for (const SnapshotEntry* e : live) {
    if (e->name != prev_name) {
      const char* type = e->kind == Kind::kCounter  ? "counter"
                         : e->kind == Kind::kGauge ? "gauge"
                                                   : "histogram";
      std::snprintf(line, sizeof(line), "# TYPE %s %s\n", e->name.c_str(), type);
      os << line;
      prev_name = e->name.c_str();
    }
    const char* lbl = peer_label(e->peer, label, sizeof(label));
    switch (e->kind) {
      case Kind::kCounter:
        std::snprintf(line, sizeof(line), "%s%s %" PRIu64 "\n", e->name.c_str(),
                      lbl, e->counter);
        os << line;
        break;
      case Kind::kGauge:
        std::snprintf(line, sizeof(line), "%s%s %" PRId64 "\n", e->name.c_str(),
                      lbl, e->gauge);
        os << line;
        break;
      case Kind::kHistogram: {
        // Cumulative buckets over the non-empty set; le is the bucket's
        // inclusive upper bound.
        char inner[32];
        const char* comma = e->peer >= 0 ? "," : "";
        if (e->peer >= 0)
          std::snprintf(inner, sizeof(inner), "peer=\"%d\"", e->peer);
        else
          inner[0] = '\0';
        std::uint64_t cum = 0;
        for (const auto& [idx, c] : e->hist.buckets) {
          cum += c;
          std::snprintf(line, sizeof(line),
                        "%s_bucket{%s%sle=\"%" PRIu64 "\"} %" PRIu64 "\n",
                        e->name.c_str(), inner, comma,
                        Histogram::bucket_upper(idx), cum);
          os << line;
        }
        std::snprintf(line, sizeof(line),
                      "%s_bucket{%s%sle=\"+Inf\"} %" PRIu64 "\n",
                      e->name.c_str(), inner, comma, cum);
        os << line;
        std::snprintf(line, sizeof(line), "%s_sum%s %" PRIu64 "\n",
                      e->name.c_str(), lbl, e->hist.sum);
        os << line;
        std::snprintf(line, sizeof(line), "%s_count%s %" PRIu64 "\n",
                      e->name.c_str(), lbl, e->hist.count);
        os << line;
        break;
      }
    }
  }
}

void write_ndjson(std::ostream& os, const MetricsSnapshot& snap) {
  char line[384];
  for (const auto& e : snap.entries) {
    if (!worth_emitting(e)) continue;
    switch (e.kind) {
      case Kind::kCounter:
        std::snprintf(line, sizeof(line),
                      "{\"t\":%" PRIu64 ",\"name\":\"%s\",\"peer\":%d,"
                      "\"kind\":\"%s\",\"v\":%" PRIu64 "}\n",
                      snap.t_ns, e.name.c_str(), e.peer, kind_name(e.kind),
                      e.counter);
        break;
      case Kind::kGauge:
        std::snprintf(line, sizeof(line),
                      "{\"t\":%" PRIu64 ",\"name\":\"%s\",\"peer\":%d,"
                      "\"kind\":\"%s\",\"v\":%" PRId64 "}\n",
                      snap.t_ns, e.name.c_str(), e.peer, kind_name(e.kind),
                      e.gauge);
        break;
      case Kind::kHistogram:
        std::snprintf(
            line, sizeof(line),
            "{\"t\":%" PRIu64 ",\"name\":\"%s\",\"peer\":%d,\"kind\":\"hist\","
            "\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
            ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
            ",\"p99\":%" PRIu64 "}\n",
            snap.t_ns, e.name.c_str(), e.peer, e.hist.count, e.hist.sum,
            e.hist.min, e.hist.max,
            static_cast<std::uint64_t>(e.hist.percentile(0.50)),
            static_cast<std::uint64_t>(e.hist.percentile(0.90)),
            static_cast<std::uint64_t>(e.hist.percentile(0.99)));
        break;
    }
    os << line;
  }
}

}  // namespace olb::metrics
