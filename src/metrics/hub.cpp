#include "metrics/hub.hpp"

#include <chrono>

#include "metrics/export.hpp"
#include "support/check.hpp"

namespace olb::metrics {

MetricsHub::Format MetricsHub::format_for_path(std::string_view path) {
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".prom")
    return Format::kPrometheus;
  return Format::kNdjson;
}

MetricsHub::MetricsHub(Options opts)
    : opts_(std::move(opts)),
      format_(format_for_path(opts_.path)),
      registry_(opts_.shards) {
  OLB_CHECK_MSG(!opts_.path.empty(), "metrics hub needs an output path");
  OLB_CHECK_MSG(opts_.interval_ns > 0, "metrics interval must be positive");
  if (format_ == Format::kNdjson) {
    out_.open(opts_.path, std::ios::binary | std::ios::trunc);
    OLB_CHECK_MSG(out_.good(), "cannot open metrics output file");
  }
}

MetricsHub::~MetricsHub() { stop_sampler(); }

void MetricsHub::set_collect(std::function<void()> cb) {
  std::lock_guard<std::mutex> lock(flush_mu_);
  collect_ = std::move(cb);
}

void MetricsHub::flush(std::uint64_t t_ns) {
  std::lock_guard<std::mutex> lock(flush_mu_);
  if (collect_) collect_();
  const MetricsSnapshot snap = registry_.snapshot(t_ns);
  if (format_ == Format::kPrometheus) {
    // Scrape semantics: each flush replaces the document.
    std::ofstream out(opts_.path, std::ios::binary | std::ios::trunc);
    OLB_CHECK_MSG(out.good(), "cannot rewrite metrics output file");
    write_prometheus(out, snap);
  } else {
    write_ndjson(out_, snap);
    out_.flush();  // olb_top tails this file; keep lines visible promptly
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsHub::start_sampler(std::function<std::uint64_t()> now_ns) {
  stop_sampler();  // tolerate back-to-back runs reusing one hub
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = false;
  }
  sampler_ = std::thread([this, now_ns = std::move(now_ns)] {
    const auto interval = std::chrono::nanoseconds(opts_.interval_ns);
    std::unique_lock<std::mutex> lock(sampler_mu_);
    while (!sampler_cv_.wait_for(lock, interval,
                                 [this] { return sampler_stop_; })) {
      lock.unlock();
      flush(now_ns());
      lock.lock();
    }
    lock.unlock();
    flush(now_ns());  // final snapshot so short runs still export once
  });
}

void MetricsHub::stop_sampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

}  // namespace olb::metrics
