// Snapshot exporters. Two formats, chosen by file extension at the hub:
//
//  * Prometheus text exposition (".prom"): the whole registry as one
//    scrape-shaped document, rewritten on every flush. Point promtool or a
//    node_exporter textfile collector at it.
//  * NDJSON time series (anything else): one JSON object per instrument per
//    flush, appended — the same one-line-per-record convention as
//    trace/export.cpp, and what tools/olb_top tails.
//
// Counters and histograms that have never been touched are skipped in both
// formats (they carry no signal and per-peer instruments multiply fast);
// gauges are always emitted because 0 is a real reading.
#pragma once

#include <iosfwd>

#include "metrics/metrics.hpp"

namespace olb::metrics {

/// Full-registry Prometheus text exposition; entries are grouped by metric
/// name with one # TYPE header each, per-peer instruments labelled
/// {peer="N"}. Histograms emit cumulative non-empty buckets, +Inf, _sum and
/// _count.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snap);

/// One NDJSON line per live instrument:
///   {"t":..,"name":"..","peer":N,"kind":"counter","v":..}
///   {"t":..,"name":"..","peer":N,"kind":"gauge","v":..}
///   {"t":..,"name":"..","peer":N,"kind":"hist","count":..,"sum":..,
///    "min":..,"max":..,"p50":..,"p90":..,"p99":..}
void write_ndjson(std::ostream& os, const MetricsSnapshot& snap);

}  // namespace olb::metrics
