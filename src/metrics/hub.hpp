// MetricsHub: owns the Registry, the flush schedule, and the output sink.
//
// A hub is created once (by bench_common from --metrics, or directly in
// tests) and handed to a backend:
//
//  * sim::Engine::set_metrics(hub)       — the engine calls hub->flush() from
//    its hot loop whenever simulated time crosses the next interval, so the
//    cadence is in *simulated* milliseconds and runs are deterministic.
//  * runtime::ThreadNet::set_metrics(hub) — the net calls start_sampler(),
//    which spawns one wall-clock thread that polls pull-gauges (via the
//    collect callback) and flushes every interval of *wall* milliseconds.
//
// flush() is serialized by a mutex: the write path never blocks, but two
// snapshots never interleave in the output file. Format is picked from the
// path extension: ".prom" truncates and rewrites a Prometheus text
// exposition each flush (scrape semantics); anything else appends NDJSON
// lines (tail semantics, what olb_top consumes).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "metrics/metrics.hpp"

namespace olb::metrics {

class MetricsHub {
 public:
  enum class Format { kNdjson, kPrometheus };

  struct Options {
    std::string path;  ///< ".prom" = Prometheus rewrite, else NDJSON append
    std::int64_t interval_ns = 100'000'000;  ///< flush cadence (100 ms)
    int shards = 1;  ///< 1 on the simulator, #threads-ish on ThreadNet
  };

  explicit MetricsHub(Options opts);
  ~MetricsHub();

  MetricsHub(const MetricsHub&) = delete;
  MetricsHub& operator=(const MetricsHub&) = delete;

  Registry& registry() { return registry_; }
  std::int64_t interval_ns() const { return opts_.interval_ns; }
  const std::string& path() const { return opts_.path; }
  Format format() const { return format_; }

  /// Pull-gauge hook, run inside flush() just before the snapshot (e.g.
  /// ThreadNet sums mailbox-pool heap allocations into a gauge here).
  /// Backends must clear it (nullptr) before they are destroyed.
  void set_collect(std::function<void()> cb);

  /// Snapshots the registry at `t_ns` and writes it to the sink. Safe from
  /// any thread; serialized internally.
  void flush(std::uint64_t t_ns);

  /// Spawns the wall-clock sampler thread: every interval it runs collect
  /// and flush(now_ns()). Used by the thread backend, where no hot loop can
  /// own the cadence. stop_sampler() performs one final flush and joins.
  void start_sampler(std::function<std::uint64_t()> now_ns);
  void stop_sampler();

  std::uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }

  static Format format_for_path(std::string_view path);

 private:
  Options opts_;
  Format format_;
  Registry registry_;

  std::mutex flush_mu_;
  std::function<void()> collect_;
  std::ofstream out_;  // NDJSON mode: held open across flushes
  std::atomic<std::uint64_t> flushes_{0};

  std::thread sampler_;
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
};

}  // namespace olb::metrics
