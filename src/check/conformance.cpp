#include "check/conformance.hpp"

#include <cstdarg>
#include <cstdio>

#include "support/check.hpp"

namespace olb::check {
namespace {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

void add(std::vector<Violation>* out, std::string oracle, int peer,
         std::string detail) {
  out->push_back(Violation{std::move(oracle), std::move(detail), -1, peer});
}

/// Live peers must have heard the termination wave, hold no work and have no
/// compute span outstanding. Only meaningful for runs that claim success —
/// a watchdog abort legitimately strands peers mid-protocol.
void check_final_state(const std::vector<lb::StateTap>& taps,
                       std::vector<Violation>* out) {
  for (const lb::StateTap& tap : taps) {
    if (tap.crashed) continue;
    if (!tap.terminated) {
      add(out, "final_state", tap.peer,
          "live peer never saw the termination wave");
    }
    if (tap.holds_work) {
      add(out, "final_state", tap.peer,
          format("live peer still holds %.1f units of work at termination",
                 tap.work_amount));
    }
    if (tap.computing) {
      add(out, "final_state", tap.peer,
          "live peer still has a compute span outstanding at termination");
    }
  }
}

/// Work accounting against the sequential reference. For counting
/// workloads (no bound, UTS: seq.bound == kNoBound) the unit count is
/// execution-order independent, so a lossless run (no work destroyed by
/// crashes) must count exactly seq.units and a lossy one at most that. For
/// B&B the node count legitimately varies with the schedule (pruning
/// depends on when the incumbent circulates), so only the optimum is
/// checked: lossless runs must reach exactly seq.bound, and no run may beat
/// it — a subset of the problem cannot contain a better solution than the
/// whole.
void check_totals(std::uint64_t total_units, std::int64_t best_bound,
                  bool lossless, const lb::SequentialMetrics& seq,
                  std::vector<Violation>* out) {
  const bool counting = seq.bound == lb::kNoBound;
  if (lossless) {
    if (counting && total_units != seq.units) {
      add(out, "conservation", -1,
          format("lossless run counted %llu units, sequential reference %llu",
                 static_cast<unsigned long long>(total_units),
                 static_cast<unsigned long long>(seq.units)));
    }
    if (best_bound != seq.bound) {
      add(out, "conservation", -1,
          format("lossless run found bound %lld, sequential reference %lld",
                 static_cast<long long>(best_bound),
                 static_cast<long long>(seq.bound)));
    }
  } else {
    if (counting && total_units > seq.units) {
      add(out, "conservation", -1,
          format("run counted %llu units, more than the whole problem (%llu)",
                 static_cast<unsigned long long>(total_units),
                 static_cast<unsigned long long>(seq.units)));
    }
    if (best_bound < seq.bound) {
      add(out, "conservation", -1,
          format("run found bound %lld, better than full exploration (%lld)",
                 static_cast<long long>(best_bound),
                 static_cast<long long>(seq.bound)));
    }
  }
}

/// Without crashes or bounces every sent transfer is received by somebody,
/// so the per-peer counters must balance globally.
void check_transfer_balance(const std::vector<lb::StateTap>& taps,
                            std::vector<Violation>* out) {
  std::uint64_t sent = 0, recv = 0;
  for (const lb::StateTap& tap : taps) {
    sent += tap.transfers_sent;
    recv += tap.transfers_recv;
  }
  if (sent != recv) {
    add(out, "conservation", -1,
        format("transfer counters do not balance: %llu sent vs %llu received",
               static_cast<unsigned long long>(sent),
               static_cast<unsigned long long>(recv)));
  }
}

}  // namespace

OracleOptions oracle_options_for(const lb::RunConfig& config) {
  OracleOptions o;
  o.work_msg_type = lb::kWork;
  o.faults_possible = config.faults.enabled();
  // The sanitising clamp only ever fires on stale or heterogeneous size
  // information; proportional splits on a homogeneous fault-free cluster
  // never produce an out-of-range raw fraction. (A planted split bias does
  // not change this: it is applied after the clamp.)
  // Elastic churn makes subtree sizes live estimates (deltas race the
  // join/leave handovers), so a firing clamp is legitimate there too.
  o.expect_no_clamp = !config.faults.enabled() && !config.churn.enabled() &&
                      config.het.fraction == 0.0 &&
                      !config.het.capacity_weighted &&
                      config.overlay.split == lb::SplitPolicy::kSubtreeProportional;
  o.churn_initial_peers =
      config.churn.enabled() ? config.churn.initial_peers : 0;
  // With zero jitter, no perturbation and no faults the simulator's network
  // delivers every link in send order.
  o.strict_link_fifo = config.net.latency_jitter == 0 &&
                       !config.perturb.enabled() && !config.faults.enabled();
  return o;
}

ConformanceReport run_conformance(lb::Workload& workload,
                                  const lb::RunConfig& config,
                                  const lb::SequentialMetrics& seq) {
  lb::RunConfig local = config;
  local.backend = lb::Backend::kSim;

  OracleSet oracles(oracle_options_for(local));
  // The caller's tracer stays `first` so the driver's snapshot-derived
  // timeline metrics keep working; the oracles only ever see record().
  trace::TeeSink tee(config.tracer, &oracles);
  local.tracer = &tee;

  ConformanceReport report;
  report.metrics = lb::run_distributed(workload, local);
  oracles.finish();
  report.violations = oracles.violations();

  if (!report.metrics.ok) {
    add(&report.violations, "completion", -1,
        "run did not quiesce with protocol termination (watchdog or stuck)");
    return report;  // the checks below assume a completed run
  }
  check_final_state(report.metrics.final_state, &report.violations);
  const bool lossless = report.metrics.work_lost_units == 0.0;
  check_totals(report.metrics.total_units, report.metrics.best_bound, lossless,
               seq, &report.violations);
  if (report.metrics.peers_crashed == 0 && report.metrics.work_bounced == 0) {
    check_transfer_balance(report.metrics.final_state, &report.violations);
  }
  return report;
}

ThreadConformanceReport run_thread_conformance(
    lb::Workload& workload, const lb::RunConfig& config,
    const lb::SequentialMetrics& seq) {
  lb::RunConfig local = config;
  local.backend = lb::Backend::kThreads;
  local.perturb = sim::SchedulePerturbation{};  // a simulator concept
  OLB_CHECK_MSG(local.plant.kind != lb::PlantedBug::Kind::kLostWork,
                "kLostWork is planted in the simulated network");

  OracleOptions options = oracle_options_for(local);
  // Real threads: wall-clock timestamps, no modelled links. The inbox-order
  // FIFO check still applies; the strict per-link variant would hold too
  // (mailboxes are FIFO) but adds nothing over it here.
  options.strict_link_fifo = false;
  OracleSet oracles(options);
  trace::TeeSink tee(config.tracer, &oracles);
  local.tracer = &tee;

  ThreadConformanceReport report;
  report.metrics = runtime::run_threads(workload, local);
  oracles.finish();
  report.violations = oracles.violations();

  if (!report.metrics.ok) {
    add(&report.violations, "completion", -1,
        "run did not quiesce with protocol termination (watchdog or stuck)");
    return report;
  }
  check_final_state(report.metrics.final_state, &report.violations);
  // The threads backend is fault-free by construction: always lossless.
  check_totals(report.metrics.total_units, report.metrics.best_bound,
               /*lossless=*/true, seq, &report.violations);
  check_transfer_balance(report.metrics.final_state, &report.violations);
  return report;
}

DifferentialReport run_differential(
    const std::function<std::unique_ptr<lb::Workload>()>& make_workload,
    const lb::RunConfig& config, const lb::SequentialMetrics& seq) {
  OLB_CHECK_MSG(lb::strategy_is_overlay(config.strategy),
                "differential checking needs a strategy both backends run");
  OLB_CHECK_MSG(!config.faults.enabled(),
                "fault injection is a simulator concept");

  DifferentialReport report;
  {
    auto workload = make_workload();
    report.sim = run_conformance(*workload, config, seq);
  }
  {
    auto workload = make_workload();
    report.threads = run_thread_conformance(*workload, config, seq);
  }

  // Execution-order-independent results must agree across backends. (Both
  // are also individually checked against `seq` above; comparing them to
  // each other keeps the property meaningful even if the reference were
  // wrong.) Unit counts are only schedule-independent for counting
  // workloads — under B&B pruning they vary; the optimum must still agree.
  const bool counting = seq.bound == lb::kNoBound;
  if (counting &&
      report.sim.metrics.total_units != report.threads.metrics.total_units) {
    add(&report.mismatches, "differential", -1,
        format("backends disagree on total units: sim %llu vs threads %llu",
               static_cast<unsigned long long>(report.sim.metrics.total_units),
               static_cast<unsigned long long>(
                   report.threads.metrics.total_units)));
  }
  if (report.sim.metrics.best_bound != report.threads.metrics.best_bound) {
    add(&report.mismatches, "differential", -1,
        format("backends disagree on best bound: sim %lld vs threads %lld",
               static_cast<long long>(report.sim.metrics.best_bound),
               static_cast<long long>(report.threads.metrics.best_bound)));
  }
  if (report.sim.passed() != report.threads.passed()) {
    add(&report.mismatches, "differential", -1,
        format("backends disagree on the oracle verdict: sim %s vs threads %s",
               report.sim.passed() ? "pass" : "fail",
               report.threads.passed() ? "pass" : "fail"));
  }
  return report;
}

}  // namespace olb::check
