// Schedule/configuration fuzzing for the conformance harness.
//
// One FuzzCase names a point in the swept space: (protocol, overlay shape,
// workload, protocol seed, fault plan, schedule seed). Everything downstream
// — the workload, the RunConfig, the fault plan's crash victims, the
// schedule perturbation — is a pure function of the tuple, so printing a
// failing case and re-parsing it replays the identical run, trace and all.
//
// The driver loop lives in tools/olb_fuzz; tests/test_check runs a smoke
// sweep. shrink_case() greedily simplifies a failing tuple (drop the fault
// plan, drop the perturbation, halve the cluster, ...) while it keeps
// failing, yielding the minimal repro the tool prints.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/conformance.hpp"
#include "lb/driver.hpp"
#include "svc/service.hpp"

namespace olb::check {

struct FuzzCase {
  lb::Strategy strategy = lb::Strategy::kOverlayBTD;
  int peers = 8;
  int dmax = 3;
  int workload_id = 0;           ///< [0, kNumWorkloads)
  std::uint64_t seed = 1;        ///< protocol/topology seed
  int fault_id = 0;              ///< [0, kNumFaultPlans); 0 = fault-free
  std::uint64_t sched_seed = 0;  ///< schedule perturbation; 0 = unperturbed
  /// [0, kNumChurnPlans); 0 = no churn. Overlay strategies only, and
  /// mutually exclusive with fault_id (validate_churn's rule) — parse_case
  /// rejects tuples that mix them.
  int churn_id = 0;
  /// [0, kNumJobPlans); 0 = classic single-job case. Nonzero runs the case
  /// as a multi-job service sweep (src/svc) with the job-conservation
  /// oracle armed. Overlay strategies only, and mutually exclusive with
  /// fault_id, churn_id and sched_seed (service runs are fault-free and do
  /// not apply schedule perturbation) — parse_case rejects mixed tuples.
  int jobs_id = 0;
};

inline constexpr int kNumWorkloads = 4;
inline constexpr int kNumFaultPlans = 8;
inline constexpr int kNumChurnPlans = 6;
inline constexpr int kNumJobPlans = 4;

/// "strategy=BTD peers=8 dmax=3 workload=0 seed=1 fault=2 sched=7" — the
/// repro string printed on failure and accepted by olb_fuzz --repro.
std::string format_case(const FuzzCase& c);

/// Parses format_case() output (order-insensitive, every key optional —
/// missing keys keep their defaults). Returns false on unknown keys,
/// malformed numbers or out-of-range values.
bool parse_case(std::string_view text, FuzzCase* out);

/// Fresh workload for the case. Overlay/RWS strategies fuzz UTS trees;
/// MW/AHMW need an interval workload and fuzz flowshop B&B instances.
std::unique_ptr<lb::Workload> make_case_workload(const FuzzCase& c);

/// Sequential reference for the case's workload — depends only on the
/// strategy family and workload_id, so sweep drivers can cache it.
lb::SequentialMetrics case_reference(const FuzzCase& c);

/// Fault plan `fault_id` under this case's cluster. Crash victims are
/// redrawn (bounded) until legal for the strategy, and the crash count is
/// capped to what the strategy survives, so the plan always passes
/// validate_faults_for_strategy at any peer count the shrinker reaches.
sim::FaultPlan make_case_faults(const FuzzCase& c);

/// Churn plan `churn_id` under this case's cluster. Join/leave counts are
/// clamped to what the peer count admits (joins < peers, leaves < initial
/// members), so the plan stays legal at any size the shrinker reaches; a
/// cluster too small to churn degenerates to a disabled plan.
lb::ChurnPlan make_case_churn(const FuzzCase& c);

/// The RunConfig the case denotes: paper network, tight watchdog limits
/// (a stuck protocol must fail fast, not eat the fuzz budget), the case's
/// fault plan and schedule perturbation. tracer/plant stay unset —
/// run_case() owns those.
lb::RunConfig make_case_config(const FuzzCase& c);

/// The multi-job service configuration job plan `jobs_id` denotes under
/// this case's cluster: small per-class arrival processes (keyed by the
/// case seed) over the case's workload shapes. Requires jobs_id != 0.
svc::ServiceConfig make_case_service(const FuzzCase& c);

/// Runs the case with every oracle attached. `plant` optionally mutates
/// the protocol (the harness self-test: a planted bug must be caught);
/// `tracer` tees off the full event stream for --trace replays. Job cases
/// (jobs_id != 0) run the service sweep instead; planted bugs target the
/// single-job protocol, so they ignore `plant`.
ConformanceReport run_case(const FuzzCase& c, const lb::PlantedBug& plant = {},
                           trace::TraceSink* tracer = nullptr);

/// Greedy shrinking to a fixpoint: tries simplifications in impact order
/// (no faults, no perturbation, fewer peers, smaller dmax, first workload,
/// seed 1) and keeps each one that still fails. `attempts` counts the runs
/// spent — each is a full run_case, so small cases shrink in seconds.
struct ShrinkResult {
  FuzzCase minimal;
  int attempts = 0;
};
ShrinkResult shrink_case(const FuzzCase& failing, const lb::PlantedBug& plant);

/// The index-th case of a sweep keyed by base_seed, drawn from `allowed`
/// strategies. Stateless — (base_seed, index) always maps to the same case,
/// so sweeps are resumable and shardable.
FuzzCase random_case(std::uint64_t base_seed, std::uint64_t index,
                     const std::vector<lb::Strategy>& allowed);

}  // namespace olb::check
