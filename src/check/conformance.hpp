// Conformance runner: executes one (workload, config) combination with the
// invariant oracles (oracles.hpp) attached to the trace stream, adds
// end-of-run checks that need the sequential reference (exact node counts,
// B&B optimum, transfer-counter balance, per-peer final state), and — for
// overlay strategies — cross-checks the simulator backend against the
// threads backend on the same configuration.
//
// This is the programmatic layer under tools/olb_fuzz and tests/test_check:
// everything here is deterministic given the config (including its
// SchedulePerturbation seed), so a failing tuple replays exactly.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "check/oracles.hpp"
#include "lb/driver.hpp"
#include "runtime/runtime.hpp"

namespace olb::check {

/// Derives what the oracles may assume from the run configuration:
///  * faults_possible   — the fault plan is enabled (planted bugs do NOT
///    count: a planted lost transfer must look like the violation it is);
///  * expect_no_clamp   — proportional splits, homogeneous, fault-free:
///    the overlay's fraction clamp must never fire;
///  * strict_link_fifo  — zero latency jitter, no perturbation, no faults:
///    per-link overtaking is impossible in the simulator's network model;
///  * churn_initial_peers — forwarded from the ChurnPlan so the membership
///    oracle knows which peers start dormant (0 when churn is disabled).
OracleOptions oracle_options_for(const lb::RunConfig& config);

struct ConformanceReport {
  lb::RunMetrics metrics;
  std::vector<Violation> violations;

  bool passed() const { return violations.empty(); }
};

/// Runs `workload` under `config` on the simulator backend with every oracle
/// attached (tee'd with config.tracer if the caller set one), then applies
/// the end-of-run checks against the sequential reference `seq`:
///  * completion — the run must quiesce with metrics.ok (watchdog = failure);
///  * final state — every live peer terminated, idle and empty-handed;
///  * conservation totals — lossless runs count exactly seq.units and reach
///    exactly seq.bound; lossy (faulty) runs count at most seq.units;
///  * transfer balance — without crashes/bounces, the per-peer transfer
///    counters sum to the same total on the send and receive side.
ConformanceReport run_conformance(lb::Workload& workload,
                                  const lb::RunConfig& config,
                                  const lb::SequentialMetrics& seq);

/// As above but for the threads backend (overlay strategies, fault-free):
/// runs runtime::run_threads with an OracleSet attached and applies the
/// backend-appropriate subset of the end-of-run checks.
struct ThreadConformanceReport {
  runtime::ThreadRunMetrics metrics;
  std::vector<Violation> violations;

  bool passed() const { return violations.empty(); }
};

ThreadConformanceReport run_thread_conformance(
    lb::Workload& workload, const lb::RunConfig& config,
    const lb::SequentialMetrics& seq);

/// Cross-backend differential check: the same (workload, config) must agree
/// between the simulator and the threads backend on everything that is
/// execution-order independent — total work units, best bound, and the
/// oracle verdict. `make_workload` supplies a *fresh* workload per backend
/// (B&B workloads carry the shared incumbent and must not leak bounds from
/// one run into the other). Overlay strategies, fault-free only (OLB_CHECK).
struct DifferentialReport {
  ConformanceReport sim;
  ThreadConformanceReport threads;
  /// Cross-backend disagreements (units/bound/verdict), on top of whatever
  /// each backend's own oracles reported.
  std::vector<Violation> mismatches;

  bool passed() const {
    return sim.passed() && threads.passed() && mismatches.empty();
  }
};

DifferentialReport run_differential(
    const std::function<std::unique_ptr<lb::Workload>()>& make_workload,
    const lb::RunConfig& config, const lb::SequentialMetrics& seq);

}  // namespace olb::check
