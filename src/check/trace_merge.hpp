// Causal merge of per-process trace streams (the socket backend writes one
// NDJSON file per rank) into a single stream the invariant oracles accept.
//
// The oracles assume *causal stream order*: a message's kMsgSend is recorded
// before its kMsgDeliver. Within one rank's file that holds by construction
// (SocketNet emits the send before queueing the frame), but socket ranks
// have no common clock — a receiver's wall clock may run ahead of the
// sender's, so sorting the union by timestamp can put a delivery before its
// send. merge_causal therefore performs a topological k-way merge: it only
// ever pops stream *heads* (per-stream order is preserved exactly, keeping
// the per-receiver FIFO invariant intact), prefers the lowest-timestamped
// head whose dependencies are satisfied, and holds back a head delivery
// whose matching send (same message id, emitted by some other stream) has
// not been output yet. Deliveries whose id no stream ever sent pass through
// undelayed — that *is* the violation the conservation oracle exists to
// catch, so the merge must not mask or deadlock on it.
#pragma once

#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace olb::check {

/// Merges per-process streams (each internally in recorded order) into one
/// causally ordered stream. Ties and causal holds break by (timestamp,
/// stream index), so the result is deterministic for a given input set.
std::vector<trace::TraceEvent> merge_causal(
    std::span<const std::vector<trace::TraceEvent>> streams);

}  // namespace olb::check
