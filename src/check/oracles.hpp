// Invariant oracles: online checkers that consume the structured trace
// stream (src/trace) and turn the paper's correctness claims into machine-
// checked invariants. Each oracle watches one property:
//
//  * conservation  — every work transfer has exactly one fate: delivered
//                    once, or (under faults) destroyed with an accounting
//                    event / a crashed endpoint. Nothing vanishes silently,
//                    nothing is delivered twice (§ proportional splits:
//                    work items always have exactly one owner).
//  * termination   — no peer declares termination while a work transfer to
//                    a live peer is still in flight (§ termination
//                    detection: the upward request doubles as the
//                    subtree-finished signal precisely so this cannot
//                    happen).
//  * btd_counters  — under per-link FIFO delivery (strict_link_fifo), the
//                    aggregated transfer counters carried by upward requests
//                    are monotone per peer (Mattern's four-counter argument
//                    needs counters that never run backwards; a reordered
//                    stale child report legitimately dips the sums, so the
//                    oracle is quiet whenever links can reorder).
//  * split_fraction— every served split fraction lies in [0, 1] (post-clamp
//                    the overlay guarantees (0, 1]; MW encodes interval
//                    serves as fraction 0). Under expect_no_clamp, the
//                    clamp must never fire at all.
//  * fifo          — per-receiver service order equals arrival order
//                    (inbox FIFO), and — when the schedule is unjittered,
//                    unperturbed and fault-free — strict per-link FIFO.
//  * membership    — elastic churn follows the protocol's life cycle: at
//                    most one join per dormant peer and one leave per
//                    member, no compute or idle episode outside a peer's
//                    membership window, and no membership event at all in
//                    a churn-free run.
//  * job_conservation — multi-job service runs (src/svc) keep every
//                    admitted job's ledger balanced: submissions are
//                    unique, a job is admitted or rejected (never both),
//                    job-tagged transfers balance per job in count and
//                    amount, a done job's admitted amount is fully drained
//                    by its compute chunks, nothing moves under a job's tag
//                    after its done declaration, and no event references a
//                    job that was never admitted. Without service mode any
//                    job event is itself a violation.
//
// Oracles process events in *recorded stream order* (never re-sorted): on
// the simulator that is execution order; on the threads backend the locked
// sink guarantees each send is recorded before its delivery, which is all
// the oracles assume. Feed them through OracleSet, which is a TraceSink and
// can therefore tee off any existing tracer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lb/messages.hpp"
#include "simnet/time.hpp"
#include "trace/trace.hpp"

namespace olb::check {

struct Violation {
  std::string oracle;  ///< which invariant (oracle name)
  std::string detail;  ///< human-readable description
  sim::Time time = -1; ///< trace timestamp of the offending event (-1: finish)
  int peer = -1;       ///< offending peer, -1 when not attributable
};

std::string to_string(const Violation& v);

/// What the oracles may assume about the run they are watching. Derive from
/// the RunConfig with oracle_options_for() (conformance.hpp) instead of
/// filling by hand.
struct OracleOptions {
  int work_msg_type = lb::kWork;
  /// Crashes/drops are possible: unmatched transfers to or from crashed
  /// peers are forgiven, destroyed bounces are legal.
  bool faults_possible = false;
  /// Proportional splits on a homogeneous fault-free cluster never need the
  /// sanitising clamp; any kSplitClamp is then itself a violation.
  bool expect_no_clamp = false;
  /// No latency jitter, no schedule perturbation, no faults: messages on
  /// one link can never overtake, so strict per-link FIFO must hold.
  bool strict_link_fifo = false;
  /// Elastic membership: number of initial members of the run's ChurnPlan
  /// (peers [churn_initial_peers, n) start dormant). 0 = churn disabled, in
  /// which case any membership event in the trace is itself a violation.
  int churn_initial_peers = 0;
  /// Multi-job service mode (src/svc): job-tagged events are expected and
  /// the job-conservation oracle audits them. false = single-job run, where
  /// any job event is itself a violation.
  bool jobs = false;
};

class Oracle {
 public:
  explicit Oracle(std::string name) : name_(std::move(name)) {}
  virtual ~Oracle() = default;

  const std::string& name() const { return name_; }

  /// Feed one trace event, in recorded stream order.
  virtual void on_event(const trace::TraceEvent& e) = 0;

  /// Called once after the last event; end-of-run invariants report here.
  virtual void finish() {}

  const std::vector<Violation>& violations() const { return violations_; }

 protected:
  /// Records a violation (capped: a broken invariant typically fires on
  /// every subsequent event, and 32 instances pin it down just as well).
  void report(sim::Time time, int peer, std::string detail);

 private:
  std::string name_;
  std::vector<Violation> violations_;
  std::uint64_t suppressed_ = 0;
};

/// Owns one of each oracle and fans the stream out to all of them. Being a
/// TraceSink, it attaches directly to an engine/ThreadNet — typically
/// tee'd (trace::TeeSink) with whatever tracer the caller already uses.
/// snapshot() is intentionally empty: oracles keep verdicts, not events.
class OracleSet final : public trace::TraceSink {
 public:
  explicit OracleSet(OracleOptions options);
  ~OracleSet() override;

  void record(const trace::TraceEvent& e) override;
  std::vector<trace::TraceEvent> snapshot() const override { return {}; }

  /// Runs every oracle's end-of-run checks. Call once, after the run.
  void finish();

  /// All violations across all oracles, in oracle order.
  std::vector<Violation> violations() const;

  const OracleOptions& options() const { return options_; }

 private:
  OracleOptions options_;
  std::vector<std::unique_ptr<Oracle>> oracles_;
};

/// Factories for individual oracles (unit tests drive them one at a time).
std::unique_ptr<Oracle> make_conservation_oracle(const OracleOptions& options);
std::unique_ptr<Oracle> make_termination_oracle(const OracleOptions& options);
std::unique_ptr<Oracle> make_btd_counter_oracle(const OracleOptions& options);
std::unique_ptr<Oracle> make_split_fraction_oracle(const OracleOptions& options);
std::unique_ptr<Oracle> make_fifo_oracle(const OracleOptions& options);
std::unique_ptr<Oracle> make_membership_oracle(const OracleOptions& options);
std::unique_ptr<Oracle> make_job_conservation_oracle(const OracleOptions& options);

}  // namespace olb::check
