#include "check/oracles.hpp"

#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace olb::check {

std::string to_string(const Violation& v) {
  std::ostringstream os;
  os << "[" << v.oracle << "] ";
  if (v.time >= 0) os << "t=" << v.time << "ns ";
  if (v.peer >= 0) os << "peer=" << v.peer << " ";
  os << v.detail;
  return os.str();
}

void Oracle::report(sim::Time time, int peer, std::string detail) {
  constexpr std::size_t kMaxViolations = 32;
  if (violations_.size() >= kMaxViolations) {
    ++suppressed_;
    return;
  }
  violations_.push_back(Violation{name_, std::move(detail), time, peer});
}

namespace {

using trace::EventKind;
using trace::TraceEvent;

/// One work transfer currently in the network, keyed by msg id (unique per
/// run: the engine's global message counter).
struct Flight {
  int src = -1;
  int dst = -1;
  sim::Time sent_at = 0;
};

// ----------------------------------------------------------- conservation ---

// Work items have exactly one owner: a transfer that is sent must be
// delivered exactly once, unless fault injection destroyed it (bounce to a
// dead sender, traced kMsgDrop) or a crashed endpoint swallowed it (the
// victim's inbox is cleared without per-message events — forgiven only when
// an endpoint actually crashed). A delivery with no matching send is a
// duplicated or fabricated work item. The planted kLostWork bug — a
// transfer that vanishes *after* its send was recorded — lands here.
class ConservationOracle final : public Oracle {
 public:
  explicit ConservationOracle(const OracleOptions& options)
      : Oracle("conservation"), options_(options) {}

  void on_event(const TraceEvent& e) override {
    if (e.kind == EventKind::kPeerCrash) {
      crashed_.insert(e.actor);
      return;
    }
    if (e.type != options_.work_msg_type) return;
    const auto id = static_cast<std::uint32_t>(e.a);
    switch (e.kind) {
      case EventKind::kMsgSend:
        in_flight_.emplace(id, Flight{e.actor, e.peer, e.time});
        break;
      case EventKind::kMsgDeliver: {
        const auto it = in_flight_.find(id);
        if (it == in_flight_.end()) {
          report(e.time, e.actor,
                 "work transfer id=" + std::to_string(id) +
                     " delivered without a matching send (duplicate or "
                     "fabricated work)");
          break;
        }
        in_flight_.erase(it);
        break;
      }
      case EventKind::kMsgDrop:
        // b==2: a bounce off a crashed peer found its sender dead too — the
        // engine destroys the work and accounts it. Legal only under faults.
        if (!options_.faults_possible) {
          report(e.time, e.actor,
                 "work transfer id=" + std::to_string(id) +
                     " destroyed in a run without fault injection");
        }
        in_flight_.erase(id);
        break;
      default:
        break;
    }
  }

  void finish() override {
    for (const auto& [id, f] : in_flight_) {
      if (options_.faults_possible &&
          (crashed_.count(f.src) != 0 || crashed_.count(f.dst) != 0)) {
        // The victim's inbox was cleared (no per-message drop events), or
        // the sender died before its bounce could come home. Destroyed work
        // is accounted in work_lost_units; the final-state checks
        // (conformance.cpp) reconcile totals against it.
        continue;
      }
      report(-1, f.src,
             "work transfer id=" + std::to_string(id) + " (" +
                 std::to_string(f.src) + " -> " + std::to_string(f.dst) +
                 ", sent t=" + std::to_string(f.sent_at) +
                 ") was never delivered");
    }
  }

 private:
  OracleOptions options_;
  std::unordered_map<std::uint32_t, Flight> in_flight_;
  std::unordered_set<int> crashed_;
};

// ------------------------------------------------------------ termination ---

// No peer may declare termination while a work transfer to a live peer is
// in flight: the receiver would acquire work after the protocol decided
// everything is done. Flights addressed to an already-crashed peer are
// exempt (they bounce or are destroyed — the fault ledger's business, not
// termination's).
//
// Judgement is deferred to finish(): on the threads backend the recording
// lock guarantees send-before-deliver order, but a *third* peer's
// kTerminated can slip between a delivery happening and that delivery being
// recorded. A flight open at a kTerminated event is therefore only a
// violation if it was never delivered, or delivered with a timestamp after
// the termination.
class TerminationOracle final : public Oracle {
 public:
  explicit TerminationOracle(const OracleOptions& options)
      : Oracle("termination"), options_(options) {}

  void on_event(const TraceEvent& e) override {
    if (e.kind == EventKind::kPeerCrash) {
      crashed_.insert(e.actor);
      // In-flight transfers addressed to the victim stop counting against
      // termination; conservation still tracks their fate.
      for (auto it = open_.begin(); it != open_.end();) {
        if (it->second.dst == e.actor) {
          limbo_.insert(it->first);
          it = open_.erase(it);
        } else {
          ++it;
        }
      }
      return;
    }
    if (e.kind == EventKind::kTerminated) {
      for (const auto& [id, f] : open_) {
        suspects_.push_back(Suspect{e.time, e.actor, id, f});
      }
      return;
    }
    if (e.type != options_.work_msg_type) return;
    const auto id = static_cast<std::uint32_t>(e.a);
    switch (e.kind) {
      case EventKind::kMsgSend:
        if (crashed_.count(e.peer) != 0) {
          // Sent to an already-crashed peer (the sender just has not
          // detected it yet): the transfer can only bounce or be
          // destroyed, never a termination hazard.
          limbo_.insert(id);
        } else {
          open_.emplace(id, Flight{e.actor, e.peer, e.time});
        }
        break;
      case EventKind::kMsgDeliver:
        delivered_at_[id] = e.time;
        open_.erase(id);
        limbo_.erase(id);
        break;
      case EventKind::kMsgDrop:
        open_.erase(id);
        limbo_.erase(id);
        break;
      default:
        break;
    }
  }

  void finish() override {
    for (const Suspect& s : suspects_) {
      const auto it = delivered_at_.find(s.flight_id);
      if (it != delivered_at_.end() && it->second <= s.terminated_at) {
        continue;  // recording race: the delivery actually came first
      }
      report(s.terminated_at, s.terminating_peer,
             "declared termination with work transfer id=" +
                 std::to_string(s.flight_id) + " (" +
                 std::to_string(s.flight.src) + " -> " +
                 std::to_string(s.flight.dst) + ") still in flight");
    }
  }

 private:
  struct Suspect {
    sim::Time terminated_at;
    int terminating_peer;
    std::uint32_t flight_id;
    Flight flight;
  };

  OracleOptions options_;
  std::unordered_map<std::uint32_t, Flight> open_;
  std::unordered_set<std::uint32_t> limbo_;  ///< addressed to a crashed peer
  std::unordered_map<std::uint32_t, sim::Time> delivered_at_;
  std::unordered_set<int> crashed_;
  std::vector<Suspect> suspects_;
};

// ------------------------------------------------------------ btd_counters ---

// The aggregated (sent, recv) transfer counters an upward request carries
// must be monotone per peer: Mattern's four-counter termination argument
// compares counter snapshots across waves and is unsound if they can run
// backwards. Crash re-parenting legitimately shrinks subtrees (a dead
// child's contribution disappears), so every crash resets all baselines.
class BtdCounterOracle final : public Oracle {
 public:
  explicit BtdCounterOracle(const OracleOptions& options)
      : Oracle("btd_counters"), enabled_(options.strict_link_fifo) {}

  void on_event(const TraceEvent& e) override {
    // The monotonicity argument needs child reports applied in send order:
    // any reordering (latency jitter, perturbation, spikes, duplicates) or
    // a crash-shrunk subtree can deliver a *stale* lower report after a
    // newer one and legitimately dip the parent's next converge-cast sum
    // (observed: consecutive same-link kReqUp 10 us apart under 20 us
    // jitter). So the oracle runs exactly when per-link FIFO is guaranteed.
    if (!enabled_) return;
    if (e.kind != EventKind::kRequest || e.type != lb::kReqUp) return;
    const auto it = last_.find(e.actor);
    if (it != last_.end() && (e.a < it->second.first || e.b < it->second.second)) {
      report(e.time, e.actor,
             "aggregated counters ran backwards: (" +
                 std::to_string(it->second.first) + "," +
                 std::to_string(it->second.second) + ") -> (" +
                 std::to_string(e.a) + "," + std::to_string(e.b) + ")");
    }
    last_[e.actor] = {e.a, e.b};
  }

 private:
  std::unordered_map<int, std::pair<std::int64_t, std::int64_t>> last_;
  const bool enabled_;
};

// --------------------------------------------------------- split_fraction ---

// Every served fraction lies in [0, 1] (ppm-encoded in kServe.a). The
// overlay clamps its shares into (0, 1] before splitting; MW serves whole
// intervals and encodes fraction 0. A fraction above 1 means a peer promised
// more than everything it holds — the planted kSplitBias bug. Under
// expect_no_clamp, a firing clamp is itself a violation: on a homogeneous
// fault-free cluster the proportional shares are well-formed by
// construction, so a clamp means the subtree arithmetic broke.
class SplitFractionOracle final : public Oracle {
 public:
  explicit SplitFractionOracle(const OracleOptions& options)
      : Oracle("split_fraction"), options_(options) {}

  void on_event(const TraceEvent& e) override {
    if (e.kind == EventKind::kServe) {
      if (e.a < 0 || e.a > 1'000'000) {
        report(e.time, e.actor,
               "served split fraction " + std::to_string(e.a) +
                   "ppm outside [0, 1000000]");
      }
      return;
    }
    if (e.kind == EventKind::kSplitClamp && options_.expect_no_clamp) {
      report(e.time, e.actor,
             "split clamp fired (raw=" + std::to_string(e.a) +
                 "ppm) in a run whose fractions must be well-formed");
    }
  }

 private:
  OracleOptions options_;
};

// -------------------------------------------------------------------- fifo ---

// Per-receiver service order equals arrival order: deliveries are recorded
// in the order the inbox was drained, and each carries its inbox wait in b,
// so arrival time (time - b) must be non-decreasing per receiver. With an
// unjittered, unperturbed, fault-free schedule the stronger per-link
// property holds too: messages from one sender to one receiver are
// delivered in send order (constant per-link latency cannot reorder).
class FifoOracle final : public Oracle {
 public:
  explicit FifoOracle(const OracleOptions& options)
      : Oracle("fifo"), options_(options) {}

  void on_event(const TraceEvent& e) override {
    if (e.kind == EventKind::kMsgSend) {
      if (options_.strict_link_fifo) {
        link_queue_[{e.actor, e.peer}].push_back(
            static_cast<std::uint32_t>(e.a));
      }
      return;
    }
    if (e.kind != EventKind::kMsgDeliver) return;

    const sim::Time arrival = e.time - e.b;
    const auto it = last_arrival_.find(e.actor);
    if (it != last_arrival_.end() && arrival < it->second) {
      report(e.time, e.actor,
             "inbox service order diverged from arrival order (arrival " +
                 std::to_string(arrival) + " after one at " +
                 std::to_string(it->second) + ")");
    } else {
      last_arrival_[e.actor] = arrival;
    }

    if (options_.strict_link_fifo) {
      auto& q = link_queue_[{e.peer, e.actor}];
      const auto id = static_cast<std::uint32_t>(e.a);
      if (q.empty() || q.front() != id) {
        report(e.time, e.actor,
               "link " + std::to_string(e.peer) + " -> " +
                   std::to_string(e.actor) +
                   " delivered id=" + std::to_string(id) +
                   " out of send order");
        // Resynchronise so one overtaking does not cascade.
        for (auto qit = q.begin(); qit != q.end(); ++qit) {
          if (*qit == id) {
            q.erase(qit);
            break;
          }
        }
      } else {
        q.pop_front();
      }
    }
  }

 private:
  OracleOptions options_;
  std::unordered_map<int, sim::Time> last_arrival_;
  std::map<std::pair<int, int>, std::deque<std::uint32_t>> link_queue_;
};

// -------------------------------------------------------------- membership ---

// Elastic membership follows the protocol's life cycle. With a ChurnPlan
// (churn_initial_peers > 0): only dormant peers (id >= initial members) may
// join, each at most once; each member leaves at most once, and only after
// being a member; and no peer computes (kComputeSpan) or opens an idle
// episode (kIdleBegin) outside its membership window — before its join or
// after its leave. kServe *after* a leave stays legal: a departed peer
// forwards late work to the member side as a counted bridge transfer.
// Without a ChurnPlan any membership event is itself a violation.
class MembershipOracle final : public Oracle {
 public:
  explicit MembershipOracle(const OracleOptions& options)
      : Oracle("membership"), initial_(options.churn_initial_peers) {}

  void on_event(const TraceEvent& e) override {
    switch (e.kind) {
      case EventKind::kMemberJoin:
        if (initial_ == 0) {
          report(e.time, e.actor, "member join in a run without a churn plan");
          return;
        }
        if (e.actor < initial_) {
          report(e.time, e.actor,
                 "initial member emitted a join (only dormant peers join)");
          return;
        }
        if (!joined_.insert(e.actor).second) {
          report(e.time, e.actor, "peer joined twice");
        }
        if (left_.count(e.actor) != 0) {
          report(e.time, e.actor, "peer re-joined after leaving");
        }
        break;
      case EventKind::kMemberLeave:
        if (initial_ == 0) {
          report(e.time, e.actor, "member leave in a run without a churn plan");
          return;
        }
        if (e.actor >= initial_ && joined_.count(e.actor) == 0) {
          report(e.time, e.actor, "dormant peer left without ever joining");
        }
        if (!left_.insert(e.actor).second) {
          report(e.time, e.actor, "peer left twice");
        }
        break;
      case EventKind::kComputeSpan:
      case EventKind::kIdleBegin: {
        if (initial_ == 0) return;
        const char* what =
            e.kind == EventKind::kComputeSpan ? "computed" : "went idle";
        if (e.actor >= initial_ && joined_.count(e.actor) == 0) {
          report(e.time, e.actor,
                 std::string("dormant peer ") + what + " before its join");
        }
        if (left_.count(e.actor) != 0) {
          report(e.time, e.actor,
                 std::string("departed peer ") + what + " after its leave");
        }
        break;
      }
      default:
        break;
    }
  }

 private:
  const int initial_;
  std::unordered_set<int> joined_;
  std::unordered_set<int> left_;
};

// --------------------------------------------------------- job_conservation ---

// Multi-job service runs (src/svc): the per-job work ledgers must balance
// end to end. The gate submits each job exactly once and either admits or
// rejects it, never both. Every job-tagged transfer is matched — a job's
// kJobXfer events (the gate's injection counts as the first) equal its
// kJobMerge events in both count and milli-amount, so a work unit can
// never slip from one job's ledger into another's: a retagged unit shows
// up as an unknown tag or as two unbalanced ledgers. A job declared done
// must have drained completely (admitted amount + the sum of its compute-
// chunk deltas == 0; workload amounts are integral node/interval counts,
// so the milli-unit arithmetic is exact), and nothing may move or compute
// under its tag afterwards — a too-eager per-job termination wave lands
// here. Without service mode, any job event is itself a violation.
class JobConservationOracle final : public Oracle {
 public:
  explicit JobConservationOracle(const OracleOptions& options)
      : Oracle("job_conservation"), enabled_(options.jobs) {}

  void on_event(const TraceEvent& e) override {
    switch (e.kind) {
      case EventKind::kJobSubmit:
      case EventKind::kJobAdmit:
      case EventKind::kJobReject:
      case EventKind::kJobXfer:
      case EventKind::kJobMerge:
      case EventKind::kJobChunk:
      case EventKind::kJobDone:
        break;
      default:
        return;
    }
    if (!enabled_) {
      report(e.time, e.actor, "job event in a run without service mode");
      return;
    }
    const int job = e.type;  // job ids ride the type field of kJob* events
    switch (e.kind) {
      case EventKind::kJobSubmit:
        if (!submitted_.insert(job).second) {
          report(e.time, e.actor, "job " + std::to_string(job) +
                                      " submitted twice");
        }
        break;
      case EventKind::kJobAdmit: {
        if (submitted_.count(job) == 0) {
          report(e.time, e.actor, "job " + std::to_string(job) +
                                      " admitted without a submission");
        }
        if (rejected_.count(job) != 0) {
          report(e.time, e.actor, "job " + std::to_string(job) +
                                      " admitted after being rejected");
        }
        Ledger ledger;
        ledger.admit_milli = e.b;
        if (!ledgers_.emplace(job, ledger).second) {
          report(e.time, e.actor, "job " + std::to_string(job) +
                                      " admitted twice");
        }
        break;
      }
      case EventKind::kJobReject:
        if (submitted_.count(job) == 0) {
          report(e.time, e.actor, "job " + std::to_string(job) +
                                      " rejected without a submission");
        }
        if (ledgers_.count(job) != 0) {
          report(e.time, e.actor, "job " + std::to_string(job) +
                                      " rejected after being admitted");
        }
        if (!rejected_.insert(job).second) {
          report(e.time, e.actor, "job " + std::to_string(job) +
                                      " rejected twice");
        }
        break;
      case EventKind::kJobXfer:
        if (Ledger* l = admitted(e, "transferred")) {
          ++l->xfer_count;
          l->xfer_milli += e.a;
        }
        break;
      case EventKind::kJobMerge:
        if (Ledger* l = admitted(e, "merged")) {
          ++l->merge_count;
          l->merge_milli += e.a;
        }
        break;
      case EventKind::kJobChunk:
        if (Ledger* l = admitted(e, "computed")) l->chunk_delta += e.b;
        break;
      case EventKind::kJobDone:
        if (Ledger* l = admitted(e, "declared done")) {
          if (l->done) {
            report(e.time, e.actor, "job " + std::to_string(job) +
                                        " declared done twice");
          }
          l->done = true;
        }
        break;
      default:
        break;
    }
  }

  void finish() override {
    for (const auto& [job, l] : ledgers_) {
      if (l.xfer_count != l.merge_count || l.xfer_milli != l.merge_milli) {
        report(-1, -1,
               "job " + std::to_string(job) + " transfers do not balance: " +
                   std::to_string(l.xfer_count) + " sends of " +
                   std::to_string(l.xfer_milli) + " milli-units vs " +
                   std::to_string(l.merge_count) + " merges of " +
                   std::to_string(l.merge_milli));
      }
      if (l.done && l.admit_milli + l.chunk_delta != 0) {
        report(-1, -1,
               "job " + std::to_string(job) +
                   " was declared done without draining: admitted " +
                   std::to_string(l.admit_milli) +
                   " milli-units, net compute delta " +
                   std::to_string(l.chunk_delta));
      }
    }
  }

 private:
  struct Ledger {
    std::int64_t admit_milli = 0;
    std::uint64_t xfer_count = 0;
    std::int64_t xfer_milli = 0;
    std::uint64_t merge_count = 0;
    std::int64_t merge_milli = 0;
    std::int64_t chunk_delta = 0;
    bool done = false;
  };

  /// The event's job must have an open ledger; `verb` names the activity
  /// for the two failure modes (unknown tag, activity after done).
  Ledger* admitted(const TraceEvent& e, const char* verb) {
    const auto it = ledgers_.find(e.type);
    if (it == ledgers_.end()) {
      report(e.time, e.actor, std::string("work ") + verb +
                                  " under the tag of job " +
                                  std::to_string(e.type) +
                                  ", which was never admitted");
      return nullptr;
    }
    if (it->second.done && e.kind != EventKind::kJobDone) {
      report(e.time, e.actor, std::string("work ") + verb +
                                  " under the tag of job " +
                                  std::to_string(e.type) +
                                  " after the job was declared done");
    }
    return &it->second;
  }

  const bool enabled_;
  std::set<int> submitted_;
  std::set<int> rejected_;
  std::map<int, Ledger> ledgers_;
};

}  // namespace

std::unique_ptr<Oracle> make_conservation_oracle(const OracleOptions& options) {
  return std::make_unique<ConservationOracle>(options);
}
std::unique_ptr<Oracle> make_termination_oracle(const OracleOptions& options) {
  return std::make_unique<TerminationOracle>(options);
}
std::unique_ptr<Oracle> make_btd_counter_oracle(const OracleOptions& options) {
  return std::make_unique<BtdCounterOracle>(options);
}
std::unique_ptr<Oracle> make_split_fraction_oracle(const OracleOptions& options) {
  return std::make_unique<SplitFractionOracle>(options);
}
std::unique_ptr<Oracle> make_fifo_oracle(const OracleOptions& options) {
  return std::make_unique<FifoOracle>(options);
}
std::unique_ptr<Oracle> make_membership_oracle(const OracleOptions& options) {
  return std::make_unique<MembershipOracle>(options);
}
std::unique_ptr<Oracle> make_job_conservation_oracle(
    const OracleOptions& options) {
  return std::make_unique<JobConservationOracle>(options);
}

OracleSet::OracleSet(OracleOptions options) : options_(options) {
  oracles_.push_back(make_conservation_oracle(options_));
  oracles_.push_back(make_termination_oracle(options_));
  oracles_.push_back(make_btd_counter_oracle(options_));
  oracles_.push_back(make_split_fraction_oracle(options_));
  oracles_.push_back(make_fifo_oracle(options_));
  oracles_.push_back(make_membership_oracle(options_));
  oracles_.push_back(make_job_conservation_oracle(options_));
}

OracleSet::~OracleSet() = default;

void OracleSet::record(const trace::TraceEvent& e) {
  for (const auto& oracle : oracles_) oracle->on_event(e);
}

void OracleSet::finish() {
  for (const auto& oracle : oracles_) oracle->finish();
}

std::vector<Violation> OracleSet::violations() const {
  std::vector<Violation> all;
  for (const auto& oracle : oracles_) {
    const auto& v = oracle->violations();
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

}  // namespace olb::check
