#include "check/trace_merge.hpp"

#include <cstddef>
#include <unordered_set>

namespace olb::check {

std::vector<trace::TraceEvent> merge_causal(
    std::span<const std::vector<trace::TraceEvent>> streams) {
  // Ids some stream sends: only deliveries of these can be held back; a
  // delivery with no send anywhere must flow through for the conservation
  // oracle to flag.
  std::unordered_set<std::int64_t> sent_somewhere;
  std::size_t total = 0;
  for (const auto& stream : streams) {
    total += stream.size();
    for (const trace::TraceEvent& e : stream) {
      if (e.kind == trace::EventKind::kMsgSend) sent_somewhere.insert(e.a);
    }
  }

  std::vector<std::size_t> head(streams.size(), 0);
  std::unordered_set<std::int64_t> emitted_sends;
  std::vector<trace::TraceEvent> out;
  out.reserve(total);

  while (out.size() < total) {
    // Scan the stream heads, tracking the earliest ready head and — as the
    // corrupt-trace fallback — the earliest causally blocked one. Streams
    // are scanned in index order and compared with strict <, so ties break
    // by stream index and the merge is deterministic.
    int ready = -1;
    int blocked = -1;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (head[i] >= streams[i].size()) continue;
      const trace::TraceEvent& e = streams[i][head[i]];
      const bool held = e.kind == trace::EventKind::kMsgDeliver &&
                        sent_somewhere.contains(e.a) &&
                        !emitted_sends.contains(e.a);
      int& slot = held ? blocked : ready;
      if (slot < 0 ||
          e.time < streams[static_cast<std::size_t>(slot)]
                       [head[static_cast<std::size_t>(slot)]]
                           .time) {
        slot = static_cast<int>(i);
      }
    }
    // Ranks have no common clock, so a blocked delivery cannot cyclically
    // block the stream holding its send in a faithful trace (real time
    // orders send before delivery within each pair). If every head is
    // blocked anyway the input is corrupt; emit the earliest blocked head
    // rather than deadlock — the oracles will report it.
    const auto pick = static_cast<std::size_t>(ready >= 0 ? ready : blocked);
    const trace::TraceEvent& e = streams[pick][head[pick]++];
    if (e.kind == trace::EventKind::kMsgSend) emitted_sends.insert(e.a);
    out.push_back(e);
  }
  return out;
}

}  // namespace olb::check
