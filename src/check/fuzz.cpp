#include "check/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "bb/bb_work.hpp"
#include "overlay/tree_overlay.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "uts/uts_work.hpp"

namespace olb::check {
namespace {

// Fuzzed workloads are deliberately small: a case must run in well under a
// second so the sweep covers many tuples, and small trees make shrunk
// repros fast to replay. Four shapes each so workload_id changes the
// splitting behaviour, not just the seed.
struct UtsSpec {
  int b0;
  double q;
  std::uint32_t root_seed;
};
constexpr UtsSpec kUtsSpecs[kNumWorkloads] = {
    {150, 0.48, 19}, {200, 0.47, 91}, {500, 0.49, 7}, {80, 0.44, 3}};

struct BbSpec {
  int instance;
  int jobs;
  int machines;
};
constexpr BbSpec kBbSpecs[kNumWorkloads] = {
    {0, 8, 5}, {1, 8, 5}, {2, 9, 5}, {3, 8, 6}};

bool needs_interval(lb::Strategy s) {
  return s == lb::Strategy::kMW || s == lb::Strategy::kAHMW;
}

/// How many crashes the strategy survives at this cluster size.
int max_crashes(const FuzzCase& c) {
  if (c.strategy == lb::Strategy::kMW) return std::max(0, c.peers - 2);
  return std::max(0, c.peers - 1);
}

/// Draws up to `want` distinct strategy-legal crash victims. Bounded
/// redraw: an illegal or repeated draw is retried a fixed number of times
/// and then dropped, so the plan may end up with fewer crashes (still a
/// valid plan) but victim selection stays a pure function of the RNG.
std::vector<int> draw_victims(const FuzzCase& c, int want, Xoshiro256& rng) {
  want = std::min(want, max_crashes(c));
  std::vector<int> out;
  if (want <= 0) return out;
  std::unique_ptr<overlay::TreeOverlay> hierarchy;
  if (c.strategy == lb::Strategy::kAHMW) {
    hierarchy = std::make_unique<overlay::TreeOverlay>(
        overlay::TreeOverlay::deterministic(c.peers, c.dmax));
  }
  const int rws_init = c.strategy == lb::Strategy::kRWS
                           ? lb::rws_initiator(c.seed, c.peers)
                           : -1;
  auto legal = [&](int p) {
    if (c.strategy == lb::Strategy::kRWS) return p != rws_init;
    if (p == 0) return false;  // overlay root / MW master / AHMW root
    if (hierarchy != nullptr) return hierarchy->children(p).empty();
    return true;
  };
  for (int i = 0; i < want; ++i) {
    for (int tries = 0; tries < 64; ++tries) {
      const int p =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.peers)));
      if (!legal(p)) continue;
      if (std::find(out.begin(), out.end(), p) != out.end()) continue;
      out.push_back(p);
      break;
    }
  }
  return out;
}

sim::Time random_time(Xoshiro256& rng, sim::Time from, sim::Time to) {
  return from + static_cast<sim::Time>(
                    rng.below(static_cast<std::uint64_t>(to - from)));
}

}  // namespace

std::string format_case(const FuzzCase& c) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "strategy=%s peers=%d dmax=%d workload=%d seed=%llu fault=%d "
                "sched=%llu churn=%d jobs=%d",
                lb::strategy_name(c.strategy), c.peers, c.dmax, c.workload_id,
                static_cast<unsigned long long>(c.seed), c.fault_id,
                static_cast<unsigned long long>(c.sched_seed), c.churn_id,
                c.jobs_id);
  return buf;
}

bool parse_case(std::string_view text, FuzzCase* out) {
  FuzzCase c;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    std::size_t end = pos;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    const std::string_view token = text.substr(pos, end - pos);
    pos = end;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (value.empty()) return false;
    if (key == "strategy") {
      if (!lb::strategy_from_name(value, &c.strategy)) return false;
      continue;
    }
    std::uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc{} || p != value.data() + value.size()) return false;
    if (key == "seed") {
      c.seed = v;
    } else if (key == "sched") {
      c.sched_seed = v;
    } else if (v > 1024) {
      return false;  // every remaining key is a small int
    } else if (key == "peers") {
      c.peers = static_cast<int>(v);
    } else if (key == "dmax") {
      c.dmax = static_cast<int>(v);
    } else if (key == "workload") {
      c.workload_id = static_cast<int>(v);
    } else if (key == "fault") {
      c.fault_id = static_cast<int>(v);
    } else if (key == "churn") {
      c.churn_id = static_cast<int>(v);
    } else if (key == "jobs") {
      c.jobs_id = static_cast<int>(v);
    } else {
      return false;
    }
  }
  if (c.peers < 1 || c.peers > 1024) return false;
  if (c.peers < 2 && c.strategy == lb::Strategy::kMW) return false;
  if (c.dmax < 1) return false;
  if (c.workload_id < 0 || c.workload_id >= kNumWorkloads) return false;
  if (c.fault_id < 0 || c.fault_id >= kNumFaultPlans) return false;
  if (c.churn_id < 0 || c.churn_id >= kNumChurnPlans) return false;
  // Membership is an overlay feature, and churn + faults is rejected by
  // validate_churn — keep the repro space identical to the legal space.
  if (c.churn_id != 0 &&
      (c.fault_id != 0 || !lb::strategy_is_overlay(c.strategy))) {
    return false;
  }
  if (c.jobs_id < 0 || c.jobs_id >= kNumJobPlans) return false;
  // Service mode is overlay-only and fault/churn-free (validate_service),
  // and run_service does not apply schedule perturbation — reject tuples
  // that would silently drop one of their dimensions.
  if (c.jobs_id != 0 &&
      (c.fault_id != 0 || c.churn_id != 0 || c.sched_seed != 0 ||
       !lb::strategy_is_overlay(c.strategy))) {
    return false;
  }
  *out = c;
  return true;
}

std::unique_ptr<lb::Workload> make_case_workload(const FuzzCase& c) {
  OLB_CHECK(c.workload_id >= 0 && c.workload_id < kNumWorkloads);
  if (needs_interval(c.strategy)) {
    const BbSpec& spec = kBbSpecs[c.workload_id];
    return std::make_unique<bb::BBWorkload>(
        bb::FlowshopInstance::ta20x20_scaled(spec.instance, spec.jobs,
                                             spec.machines),
        bb::BoundKind::kOneMachine, bb::CostModel{});
  }
  const UtsSpec& spec = kUtsSpecs[c.workload_id];
  uts::Params params;
  params.shape = uts::TreeShape::kBinomial;
  params.hash = uts::HashMode::kFast;
  params.b0 = spec.b0;
  params.q = spec.q;
  params.m = 2;
  params.root_seed = spec.root_seed;
  return std::make_unique<uts::UtsWorkload>(params, uts::CostModel{});
}

lb::SequentialMetrics case_reference(const FuzzCase& c) {
  const auto workload = make_case_workload(c);
  return lb::run_sequential(*workload);
}

sim::FaultPlan make_case_faults(const FuzzCase& c) {
  sim::FaultPlan plan;
  if (c.fault_id == 0) return plan;
  plan.salt = static_cast<std::uint64_t>(c.fault_id);
  // Victim/time selection keyed by (seed, fault_id) only: the plan is a
  // pure function of the case, so a printed repro rebuilds it exactly.
  Xoshiro256 rng(mix64(c.seed ^ 0x66757a7aull) ^
                 mix64(static_cast<std::uint64_t>(c.fault_id)));
  const sim::Time crash_from = sim::milliseconds(1);
  const sim::Time crash_to = sim::milliseconds(20);
  switch (c.fault_id) {
    case 1:
      plan.link.drop_prob = 0.02;
      break;
    case 2:
      plan.link.dup_prob = 0.02;
      break;
    case 3:
      plan.link.spike_prob = 0.05;
      break;
    case 4:
      for (int v : draw_victims(c, 1, rng)) {
        plan.add_crash(v, random_time(rng, crash_from, crash_to));
      }
      break;
    case 5:
      for (int v : draw_victims(c, 2, rng)) {
        plan.add_crash(v, random_time(rng, crash_from, crash_to));
      }
      break;
    case 6:
      plan.add_stall(
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.peers))),
          random_time(rng, sim::milliseconds(1), sim::milliseconds(10)),
          sim::milliseconds(5));
      break;
    default:  // 7: everything at once, at lower rates
      plan.link.drop_prob = 0.01;
      plan.link.spike_prob = 0.02;
      for (int v : draw_victims(c, 1, rng)) {
        plan.add_crash(v, random_time(rng, crash_from, crash_to));
      }
      plan.add_stall(
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.peers))),
          random_time(rng, sim::milliseconds(1), sim::milliseconds(10)),
          sim::milliseconds(5));
      break;
  }
  return plan;
}

lb::ChurnPlan make_case_churn(const FuzzCase& c) {
  if (c.churn_id == 0) return {};
  OLB_CHECK(c.churn_id > 0 && c.churn_id < kNumChurnPlans);
  // Wanted (joins, leaves) per plan id, clamped to what the cluster admits
  // (joins < peers, leaves < initial members) so the plan stays legal at any
  // peer count the shrinker reaches; a cluster too small to churn at all
  // degenerates to a disabled plan.
  struct Want {
    int joins, leaves;
  };
  constexpr Want kWant[kNumChurnPlans] = {{0, 0}, {1, 0}, {0, 1},
                                          {1, 1}, {3, 1}, {4, 3}};
  const Want want = kWant[c.churn_id];
  const int joins = std::min(want.joins, c.peers - 1);
  const int initial = c.peers - joins;
  const int leaves = std::min(want.leaves, initial - 1);
  if (joins == 0 && leaves == 0) return {};
  // Keyed by (seed, churn_id) only — a printed repro rebuilds it exactly.
  return lb::make_random_churn(
      joins, leaves, c.peers, sim::milliseconds(1), sim::milliseconds(20),
      mix64(c.seed ^ 0x63687572ull) ^
          mix64(static_cast<std::uint64_t>(c.churn_id)));
}

lb::RunConfig make_case_config(const FuzzCase& c) {
  lb::RunConfig config;
  config.strategy = c.strategy;
  config.num_peers = c.peers;
  config.dmax = c.dmax;
  config.seed = c.seed;
  config.net = lb::paper_network(c.peers);
  // Tight watchdogs: a correct fuzz-sized run quiesces in simulated
  // milliseconds; a stuck one must fail fast instead of eating the sweep's
  // wall-clock budget.
  config.limits.time_limit = sim::seconds(5.0);
  config.limits.event_limit = 30'000'000;
  config.faults = make_case_faults(c);
  config.churn = make_case_churn(c);
  if (c.fault_id == 0 && c.sched_seed == 0) {
    // The baseline slice of the population runs on reorder-free links, so
    // the strict per-link FIFO and BTD counter-monotonicity oracles (which
    // need that guarantee) stay exercised by every sweep.
    config.net.latency_jitter = 0;
  }
  if (c.sched_seed != 0) {
    config.perturb.seed = c.sched_seed;
    config.perturb.shuffle_ties = true;
    config.perturb.extra_jitter = sim::microseconds(20);
  }
  return config;
}

svc::ServiceConfig make_case_service(const FuzzCase& c) {
  OLB_CHECK(c.jobs_id > 0 && c.jobs_id < kNumJobPlans);
  svc::ServiceConfig sc;
  sc.run = make_case_config(c);

  // All plans reuse the case's UTS shape, so workload_id still matters in
  // job cases; horizons are short (~40 ms, a handful of jobs) to keep one
  // case well under a second including its per-job sequential references.
  const UtsSpec& spec = kUtsSpecs[c.workload_id];
  auto uts_class = [&](svc::ArrivalKind kind, double rate) {
    svc::JobClass cls;
    cls.kind = svc::JobClass::Kind::kUts;
    cls.arrivals.kind = kind;
    cls.arrivals.rate_per_sec = rate;
    cls.arrivals.horizon = sim::milliseconds(40);
    cls.arrivals.on_period = sim::milliseconds(8);
    cls.arrivals.off_period = sim::milliseconds(8);
    cls.uts.shape = uts::TreeShape::kBinomial;
    cls.uts.hash = uts::HashMode::kFast;
    cls.uts.b0 = spec.b0;
    cls.uts.q = spec.q;
    cls.uts.m = 2;
    cls.uts.root_seed = spec.root_seed;
    return cls;
  };
  switch (c.jobs_id) {
    case 1:  // one class, steady stream, modest queue
      sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 120.0));
      sc.admission.max_in_service = 2;
      sc.admission.queue_bound = 2;
      break;
    case 2:  // steady high class over a bursty low class, shed-prone queue
      sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 80.0));
      sc.classes.push_back(uts_class(svc::ArrivalKind::kBursty, 200.0));
      sc.admission.max_in_service = 2;
      sc.admission.queue_bound = 1;
      break;
    default: {  // 3: UTS + flowshop B&B under a diurnal ramp
      sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 80.0));
      svc::JobClass bnb;
      bnb.kind = svc::JobClass::Kind::kFlowshop;
      bnb.arrivals.kind = svc::ArrivalKind::kDiurnal;
      bnb.arrivals.rate_per_sec = 120.0;
      bnb.arrivals.horizon = sim::milliseconds(40);
      bnb.fs_jobs = 6;
      bnb.fs_machines = 3;
      bnb.fs_seed = 1 + c.workload_id;
      sc.classes.push_back(bnb);
      sc.admission.max_in_service = 3;
      sc.admission.queue_bound = 4;
      break;
    }
  }
  return sc;
}

namespace {

/// Service-mode counterpart of run_case: runs the job plan with every
/// oracle armed (jobs = true), then checks the end-of-run job properties —
/// completion, admission bounds, and each job's exact unit count / optimum
/// against its own sequential reference.
ConformanceReport run_job_case(const FuzzCase& c, trace::TraceSink* tracer) {
  svc::ServiceConfig sc = make_case_service(c);
  OracleOptions options = oracle_options_for(sc.run);
  options.jobs = true;
  OracleSet oracles(options);
  trace::TeeSink tee(tracer, &oracles);
  sc.run.tracer = &tee;

  ConformanceReport report;
  const svc::ServiceMetrics m = svc::run_service(sc);
  oracles.finish();
  report.violations = oracles.violations();
  report.metrics.ok = m.ok;
  auto add = [&](std::string detail) {
    report.violations.push_back(
        Violation{"job_sweep", std::move(detail), -1, -1});
  };
  if (!m.ok) {
    add("service run did not complete every admitted job");
    return report;  // the checks below assume a completed run
  }
  if (m.peak_pending > sc.admission.queue_bound) {
    add("pending queue exceeded its bound: peak " +
        std::to_string(m.peak_pending) + " vs bound " +
        std::to_string(sc.admission.queue_bound));
  }
  if (m.bad_rejects != 0) {
    add(std::to_string(m.bad_rejects) + " jobs shed while the queue had room");
  }
  for (const svc::JobRecord& rec : m.jobs) {
    if (rec.rejected) {
      if (rec.units != 0) {
        add("rejected job " + std::to_string(rec.job) + " still processed " +
            std::to_string(rec.units) + " units");
      }
      continue;
    }
    if (rec.expected_bound == lb::kNoBound &&
        rec.units != rec.expected_units) {
      add("job " + std::to_string(rec.job) + " counted " +
          std::to_string(rec.units) + " units, sequential reference " +
          std::to_string(rec.expected_units));
    }
    if (rec.bound != rec.expected_bound) {
      add("job " + std::to_string(rec.job) + " found bound " +
          std::to_string(rec.bound) + ", sequential reference " +
          std::to_string(rec.expected_bound));
    }
  }
  return report;
}

}  // namespace

ConformanceReport run_case(const FuzzCase& c, const lb::PlantedBug& plant,
                           trace::TraceSink* tracer) {
  if (c.jobs_id != 0) {
    // Planted bugs mutate the single-job protocol paths (validate_service
    // rejects them), so job cases run the service sweep unplanted.
    return run_job_case(c, tracer);
  }
  const auto workload = make_case_workload(c);
  lb::RunConfig config = make_case_config(c);
  config.plant = plant;
  config.tracer = tracer;
  return run_conformance(*workload, config, case_reference(c));
}

ShrinkResult shrink_case(const FuzzCase& failing, const lb::PlantedBug& plant) {
  ShrinkResult result;
  result.minimal = failing;
  auto still_fails = [&](const FuzzCase& c) {
    ++result.attempts;
    return !run_case(c, plant).passed();
  };
  bool progress = true;
  while (progress) {
    progress = false;
    const FuzzCase base = result.minimal;
    std::vector<FuzzCase> candidates;
    auto push = [&](auto mutate) {
      FuzzCase c = base;
      mutate(c);
      candidates.push_back(c);
    };
    if (base.fault_id != 0) push([](FuzzCase& c) { c.fault_id = 0; });
    if (base.churn_id != 0) push([](FuzzCase& c) { c.churn_id = 0; });
    if (base.jobs_id != 0) push([](FuzzCase& c) { c.jobs_id = 0; });
    if (base.sched_seed != 0) push([](FuzzCase& c) { c.sched_seed = 0; });
    if (base.peers > 2) {
      push([](FuzzCase& c) { c.peers = std::max(2, c.peers / 2); });
      push([](FuzzCase& c) { c.peers -= 1; });
    }
    const int dmax_floor = needs_interval(base.strategy) ? 2 : 1;
    if (base.dmax > dmax_floor) {
      push([&](FuzzCase& c) { c.dmax = std::max(dmax_floor, c.dmax / 2); });
    }
    if (base.workload_id != 0) push([](FuzzCase& c) { c.workload_id = 0; });
    if (base.seed != 1) push([](FuzzCase& c) { c.seed = 1; });
    for (const FuzzCase& candidate : candidates) {
      if (still_fails(candidate)) {
        result.minimal = candidate;
        progress = true;
        break;  // restart the candidate list from the smaller case
      }
    }
  }
  return result;
}

FuzzCase random_case(std::uint64_t base_seed, std::uint64_t index,
                     const std::vector<lb::Strategy>& allowed) {
  OLB_CHECK(!allowed.empty());
  Xoshiro256 rng(mix64(base_seed) ^ mix64(index + 0x636173ull));
  FuzzCase c;
  c.strategy = allowed[rng.below(allowed.size())];
  c.peers = static_cast<int>(2 + rng.below(19));  // [2, 20]
  constexpr int kDmaxChoices[] = {1, 2, 3, 4, 10};
  c.dmax = kDmaxChoices[rng.below(5)];
  if (needs_interval(c.strategy)) c.dmax = std::max(c.dmax, 2);
  c.workload_id = static_cast<int>(rng.below(kNumWorkloads));
  c.seed = 1 + rng.below(1'000'000);
  c.fault_id = static_cast<int>(rng.below(kNumFaultPlans));
  // A quarter of cases run the unperturbed schedule — the byte-identity
  // baseline must stay in the swept population, not just in unit tests.
  c.sched_seed = rng.below(4) == 0 ? 0 : 1 + rng.below(1'000'000);
  // Half the fault-free overlay cases churn: membership is the newest
  // protocol surface, and validate_churn makes it mutually exclusive with
  // fault plans, so only that slice of the population can carry it.
  if (c.fault_id == 0 && lb::strategy_is_overlay(c.strategy)) {
    c.churn_id = rng.below(2) == 0
                     ? 0
                     : static_cast<int>(1 + rng.below(kNumChurnPlans - 1));
  }
  // A slice of the fault-free, unperturbed, churn-free overlay cases runs
  // multi-job service mode, so the job layer rides every sweep without
  // displacing much of the classic population.
  if (c.fault_id == 0 && c.churn_id == 0 && c.sched_seed == 0 &&
      lb::strategy_is_overlay(c.strategy)) {
    c.jobs_id = rng.below(2) == 0
                    ? 0
                    : static_cast<int>(1 + rng.below(kNumJobPlans - 1));
  }
  return c;
}

}  // namespace olb::check
