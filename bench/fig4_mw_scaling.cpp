// Fig. 4 — execution time of BTD vs Master-Worker as the cluster grows from
// 200 to 1000 peers, on the two "critical" instances Ta21s and Ta23s. The
// master's per-message service time makes MW a queueing hot spot; beyond a
// few hundred peers its execution time stops improving and then worsens,
// while the fully distributed BTD keeps scaling.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags,
                   {.peers = nullptr, .instance = false});
  flags.define("scales", "200,400,600,800,1000", "peer counts")
      .define("jobs21", std::to_string(Defaults::kBigJobs), "jobs for Ta21s")
      .define("jobs23", std::to_string(Defaults::kBig23Jobs), "jobs for Ta23s")
      .define("machines", std::to_string(Defaults::kBigMachines), "flowshop machines");
  define_trace_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = parse_run_flags(flags).seed;
  const int machines = static_cast<int>(flags.get_int("machines"));

  print_preamble("Fig 4: BTD vs MW scaling on Ta21s / Ta23s",
                 "Ta21s at " + flags.get("jobs21") + " jobs, Ta23s at " +
                     flags.get("jobs23") + " jobs (sizes chosen so both are "
                     "large enough for 1000 peers)");

  // The queueing-delay columns make the mechanism behind the figure visible:
  // MW's master inbox delay explodes with n while BTD's stays flat.
  Table table({"n", "BTD_Ta21s", "MW_Ta21s", "BTD_Ta23s", "MW_Ta23s",
               "BTD21_qmax_ms", "MW21_qmax_ms"});
  double worst_mw_exec = -1.0;
  lb::RunConfig worst_mw_config;
  int worst_mw_jobs = 0;
  for (std::int64_t n : flags.get_int_list("scales")) {
    std::vector<std::string> row = {Table::cell(n)};
    std::vector<std::string> qd_cells;
    for (int which = 0; which < 2; ++which) {
      const int idx = which == 0 ? 0 : 2;
      const int jobs = static_cast<int>(
          flags.get_int(which == 0 ? "jobs21" : "jobs23"));
      for (auto strategy : {lb::Strategy::kOverlayBTD, lb::Strategy::kMW}) {
        auto workload = make_bb(idx, jobs, machines);
        const auto config = bb_config(strategy, static_cast<int>(n), seed);
        const auto metrics = run_checked(*workload, config, "fig4");
        row.push_back(Table::cell(metrics.exec_seconds, 4));
        if (which == 0) {
          qd_cells.push_back(Table::cell(metrics.queueing_delay_max * 1e3, 3));
        }
        if (strategy == lb::Strategy::kMW &&
            metrics.exec_seconds > worst_mw_exec) {
          worst_mw_exec = metrics.exec_seconds;
          worst_mw_config = config;
          worst_mw_jobs = jobs;
        }
      }
    }
    // Reorder: BTD21, MW21, BTD23, MW23 already in that order.
    for (auto& cell : qd_cells) row.push_back(std::move(cell));
    table.add_row(std::move(row));
  }
  if (flags.get_bool("csv")) table.print_csv(std::cout); else table.print(std::cout);
  std::printf("\n# Expected shape (paper): MW stops improving past ~600 peers "
              "(master congestion) while BTD keeps decreasing.\n");
  if (worst_mw_exec >= 0.0) {
    auto workload = make_bb(0, worst_mw_jobs, machines);
    dump_trace_if_requested(flags, *workload, worst_mw_config, "fig4 worst MW run");
  }
  return 0;
}
