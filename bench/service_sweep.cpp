// Service sweep — load-balancing-as-a-service under rising offered load:
// one shared overlay fleet multiplexes a stream of UTS and flowshop B&B
// jobs from three priority classes (steady Poisson, bursty on/off, diurnal
// ramp) while the gate's admission control (bounded pending queue, shed on
// overload) protects the fleet. The ladder sweeps a load multiplier over
// the base arrival rates up to saturation and reports per-class sojourn
// and queueing-delay percentiles.
//
// Correctness is load-bearing here, not a side note: every cell runs with
// the full oracle set attached (job-conservation included) on both the
// simulator and the threads backend, every job's exact unit count / B&B
// optimum is checked against its own sequential reference, and the
// admission invariants (queue never exceeds its bound, sheds only when
// full) abort the sweep on violation. --backend=threads is the CI
// service-smoke entry point.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "check/conformance.hpp"
#include "svc/service.hpp"
#include "trace/export.hpp"

using namespace olb;
using namespace olb::bench;

namespace {

const char* kind_name(svc::JobClass::Kind k) {
  return k == svc::JobClass::Kind::kUts ? "UTS" : "B&B";
}

/// The three-class service mix of one ladder cell. Base rates are scaled
/// by the cell's load multiplier; everything else is pinned by flags.
svc::ServiceConfig build_service(const Flags& flags, const RunFlags& rf,
                                 lb::Strategy strategy, double load) {
  svc::ServiceConfig sc;
  sc.run = uts_config(strategy, rf.peers, rf.seed);
  sc.run.metrics = metrics_hub();
  sc.admission.max_in_service =
      static_cast<std::size_t>(flags.get_int("slots"));
  sc.admission.queue_bound = static_cast<std::size_t>(flags.get_int("queue"));
  sc.wave_interval =
      static_cast<sim::Time>(flags.get_double("wave-ms") * 1e6);
  const auto horizon =
      static_cast<sim::Time>(flags.get_double("horizon-ms") * 1e6);
  const int b0 = static_cast<int>(flags.get_int("uts_b0"));

  auto uts_class = [&](svc::ArrivalKind kind, double rate) {
    svc::JobClass cls;
    cls.kind = svc::JobClass::Kind::kUts;
    cls.arrivals.kind = kind;
    cls.arrivals.rate_per_sec = rate * load;
    cls.arrivals.horizon = horizon;
    cls.arrivals.on_period = sim::milliseconds(20);
    cls.arrivals.off_period = sim::milliseconds(20);
    cls.uts.shape = uts::TreeShape::kBinomial;
    cls.uts.hash = uts::HashMode::kFast;
    cls.uts.b0 = b0;
    cls.uts.q = 0.48;
    cls.uts.m = 2;
    cls.uts.root_seed = 19;
    return cls;
  };
  // Class 0 (highest priority): steady interactive stream. Class 1: the
  // same job shape arriving in bursts. Class 2 (lowest): B&B batch jobs
  // whose rate ramps diurnally to twice the mean by the horizon.
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 40.0));
  sc.classes.push_back(uts_class(svc::ArrivalKind::kBursty, 80.0));
  svc::JobClass batch;
  batch.kind = svc::JobClass::Kind::kFlowshop;
  batch.arrivals.kind = svc::ArrivalKind::kDiurnal;
  batch.arrivals.rate_per_sec = 40.0 * load;
  batch.arrivals.horizon = horizon;
  batch.fs_jobs = 7;
  batch.fs_machines = 4;
  batch.fs_seed = 3;
  sc.classes.push_back(batch);
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags, {.peers = "32", .instance = false});
  flags.define("strategy", "btd", "overlay strategy of the shared fleet")
      .define("loads", "0.5,1,2,4,8",
              "comma-separated offered-load multipliers on the base rates")
      .define("horizon-ms", "120", "arrival horizon per class (ms)")
      .define("slots", "3", "jobs in service concurrently")
      .define("queue", "6", "pending-queue bound; arrivals beyond it shed")
      .define("wave-ms", "2", "per-job accounting-wave cadence (ms)")
      .define("uts_b0", "150", "root branching factor of the UTS job shape")
      .define("trace", "",
              "append every cell's merged event timeline to this NDJSON path "
              "(written cell by cell, so a FATAL keeps the failing cell)")
      .define("json", "",
              "also write the per-class latency table as JSON (the "
              "BENCH_runtime.json service section)");
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const lb::Strategy strategy = parse_strategy_flag(flags, "strategy");
  if (!lb::strategy_is_overlay(strategy)) {
    std::fprintf(stderr, "FATAL: service mode needs an overlay strategy\n");
    return 1;
  }
  if (rf.backend != lb::Backend::kSim && rf.backend != lb::Backend::kThreads) {
    std::fprintf(stderr, "FATAL: service mode runs on sim or threads only\n");
    return 1;
  }

  print_preamble("Service sweep: multi-job ingest with admission control",
                 "three priority classes share one overlay fleet; all "
                 "oracles armed; exact per-job counts/optima required");

  const std::string trace_path = flags.get("trace");
  std::ofstream trace_out;
  if (!trace_path.empty()) {
    trace_out = open_output_file(trace_path, "service trace");
  }

  Table table({"load", "class", "kind", "arrivals", "admitted", "rejected",
               "soj_p50_ms", "soj_p99_ms", "queue_p50_ms", "queue_p99_ms",
               "exec_sec", "checked"});
  std::vector<std::string> json_rows;
  for (double load : parse_double_list(flags.get("loads"))) {
    svc::ServiceConfig sc = build_service(flags, rf, strategy, load);

    check::OracleOptions options = check::oracle_options_for(sc.run);
    options.jobs = true;
    check::OracleSet oracles(options);
    trace::VectorTracer capture;
    trace::TeeSink tee(trace_path.empty() ? nullptr : &capture, &oracles);
    sc.run.tracer = &tee;

    const svc::ServiceMetrics m = svc::run_service(sc);
    if (trace_out.is_open()) {
      trace::write_ndjson(trace_out, capture.events());
      trace_out.flush();
    }
    oracles.finish();
    for (const check::Violation& v : oracles.violations()) {
      std::fprintf(stderr, "FATAL: %s\n", check::to_string(v).c_str());
    }
    if (!oracles.violations().empty()) return 1;
    if (!m.ok) {
      std::fprintf(stderr,
                   "FATAL: load %.2f did not complete every admitted job\n",
                   load);
      return 1;
    }
    if (m.peak_pending > sc.admission.queue_bound || m.bad_rejects != 0) {
      std::fprintf(stderr,
                   "FATAL: admission broke its bounds (peak %zu, bound %zu, "
                   "bad rejects %llu)\n",
                   m.peak_pending, sc.admission.queue_bound,
                   static_cast<unsigned long long>(m.bad_rejects));
      return 1;
    }
    for (const svc::JobRecord& rec : m.jobs) {
      if (rec.rejected) continue;
      const bool counting = rec.expected_bound == lb::kNoBound;
      if ((counting && rec.units != rec.expected_units) ||
          rec.bound != rec.expected_bound) {
        std::fprintf(stderr,
                     "FATAL: job %llu diverged from its sequential reference "
                     "(units %llu vs %llu, bound %lld vs %lld)\n",
                     static_cast<unsigned long long>(rec.job),
                     static_cast<unsigned long long>(rec.units),
                     static_cast<unsigned long long>(rec.expected_units),
                     static_cast<long long>(rec.bound),
                     static_cast<long long>(rec.expected_bound));
        return 1;
      }
    }

    for (std::size_t c = 0; c < sc.classes.size(); ++c) {
      std::uint64_t arrivals = 0, admitted = 0, rejected = 0;
      std::vector<double> sojourn_ms, queueing_ms;
      for (const svc::JobRecord& rec : m.jobs) {
        if (rec.job_class != static_cast<int>(c)) continue;
        ++arrivals;
        if (rec.rejected) {
          ++rejected;
          continue;
        }
        ++admitted;
        sojourn_ms.push_back(sim::to_seconds(rec.sojourn()) * 1e3);
        queueing_ms.push_back(sim::to_seconds(rec.queueing()) * 1e3);
      }
      SortedSample soj(std::move(sojourn_ms));
      SortedSample que(std::move(queueing_ms));
      auto pct = [](const SortedSample& s, double p) {
        return s.empty() ? std::string("-") : Table::cell(s.percentile(p), 3);
      };
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "    {\"load\": %g, \"class\": %zu, \"kind\": \"%s\", "
          "\"arrivals\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
          "\"sojourn_p50_ms\": %.3f, \"sojourn_p99_ms\": %.3f, "
          "\"queueing_p50_ms\": %.3f, \"queueing_p99_ms\": %.3f, "
          "\"exec_s\": %.4f}",
          load, c, kind_name(sc.classes[c].kind),
          static_cast<unsigned long long>(arrivals),
          static_cast<unsigned long long>(admitted),
          static_cast<unsigned long long>(rejected), soj.percentile(0.5),
          soj.percentile(0.99), que.percentile(0.5), que.percentile(0.99),
          m.exec_seconds);
      json_rows.push_back(row);
      table.add_row({Table::cell(load, 2),
                     Table::cell(static_cast<std::uint64_t>(c)),
                     kind_name(sc.classes[c].kind), Table::cell(arrivals),
                     Table::cell(admitted), Table::cell(rejected),
                     pct(soj, 0.5), pct(soj, 0.99), pct(que, 0.5),
                     pct(que, 0.99),
                     c == 0 ? Table::cell(m.exec_seconds, 4) : std::string("-"),
                     "oracles"});
    }
  }
  if (!flags.get("json").empty()) {
    std::ofstream js = open_output_file(flags.get("json"), "service JSON");
    js << "{\n  \"experiment\": \"service_sweep\",\n"
       << "  \"strategy\": \"" << lb::strategy_name(strategy) << "\",\n"
       << "  \"backend\": \""
       << (rf.backend == lb::Backend::kSim ? "sim" : "threads") << "\",\n"
       << "  \"peers\": " << rf.peers << ",\n  \"slots\": "
       << flags.get_int("slots") << ",\n  \"queue_bound\": "
       << flags.get_int("queue") << ",\n  \"horizon_ms\": "
       << flags.get_double("horizon-ms") << ",\n  \"classes\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      js << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    js << "  ]\n}\n";
  }
  print_ladder(table, rf.csv,
               "sojourn and queueing delay rise with load, the low class "
               "first (priority inversion never starves the high class); "
               "past saturation the queue bound holds and the overflow is "
               "shed, never queued; every cell's per-job counts and optima "
               "are exact at every load.");
  return 0;
}
