// Fig. 3 — execution time of BTD (dmax=10) vs Master-Worker vs Random Work
// Stealing on the 10 scaled flowshop instances at 200 peers.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const int n = rf.peers;
  const auto seed = rf.seed;
  const int jobs = rf.jobs;
  const int machines = rf.machines;

  print_preamble("Fig 3: BTD vs RWS vs MW at 200 peers (B&B)", "");

  const lb::Strategy strategies[] = {lb::Strategy::kOverlayBTD, lb::Strategy::kRWS,
                                     lb::Strategy::kMW};
  Table table({"instance", "BTD_sec", "RWS_sec", "MW_sec", "winner"});
  double totals[3] = {0, 0, 0};
  int btd_wins = 0;
  for (int idx = 0; idx < 10; ++idx) {
    double secs[3];
    for (int s = 0; s < 3; ++s) {
      auto workload = make_bb(idx, jobs, machines);
      secs[s] = run_checked(*workload, bb_config(strategies[s], n, seed), "fig3")
                    .exec_seconds;
      totals[s] += secs[s];
    }
    const int best = secs[0] <= secs[1] && secs[0] <= secs[2] ? 0
                     : secs[1] <= secs[2]                     ? 1
                                                              : 2;
    if (best == 0) ++btd_wins;
    table.add_row({"Ta" + std::to_string(21 + idx) + "s", Table::cell(secs[0], 4),
                   Table::cell(secs[1], 4), Table::cell(secs[2], 4),
                   lb::strategy_name(strategies[best])});
  }
  table.add_row({"TOTAL", Table::cell(totals[0], 4), Table::cell(totals[1], 4),
                 Table::cell(totals[2], 4),
                 "BTD wins " + std::to_string(btd_wins) + "/10"});
  if (rf.csv) table.print_csv(std::cout); else table.print(std::cout);
  std::printf("\n# Expected shape (paper): BTD best on ~7/10 instances; MW very "
              "competitive at this scale (often beating RWS).\n");
  return 0;
}
