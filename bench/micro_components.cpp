// Component micro-benchmarks (google-benchmark): throughput of the building
// blocks the experiments rest on — UTS node expansion (both hash modes),
// SHA-1, flowshop bounding, interval exploration, the event engine, overlay
// construction and permutation (un)ranking.
#include <benchmark/benchmark.h>

#include "bb/bounds.hpp"
#include "bb/flowshop.hpp"
#include "bb/interval_bb.hpp"
#include "overlay/tree_overlay.hpp"
#include "simnet/engine.hpp"
#include "support/factorial.hpp"
#include "support/sha1.hpp"
#include "uts/uts.hpp"

namespace {

using namespace olb;

void BM_Sha1Digest64B(benchmark::State& state) {
  std::uint8_t data[64] = {42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha1Digest64B);

void BM_UtsChildExpansion(benchmark::State& state) {
  uts::Params p;
  p.hash = state.range(0) == 0 ? uts::HashMode::kFast : uts::HashMode::kSha1;
  auto node = uts::root_state(p);
  std::uint32_t i = 0;
  for (auto _ : state) {
    node = uts::child_state(p, node, i++ & 1);
    benchmark::DoNotOptimize(uts::num_children(p, node, 3));
  }
  state.SetLabel(state.range(0) == 0 ? "fast" : "sha1");
}
BENCHMARK(BM_UtsChildExpansion)->Arg(0)->Arg(1);

void BM_FlowshopBound(benchmark::State& state) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(0, 20, 20);
  std::vector<std::int64_t> completion(20, 0);
  for (int j = 0; j < 5; ++j) inst.advance(completion, j);
  std::vector<int> remaining;
  for (int j = 5; j < 20; ++j) remaining.push_back(j);
  const auto kind =
      state.range(0) == 0 ? bb::BoundKind::kOneMachine : bb::BoundKind::kTwoMachine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb::lower_bound(inst, completion, remaining, kind));
  }
  state.SetLabel(state.range(0) == 0 ? "LB1" : "LB2");
}
BENCHMARK(BM_FlowshopBound)->Arg(0)->Arg(1);

void BM_IntervalExploration(benchmark::State& state) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(0, 11, 8);
  auto shared = std::make_shared<const bb::FlowshopInstance>(inst);
  for (auto _ : state) {
    bb::IntervalExplorer explorer(shared, 0, factorial(11), bb::BoundKind::kOneMachine);
    std::int64_t ub = std::numeric_limits<std::int64_t>::max();
    const auto progress = explorer.run(10000, ub, nullptr);
    benchmark::DoNotOptimize(progress.nodes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_IntervalExploration);

void BM_PermutationRankRoundTrip(benchmark::State& state) {
  std::uint64_t rank = 123456789;
  for (auto _ : state) {
    const auto perm = permutation_unrank(rank % factorial(12), 12);
    rank += permutation_rank(perm) + 1;
    benchmark::DoNotOptimize(rank);
  }
}
BENCHMARK(BM_PermutationRankRoundTrip);

/// Ping-pong actors measuring raw engine event throughput.
class Pinger : public sim::Actor {
 public:
  explicit Pinger(int peer) : peer_(peer) {}

 protected:
  void on_start() override {
    if (id() == 0) send(peer_, sim::Message(1));
  }
  void on_message(sim::Message m) override { send(m.src, sim::Message(1)); }

 private:
  int peer_;
};

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine(sim::NetworkConfig{}, 1);
    engine.add_actor(std::make_unique<Pinger>(1));
    engine.add_actor(std::make_unique<Pinger>(0));
    const auto result = engine.run(sim::kTimeMax, 100000);
    benchmark::DoNotOptimize(result.events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_OverlayConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::TreeOverlay::deterministic(n, 10).height());
  }
}
BENCHMARK(BM_OverlayConstruction)->Arg(1000)->Arg(100000);

void BM_TaillardInstanceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bb::FlowshopInstance::taillard("x", 20, 20, 479340445).p(19, 19));
  }
}
BENCHMARK(BM_TaillardInstanceGeneration);

}  // namespace

BENCHMARK_MAIN();
