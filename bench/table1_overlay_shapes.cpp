// Table I — execution time statistics (t_avg, sigma, t_max, t_min over
// `trials` seeds) of the overlay protocol under different tree shapes:
// TD with dmax in {2, 5, 10} and the randomised tree TR, at n = 100 and 200
// peers, for one B&B instance (Ta21s) and one UTS binomial instance.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

namespace {

struct Shape {
  const char* label;
  lb::Strategy strategy;
  int dmax;
};

const Shape kShapes[] = {
    {"TD dmax=2", lb::Strategy::kOverlayTD, 2},
    {"TD dmax=5", lb::Strategy::kOverlayTD, 5},
    {"TD dmax=10", lb::Strategy::kOverlayTD, 10},
    {"TR", lb::Strategy::kOverlayTR, 0},
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags, {.peers = nullptr, .seed = false});
  flags.define("trials", "10", "seeds per configuration")
      .define("scales", "100,200", "comma-separated peer counts")
      .define("uts_seed", std::to_string(Defaults::kUtsBigSeed), "UTS root seed");
  if (!flags.parse(argc, argv)) return 0;
  const auto trials = static_cast<std::uint64_t>(flags.get_int("trials"));

  print_preamble("Table I: overlay shape (TD dmax / TR) vs execution time",
                 "B&B = Ta21s; UTS = binomial (b0=2000, m=2, q=0.49995)");

  Table table({"n", "overlay", "bb_tavg", "bb_sigma", "bb_tmax", "bb_tmin",
               "uts_tavg", "uts_sigma", "uts_tmax", "uts_tmin"});
  for (std::int64_t n : flags.get_int_list("scales")) {
    for (const Shape& shape : kShapes) {
      RunningStats bb_stats;
      RunningStats uts_stats;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        auto bb = make_bb(0, static_cast<int>(flags.get_int("jobs")),
                          static_cast<int>(flags.get_int("machines")));
        auto config = bb_config(shape.strategy, static_cast<int>(n), seed,
                                shape.dmax == 0 ? 10 : shape.dmax);
        bb_stats.add(run_checked(*bb, config, "table1 bb").exec_seconds);

        auto uts = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
        auto uconfig = uts_config(shape.strategy, static_cast<int>(n), seed,
                                  shape.dmax == 0 ? 10 : shape.dmax);
        uts_stats.add(run_checked(*uts, uconfig, "table1 uts").exec_seconds);
      }
      table.add_row({Table::cell(n), shape.label,
                     Table::cell(bb_stats.mean(), 4), Table::cell(bb_stats.stddev(), 4),
                     Table::cell(bb_stats.max(), 4), Table::cell(bb_stats.min(), 4),
                     Table::cell(uts_stats.mean(), 4), Table::cell(uts_stats.stddev(), 4),
                     Table::cell(uts_stats.max(), 4), Table::cell(uts_stats.min(), 4)});
    }
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::printf("\n# Expected shape (paper): time falls and sigma shrinks as dmax "
              "grows; TR is slower and noisier than TD.\n");
  return 0;
}
