// Churn sweep — elastic membership under load: dormant peers join mid-run
// (BON-style weighted attachment) and members leave gracefully (drain +
// child handover) while the overlay balances UTS and B&B work.
//
// Correctness is the point of this sweep, not speed: on the simulator every
// cell runs under the full oracle set (conservation, epoch-aware
// termination, membership life cycle) through check::run_conformance, and
// any violation aborts the sweep. UTS totals are run-invariants, so
// "explored" must be exactly 100% at every churn level; B&B must reach the
// sequential optimum. On the real-time backends (--backend=threads or a
// multi-process --backend=sockets cluster) the same exact-total checks run
// inline — that is the CI churn-smoke entry point.
//
// `--joins J --leaves L` pins a single churn level (all backends);
// otherwise `--levels` sweeps J:L pairs. Level 0:0 doubles as the
// reproducibility anchor: it must behave exactly like a run without the
// membership feature compiled in.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "check/conformance.hpp"

using namespace olb;
using namespace olb::bench;

namespace {

struct Level {
  int joins = 0;
  int leaves = 0;
};

std::vector<Level> parse_levels(const std::string& spec) {
  std::vector<Level> levels;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "FATAL: --levels items are J:L pairs, got '%s'\n",
                   item.c_str());
      std::abort();
    }
    levels.push_back(Level{std::atoi(item.substr(0, colon).c_str()),
                           std::atoi(item.substr(colon + 1).c_str())});
    pos = comma + 1;
  }
  return levels;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags, {.peers = "32"});
  define_churn_flags(flags);
  flags.define("strategies", "td,tr,btd", "comma-separated overlay strategies")
      .define("levels", "0:0,2:1,4:2,8:4",
              "comma-separated J:L churn levels (overridden by "
              "--joins/--leaves when either is nonzero)")
      .define("uts_seed", "77", "UTS root seed")
      .define("uts_b0", "500", "UTS root branching factor")
      .define("event-limit", "60000000", "per-cell simulation event budget");
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const int n = rf.peers;
  const auto churn_salt =
      static_cast<std::uint64_t>(flags.get_int("churn-salt"));
  auto ms = [](double v) { return static_cast<sim::Time>(v * 1e6); };
  const sim::Time churn_from = ms(flags.get_double("churn-from-ms"));
  const sim::Time churn_to = ms(flags.get_double("churn-to-ms"));

  print_preamble("Churn sweep: elastic membership on the overlay",
                 "joins attach BON-style, leaves drain + hand over; "
                 "explored=100% and optimum required at every level");

  std::vector<Level> levels;
  if (flags.get_int("joins") != 0 || flags.get_int("leaves") != 0) {
    levels.push_back(Level{static_cast<int>(flags.get_int("joins")),
                           static_cast<int>(flags.get_int("leaves"))});
  } else {
    levels = parse_levels(flags.get("levels"));
  }

  const std::vector<lb::Strategy> strategies = parse_strategy_list(
      flags.get("strategies"), /*overlay_only=*/true, "strategies");

  const auto uts_seed = static_cast<std::uint32_t>(flags.get_int("uts_seed"));
  const int uts_b0 = static_cast<int>(flags.get_int("uts_b0"));
  lb::SequentialMetrics uts_seq;
  {
    auto uts = make_uts(uts_seed, uts_b0);
    uts_seq = lb::run_sequential(*uts);
  }
  lb::SequentialMetrics bb_seq;
  {
    auto bb = make_bb(0, rf.jobs, rf.machines);
    bb_seq = lb::run_sequential(*bb);
  }

  Table table({"workload", "strategy", "joins", "leaves", "exec_sec", "msgs",
               "transfers", "explored_pct", "bound", "checked"});
  for (lb::Strategy s : strategies) {
    for (const Level& level : levels) {
      for (const bool is_uts : {true, false}) {
        std::unique_ptr<lb::Workload> wl;
        lb::RunConfig config = is_uts ? uts_config(s, n, rf.seed)
                                      : bb_config(s, n, rf.seed);
        if (is_uts) {
          wl = make_uts(uts_seed, uts_b0);
        } else {
          wl = make_bb(0, rf.jobs, rf.machines);
        }
        const lb::SequentialMetrics& seq = is_uts ? uts_seq : bb_seq;
        if (level.joins > 0 || level.leaves > 0) {
          config.churn = lb::make_random_churn(level.joins, level.leaves, n,
                                               churn_from, churn_to,
                                               mix64(churn_salt ^ 0xc401));
        }
        config.limits.event_limit =
            static_cast<std::uint64_t>(flags.get_int("event-limit"));

        std::uint64_t units = 0, msgs = 0, transfers = 0;
        std::int64_t bound = lb::kNoBound;
        double exec = 0.0;
        const char* checked = "";
        if (config.backend == lb::Backend::kSim) {
          // Simulator cells run the full oracle gauntlet; a violation is a
          // protocol bug and aborts the sweep loudly.
          const check::ConformanceReport report =
              check::run_conformance(*wl, config, seq);
          if (!report.passed()) {
            for (const check::Violation& v : report.violations) {
              std::fprintf(stderr, "FATAL: %s\n", check::to_string(v).c_str());
            }
            return 1;
          }
          units = report.metrics.total_units;
          bound = report.metrics.best_bound;
          msgs = report.metrics.total_messages;
          transfers = report.metrics.work_transfers;
          exec = report.metrics.exec_seconds;
          checked = "oracles";
        } else {
          const lb::RunMetrics m = run_checked(*wl, config, "churn_sweep");
          units = m.total_units;
          bound = m.best_bound;
          msgs = m.total_messages;
          transfers = m.work_transfers;
          exec = m.exec_seconds;
          checked = "totals";
        }
        // Churn never loses work (graceful leaves drain): UTS must count
        // the whole tree, B&B must land on the sequential optimum.
        if (is_uts && units != seq.units) {
          std::fprintf(stderr,
                       "FATAL: churn run explored %llu of %llu UTS nodes\n",
                       static_cast<unsigned long long>(units),
                       static_cast<unsigned long long>(seq.units));
          return 1;
        }
        if (!is_uts && bound != seq.bound) {
          std::fprintf(stderr,
                       "FATAL: churn run found bound %lld, optimum is %lld\n",
                       static_cast<long long>(bound),
                       static_cast<long long>(seq.bound));
          return 1;
        }
        const double explored =
            100.0 * static_cast<double>(units) / static_cast<double>(seq.units);
        table.add_row({is_uts ? "UTS" : "B&B", lb::strategy_name(s),
                       Table::cell(static_cast<std::uint64_t>(level.joins)),
                       Table::cell(static_cast<std::uint64_t>(level.leaves)),
                       Table::cell(exec, 4), Table::cell(msgs),
                       Table::cell(transfers), Table::cell(explored, 2),
                       is_uts ? std::string("-") : Table::cell(bound), checked});
      }
    }
  }
  print_ladder(table, rf.csv,
               "every cell checks out exactly (100% explored, sequential "
               "optimum) at every churn level; message counts grow mildly "
               "with churn (rewire + size-delta traffic); level 0:0 is "
               "byte-identical to a churn-free run.");
  return 0;
}
