// Fault sweep — robustness of the overlay (BTD) against random work
// stealing as the network degrades: message-drop probability rises along
// one axis, the number of crashed peers along the other.
//
// The workload is UTS, whose total node count is a run-invariant, so the
// "explored" column doubles as a correctness check: a run that lost no
// in-flight work (lost_units == 0) must explore exactly 100% of the tree,
// and any shortfall is bounded by what the crashes destroyed. Execution
// time under faults includes every retransmission timeout and the
// termination-detection tail, so this sweep measures the real price of the
// recovery machinery, not just the happy path.
//
// Cells are capped by --event-limit: a protocol whose retry traffic explodes
// (RWS at high drop rates) reports DNF instead of aborting the sweep — that
// collapse is the measurement, not an error.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "simnet/faults.hpp"

using namespace olb;
using namespace olb::bench;

namespace {

/// Random crash victims that spare both peer 0 (overlay root / MW master)
/// and the RWS initiator, so one plan is valid for every swept strategy.
sim::FaultPlan crashes_for(int count, int n, std::uint64_t run_seed,
                           std::uint64_t salt) {
  const int initiator = lb::rws_initiator(run_seed, n);
  for (std::uint64_t attempt = 0;; ++attempt) {
    sim::FaultPlan plan = sim::make_random_crashes(
        count, n, sim::milliseconds(1), sim::milliseconds(20),
        mix64(salt ^ attempt * 0x9e3779b97f4a7c15ull));
    bool ok = true;
    for (const auto& c : plan.crashes) ok = ok && c.peer != initiator;
    if (ok) return plan;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags, {.peers = "64", .instance = false});
  flags.define("drops", "0,0.01,0.05,0.1,0.2",
               "comma-separated drop probabilities")
      .define("crash_counts", "0,2,4", "comma-separated crashed-peer counts")
      .define("uts_seed", "77", "UTS root seed")
      .define("uts_b0", "500", "UTS root branching factor")
      .define("event-limit", "60000000",
              "per-cell simulation event budget; exceeding it scores DNF")
      .define("fault-salt", "0", "extra key for the fault RNG stream");
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const int n = rf.peers;
  const auto salt = static_cast<std::uint64_t>(flags.get_int("fault-salt"));

  print_preamble("Fault sweep: BTD vs RWS under message loss and crashes",
                 "UTS workload; explored=100% required whenever lost=0");

  const std::vector<double> drops = parse_double_list(flags.get("drops"));

  auto uts = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")),
                      static_cast<int>(flags.get_int("uts_b0")));
  const auto seq = lb::run_sequential(*uts);

  const lb::Strategy strategies[] = {lb::Strategy::kOverlayBTD, lb::Strategy::kRWS};
  Table table({"strategy", "drop", "crashes", "exec_sec", "retries", "dropped",
               "lost_units", "explored_pct"});
  for (lb::Strategy s : strategies) {
    for (double drop : drops) {
      for (std::int64_t crash_count : flags.get_int_list("crash_counts")) {
        lb::RunConfig config = uts_config(s, n, rf.seed);
        if (crash_count > 0) {
          config.faults =
              crashes_for(static_cast<int>(crash_count), n, rf.seed, salt);
        }
        config.faults.link.drop_prob = drop;
        config.faults.link.dup_prob = drop / 2;
        config.faults.link.spike_prob = drop / 2;
        config.faults.salt = salt;
        config.limits.event_limit =
            static_cast<std::uint64_t>(flags.get_int("event-limit"));
        const auto m = lb::run_distributed(*uts, config);
        if (!m.ok) {
          // The cell exhausted its event budget before terminating: the
          // protocol is thrashing, not the simulator. Record the collapse.
          table.add_row({lb::strategy_name(s), Table::cell(drop, 2),
                         Table::cell(static_cast<std::uint64_t>(crash_count)),
                         "DNF", Table::cell(m.retries),
                         Table::cell(m.msgs_dropped),
                         Table::cell(m.work_lost_units, 1), "-"});
          continue;
        }
        const double explored =
            100.0 * static_cast<double>(m.total_units) /
            static_cast<double>(seq.units);
        if (m.work_lost_units == 0.0 && m.total_units != seq.units) {
          std::fprintf(stderr,
                       "FATAL: nothing lost but %llu != %llu nodes explored\n",
                       static_cast<unsigned long long>(m.total_units),
                       static_cast<unsigned long long>(seq.units));
          return 1;
        }
        table.add_row({lb::strategy_name(s), Table::cell(drop, 2),
                       Table::cell(static_cast<std::uint64_t>(crash_count)),
                       Table::cell(m.exec_seconds, 4), Table::cell(m.retries),
                       Table::cell(m.msgs_dropped),
                       Table::cell(m.work_lost_units, 1),
                       Table::cell(explored, 2)});
      }
    }
  }
  print_ladder(table, rf.csv,
               "BTD finishes every cell, its retries grow with the drop rate "
               "and its exec time degrades gracefully; RWS retry traffic "
               "explodes at high drop rates (DNF = event budget exhausted); "
               "crashes cost at most the victims' in-flight work.");
  return 0;
}
