// Shared-memory backend benchmark: the overlay protocol on real threads
// (runtime::run_threads) vs a raw work-stealing pool (steal::WorkStealingPool,
// the shared-memory analogue of the paper's RWS baseline) on one UTS tree,
// at 1..hardware_concurrency threads.
//
// Every run's node count is checked against the sequential traversal — the
// overlay on threads must explore exactly the tree, not approximately.
// Results (medians over --trials) go to --json as BENCH_runtime.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runtime/runtime.hpp"
#include "steal/work_stealing_pool.hpp"
#include "support/meminfo.hpp"

using namespace olb;
using namespace olb::bench;

namespace {

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Sequential traversal: the reference node count and the 1-core baseline
/// nothing can beat.
std::uint64_t sequential_nodes(lb::Workload& workload, double* wall_out) {
  auto work = workload.make_root_work();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t nodes = 0;
  while (!work->empty()) nodes += work->step(1 << 14).units_done;
  *wall_out = wall_since(t0);
  return nodes;
}

/// Raw work-stealing traversal: tasks step bounded chunks and feed the pool
/// by splitting half of their frontier off into a child task while it is
/// large enough to be worth sharing.
struct PoolTraversal {
  std::atomic<std::uint64_t>* nodes;
  std::uint64_t chunk;

  void run(steal::WorkStealingPool& pool, const std::shared_ptr<lb::Work>& w) const {
    while (!w->empty()) {
      if (w->amount() >= 16.0) {
        if (auto half = w->split(0.5)) {
          // shared_ptr only because TaskFn must be copyable; each piece
          // still has exactly one owner task.
          std::shared_ptr<lb::Work> piece(std::move(half));
          const PoolTraversal self = *this;
          pool.spawn([self, piece](steal::WorkStealingPool& p) { self.run(p, piece); });
        }
      }
      nodes->fetch_add(w->step(chunk).units_done, std::memory_order_relaxed);
    }
  }
};

std::uint64_t pool_nodes(lb::Workload& workload, unsigned threads,
                         std::uint64_t chunk, double* wall_out) {
  std::shared_ptr<lb::Work> root(workload.make_root_work());
  std::atomic<std::uint64_t> nodes{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    steal::WorkStealingPool pool(threads);
    const PoolTraversal traversal{&nodes, chunk};
    pool.spawn([&traversal, root](steal::WorkStealingPool& p) { traversal.run(p, root); });
    pool.wait_idle();
  }
  *wall_out = wall_since(t0);
  return nodes.load();
}

double median(std::vector<double>& xs) { return percentile(xs, 0.5); }

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  RunFlagSpec spec;
  spec.peers = nullptr;
  spec.instance = false;
  spec.csv = false;
  spec.backend = false;  // this bench *is* the backend comparison
  define_run_flags(flags, spec);
  flags.define("strategy", "TD", "overlay strategy (TD|TR|BTD)")
      .define("uts_seed", std::to_string(Defaults::kUtsSmallSeed), "UTS root seed")
      .define("b0", std::to_string(Defaults::kUtsB0), "UTS root branching factor")
      .define("q", std::to_string(Defaults::kUtsQ), "UTS branching probability")
      .define("threads", "", "thread counts (default: 1,2,4,.. up to cores)")
      .define("trials", "3", "runs per configuration (medians reported)")
      .define("chunk", "64", "overlay chunk size (units per mailbox poll)")
      .define("json", "BENCH_runtime.json", "result file");
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const lb::Strategy strategy = parse_strategy_flag(flags);
  OLB_CHECK_MSG(lb::strategy_is_overlay(strategy),
                "the thread backend runs overlay strategies only");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // A speedup benchmark on a single core measures only timesharing overhead:
  // every multi-thread row is meaningless. Still run (CI smoke value), but
  // warn loudly and stamp the condition into the JSON so nobody mistakes the
  // committed numbers for real scaling (that happened once — the original
  // BENCH_runtime.json was recorded on a 1-core host; see ROADMAP PR 3).
  const bool single_core = hw < 2;
  if (single_core) {
    std::fprintf(stderr,
                 "################################################################\n"
                 "# WARNING: hardware_concurrency=%u — this host cannot measure\n"
                 "# parallel speedup. All multi-thread rows below only timeshare\n"
                 "# one core; do NOT quote them as scaling numbers. The JSON is\n"
                 "# stamped with \"single_core\": true.\n"
                 "################################################################\n",
                 hw);
  }
  const int trials = static_cast<int>(flags.get_int("trials"));
  OLB_CHECK(trials >= 1);

  std::vector<unsigned> thread_counts;
  if (!flags.get("threads").empty()) {
    for (std::int64_t t : flags.get_int_list("threads")) {
      thread_counts.push_back(static_cast<unsigned>(t));
    }
  } else {
    for (unsigned t = 1; t < hw; t *= 2) thread_counts.push_back(t);
    thread_counts.push_back(hw);
  }

  print_preamble("runtime_speedup: overlay-on-threads vs raw work stealing",
                 "Real threads, real UTS work; wall-clock seconds.");
  std::printf("# hardware_concurrency=%u strategy=%s trials=%d\n\n", hw,
              lb::strategy_name(strategy), trials);

  auto make_workload = [&] {
    return make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")),
                    static_cast<int>(flags.get_int("b0")), flags.get_double("q"));
  };

  auto workload = make_workload();
  double seq_wall = 0.0;
  const std::uint64_t seq_count = sequential_nodes(*workload, &seq_wall);
  std::printf("sequential: %llu nodes in %.3fs\n\n",
              static_cast<unsigned long long>(seq_count), seq_wall);

  Table table({"threads", "overlay_done_s", "overlay_wall_s", "pool_wall_s",
               "overlay_speedup", "pool_speedup"});
  struct Row {
    unsigned threads;
    double overlay_done, overlay_wall, pool_wall;
  };
  std::vector<Row> rows;
  double overlay_base = 0.0, pool_base = 0.0;
  for (unsigned t : thread_counts) {
    std::vector<double> overlay_done, overlay_wall, pool_wall;
    for (int trial = 0; trial < trials; ++trial) {
      auto w = make_workload();
      auto config = uts_config(strategy, static_cast<int>(t),
                               rf.seed + static_cast<std::uint64_t>(trial));
      config.chunk_units = static_cast<std::uint64_t>(flags.get_int("chunk"));
      config.limits.time_limit = sim::seconds(300.0);  // wall watchdog
      const auto m = runtime::run_threads(*w, config);
      OLB_CHECK_MSG(m.ok, "overlay threads run did not terminate cleanly");
      OLB_CHECK_MSG(m.total_units == seq_count,
                    "overlay threads run lost or duplicated nodes");
      overlay_done.push_back(m.done_seconds);
      overlay_wall.push_back(m.wall_seconds);

      auto w2 = make_workload();
      double pw = 0.0;
      const std::uint64_t pool_count = pool_nodes(*w2, t, 4096, &pw);
      OLB_CHECK_MSG(pool_count == seq_count, "pool traversal lost nodes");
      pool_wall.push_back(pw);
    }
    Row row{t, median(overlay_done), median(overlay_wall), median(pool_wall)};
    if (rows.empty()) {
      overlay_base = row.overlay_done;
      pool_base = row.pool_wall;
    }
    rows.push_back(row);
    table.add_row({Table::cell(static_cast<std::int64_t>(t)),
                   Table::cell(row.overlay_done, 4), Table::cell(row.overlay_wall, 4),
                   Table::cell(row.pool_wall, 4),
                   Table::cell(overlay_base / row.overlay_done, 2),
                   Table::cell(pool_base / row.pool_wall, 2)});
  }
  table.print(std::cout);

  const std::string json_path = flags.get("json");
  if (!json_path.empty()) {
    std::ofstream out = open_output_file(json_path, "--json");
    out << "{\n  \"experiment\": \"runtime_speedup\",\n";
    out << "  \"strategy\": \"" << lb::strategy_name(strategy) << "\",\n";
    out << "  \"hardware_concurrency\": " << hw << ",\n";
    out << "  \"single_core\": " << (single_core ? "true" : "false") << ",\n";
    out << "  \"trials\": " << trials << ",\n";
    out << "  \"uts\": {\"seed\": " << flags.get_int("uts_seed")
        << ", \"b0\": " << flags.get_int("b0") << ", \"q\": " << flags.get("q")
        << ", \"nodes\": " << seq_count << "},\n";
    out << "  \"sequential_wall_s\": " << seq_wall << ",\n";
    // Provenance stamps shared with BENCH_overlay.json (docs/SCALING.md):
    // the harness-level shard setting (this bench runs the threads backend,
    // so it is informational here) and the host-side memory footprint —
    // bytes_per_peer counts a "peer" as one thread of the largest row.
    out << "  \"sim_shards\": " << rf.sim_shards << ",\n";
    const std::uint64_t rss_peak = support::peak_rss_bytes();
    const unsigned max_threads =
        thread_counts.empty() ? 1 : *std::max_element(thread_counts.begin(),
                                                      thread_counts.end());
    out << "  \"rss_peak_bytes\": " << rss_peak << ",\n";
    out << "  \"bytes_per_peer\": "
        << static_cast<double>(rss_peak) / static_cast<double>(max_threads)
        << ",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"threads\": " << r.threads
          << ", \"overlay_done_s\": " << r.overlay_done
          << ", \"overlay_wall_s\": " << r.overlay_wall
          << ", \"pool_wall_s\": " << r.pool_wall
          << ", \"overlay_speedup\": " << overlay_base / r.overlay_done
          << ", \"pool_speedup\": " << pool_base / r.pool_wall << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\n# wrote %s\n", json_path.c_str());
  }
  return 0;
}
