// Shared infrastructure for the paper-reproduction bench harnesses.
//
// Every binary in bench/ regenerates one table or figure of the paper.
// Because the substrate is a simulator (see DESIGN.md §2), workloads are
// scaled: the flowshop instances are the leading jobs x machines submatrices
// of the genuine Taillard 20x20 instances, and UTS trees are near-critical
// binomial trees of 10^6..10^8 nodes. Flags on every binary let you change
// scales, trials and instance sizes.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bb/bb_work.hpp"
#include "lb/driver.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "uts/uts_work.hpp"

namespace olb::bench {

/// Calibrated defaults (see EXPERIMENTS.md "Calibration").
struct Defaults {
  // B&B instance families.
  static constexpr int kSmallJobs = 12;     ///< Table I/II, Figs 1-3
  static constexpr int kSmallMachines = 8;
  static constexpr int kBigJobs = 13;       ///< Fig 4 / Fig 5 (Ta21s)
  static constexpr int kBigMachines = 8;
  static constexpr int kBig23Jobs = 14;     ///< Fig 4 / Fig 5 (Ta23s)

  // UTS instances (binomial, m=2, q near critical).
  static constexpr double kUtsQ = 0.49995;
  static constexpr int kUtsB0 = 2000;
  static constexpr std::uint32_t kUtsBigSeed = 8;    ///< ~18.5M nodes
  static constexpr std::uint32_t kUtsSmallSeed = 1;  ///< ~6.9M nodes

  static constexpr std::uint64_t kChunkBB = 32;
  static constexpr std::uint64_t kChunkUTS = 64;
};

/// Which of the shared run flags a binary wants, and their defaults.
/// Members set to nullptr / false suppress the corresponding flag entirely
/// (e.g. the scaling sweeps take `--scales`, not `--peers`).
struct RunFlagSpec {
  const char* peers = "200";  ///< default for --peers; nullptr = no flag
  bool instance = true;       ///< --jobs / --machines (scaled flowshop)
  int jobs = Defaults::kSmallJobs;
  int machines = Defaults::kSmallMachines;
  bool seed = true;  ///< --seed
  bool csv = true;   ///< --csv
  /// --backend (any name in runtime::transport_names()) plus the socket
  /// bring-up flags --rank / --peer-addrs / --socket-trace and the
  /// --time-limit-ms wall-clock watchdog.
  bool backend = true;
  bool metrics = true;  ///< --metrics / --metrics-interval (live telemetry)
  /// --shards (simulator event-queue shards; see docs/SCALING.md). 0 = the
  /// plain single-queue engine, the pre-sharding default.
  bool shards = true;
};

/// Registers the flags shared by the bench mains according to `spec`.
Flags& define_run_flags(Flags& flags, const RunFlagSpec& spec = {});

/// The parsed values. Fields whose flag was suppressed keep these zeros.
struct RunFlags {
  int peers = 0;
  int jobs = 0;
  int machines = 0;
  std::uint64_t seed = 1;
  bool csv = false;
  lb::Backend backend = lb::Backend::kSim;
  int sim_shards = 0;  ///< --shards (0 = plain engine)
};

/// Reads back whichever of the shared flags were defined. Parsing --backend
/// also makes it the default backend of every RunConfig subsequently built
/// by bb_config/uts_config, so each bench main honours the flag without
/// threading it through by hand. Parsing --metrics likewise builds the
/// process-wide MetricsHub (see metrics_hub below) that those configs carry,
/// and the socket bring-up flags (--rank / --peer-addrs / --socket-trace)
/// arm the SocketBringup those configs carry. A `--peers` value containing
/// ':' is read as the comma-separated address table itself (its length sets
/// the peer count). `--time-limit-ms` > 0 starts a detached wall-clock
/// watchdog that kills the process with exit code 124 — the multi-process
/// hang brake.
RunFlags parse_run_flags(const Flags& flags);

/// The process-wide live-metrics hub, built by parse_run_flags when
/// --metrics=<path> was given (shard count sized for the chosen backend,
/// interval from --metrics-interval in ms). Null when metrics are off.
/// Every RunConfig built by bb_config/uts_config carries this pointer, so
/// each bench main streams telemetry without threading it through by hand.
metrics::MetricsHub* metrics_hub();

/// Parses `--<flag>` through lb::strategy_from_name, aborting with the
/// list of valid names on a typo.
lb::Strategy parse_strategy_flag(const Flags& flags, const char* flag = "strategy");

/// Registers the shared fault-injection flags: --drop / --dup / --spike
/// (per-message probabilities), --spike-ms, --crashes (random victims),
/// --crash-from-ms / --crash-to-ms (the crash window) and --fault-salt.
/// All-zero defaults mean the resulting plan is disabled.
Flags& define_fault_flags(Flags& flags);

/// Builds the FaultPlan the fault flags describe. Crash victims are drawn
/// by sim::make_random_crashes (peer 0 is never a victim), keyed by
/// --fault-salt so sweeps can vary the pattern independently of the seed.
sim::FaultPlan parse_fault_flags(const Flags& flags, int num_peers);

/// Registers the shared elastic-membership flags: --joins (dormant peers
/// that join mid-run), --leaves (initial members that leave gracefully),
/// --churn-from-ms / --churn-to-ms (the event window) and --churn-salt.
/// All-zero defaults mean the resulting plan is disabled.
Flags& define_churn_flags(Flags& flags);

/// Builds the ChurnPlan the churn flags describe via lb::make_random_churn,
/// keyed by --churn-salt so sweeps can vary the schedule independently of
/// the run seed. Disabled (default-constructed) when both counts are 0.
lb::ChurnPlan parse_churn_flags(const Flags& flags, int num_peers);

/// B&B workload on the scaled analogue of Ta(21+index).
std::unique_ptr<bb::BBWorkload> make_bb(int index, int jobs, int machines);

/// UTS workload (binomial, fast hash) with the calibrated shape.
std::unique_ptr<uts::UtsWorkload> make_uts(std::uint32_t root_seed,
                                           int b0 = Defaults::kUtsB0,
                                           double q = Defaults::kUtsQ);

/// Baseline RunConfig for a strategy at a scale (paper network layout,
/// calibrated chunk size for the workload kind).
lb::RunConfig bb_config(lb::Strategy s, int n, std::uint64_t seed, int dmax = 10);
lb::RunConfig uts_config(lb::Strategy s, int n, std::uint64_t seed, int dmax = 10);

/// Runs and aborts loudly if the protocol failed to complete — a bench must
/// never silently report a broken run. Dispatches through the transport
/// registry (runtime::transport_entry) on config.backend; when the chosen
/// transport declines the config (real-time backends cover fault-free,
/// homogeneous, untraced overlay runs only) it falls back to the simulator
/// with a one-time stderr note naming the reason. Real-time exec time =
/// wall time to the root's termination; sim-only metrics stay zero.
lb::RunMetrics run_checked(lb::Workload& workload, const lb::RunConfig& config,
                           const char* what);

/// Sequential simulated time (seconds) of a workload, for PE columns.
double sequential_seconds(lb::Workload& workload);

/// Common header printed by every bench binary.
void print_preamble(const char* experiment, const std::string& notes);

/// Comma-separated doubles ("0,0.01,0.1") — the get_int_list reading would
/// truncate the fractions, so the ladder sweeps parse their axes with this.
std::vector<double> parse_double_list(const std::string& spec);

/// Comma-separated strategy names, aborting loudly on a typo. With
/// `overlay_only`, non-overlay names abort too (for sweeps exercising
/// overlay-only features: churn, service mode). `flag` names the flag in
/// the error message.
std::vector<lb::Strategy> parse_strategy_list(const std::string& spec,
                                              bool overlay_only,
                                              const char* flag);

/// Uniform tail of every ladder sweep: the finished table as CSV or aligned
/// text, then the "# Expected shape" trailer that tells a reader what a
/// healthy ladder looks like against the paper's claim.
void print_ladder(const Table& table, bool csv,
                  const std::string& expected_shape);

/// Opens an output file for writing (binary, truncating), aborting with a
/// message naming `what` if the path cannot be opened — the one place the
/// bench mains' snapshot/trace/JSON sinks go through, so failures are loud
/// and uniform instead of each binary hand-rolling the check.
std::ofstream open_output_file(const std::string& path, const char* what);

/// When `--trace` was given (see olb::define_trace_flags), re-runs the
/// (workload, config) combination with a RingTracer of `--trace-limit`
/// events attached and writes the timeline to the requested path —
/// NDJSON if it ends in `.ndjson`, Chrome/Perfetto trace JSON otherwise.
/// Benches call this once on their most interesting (e.g. worst-seed) run;
/// the measured runs themselves stay untraced. No-op without `--trace`.
void dump_trace_if_requested(const Flags& flags, lb::Workload& workload,
                             lb::RunConfig config, const char* what);

}  // namespace olb::bench
