// Fig. 2 — the subtree-proportional work-sharing policy vs classical
// steal-half on the same TD(dmax=10) overlay:
//   top-left : execution time on the 10 B&B instances at 200 peers,
//   top-right: total work requests injected into the network,
//   bottom   : UTS execution time as a function of n = 16..128.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags);
  flags.define("uts_seed", std::to_string(Defaults::kUtsSmallSeed), "UTS root seed")
      .define("uts_scales", "16,32,48,64,80,96,112,128", "UTS peer counts");
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const int n = rf.peers;
  const auto seed = rf.seed;
  const bool csv = rf.csv;

  print_preamble("Fig 2: subtree-proportional vs steal-half (TD, dmax=10)", "");

  Table bb_table({"instance", "prop_sec", "half_sec", "prop_requests", "half_requests"});
  for (int idx = 0; idx < 10; ++idx) {
    double secs[2];
    std::uint64_t reqs[2];
    for (int policy = 0; policy < 2; ++policy) {
      auto workload = make_bb(idx, static_cast<int>(flags.get_int("jobs")),
                              static_cast<int>(flags.get_int("machines")));
      auto config = bb_config(lb::Strategy::kOverlayTD, n, seed);
      config.overlay.split = policy == 0 ? lb::SplitPolicy::kSubtreeProportional
                                 : lb::SplitPolicy::kHalf;
      const auto metrics = run_checked(*workload, config, "fig2 bb");
      secs[policy] = metrics.exec_seconds;
      reqs[policy] = metrics.work_requests;
    }
    bb_table.add_row({"Ta" + std::to_string(21 + idx) + "s", Table::cell(secs[0], 4),
                      Table::cell(secs[1], 4), Table::cell(reqs[0]),
                      Table::cell(reqs[1])});
  }
  if (csv) bb_table.print_csv(std::cout); else bb_table.print(std::cout);
  std::printf("\n# Expected shape (paper): the proportional policy is faster on "
              "most instances and execution time correlates with the number of "
              "work requests.\n\n");

  Table uts_table({"n", "prop_sec", "half_sec"});
  for (std::int64_t un : flags.get_int_list("uts_scales")) {
    double secs[2];
    for (int policy = 0; policy < 2; ++policy) {
      auto workload = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
      auto config = uts_config(lb::Strategy::kOverlayTD, static_cast<int>(un), seed);
      config.overlay.split = policy == 0 ? lb::SplitPolicy::kSubtreeProportional
                                 : lb::SplitPolicy::kHalf;
      secs[policy] = run_checked(*workload, config, "fig2 uts").exec_seconds;
    }
    uts_table.add_row({Table::cell(un), Table::cell(secs[0], 4), Table::cell(secs[1], 4)});
  }
  if (csv) uts_table.print_csv(std::cout); else uts_table.print(std::cout);
  std::printf("\n# Expected shape (paper): proportional splitting at or below "
              "steal-half across UTS scales.\n");
  return 0;
}
