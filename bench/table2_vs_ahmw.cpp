// Table II — execution time of TD and BTD (dmax=10) against the adaptive
// hierarchical master-worker (AHMW) baseline on the 10 scaled flowshop
// instances at 200 peers.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const int n = rf.peers;
  const auto seed = rf.seed;
  const int jobs = rf.jobs;
  const int machines = rf.machines;

  print_preamble("Table II: TD / BTD vs AHMW at 200 peers (B&B)",
                 "all overlays use degree 10, as both papers recommend");

  const lb::Strategy strategies[] = {lb::Strategy::kOverlayTD,
                                     lb::Strategy::kOverlayBTD, lb::Strategy::kAHMW};
  Table table({"instance", "TD_sec", "BTD_sec", "AHMW_sec"});
  double totals[3] = {0, 0, 0};
  for (int idx = 0; idx < 10; ++idx) {
    std::vector<std::string> row = {"Ta" + std::to_string(21 + idx) + "s"};
    for (int s = 0; s < 3; ++s) {
      auto workload = make_bb(idx, jobs, machines);
      const auto metrics =
          run_checked(*workload, bb_config(strategies[s], n, seed), "table2");
      totals[s] += metrics.exec_seconds;
      row.push_back(Table::cell(metrics.exec_seconds, 4));
    }
    table.add_row(std::move(row));
  }
  table.add_row({"TOTAL", Table::cell(totals[0], 4), Table::cell(totals[1], 4),
                 Table::cell(totals[2], 4)});
  if (flags.get_bool("csv")) table.print_csv(std::cout); else table.print(std::cout);
  std::printf("\n# Expected shape (paper): BTD beats AHMW on ~9/10 instances and "
              "TD on most; in aggregate BTD is several times faster than AHMW "
              "(paper: ~10x), and BTD < TD.\n");
  return 0;
}
