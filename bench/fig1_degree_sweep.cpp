// Fig. 1 — (top) execution time at 500 peers as a function of the TD degree
// dmax, for two B&B instances (Ta21s, Ta23s); (bottom) number of messages
// sent by each peer (peers labelled in BFS order, which for TD is the peer
// id) for dmax in {2, 5, 10}, showing traffic concentrating on interior
// nodes as the degree grows.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags, {.peers = "500"});
  flags.define("dmax_min", "2", "smallest degree")
      .define("dmax_max", "10", "largest degree")
      .define("hist_buckets", "25", "peer-id buckets for the message histogram");
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const int n = rf.peers;
  const auto seed = rf.seed;
  const int jobs = rf.jobs;
  const int machines = rf.machines;

  print_preamble("Fig 1: TD degree sweep at 500 peers",
                 "top: exec time vs dmax; bottom: per-peer messages (BFS ids)");

  // ---- top: execution time as a function of dmax -------------------------
  Table top({"dmax", "Ta21s_sec", "Ta23s_sec"});
  std::vector<std::vector<std::uint64_t>> msg_profiles;  // for the bottom part
  std::vector<int> profile_dmax;
  for (int dmax = static_cast<int>(flags.get_int("dmax_min"));
       dmax <= static_cast<int>(flags.get_int("dmax_max")); ++dmax) {
    double secs[2];
    for (int which = 0; which < 2; ++which) {
      auto workload = make_bb(which == 0 ? 0 : 2, jobs, machines);
      const auto metrics = run_checked(
          *workload, bb_config(lb::Strategy::kOverlayTD, n, seed, dmax), "fig1");
      secs[which] = metrics.exec_seconds;
      if (which == 0 && (dmax == 2 || dmax == 5 || dmax == 10)) {
        msg_profiles.push_back(metrics.msgs_per_peer);
        profile_dmax.push_back(dmax);
      }
    }
    top.add_row({Table::cell(std::int64_t{dmax}), Table::cell(secs[0], 4),
                 Table::cell(secs[1], 4)});
  }
  const bool csv = flags.get_bool("csv");
  if (csv) top.print_csv(std::cout); else top.print(std::cout);
  std::printf("\n# Expected shape (paper): time decreases with dmax with "
              "diminishing returns past ~6.\n\n");

  // ---- bottom: per-peer sent messages, bucketed over BFS-ordered ids ------
  const auto buckets = static_cast<std::size_t>(flags.get_int("hist_buckets"));
  Table bottom({"peer_id_range", "dmax=2_msgs/peer", "dmax=5_msgs/peer",
                "dmax=10_msgs/peer"});
  const std::size_t per_bucket = (static_cast<std::size_t>(n) + buckets - 1) / buckets;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * per_bucket;
    const std::size_t hi = std::min(lo + per_bucket, static_cast<std::size_t>(n));
    if (lo >= hi) break;
    std::vector<std::string> row;
    row.push_back(std::to_string(lo) + "-" + std::to_string(hi - 1));
    for (const auto& profile : msg_profiles) {
      std::uint64_t sum = 0;
      for (std::size_t i = lo; i < hi; ++i) sum += profile[i];
      row.push_back(Table::cell(static_cast<double>(sum) / static_cast<double>(hi - lo), 1));
    }
    bottom.add_row(std::move(row));
  }
  (void)profile_dmax;
  if (csv) bottom.print_csv(std::cout); else bottom.print(std::cout);
  std::printf("\n# Expected shape (paper): message load concentrates on interior "
              "(low-id) peers as dmax grows; leaves carry little traffic.\n");
  return 0;
}
