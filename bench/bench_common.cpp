#include "bench_common.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>

#include "runtime/runtime.hpp"
#include "runtime/transport_registry.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/export.hpp"

namespace olb::bench {

namespace {
/// Process-wide backend default, armed by parse_run_flags and consumed by
/// common_config — see the parse_run_flags doc comment.
lb::Backend g_default_backend = lb::Backend::kSim;
/// Process-wide metrics hub, built by parse_run_flags from --metrics and
/// carried by every RunConfig common_config builds.
std::unique_ptr<metrics::MetricsHub> g_metrics_hub;
/// Process-wide socket bring-up (rank / address table / trace prefix),
/// armed by parse_run_flags and carried by every RunConfig common_config
/// builds — like the backend default, so socket launches need no per-bench
/// plumbing.
lb::SocketBringup g_socket_bringup;
/// Process-wide simulator shard count from --shards, carried by every
/// RunConfig common_config builds (0 = the plain single-queue engine).
int g_sim_shards = 0;

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}
}  // namespace

Flags& define_run_flags(Flags& flags, const RunFlagSpec& spec) {
  if (spec.peers != nullptr) flags.define("peers", spec.peers, "cluster size");
  if (spec.instance) {
    flags.define("jobs", std::to_string(spec.jobs), "flowshop jobs")
        .define("machines", std::to_string(spec.machines), "flowshop machines");
  }
  if (spec.seed) flags.define("seed", "1", "run seed");
  if (spec.csv) flags.define("csv", "false", "emit CSV instead of aligned tables");
  if (spec.backend) {
    flags
        .define("backend", "sim",
                "execution backend (" + runtime::transport_names() +
                    "); real-time backends cover overlay strategies only")
        .define("rank", "-1", "socket backend: this process's rank")
        .define("peer-addrs", "",
                "socket backend: comma-separated host:port listen address "
                "per rank (identical on every process)")
        .define("socket-trace", "",
                "socket backend: per-process NDJSON trace path prefix "
                "(writes <prefix>.run<k>.rank<r>.ndjson)")
        .define("time-limit-ms", "0",
                "wall-clock watchdog: kill the process (exit 124) after "
                "this many ms; 0 = off");
  }
  if (spec.metrics) {
    flags
        .define("metrics", "",
                "live metrics snapshot stream (path; .prom = Prometheus text "
                "exposition, anything else = NDJSON for tools/olb_top)")
        .define("metrics-interval", "100",
                "metrics flush interval in ms (simulated time on sim, wall "
                "time on threads)");
  }
  if (spec.shards) {
    flags.define("shards", "0",
                 "simulator event-queue shards (0 = plain single-queue "
                 "engine, 1 = sharded coordinator with one shard "
                 "[byte-identical to 0], >=2 = cluster-aligned conservative "
                 "sharding; see docs/SCALING.md)");
  }
  return flags;
}

RunFlags parse_run_flags(const Flags& flags) {
  RunFlags rf;
  if (flags.has("peers")) {
    const std::string peers = flags.get("peers");
    if (peers.find(':') != std::string::npos) {
      // Address-table form: "--peers host:port,host:port,..." both sizes
      // the cluster and provides the socket rendezvous in one flag.
      g_socket_bringup.peers = split_commas(peers);
      rf.peers = static_cast<int>(g_socket_bringup.peers.size());
    } else {
      rf.peers = static_cast<int>(flags.get_int("peers"));
    }
  }
  if (flags.has("jobs")) rf.jobs = static_cast<int>(flags.get_int("jobs"));
  if (flags.has("machines")) rf.machines = static_cast<int>(flags.get_int("machines"));
  if (flags.has("seed")) rf.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  if (flags.has("csv")) rf.csv = flags.get_bool("csv");
  if (flags.has("backend")) {
    const std::string name = flags.get("backend");
    const runtime::TransportEntry* entry = runtime::find_transport(name);
    if (entry == nullptr) {
      std::fprintf(stderr, "FATAL: unknown --backend '%s' (use %s)\n",
                   name.c_str(), runtime::transport_names().c_str());
      std::abort();
    }
    rf.backend = entry->backend;
    g_default_backend = rf.backend;
  }
  if (flags.has("rank")) {
    g_socket_bringup.rank = static_cast<int>(flags.get_int("rank"));
  }
  if (flags.has("peer-addrs")) {
    const std::string addrs = flags.get("peer-addrs");
    if (!addrs.empty()) g_socket_bringup.peers = split_commas(addrs);
  }
  if (flags.has("socket-trace")) {
    g_socket_bringup.trace_prefix = flags.get("socket-trace");
  }
  if (flags.has("time-limit-ms")) {
    const std::int64_t ms = flags.get_int("time-limit-ms");
    if (ms > 0) {
      // Multi-process socket runs can hang forever if a peer dies before
      // bootstrap completes; a detached watchdog turns that into a loud,
      // bounded failure. _Exit skips destructors deliberately — the process
      // is wedged, not cleanly shutting down.
      //
      // The watchdog must be disarmable: a plain detached sleep-then-_Exit
      // races normal process exit, so a run that finished a hair under the
      // limit could still die with a spurious 124 while atexit handlers were
      // flushing output. An atexit hook flips `disarmed` and wakes the
      // thread; the state is heap-leaked because the detached thread may
      // outlive every static destructor.
      struct WatchdogState {
        std::mutex mu;
        std::condition_variable cv;
        bool disarmed = false;
      };
      static WatchdogState* g_watchdog = nullptr;
      if (g_watchdog == nullptr) {
        g_watchdog = new WatchdogState;
        std::atexit([] {
          {
            std::scoped_lock lock(g_watchdog->mu);
            g_watchdog->disarmed = true;
          }
          g_watchdog->cv.notify_all();
        });
        std::thread([ms, state = g_watchdog] {
          std::unique_lock lock(state->mu);
          const bool disarmed = state->cv.wait_for(
              lock, std::chrono::milliseconds(ms),
              [state] { return state->disarmed; });
          if (disarmed) return;  // clean exit beat the deadline
          std::fprintf(stderr,
                       "FATAL: --time-limit-ms watchdog fired after %lld ms "
                       "(hung run or lost peer)\n",
                       static_cast<long long>(ms));
          std::_Exit(124);
        }).detach();
      }
    }
  }
  if (flags.has("shards")) {
    rf.sim_shards = static_cast<int>(flags.get_int("shards"));
    OLB_CHECK_MSG(rf.sim_shards >= 0, "--shards must be >= 0");
    g_sim_shards = rf.sim_shards;
  }
  if (flags.has("metrics")) {
    const std::string path = flags.get("metrics");
    if (!path.empty()) {
      metrics::MetricsHub::Options o;
      o.path = path;
      o.interval_ns = std::max<std::int64_t>(1, flags.get_int("metrics-interval")) *
                      1'000'000;
      // Sized for the writer population: the simulator is one thread; the
      // thread backend shards global instruments across writers. A bench
      // that suppressed --backend (e.g. runtime_speedup, which always runs
      // threads) gets the concurrent-safe sizing — shards only cost memory,
      // a single-writer registry with sharded globals is merely oversized,
      // but the reverse would lose counts.
      o.shards = !flags.has("backend") || rf.backend == lb::Backend::kThreads
                     ? 16
                     : 1;
      g_metrics_hub = std::make_unique<metrics::MetricsHub>(std::move(o));
    }
  }
  return rf;
}

metrics::MetricsHub* metrics_hub() { return g_metrics_hub.get(); }

lb::Strategy parse_strategy_flag(const Flags& flags, const char* flag) {
  const std::string name = flags.get(flag);
  lb::Strategy s;
  if (!lb::strategy_from_name(name, &s)) {
    std::fprintf(stderr, "FATAL: unknown --%s '%s' (use %s)\n", flag, name.c_str(),
                 lb::strategy_names().c_str());
    std::abort();
  }
  return s;
}

Flags& define_fault_flags(Flags& flags) {
  return flags.define("drop", "0", "P(control message dropped)")
      .define("dup", "0", "P(control message duplicated)")
      .define("spike", "0", "P(message hit by a latency spike)")
      .define("spike-ms", "2", "latency-spike magnitude (ms)")
      .define("crashes", "0", "number of random crash victims")
      .define("crash-from-ms", "1", "crash window start (ms)")
      .define("crash-to-ms", "10", "crash window end (ms)")
      .define("fault-salt", "0", "extra key for the fault RNG stream");
}

sim::FaultPlan parse_fault_flags(const Flags& flags, int num_peers) {
  const int crashes = static_cast<int>(flags.get_int("crashes"));
  const auto salt = static_cast<std::uint64_t>(flags.get_int("fault-salt"));
  auto ms = [](double v) { return static_cast<sim::Time>(v * 1e6); };
  sim::FaultPlan plan;
  if (crashes > 0) {
    plan = sim::make_random_crashes(crashes, num_peers,
                                    ms(flags.get_double("crash-from-ms")),
                                    ms(flags.get_double("crash-to-ms")),
                                    mix64(salt ^ 0xfa01));
  }
  plan.link.drop_prob = flags.get_double("drop");
  plan.link.dup_prob = flags.get_double("dup");
  plan.link.spike_prob = flags.get_double("spike");
  plan.link.spike_latency = ms(flags.get_double("spike-ms"));
  plan.salt = salt;
  return plan;
}

Flags& define_churn_flags(Flags& flags) {
  return flags.define("joins", "0", "dormant peers that join mid-run")
      .define("leaves", "0", "initial members that leave gracefully")
      .define("churn-from-ms", "1", "membership window start (ms)")
      .define("churn-to-ms", "10", "membership window end (ms)")
      .define("churn-salt", "0", "extra key for the churn RNG stream");
}

lb::ChurnPlan parse_churn_flags(const Flags& flags, int num_peers) {
  const int joins = static_cast<int>(flags.get_int("joins"));
  const int leaves = static_cast<int>(flags.get_int("leaves"));
  if (joins == 0 && leaves == 0) return {};
  auto ms = [](double v) { return static_cast<sim::Time>(v * 1e6); };
  return lb::make_random_churn(
      joins, leaves, num_peers, ms(flags.get_double("churn-from-ms")),
      ms(flags.get_double("churn-to-ms")),
      mix64(static_cast<std::uint64_t>(flags.get_int("churn-salt")) ^ 0xc401));
}

std::unique_ptr<bb::BBWorkload> make_bb(int index, int jobs, int machines) {
  return std::make_unique<bb::BBWorkload>(
      bb::FlowshopInstance::ta20x20_scaled(index, jobs, machines),
      bb::BoundKind::kOneMachine, bb::CostModel{});
}

std::unique_ptr<uts::UtsWorkload> make_uts(std::uint32_t root_seed, int b0, double q) {
  uts::Params p;
  p.shape = uts::TreeShape::kBinomial;
  p.hash = uts::HashMode::kFast;
  p.b0 = b0;
  p.q = q;
  p.m = 2;
  p.root_seed = root_seed;
  return std::make_unique<uts::UtsWorkload>(p, uts::CostModel{});
}

namespace {
lb::RunConfig common_config(lb::Strategy s, int n, std::uint64_t seed, int dmax,
                            std::uint64_t chunk) {
  lb::RunConfig c;
  c.strategy = s;
  c.num_peers = n;
  c.dmax = dmax;
  c.seed = seed;
  c.net = lb::paper_network(n);
  c.chunk_units = chunk;
  c.backend = g_default_backend;
  c.metrics = g_metrics_hub.get();
  c.sockets = g_socket_bringup;
  c.sim_shards = g_sim_shards;
  return c;
}
}  // namespace

lb::RunConfig bb_config(lb::Strategy s, int n, std::uint64_t seed, int dmax) {
  return common_config(s, n, seed, dmax, Defaults::kChunkBB);
}

lb::RunConfig uts_config(lb::Strategy s, int n, std::uint64_t seed, int dmax) {
  return common_config(s, n, seed, dmax, Defaults::kChunkUTS);
}

lb::RunMetrics run_checked(lb::Workload& workload, const lb::RunConfig& config,
                           const char* what) {
  const runtime::TransportEntry& entry =
      runtime::transport_entry(config.backend);
  std::string why;
  if (!entry.supports(config, &why)) {
    // Only the real-time transports can decline a config (the simulator
    // accepts everything). Fall back to the simulator with a one-time note
    // so sweeps mixing overlay and non-overlay strategies keep working —
    // and, on the socket backend, so every rank of a uniform multi-process
    // launch makes the identical fallback decision in lockstep.
    static bool noted = false;
    if (!noted) {
      noted = true;
      std::fprintf(stderr,
                   "# note: --backend=%s cannot run %s (%s): %s; using the "
                   "simulator\n",
                   entry.name, what, lb::strategy_name(config.strategy),
                   why.c_str());
    }
    lb::RunConfig sim_config = config;
    sim_config.backend = lb::Backend::kSim;
    return run_checked(workload, sim_config, what);
  }
  const lb::RunMetrics metrics = entry.run(workload, config);
  if (!metrics.ok) {
    std::fprintf(stderr,
                 "FATAL: %s run did not complete cleanly: %s (%s, n=%d)\n",
                 entry.name, what, lb::strategy_name(config.strategy),
                 config.num_peers);
    std::abort();
  }
  return metrics;
}

double sequential_seconds(lb::Workload& workload) {
  return lb::run_sequential(workload).exec_seconds;
}

std::ofstream open_output_file(const std::string& path, const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "FATAL: cannot open %s output path '%s'\n", what,
                 path.c_str());
    std::abort();
  }
  return out;
}

void dump_trace_if_requested(const Flags& flags, lb::Workload& workload,
                             lb::RunConfig config, const char* what) {
  const std::string path = flags.get("trace");
  if (path.empty()) return;
  trace::RingTracer tracer(
      static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("trace-limit"))));
  config.tracer = &tracer;
  // Trace sinks are single-threaded; the timeline is a simulator feature.
  config.backend = lb::Backend::kSim;
  // This is a diagnostic re-run of an already-measured combination: keep it
  // out of the metrics stream (the re-run would restart simulated time and
  // double-count every counter into the same hub).
  config.metrics = nullptr;
  const auto metrics = run_checked(workload, config, what);

  std::ofstream out = open_output_file(path, "--trace");
  const auto events = tracer.snapshot();
  const bool ndjson = path.size() >= 7 && path.ends_with(".ndjson");
  if (ndjson) {
    trace::write_ndjson(out, events);
  } else {
    trace::PerfettoOptions opts;
    opts.num_actors = config.num_peers;
    opts.work_msg_type = lb::kWork;
    opts.type_name = lb::msg_type_name;
    opts.handling_cost = config.net.msg_handling_cost;
    trace::write_perfetto(out, events, opts);
  }
  std::printf("# trace: %s (%s, %llu events, %llu dropped) -> %s\n", what,
              ndjson ? "ndjson" : "perfetto",
              static_cast<unsigned long long>(metrics.trace_events),
              static_cast<unsigned long long>(metrics.trace_dropped), path.c_str());
}

std::vector<double> parse_double_list(const std::string& spec) {
  std::vector<double> out;
  for (const std::string& item : split_commas(spec)) {
    out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out;
}

std::vector<lb::Strategy> parse_strategy_list(const std::string& spec,
                                              bool overlay_only,
                                              const char* flag) {
  std::vector<lb::Strategy> out;
  for (const std::string& item : split_commas(spec)) {
    lb::Strategy s;
    if (!lb::strategy_from_name(item, &s)) {
      std::fprintf(stderr, "FATAL: unknown --%s entry '%s' (use %s)\n", flag,
                   item.c_str(), lb::strategy_names().c_str());
      std::abort();
    }
    if (overlay_only && !lb::strategy_is_overlay(s)) {
      std::fprintf(stderr, "FATAL: --%s wants overlay names, got '%s'\n", flag,
                   item.c_str());
      std::abort();
    }
    out.push_back(s);
  }
  return out;
}

void print_ladder(const Table& table, bool csv,
                  const std::string& expected_shape) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::printf("\n# Expected shape: %s\n", expected_shape.c_str());
}

void print_preamble(const char* experiment, const std::string& notes) {
  std::printf("# %s\n", experiment);
  std::printf("# Reproduction of: Vu, Derbel, Ali, Bendjoudi, Melab — "
              "\"Overlay-Centric Load Balancing\" (CLUSTER 2012)\n");
  std::printf("# Substrate: deterministic cluster simulation; workloads scaled "
              "(see DESIGN.md / EXPERIMENTS.md).\n");
  if (!notes.empty()) std::printf("# %s\n", notes.c_str());
  std::printf("\n");
}

}  // namespace olb::bench
