#include "bench_common.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace olb::bench {

std::unique_ptr<bb::BBWorkload> make_bb(int index, int jobs, int machines) {
  return std::make_unique<bb::BBWorkload>(
      bb::FlowshopInstance::ta20x20_scaled(index, jobs, machines),
      bb::BoundKind::kOneMachine, bb::CostModel{});
}

std::unique_ptr<uts::UtsWorkload> make_uts(std::uint32_t root_seed, int b0, double q) {
  uts::Params p;
  p.shape = uts::TreeShape::kBinomial;
  p.hash = uts::HashMode::kFast;
  p.b0 = b0;
  p.q = q;
  p.m = 2;
  p.root_seed = root_seed;
  return std::make_unique<uts::UtsWorkload>(p, uts::CostModel{});
}

namespace {
lb::RunConfig common_config(lb::Strategy s, int n, std::uint64_t seed, int dmax,
                            std::uint64_t chunk) {
  lb::RunConfig c;
  c.strategy = s;
  c.num_peers = n;
  c.dmax = dmax;
  c.seed = seed;
  c.net = lb::paper_network(n);
  c.chunk_units = chunk;
  return c;
}
}  // namespace

lb::RunConfig bb_config(lb::Strategy s, int n, std::uint64_t seed, int dmax) {
  return common_config(s, n, seed, dmax, Defaults::kChunkBB);
}

lb::RunConfig uts_config(lb::Strategy s, int n, std::uint64_t seed, int dmax) {
  return common_config(s, n, seed, dmax, Defaults::kChunkUTS);
}

lb::RunMetrics run_checked(lb::Workload& workload, const lb::RunConfig& config,
                           const char* what) {
  const auto metrics = lb::run_distributed(workload, config);
  if (!metrics.ok) {
    std::fprintf(stderr, "FATAL: run did not complete cleanly: %s (%s, n=%d)\n",
                 what, lb::strategy_name(config.strategy), config.num_peers);
    std::abort();
  }
  return metrics;
}

double sequential_seconds(lb::Workload& workload) {
  return lb::run_sequential(workload).exec_seconds;
}

void print_preamble(const char* experiment, const std::string& notes) {
  std::printf("# %s\n", experiment);
  std::printf("# Reproduction of: Vu, Derbel, Ali, Bendjoudi, Melab — "
              "\"Overlay-Centric Load Balancing\" (CLUSTER 2012)\n");
  std::printf("# Substrate: deterministic cluster simulation; workloads scaled "
              "(see DESIGN.md / EXPERIMENTS.md).\n");
  if (!notes.empty()) std::printf("# %s\n", notes.c_str());
  std::printf("\n");
}

}  // namespace olb::bench
