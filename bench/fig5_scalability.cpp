// Fig. 5 — execution time AND parallel efficiency of BTD vs RWS:
//   top    : B&B instances Ta21s and Ta23s, n = 200..1000,
//   bottom : UTS (binomial), n = 128..512.
// PE(n) = t_seq / (n * t_par) with t_seq the sequential simulated time of the
// same instance, as in the paper.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/meminfo.hpp"

using namespace olb;
using namespace olb::bench;

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags, {.peers = nullptr, .instance = false});
  flags.define("scales", "200,400,600,800,1000", "B&B peer counts")
      .define("uts_scales", "128,192,256,320,384,448,512", "UTS peer counts")
      .define("jobs21", std::to_string(Defaults::kBigJobs), "jobs for Ta21s")
      .define("jobs23", std::to_string(Defaults::kBig23Jobs), "jobs for Ta23s")
      .define("machines", std::to_string(Defaults::kBigMachines), "flowshop machines")
      .define("uts_seed", std::to_string(Defaults::kUtsBigSeed), "UTS root seed")
      .define("print-units", "false",
              "print a '# units:' line per run (UTS lines are "
              "schedule-independent — the cross-backend equivalence check)")
      .define("big_scales", "",
              "extra UTS peer counts for the sharded scale ladder (e.g. "
              "100000,300000,1000000; empty = off; see docs/SCALING.md)")
      .define("big_strategies", "BTD",
              "strategies for the scale ladder (comma-separated)")
      .define("scale-pacing", "true",
              "pace idle-retry timers proportionally to n above 1000 peers "
              "(docs/SCALING.md): without it, termination at n>=10^4 is a "
              "request storm that dominates the event count")
      .define("scale-json", "",
              "write the scale-ladder measurements as JSON to this path");
  define_trace_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const auto seed = rf.seed;
  const int machines = static_cast<int>(flags.get_int("machines"));
  const bool csv = rf.csv;
  const bool print_units = flags.get_bool("print-units");

  print_preamble("Fig 5: BTD vs RWS — execution time and parallel efficiency",
                 "top: B&B Ta21s/Ta23s; bottom: UTS binomial");

  // Sequential references.
  double seq[2];
  for (int which = 0; which < 2; ++which) {
    auto workload = make_bb(which == 0 ? 0 : 2,
                            static_cast<int>(flags.get_int(which == 0 ? "jobs21" : "jobs23")),
                            machines);
    seq[which] = sequential_seconds(*workload);
  }

  for (int which = 0; which < 2; ++which) {
    const int idx = which == 0 ? 0 : 2;
    const int jobs =
        static_cast<int>(flags.get_int(which == 0 ? "jobs21" : "jobs23"));
    std::printf("== B&B Ta%ds (%dx%d, t_seq = %.2f sim-s) ==\n", 21 + idx, jobs,
                machines, seq[which]);
    Table table({"n", "BTD_sec", "BTD_PE%", "RWS_sec", "RWS_PE%"});
    for (std::int64_t n : flags.get_int_list("scales")) {
      std::vector<std::string> row = {Table::cell(n)};
      for (auto strategy : {lb::Strategy::kOverlayBTD, lb::Strategy::kRWS}) {
        auto workload = make_bb(idx, jobs, machines);
        const auto metrics = run_checked(
            *workload, bb_config(strategy, static_cast<int>(n), seed), "fig5 bb");
        if (print_units) {
          std::printf("# units: fig5 bb Ta%ds n=%lld %s units=%llu\n", 21 + idx,
                      static_cast<long long>(n), lb::strategy_name(strategy),
                      static_cast<unsigned long long>(metrics.total_units));
        }
        row.push_back(Table::cell(metrics.exec_seconds, 4));
        row.push_back(Table::cell(
            100.0 * metrics.parallel_efficiency(seq[which], static_cast<int>(n)), 1));
      }
      table.add_row(std::move(row));
    }
    if (csv) table.print_csv(std::cout); else table.print(std::cout);
    std::printf("\n");
  }

  auto uts_ref = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
  const double uts_seq = sequential_seconds(*uts_ref);
  std::printf("== UTS binomial (b0=2000, m=2, q=0.49995, r=%s; t_seq = %.2f sim-s) ==\n",
              flags.get("uts_seed").c_str(), uts_seq);
  Table uts_table({"n", "BTD_sec", "BTD_PE%", "RWS_sec", "RWS_PE%", "BTD_qmean_us"});
  double worst_btd_pe = 2.0;
  lb::RunConfig worst_btd_config;
  for (std::int64_t n : flags.get_int_list("uts_scales")) {
    std::vector<std::string> row = {Table::cell(n)};
    std::string qd_cell;
    for (auto strategy : {lb::Strategy::kOverlayBTD, lb::Strategy::kRWS}) {
      auto workload = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
      const auto config = uts_config(strategy, static_cast<int>(n), seed);
      const auto metrics = run_checked(*workload, config, "fig5 uts");
      if (print_units) {
        std::printf("# units: fig5 uts n=%lld %s units=%llu\n",
                    static_cast<long long>(n), lb::strategy_name(strategy),
                    static_cast<unsigned long long>(metrics.total_units));
      }
      row.push_back(Table::cell(metrics.exec_seconds, 4));
      const double pe =
          metrics.parallel_efficiency(uts_seq, static_cast<int>(n));
      row.push_back(Table::cell(100.0 * pe, 1));
      if (strategy == lb::Strategy::kOverlayBTD) {
        qd_cell = Table::cell(metrics.queueing_delay_mean * 1e6, 3);
        if (pe < worst_btd_pe) {
          worst_btd_pe = pe;
          worst_btd_config = config;
        }
      }
    }
    row.push_back(std::move(qd_cell));
    uts_table.add_row(std::move(row));
  }
  if (csv) uts_table.print_csv(std::cout); else uts_table.print(std::cout);
  std::printf("\n# Expected shape (paper): BTD's PE degrades slowly with n while "
              "RWS's drops at the largest scales. Note (EXPERIMENTS.md): with "
              "scaled instances the absolute PE at the largest n is capped by "
              "the workload's frontier size, not the protocol.\n");
  if (worst_btd_pe <= 1.0) {
    auto workload = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
    dump_trace_if_requested(flags, *workload, worst_btd_config,
                            "fig5 worst-PE UTS BTD run");
  }

  // --- sharded scale ladder (n = 10^5..10^6; docs/SCALING.md) ---
  // Same UTS instance as the figure, pushed to peer counts the single-queue
  // engine cannot hold. Reports *host-side* cost (wall-clock, peak RSS,
  // bytes per peer) next to the simulated metrics — the numbers the scale
  // playbook budgets against. Peak RSS is a process-wide high-water mark, so
  // in an ascending ladder each row reflects its own n; for exact per-n
  // footprints run one scale per process.
  const std::string big_spec = flags.get("big_scales");
  if (!big_spec.empty()) {
    const auto big_strategies =
        parse_strategy_list(flags.get("big_strategies"), false, "big_strategies");
    std::printf("== UTS scale ladder (--shards=%d requested) ==\n", rf.sim_shards);
    Table big({"n", "strat", "shards", "windows", "wall_s", "sim_s", "Mevents",
               "rss_peak_mb", "bytes_per_peer"});
    std::string json_runs;
    for (std::int64_t n : flags.get_int_list("big_scales")) {
      for (lb::Strategy strategy : big_strategies) {
        auto workload =
            make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
        auto config = uts_config(strategy, static_cast<int>(n), seed);
        if (flags.get_bool("scale-pacing") && n > 1000) {
          // Idle-retry traffic is ~ n x (starvation window / retry_delay):
          // at the paper's scales (n <= 10^3) the default 100us pacing is
          // invisible, but by n = 10^4 the termination wave turns it into a
          // request storm that multiplies the event count several-fold.
          // Stretch the idle timers in proportion to n — a deployment-tuning
          // knob (OverlayTuning), not a protocol change; docs/SCALING.md
          // derives the scaling.
          const auto pace = static_cast<sim::Time>(n / 1000);
          config.overlay.retry_delay *= pace;
          config.overlay.bridge_patience *= pace;
          // Watchdog, not a meter: at 10^5+ peers even the paced run needs
          // more than the default 400M-event headroom.
          config.limits.event_limit = 4'000'000'000ull;
        }
        const auto wall_begin = std::chrono::steady_clock::now();
        const auto metrics = run_checked(*workload, config, "fig5 scale ladder");
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_begin)
                .count();
        const std::uint64_t rss_peak = support::peak_rss_bytes();
        const double bytes_per_peer =
            static_cast<double>(rss_peak) / static_cast<double>(n);
        if (print_units) {
          std::printf("# units: fig5 scale n=%lld %s shards=%d units=%llu\n",
                      static_cast<long long>(n), lb::strategy_name(strategy),
                      metrics.sim_shards,
                      static_cast<unsigned long long>(metrics.total_units));
        }
        big.add_row({Table::cell(n), lb::strategy_name(strategy),
                     Table::cell(static_cast<std::int64_t>(metrics.sim_shards)),
                     Table::cell(static_cast<std::int64_t>(metrics.sim_windows)),
                     Table::cell(wall_s, 2), Table::cell(metrics.exec_seconds, 3),
                     Table::cell(static_cast<double>(metrics.events) / 1e6, 1),
                     Table::cell(static_cast<double>(rss_peak) / (1024.0 * 1024.0), 1),
                     Table::cell(bytes_per_peer, 0)});
        char buf[640];
        std::snprintf(
            buf, sizeof buf,
            "%s    {\"n\": %lld, \"strategy\": \"%s\", \"shards\": %d, "
            "\"windows\": %llu, \"wall_seconds\": %.3f, \"sim_seconds\": %.6f, "
            "\"last_compute_seconds\": %.6f, \"events\": %llu, "
            "\"total_messages\": %llu, \"work_requests\": %llu, "
            "\"total_units\": %llu, \"rss_peak_bytes\": %llu, "
            "\"bytes_per_peer\": %.1f}",
            json_runs.empty() ? "" : ",\n", static_cast<long long>(n),
            lb::strategy_name(strategy), metrics.sim_shards,
            static_cast<unsigned long long>(metrics.sim_windows), wall_s,
            metrics.exec_seconds, metrics.last_compute_seconds,
            static_cast<unsigned long long>(metrics.events),
            static_cast<unsigned long long>(metrics.total_messages),
            static_cast<unsigned long long>(metrics.work_requests),
            static_cast<unsigned long long>(metrics.total_units),
            static_cast<unsigned long long>(rss_peak), bytes_per_peer);
        json_runs += buf;
      }
    }
    print_ladder(big, csv,
                 "wall_s grows roughly linearly in n (events per peer are "
                 "~flat) and bytes_per_peer stays in the low-KB range — the "
                 "docs/SCALING.md budget. A super-linear wall_s or a "
                 "bytes_per_peer jump is a scalability regression.");
    const std::string json_path = flags.get("scale-json");
    if (!json_path.empty()) {
      std::ofstream out = open_output_file(json_path, "--scale-json");
      out << "{\n  \"schema\": \"olb-scale-ladder-v1\",\n"
          << "  \"workload\": \"uts\",\n  \"uts_seed\": "
          << flags.get_int("uts_seed") << ",\n  \"seed\": " << seed
          << ",\n  \"shards_requested\": " << rf.sim_shards
          << ",\n  \"runs\": [\n"
          << json_runs << "\n  ]\n}\n";
      std::printf("# scale ladder JSON -> %s\n", json_path.c_str());
    }
  }
  return 0;
}
