// Fig. 5 — execution time AND parallel efficiency of BTD vs RWS:
//   top    : B&B instances Ta21s and Ta23s, n = 200..1000,
//   bottom : UTS (binomial), n = 128..512.
// PE(n) = t_seq / (n * t_par) with t_seq the sequential simulated time of the
// same instance, as in the paper.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags, {.peers = nullptr, .instance = false});
  flags.define("scales", "200,400,600,800,1000", "B&B peer counts")
      .define("uts_scales", "128,192,256,320,384,448,512", "UTS peer counts")
      .define("jobs21", std::to_string(Defaults::kBigJobs), "jobs for Ta21s")
      .define("jobs23", std::to_string(Defaults::kBig23Jobs), "jobs for Ta23s")
      .define("machines", std::to_string(Defaults::kBigMachines), "flowshop machines")
      .define("uts_seed", std::to_string(Defaults::kUtsBigSeed), "UTS root seed")
      .define("print-units", "false",
              "print a '# units:' line per run (UTS lines are "
              "schedule-independent — the cross-backend equivalence check)");
  define_trace_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const auto seed = rf.seed;
  const int machines = static_cast<int>(flags.get_int("machines"));
  const bool csv = rf.csv;
  const bool print_units = flags.get_bool("print-units");

  print_preamble("Fig 5: BTD vs RWS — execution time and parallel efficiency",
                 "top: B&B Ta21s/Ta23s; bottom: UTS binomial");

  // Sequential references.
  double seq[2];
  for (int which = 0; which < 2; ++which) {
    auto workload = make_bb(which == 0 ? 0 : 2,
                            static_cast<int>(flags.get_int(which == 0 ? "jobs21" : "jobs23")),
                            machines);
    seq[which] = sequential_seconds(*workload);
  }

  for (int which = 0; which < 2; ++which) {
    const int idx = which == 0 ? 0 : 2;
    const int jobs =
        static_cast<int>(flags.get_int(which == 0 ? "jobs21" : "jobs23"));
    std::printf("== B&B Ta%ds (%dx%d, t_seq = %.2f sim-s) ==\n", 21 + idx, jobs,
                machines, seq[which]);
    Table table({"n", "BTD_sec", "BTD_PE%", "RWS_sec", "RWS_PE%"});
    for (std::int64_t n : flags.get_int_list("scales")) {
      std::vector<std::string> row = {Table::cell(n)};
      for (auto strategy : {lb::Strategy::kOverlayBTD, lb::Strategy::kRWS}) {
        auto workload = make_bb(idx, jobs, machines);
        const auto metrics = run_checked(
            *workload, bb_config(strategy, static_cast<int>(n), seed), "fig5 bb");
        if (print_units) {
          std::printf("# units: fig5 bb Ta%ds n=%lld %s units=%llu\n", 21 + idx,
                      static_cast<long long>(n), lb::strategy_name(strategy),
                      static_cast<unsigned long long>(metrics.total_units));
        }
        row.push_back(Table::cell(metrics.exec_seconds, 4));
        row.push_back(Table::cell(
            100.0 * metrics.parallel_efficiency(seq[which], static_cast<int>(n)), 1));
      }
      table.add_row(std::move(row));
    }
    if (csv) table.print_csv(std::cout); else table.print(std::cout);
    std::printf("\n");
  }

  auto uts_ref = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
  const double uts_seq = sequential_seconds(*uts_ref);
  std::printf("== UTS binomial (b0=2000, m=2, q=0.49995, r=%s; t_seq = %.2f sim-s) ==\n",
              flags.get("uts_seed").c_str(), uts_seq);
  Table uts_table({"n", "BTD_sec", "BTD_PE%", "RWS_sec", "RWS_PE%", "BTD_qmean_us"});
  double worst_btd_pe = 2.0;
  lb::RunConfig worst_btd_config;
  for (std::int64_t n : flags.get_int_list("uts_scales")) {
    std::vector<std::string> row = {Table::cell(n)};
    std::string qd_cell;
    for (auto strategy : {lb::Strategy::kOverlayBTD, lb::Strategy::kRWS}) {
      auto workload = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
      const auto config = uts_config(strategy, static_cast<int>(n), seed);
      const auto metrics = run_checked(*workload, config, "fig5 uts");
      if (print_units) {
        std::printf("# units: fig5 uts n=%lld %s units=%llu\n",
                    static_cast<long long>(n), lb::strategy_name(strategy),
                    static_cast<unsigned long long>(metrics.total_units));
      }
      row.push_back(Table::cell(metrics.exec_seconds, 4));
      const double pe =
          metrics.parallel_efficiency(uts_seq, static_cast<int>(n));
      row.push_back(Table::cell(100.0 * pe, 1));
      if (strategy == lb::Strategy::kOverlayBTD) {
        qd_cell = Table::cell(metrics.queueing_delay_mean * 1e6, 3);
        if (pe < worst_btd_pe) {
          worst_btd_pe = pe;
          worst_btd_config = config;
        }
      }
    }
    row.push_back(std::move(qd_cell));
    uts_table.add_row(std::move(row));
  }
  if (csv) uts_table.print_csv(std::cout); else uts_table.print(std::cout);
  std::printf("\n# Expected shape (paper): BTD's PE degrades slowly with n while "
              "RWS's drops at the largest scales. Note (EXPERIMENTS.md): with "
              "scaled instances the absolute PE at the largest n is capped by "
              "the workload's frontier size, not the protocol.\n");
  if (worst_btd_pe <= 1.0) {
    auto workload = make_uts(static_cast<std::uint32_t>(flags.get_int("uts_seed")));
    dump_trace_if_requested(flags, *workload, worst_btd_config,
                            "fig5 worst-PE UTS BTD run");
  }
  return 0;
}
