// Ablation of the design choices DESIGN.md calls out, plus the paper's
// future-work extension (capacity-aware overlays on heterogeneous clusters).
// Each section varies one knob with everything else at defaults, on B&B
// Ta21s at 200 peers (BTD unless stated).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace olb;
using namespace olb::bench;

namespace {

lb::RunMetrics run_one(const lb::RunConfig& config, int jobs, int machines) {
  auto workload = make_bb(0, jobs, machines);
  return run_checked(*workload, config, "ablation");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  define_run_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const RunFlags rf = parse_run_flags(flags);
  const int n = rf.peers;
  const auto seed = rf.seed;
  const int jobs = rf.jobs;
  const int machines = rf.machines;
  const bool csv = rf.csv;

  print_preamble("Ablations: design knobs of the overlay protocol",
                 "B&B Ta21s, BTD at 200 peers unless stated");
  auto emit = [&](Table& t) {
    if (csv) t.print_csv(std::cout); else t.print(std::cout);
    std::printf("\n");
  };

  {  // --- minimum split amount -------------------------------------------
    Table t({"min_split", "exec_sec", "work_transfers"});
    for (double ms : {1.0, 4.0, 16.0, 64.0}) {
      auto config = bb_config(lb::Strategy::kOverlayBTD, n, seed);
      config.min_split_amount = ms;
      const auto m = run_one(config, jobs, machines);
      t.add_row({Table::cell(ms, 0), Table::cell(m.exec_seconds, 4),
                 Table::cell(m.work_transfers)});
    }
    std::printf("-- min_split_amount (crumb-transfer guard) --\n");
    emit(t);
  }

  {  // --- bridge patience -------------------------------------------------
    Table t({"patience_us", "exec_sec", "bridge_requests"});
    for (std::int64_t us : {75, 300, 1200, 100000}) {
      auto config = bb_config(lb::Strategy::kOverlayBTD, n, seed);
      config.overlay.bridge_patience = sim::microseconds(us);
      const auto m = run_one(config, jobs, machines);
      t.add_row({Table::cell(us), Table::cell(m.exec_seconds, 4),
                 Table::cell(m.sent_by_type[lb::kReqBridge])});
    }
    std::printf("-- bridge patience (re-pick pacing; large = park forever) --\n");
    emit(t);
  }

  {  // --- chunk size (polling granularity) --------------------------------
    Table t({"chunk_units", "exec_sec", "events"});
    for (std::uint64_t chunk : {8u, 32u, 128u, 512u}) {
      auto config = bb_config(lb::Strategy::kOverlayBTD, n, seed);
      config.chunk_units = chunk;
      const auto m = run_one(config, jobs, machines);
      t.add_row({Table::cell(chunk), Table::cell(m.exec_seconds, 4),
                 Table::cell(m.events)});
    }
    std::printf("-- compute chunk size (message-service latency trade-off) --\n");
    emit(t);
  }

  {  // --- bound diffusion --------------------------------------------------
    Table t({"diffusion", "exec_sec", "explored_nodes"});
    for (bool diffuse : {true, false}) {
      auto config = bb_config(lb::Strategy::kOverlayBTD, n, seed);
      config.diffuse_bounds = diffuse;
      const auto m = run_one(config, jobs, machines);
      t.add_row({diffuse ? "on" : "off", Table::cell(m.exec_seconds, 4),
                 Table::cell(m.total_units)});
    }
    std::printf("-- best-bound diffusion along the overlay --\n");
    emit(t);
  }

  {  // --- transfer granularity: steal-1 / steal-2 / steal-half / proportional
    // The paper's §I discussion (after Dinan et al.): fixed tiny grains
    // flood the network with balancing operations; steal-half is the
    // strong classical choice; the overlay-proportional policy adapts.
    Table t({"policy", "exec_sec", "work_transfers"});
    struct Policy {
      const char* label;
      lb::SplitPolicy split;
      std::uint64_t units;
    };
    const Policy policies[] = {{"steal-1", lb::SplitPolicy::kFixedUnits, 1},
                               {"steal-2", lb::SplitPolicy::kFixedUnits, 2},
                               {"steal-64", lb::SplitPolicy::kFixedUnits, 64},
                               {"steal-half", lb::SplitPolicy::kHalf, 0},
                               {"proportional", lb::SplitPolicy::kSubtreeProportional, 0}};
    for (const Policy& p : policies) {
      auto config = bb_config(lb::Strategy::kOverlayTD, n, seed);
      config.overlay.split = p.split;
      config.overlay.split_fixed_units = p.units;
      config.min_split_amount = 1;  // let tiny grains actually happen
      const auto m = run_one(config, jobs, machines);
      t.add_row({p.label, Table::cell(m.exec_seconds, 4),
                 Table::cell(m.work_transfers)});
    }
    std::printf("-- transfer granularity (steal-k vs steal-half vs proportional) --\n");
    emit(t);
  }

  {  // --- heterogeneous cluster: capacity-aware overlay (future work) -----
    // 30% of peers run at quarter speed. The capacity-weighted converge-cast
    // makes the proportional policy route work towards actual compute power.
    Table t({"configuration", "exec_sec"});
    for (int mode = 0; mode < 3; ++mode) {
      auto config = bb_config(mode == 2 ? lb::Strategy::kRWS
                                        : lb::Strategy::kOverlayBTD,
                              n, seed);
      config.het.fraction = 0.3;
      config.het.slow_factor = 0.25;
      config.het.capacity_weighted = mode == 1;
      const auto m = run_one(config, jobs, machines);
      t.add_row({mode == 0   ? "BTD, unweighted overlay"
                 : mode == 1 ? "BTD, capacity-weighted overlay"
                             : "RWS (oblivious)",
                 Table::cell(m.exec_seconds, 4)});
    }
    std::printf("-- heterogeneous cluster (30%% of peers at 0.25x speed) --\n");
    emit(t);
    std::printf("# Capacity weighting implements the paper's concluding "
                "proposal: adapt the overlay to the nature of the resources.\n");
  }
  return 0;
}
