// Shared run-and-assert scaffolding for the protocol test suites
// (test_lb_overlay, test_lb_baselines, test_faults): canonical UTS
// instances, a canonical paper-network RunConfig, and the core
// "no hang + no premature termination" property check.
#pragma once

#include <gtest/gtest.h>

#include "lb/driver.hpp"
#include "uts/uts_work.hpp"

namespace olb::test_util {

/// The suite's canonical small UTS instance family: binomial shape, fast
/// hash, m = 2, parameterised by root seed (and optionally size/decay so a
/// test can pick a denser or near-empty tree).
inline uts::Params uts_params(std::uint32_t root_seed, int b0 = 150,
                              double q = 0.48) {
  uts::Params p;
  p.shape = uts::TreeShape::kBinomial;
  p.hash = uts::HashMode::kFast;
  p.b0 = b0;
  p.q = q;
  p.m = 2;
  p.root_seed = root_seed;
  return p;
}

/// Canonical run configuration on the paper's network model. event_limit 0
/// keeps the driver's default budget; fault suites pass a tight watchdog so
/// a non-terminating protocol fails fast instead of stalling ctest.
inline lb::RunConfig base_config(lb::Strategy s, int n, int dmax,
                                 std::uint64_t seed,
                                 std::uint64_t event_limit = 0) {
  lb::RunConfig c;
  c.strategy = s;
  c.num_peers = n;
  c.dmax = dmax;
  c.seed = seed;
  c.net = lb::paper_network(n);
  if (event_limit != 0) c.limits.event_limit = event_limit;
  return c;
}

/// Runs UTS under `config` and checks the two load-bearing properties
/// against the sequential reference:
///
///  * no hang — `metrics.ok` (watchdog-limited when the config says so);
///  * no premature termination — UTS node counts are a run invariant, so a
///    run that destroyed no work (work_lost_units == 0) must count
///    *exactly* the sequential total, and a lossy one at most that.
///
/// Returns the metrics for extra per-test checks.
inline lb::RunMetrics check_uts_run(const lb::RunConfig& config,
                                    const uts::Params& params) {
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto seq = lb::run_sequential(workload);
  const auto m = lb::run_distributed(workload, config);
  EXPECT_TRUE(m.ok) << "hang or event-limit hit";
  if (m.work_lost_units == 0.0) {
    EXPECT_EQ(m.total_units, seq.units) << "premature termination";
  } else {
    EXPECT_LE(m.total_units, seq.units);
    EXPECT_GE(m.total_units + static_cast<std::uint64_t>(m.work_lost_units),
              std::uint64_t{1});
  }
  return m;
}

}  // namespace olb::test_util
