// Property tests for the fault-injection layer and the protocols'
// degraded-mode guarantees, swept over (fault pattern x seed) — well over
// fifty distinct combinations across the suite.
//
// The two load-bearing properties, checked on every swept run:
//
//  * no hang: `metrics.ok` under a tight event-limit watchdog, so a
//    protocol that stops making progress fails the test instead of
//    stalling ctest;
//  * no premature termination: UTS node counts are a run invariant, so
//    whenever no in-flight work was destroyed (work_lost_units == 0) the
//    run must explore *exactly* the sequential count — terminating early
//    with work still in the system would show up as a shortfall here.
#include <gtest/gtest.h>

#include <sstream>

#include "bb/bb_work.hpp"
#include "bb/interval_bb.hpp"
#include "lb/driver.hpp"
#include "overlay/tree_overlay.hpp"
#include "simnet/faults.hpp"
#include "test_util.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

uts::Params small_uts(std::uint32_t root_seed) {
  return test_util::uts_params(root_seed, /*b0=*/200, /*q=*/0.47);
}

lb::RunConfig faulty_config(lb::Strategy s, int n, std::uint64_t seed) {
  // Watchdog: a protocol that loops on retries instead of terminating must
  // fail fast, not burn the default 400M-event budget.
  return test_util::base_config(s, n, /*dmax=*/10, seed,
                                /*event_limit=*/30'000'000);
}

/// The suite's canonical faulty UTS run: instance 91 under `config`, with
/// the shared no-hang / no-premature-termination property check.
lb::RunMetrics check_uts_run(const lb::RunConfig& config) {
  return test_util::check_uts_run(config, small_uts(91));
}

// --- link faults only: nothing may be lost, counts must stay exact -------

TEST(Faults, UtsExactUnderLinkFaults) {
  for (auto s : {lb::Strategy::kOverlayBTD, lb::Strategy::kOverlayTD,
                 lb::Strategy::kRWS}) {
    for (double drop : {0.02, 0.1, 0.2}) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {  // 27 combos
        auto config = faulty_config(s, 12, seed);
        config.faults.link.drop_prob = drop;
        config.faults.link.dup_prob = drop / 2;
        config.faults.link.spike_prob = drop / 2;
        const auto m = check_uts_run(config);
        EXPECT_EQ(m.work_lost_units, 0.0);  // only crashes destroy work
        EXPECT_EQ(m.peers_crashed, 0u);
        if (drop > 0.0) {
          EXPECT_GT(m.msgs_dropped, 0u);
        }
      }
    }
  }
}

// --- crashes (plus background message loss) ------------------------------

TEST(Faults, UtsOverlaySurvivesCrashes) {
  for (auto s : {lb::Strategy::kOverlayBTD, lb::Strategy::kOverlayTD}) {
    for (int crashes : {1, 2, 3}) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {  // 18 combos
        auto config = faulty_config(s, 16, seed);
        config.faults = sim::make_random_crashes(
            crashes, 16, sim::microseconds(500), sim::milliseconds(4), seed);
        config.faults.link.drop_prob = 0.05;
        config.faults.link.dup_prob = 0.02;
        const auto m = check_uts_run(config);
        EXPECT_EQ(m.peers_crashed, static_cast<std::uint64_t>(crashes));
      }
    }
  }
}

TEST(Faults, UtsRwsSurvivesCrashes) {
  for (int crashes : {1, 2}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {  // 6 combos
      auto config = faulty_config(lb::Strategy::kRWS, 16, seed);
      const int initiator = lb::rws_initiator(seed, 16);
      // The termination initiator must survive; redraw until it does.
      for (std::uint64_t attempt = 0;; ++attempt) {
        auto plan = sim::make_random_crashes(crashes, 16, sim::microseconds(500),
                                             sim::milliseconds(4),
                                             seed ^ (attempt << 32));
        bool ok = true;
        for (const auto& c : plan.crashes) ok = ok && c.peer != initiator;
        if (ok) {
          config.faults = plan;
          break;
        }
      }
      config.faults.link.drop_prob = 0.05;
      const auto m = check_uts_run(config);
      EXPECT_EQ(m.peers_crashed, static_cast<std::uint64_t>(crashes));
    }
  }
}

// --- B&B optima ----------------------------------------------------------

TEST(Faults, MwOptimumExactUnderCrashes) {
  // MW reclaims a crashed worker's whole interval, so the proved optimum
  // stays exact no matter which workers die.
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(4, 9, 5);
  const auto ref = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  for (int crashes : {1, 2}) {
    for (std::uint64_t seed : {1u, 2u}) {  // 4 combos
      bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
      auto config = faulty_config(lb::Strategy::kMW, 16, seed);
      config.faults = sim::make_random_crashes(
          crashes, 16, sim::microseconds(500), sim::milliseconds(4), seed);
      config.faults.link.drop_prob = 0.05;
      const auto m = lb::run_distributed(workload, config);
      ASSERT_TRUE(m.ok);
      EXPECT_EQ(m.best_bound, ref.optimum);
      EXPECT_EQ(m.peers_crashed, static_cast<std::uint64_t>(crashes));
    }
  }
}

TEST(Faults, AhmwSurvivesLeafCrashes) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(4, 9, 5);
  const auto ref = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  for (int crashes : {1, 2}) {
    for (std::uint64_t seed : {1u, 2u}) {  // 4 combos
      bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
      auto config = faulty_config(lb::Strategy::kAHMW, 16, seed);
      const auto tree = overlay::TreeOverlay::deterministic(16, config.dmax);
      int added = 0;
      for (int p = 15; p >= 1 && added < crashes; --p) {
        if (!tree.children(p).empty()) continue;  // AHMW tolerates leaf crashes
        config.faults.add_crash(p, sim::milliseconds(1 + added));
        ++added;
      }
      ASSERT_EQ(added, crashes);
      config.faults.link.drop_prob = 0.05;
      const auto m = lb::run_distributed(workload, config);
      ASSERT_TRUE(m.ok);
      // A leaf's in-flight subproblems may be destroyed with it, so the
      // proved bound can only be pessimistic, never better than optimal.
      EXPECT_GE(m.best_bound, ref.optimum);
      if (m.work_lost_units == 0.0) {
        EXPECT_EQ(m.best_bound, ref.optimum);
      }
    }
  }
}

// --- determinism ---------------------------------------------------------

std::string faulty_trace_ndjson() {
  uts::UtsWorkload workload(small_uts(91), uts::CostModel{});
  auto config = faulty_config(lb::Strategy::kOverlayBTD, 12, 5);
  config.faults.link.drop_prob = 0.1;
  config.faults.link.dup_prob = 0.05;
  config.faults.link.spike_prob = 0.05;
  config.faults.add_crash(7, sim::milliseconds(2));
  trace::RingTracer tracer(4096);
  config.tracer = &tracer;
  const auto m = lb::run_distributed(workload, config);
  EXPECT_TRUE(m.ok);
  EXPECT_EQ(m.peers_crashed, 1u);
  EXPECT_GT(tracer.dropped(), 0u);  // the ring wrapped: this is the tail
  const auto events = tracer.snapshot();
  std::ostringstream os;
  trace::write_ndjson(os, events);
  return os.str();
}

TEST(Faults, RingTracerDeterministicUnderFaults) {
  // A faulty run is still a pure function of (config, seed): two identical
  // runs must produce byte-identical ring-buffer tails.
  const std::string first = faulty_trace_ndjson();
  const std::string second = faulty_trace_ndjson();
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, second);
  // The crash itself falls off the ring's tail; link faults run to the end.
  EXPECT_NE(first.find("msg_drop"), std::string::npos);
}

TEST(Faults, ZeroPlanIsInert) {
  // An explicitly attached all-zero plan is exactly the fault-free run:
  // same metrics, byte-identical trace.
  auto run = [](bool attach_zero_plan) {
    uts::UtsWorkload workload(small_uts(91), uts::CostModel{});
    auto config = faulty_config(lb::Strategy::kOverlayBTD, 12, 3);
    if (attach_zero_plan) config.faults = sim::FaultPlan{};
    trace::VectorTracer tracer;
    config.tracer = &tracer;
    const auto m = lb::run_distributed(workload, config);
    EXPECT_TRUE(m.ok);
    std::ostringstream os;
    trace::write_ndjson(os, tracer.snapshot());
    return std::make_pair(m, os.str());
  };
  const auto [base, base_trace] = run(false);
  const auto [zero, zero_trace] = run(true);
  EXPECT_EQ(base.total_messages, zero.total_messages);
  EXPECT_EQ(base.total_units, zero.total_units);
  EXPECT_DOUBLE_EQ(base.exec_seconds, zero.exec_seconds);
  EXPECT_EQ(base_trace, zero_trace);
  EXPECT_EQ(zero.msgs_dropped, 0u);
  EXPECT_EQ(zero.retries, 0u);
}

// --- plan and per-strategy validation ------------------------------------

TEST(FaultPlanDeathTest, RejectsMalformedPlans) {
  sim::FaultInjector injector;
  {
    sim::FaultPlan plan;
    plan.link.drop_prob = -0.1;
    EXPECT_DEATH(injector.configure(plan, 8, 1), "");
  }
  {
    sim::FaultPlan plan;
    plan.add_crash(8, sim::milliseconds(1));  // out of range for 8 peers
    EXPECT_DEATH(injector.configure(plan, 8, 1), "");
  }
  {
    sim::FaultPlan plan;
    plan.add_crash(3, sim::milliseconds(1)).add_crash(3, sim::milliseconds(2));
    EXPECT_DEATH(injector.configure(plan, 8, 1), "");
  }
}

TEST(FaultPlanDeathTest, RejectsProtocolCriticalVictims) {
  auto base = [](lb::Strategy s) {
    lb::RunConfig config;
    config.strategy = s;
    config.num_peers = 16;
    config.net = lb::paper_network(16);
    return config;
  };
  {
    auto config = base(lb::Strategy::kOverlayBTD);
    config.faults.add_crash(0, sim::milliseconds(1));  // overlay root
    EXPECT_DEATH(lb::validate_faults_for_strategy(config), "");
  }
  {
    auto config = base(lb::Strategy::kMW);
    config.faults.add_crash(0, sim::milliseconds(1));  // master
    EXPECT_DEATH(lb::validate_faults_for_strategy(config), "");
  }
  {
    auto config = base(lb::Strategy::kRWS);
    config.faults.add_crash(lb::rws_initiator(config.seed, 16),
                            sim::milliseconds(1));
    EXPECT_DEATH(lb::validate_faults_for_strategy(config), "");
  }
  {
    auto config = base(lb::Strategy::kAHMW);
    config.faults.add_crash(1, sim::milliseconds(1));  // interior coordinator
    EXPECT_DEATH(lb::validate_faults_for_strategy(config), "");
  }
}

// --- strategy registry ---------------------------------------------------

TEST(StrategyRegistry, RoundTripsEveryStrategy) {
  for (lb::Strategy s : lb::all_strategies()) {
    lb::Strategy parsed;
    ASSERT_TRUE(lb::strategy_from_name(lb::strategy_name(s), &parsed));
    EXPECT_EQ(parsed, s);
    EXPECT_NE(lb::strategy_names().find(lb::strategy_name(s)), std::string::npos);
  }
}

TEST(StrategyRegistry, ParsesCaseInsensitivelyAndRejectsUnknown) {
  lb::Strategy s;
  ASSERT_TRUE(lb::strategy_from_name("btd", &s));
  EXPECT_EQ(s, lb::Strategy::kOverlayBTD);
  ASSERT_TRUE(lb::strategy_from_name("ahmw", &s));
  EXPECT_EQ(s, lb::Strategy::kAHMW);
  EXPECT_FALSE(lb::strategy_from_name("", &s));
  EXPECT_FALSE(lb::strategy_from_name("bogus", &s));
}

}  // namespace
}  // namespace olb
