// Tests for the structured tracing subsystem: sink semantics (RingTracer
// overflow), determinism of the NDJSON export across identical runs, the
// shape of the Perfetto export, and the trace-derived RunMetrics fields.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "lb/driver.hpp"
#include "lb/messages.hpp"
#include "simnet/engine.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

// ------------------------------------------------------------------ sinks ---

TEST(RingTracer, KeepsTheLastCapacityEventsAndCountsDrops) {
  trace::RingTracer ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.record({sim::Time{i}, trace::EventKind::kRequest, 0, -1, 0, i, 0});
  }
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].a, 6 + i) << "oldest-first";
  }
}

TEST(RingTracer, NoDropsBelowCapacity) {
  trace::RingTracer ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.record({sim::Time{i}, trace::EventKind::kServe, 1, 2, 0, i, 0});
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.snapshot().size(), 5u);
}

TEST(Trace, FractionPpmIsStable) {
  EXPECT_EQ(trace::fraction_ppm(0.5), 500000);
  EXPECT_EQ(trace::fraction_ppm(0.0), 0);
  EXPECT_EQ(trace::fraction_ppm(1.0), 1000000);
}

// ------------------------------------------------------------ determinism ---

uts::Params tiny_uts() {
  uts::Params p;
  p.hash = uts::HashMode::kFast;
  p.b0 = 200;
  p.q = 0.47;
  p.m = 2;
  p.root_seed = 77;
  return p;
}

lb::RunConfig tiny_config(trace::TraceSink* tracer) {
  lb::RunConfig config;
  config.strategy = lb::Strategy::kOverlayBTD;
  config.num_peers = 16;
  config.net = lb::paper_network(16);
  config.seed = 3;
  config.tracer = tracer;
  return config;
}

std::string traced_ndjson(lb::RunMetrics* metrics_out = nullptr) {
  uts::UtsWorkload workload(tiny_uts(), uts::CostModel{});
  trace::VectorTracer tracer;
  const auto metrics = lb::run_distributed(workload, tiny_config(&tracer));
  EXPECT_TRUE(metrics.ok);
  if (metrics_out != nullptr) *metrics_out = metrics;
  std::ostringstream os;
  trace::write_ndjson(os, tracer.snapshot());
  return os.str();
}

TEST(Trace, NdjsonIsByteIdenticalAcrossIdenticalRuns) {
  const std::string first = traced_ndjson();
  const std::string second = traced_ndjson();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Trace, TracingDoesNotPerturbTheRun) {
  uts::UtsWorkload untraced_workload(tiny_uts(), uts::CostModel{});
  const auto untraced =
      lb::run_distributed(untraced_workload, tiny_config(nullptr));
  lb::RunMetrics traced;
  (void)traced_ndjson(&traced);
  EXPECT_EQ(untraced.total_units, traced.total_units);
  EXPECT_EQ(untraced.total_messages, traced.total_messages);
  EXPECT_DOUBLE_EQ(untraced.exec_seconds, traced.exec_seconds);
}

// ---------------------------------------------------------------- exports ---

TEST(Trace, PerfettoExportHasTracksSlicesAndFlows) {
  uts::UtsWorkload workload(tiny_uts(), uts::CostModel{});
  trace::VectorTracer tracer;
  const auto config = tiny_config(&tracer);
  const auto metrics = lb::run_distributed(workload, config);
  ASSERT_TRUE(metrics.ok);

  std::ostringstream os;
  trace::PerfettoOptions opts;
  opts.num_actors = config.num_peers;
  opts.work_msg_type = lb::kWork;
  opts.type_name = lb::msg_type_name;
  opts.handling_cost = config.net.msg_handling_cost;
  trace::write_perfetto(os, tracer.snapshot(), opts);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "complete slices";
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << "flow start";
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << "flow end";
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << "counters";
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  // Balanced braces/brackets is a cheap structural-validity proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// -------------------------------------------------------- derived metrics ---

TEST(Trace, RunMetricsGainQueueingDelayAndTimelines) {
  lb::RunMetrics metrics;
  (void)traced_ndjson(&metrics);
  EXPECT_GT(metrics.queueing_delay_mean, 0.0);
  EXPECT_GE(metrics.queueing_delay_max, metrics.queueing_delay_mean);
  EXPECT_GT(metrics.trace_events, 0u);
  EXPECT_EQ(metrics.trace_dropped, 0u);
  EXPECT_FALSE(metrics.work_in_flight.empty());
  EXPECT_FALSE(metrics.idle_peers.empty());
  EXPECT_FALSE(metrics.pending_depth.empty());
  EXPECT_EQ(metrics.work_in_flight.size(), metrics.idle_peers.size());
  EXPECT_EQ(metrics.work_in_flight.size(), metrics.pending_depth.size());
}

TEST(Trace, QueueingDelayIsMeasuredWithoutATracerToo) {
  uts::UtsWorkload workload(tiny_uts(), uts::CostModel{});
  const auto metrics = lb::run_distributed(workload, tiny_config(nullptr));
  ASSERT_TRUE(metrics.ok);
  EXPECT_GT(metrics.queueing_delay_mean, 0.0);
  EXPECT_GE(metrics.queueing_delay_max, metrics.queueing_delay_mean);
  EXPECT_EQ(metrics.trace_events, 0u);
  EXPECT_TRUE(metrics.work_in_flight.empty());
}

TEST(Trace, TinyRingTracerDropsButStillExports) {
  uts::UtsWorkload workload(tiny_uts(), uts::CostModel{});
  trace::RingTracer tracer(64);
  const auto metrics = lb::run_distributed(workload, tiny_config(&tracer));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.trace_events, 64u);
  EXPECT_GT(metrics.trace_dropped, 0u);
  std::ostringstream os;
  trace::write_ndjson(os, tracer.snapshot());
  EXPECT_FALSE(os.str().empty());
}

// --------------------------------------------------------------- timeline ---

TEST(Trace, DeriveTimelineCountsWorkInFlightAndIdlePeers) {
  using trace::EventKind;
  const sim::Time ms = sim::milliseconds(1);
  std::vector<trace::TraceEvent> events = {
      {0, EventKind::kIdleBegin, 1, -1, 0, 1, 0},
      {0, EventKind::kMsgSend, 0, 1, lb::kWork, 7, 0},
      {ms / 2, EventKind::kQueueDepth, 0, -1, 0, 3, 0},
      {2 * ms, EventKind::kMsgDeliver, 1, 0, lb::kWork, 7, 0},
      {2 * ms, EventKind::kIdleEnd, 1, 0, 0, 1, 0},
      {3 * ms, EventKind::kQueueDepth, 0, -1, 0, 0, 0},
  };
  const auto tl = trace::derive_timeline(events, ms, lb::kWork);
  ASSERT_EQ(tl.work_in_flight.size(), 4u);
  EXPECT_DOUBLE_EQ(tl.work_in_flight[0], 1.0);  // sent in bucket 0 ...
  EXPECT_DOUBLE_EQ(tl.work_in_flight[1], 1.0);
  EXPECT_DOUBLE_EQ(tl.work_in_flight[2], 0.0);  // ... delivered at 2 ms
  EXPECT_DOUBLE_EQ(tl.idle_peers[1], 1.0);
  EXPECT_DOUBLE_EQ(tl.idle_peers[2], 0.0);
  EXPECT_DOUBLE_EQ(tl.pending_depth[1], 3.0);
  EXPECT_DOUBLE_EQ(tl.pending_depth[3], 0.0);
}

}  // namespace
}  // namespace olb
