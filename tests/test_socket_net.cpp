// End-to-end tests of the socket backend (runtime::SocketNet +
// runtime::run_sockets): a real multi-rank cluster over loopback TCP —
// ranks as in-process threads, each with its own workload instance and
// transport, exactly as separate processes would be — must reproduce the
// execution-order-independent invariants: exact UTS node counts, exact B&B
// optima, identical aggregate metrics on every rank, and per-rank traces
// that pass the conformance oracles after a causal merge.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bb/bb_work.hpp"
#include "check/oracles.hpp"
#include "check/trace_merge.hpp"
#include "lb/driver.hpp"
#include "lb/messages.hpp"
#include "runtime/runtime.hpp"
#include "runtime/wire.hpp"
#include "trace/export.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

/// Kernel-chosen free loopback ports. The bind-then-close race against
/// other processes is acceptable for a test.
std::vector<std::string> loopback_address_table(int n) {
  std::vector<std::string> table;
  for (int i = 0; i < n; ++i) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    table.push_back("127.0.0.1:" + std::to_string(ntohs(addr.sin_port)));
    close(fd);
  }
  return table;
}

lb::RunConfig socket_config(lb::Strategy strategy, int rank,
                            const std::vector<std::string>& table,
                            std::uint64_t chunk) {
  lb::RunConfig c;
  c.strategy = strategy;
  c.num_peers = static_cast<int>(table.size());
  c.dmax = 3;
  c.seed = 1;
  c.chunk_units = chunk;
  c.backend = lb::Backend::kSockets;
  c.limits.time_limit = sim::seconds(120.0);  // wall-clock watchdog
  c.sockets.rank = rank;
  c.sockets.peers = table;
  return c;
}

uts::Params small_uts_params() {
  uts::Params p;
  p.b0 = 200;
  p.q = 0.45;
  p.m = 2;
  p.root_seed = 3;  // ~2000 expected nodes
  return p;
}

/// Runs every rank of a socket cluster as an in-process thread, each with
/// its own workload built by `make_workload` — process-isolation semantics
/// without fork, since SocketNet holds no process-global state.
template <typename MakeWorkload>
std::vector<runtime::ThreadRunMetrics> run_cluster(
    int n, lb::Strategy strategy, std::uint64_t chunk,
    const MakeWorkload& make_workload, const std::string& trace_prefix = "",
    std::vector<std::unique_ptr<lb::Workload>>* keep_workloads = nullptr,
    const std::function<void(lb::RunConfig&)>& tweak = {}) {
  const auto table = loopback_address_table(n);
  std::vector<runtime::ThreadRunMetrics> results(static_cast<std::size_t>(n));
  std::vector<std::unique_ptr<lb::Workload>> workloads;
  for (int rank = 0; rank < n; ++rank) workloads.push_back(make_workload());
  std::vector<std::thread> ranks;
  for (int rank = 0; rank < n; ++rank) {
    ranks.emplace_back([&, rank] {
      lb::RunConfig config = socket_config(strategy, rank, table, chunk);
      config.sockets.trace_prefix = trace_prefix;
      if (tweak) tweak(config);
      results[static_cast<std::size_t>(rank)] = runtime::run_sockets(
          *workloads[static_cast<std::size_t>(rank)], config);
    });
  }
  for (std::thread& t : ranks) t.join();
  if (keep_workloads != nullptr) *keep_workloads = std::move(workloads);
  return results;
}

TEST(SocketNet, UtsExactNodeCountAcrossFourRanks) {
  uts::UtsWorkload reference(small_uts_params(), uts::CostModel{});
  const auto seq = lb::run_sequential(reference);
  ASSERT_GT(seq.units, 100u);

  const auto results = run_cluster(4, lb::Strategy::kOverlayBTD, 64, [] {
    return std::make_unique<uts::UtsWorkload>(small_uts_params(),
                                              uts::CostModel{});
  });
  for (const auto& m : results) {
    EXPECT_TRUE(m.ok);
    // Every rank aggregates the same cluster-wide totals.
    EXPECT_EQ(m.total_units, seq.units);
    EXPECT_EQ(m.total_messages, results.front().total_messages);
    EXPECT_EQ(m.work_transfers, results.front().work_transfers);
    ASSERT_EQ(m.final_state.size(), 4u);
    for (const auto& tap : m.final_state) {
      EXPECT_TRUE(tap.terminated);
      EXPECT_FALSE(tap.holds_work);
    }
  }
}

TEST(SocketNet, UtsTdStrategyAlsoExact) {
  uts::UtsWorkload reference(small_uts_params(), uts::CostModel{});
  const auto seq = lb::run_sequential(reference);

  const auto results = run_cluster(3, lb::Strategy::kOverlayTD, 32, [] {
    return std::make_unique<uts::UtsWorkload>(small_uts_params(),
                                              uts::CostModel{});
  });
  for (const auto& m : results) {
    EXPECT_TRUE(m.ok);
    EXPECT_EQ(m.total_units, seq.units);
  }
}

TEST(SocketNet, BBOptimumAndSolutionMergeAcrossRanks) {
  auto make = [] {
    return std::make_unique<bb::BBWorkload>(
        bb::FlowshopInstance::ta20x20_scaled(0, 8, 5),
        bb::BoundKind::kOneMachine, bb::CostModel{});
  };
  auto reference = make();
  const auto seq = lb::run_sequential(*reference);
  ASSERT_NE(seq.bound, lb::kNoBound);

  std::vector<std::unique_ptr<lb::Workload>> workloads;
  const auto results =
      run_cluster(4, lb::Strategy::kOverlayBTD, 32, make, "", &workloads);
  for (const auto& m : results) {
    EXPECT_TRUE(m.ok);
    EXPECT_EQ(m.best_bound, seq.bound);
  }
  // The result exchange merged the winning schedule into every rank's
  // incumbent, not just the rank that found it.
  for (const auto& wl : workloads) {
    auto* bb_wl = dynamic_cast<bb::BBWorkload*>(wl.get());
    ASSERT_NE(bb_wl, nullptr);
    EXPECT_EQ(bb_wl->best().makespan(), seq.bound);
    EXPECT_EQ(bb_wl->best().permutation(),
              dynamic_cast<bb::BBWorkload*>(workloads.front().get())
                  ->best()
                  .permutation());
  }
}

TEST(SocketNet, PerRankTracesPassOraclesAfterCausalMerge) {
  const std::string prefix = testing::TempDir() + "socket_trace";
  const int n = 4;
  const auto results = run_cluster(n, lb::Strategy::kOverlayBTD, 64, [] {
    return std::make_unique<uts::UtsWorkload>(small_uts_params(),
                                              uts::CostModel{});
  }, prefix);
  for (const auto& m : results) ASSERT_TRUE(m.ok);

  std::vector<std::vector<trace::TraceEvent>> streams;
  for (int rank = 0; rank < n; ++rank) {
    const std::string path =
        prefix + ".run0.rank" + std::to_string(rank) + ".ndjson";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    streams.push_back(trace::read_ndjson(in));
    EXPECT_FALSE(streams.back().empty()) << path;
  }
  const auto merged = check::merge_causal(streams);

  check::OracleOptions options;
  options.work_msg_type = lb::kWork;
  options.faults_possible = false;
  options.expect_no_clamp = true;
  options.strict_link_fifo = false;  // ranks share no clock or link order
  check::OracleSet oracles(options);
  for (const trace::TraceEvent& e : merged) oracles.record(e);
  oracles.finish();
  for (const auto& v : oracles.violations()) {
    ADD_FAILURE() << check::to_string(v);
  }

  int terminated = 0;
  for (const trace::TraceEvent& e : merged) {
    if (e.kind == trace::EventKind::kTerminated) ++terminated;
  }
  EXPECT_EQ(terminated, n);
}

TEST(SocketNet, UtsExactUnderJoinAndLeaveChurn) {
  // One dormant rank joins mid-run and one initial member drains out — the
  // same elastic-membership protocol the sim tests cover, here over real
  // TCP links on every rank of a four-process-shaped cluster.
  uts::UtsWorkload reference(small_uts_params(), uts::CostModel{});
  const auto seq = lb::run_sequential(reference);

  const auto results = run_cluster(
      4, lb::Strategy::kOverlayBTD, 64,
      [] {
        return std::make_unique<uts::UtsWorkload>(small_uts_params(),
                                                  uts::CostModel{});
      },
      "", nullptr, [](lb::RunConfig& config) {
        config.churn = lb::make_random_churn(
            /*joins=*/1, /*leaves=*/1, /*num_peers=*/4, sim::milliseconds(1),
            sim::milliseconds(10), /*seed=*/99);
      });
  for (const auto& m : results) {
    EXPECT_TRUE(m.ok);
    EXPECT_EQ(m.total_units, seq.units);
    ASSERT_EQ(m.final_state.size(), 4u);
    for (const auto& tap : m.final_state) {
      EXPECT_TRUE(tap.terminated);
      EXPECT_FALSE(tap.holds_work);
    }
  }
}

TEST(SocketNet, RogueConnectionKilledMidFrameDoesNotDisturbTheCluster) {
  // Regression for the partially-written-frame path: a connection that dies
  // after delivering only a prefix of a frame header must park as kNeedMore
  // and be torn down on the EOF/RST, never tripping the garbage-header
  // check or wedging the rank. Two rogues hit rank 0 mid-run — one closing
  // cleanly (FIN after 5 header bytes), one abruptly (RST via SO_LINGER 0)
  // — and the cluster must still finish with exact counts.
  uts::UtsWorkload reference(small_uts_params(), uts::CostModel{});
  const auto seq = lb::run_sequential(reference);

  const int n = 3;
  const auto table = loopback_address_table(n);
  const std::string& target = table[0];
  const auto port = static_cast<std::uint16_t>(
      std::stoi(target.substr(target.find(':') + 1)));

  std::vector<runtime::ThreadRunMetrics> results(n);
  std::vector<std::unique_ptr<lb::Workload>> workloads;
  for (int rank = 0; rank < n; ++rank) {
    workloads.push_back(std::make_unique<uts::UtsWorkload>(small_uts_params(),
                                                           uts::CostModel{}));
  }
  const auto launch_rank = [&](int rank) {
    return std::thread([&, rank] {
      const lb::RunConfig config =
          socket_config(lb::Strategy::kOverlayTD, rank, table, 32);
      results[static_cast<std::size_t>(rank)] =
          runtime::run_sockets(*workloads[static_cast<std::size_t>(rank)],
                               config);
    });
  };
  // Only rank 0 at first: it cannot finish (or even leave bootstrap) until
  // ranks 1 and 2 appear, so the rogues below are guaranteed to hit a live,
  // mid-run epoll loop — no race against the cluster completing.
  std::vector<std::thread> ranks;
  ranks.push_back(launch_rank(0));

  // Rank 0 binds its listener during startup; retry until it is up.
  const auto connect_rogue = [&]() -> int {
    for (int attempt = 0; attempt < 5000; ++attempt) {
      const int fd = socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return -1;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port);
      if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
        return fd;
      }
      close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return -1;
  };

  // A valid frame truncated after 5 bytes: well inside the 12-byte header,
  // so the receiver cannot tell it from a slow legitimate peer.
  const auto frame =
      runtime::make_frame(runtime::FrameType::kHello, runtime::WireWriter{});
  static_assert(runtime::kFrameHeaderSize > 5);
  bool rogues_connected = true;
  for (const bool abortive : {false, true}) {
    const int fd = connect_rogue();
    if (fd < 0) {
      rogues_connected = false;  // reported after the join below
      continue;
    }
    EXPECT_EQ(send(fd, frame.data(), 5, MSG_NOSIGNAL), 5);
    // Give the rank a chance to read the partial header before the close
    // lands, so both orderings (bytes then EOF, bytes+EOF together) occur
    // across the two rogues.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (abortive) {
      const linger hard{1, 0};  // close() sends RST, not FIN
      EXPECT_EQ(setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard), 0);
    }
    close(fd);
  }

  // Now let the cluster form and run to completion.
  for (int rank = 1; rank < n; ++rank) ranks.push_back(launch_rank(rank));
  for (std::thread& t : ranks) t.join();
  EXPECT_TRUE(rogues_connected) << "rank 0 never started listening";
  for (const auto& m : results) {
    EXPECT_TRUE(m.ok);
    EXPECT_EQ(m.total_units, seq.units);
  }
}

}  // namespace
}  // namespace olb
