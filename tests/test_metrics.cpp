// Tests for the live metrics layer (src/metrics): log-linear histogram
// bucket math and percentile accuracy against the exact order statistics in
// support/stats, lossless sharded merges under real thread contention, the
// two exporter formats, and end-to-end instrumentation through both
// backends — including the guarantee the whole layer is built on: attaching
// a metrics hub must not change a run.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lb/driver.hpp"
#include "metrics/export.hpp"
#include "metrics/hub.hpp"
#include "metrics/metrics.hpp"
#include "runtime/runtime.hpp"
#include "support/stats.hpp"
#include "trace/trace.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

using metrics::Histogram;

// ------------------------------------------------------------ bucket math ---

TEST(MetricsHistogram, ValuesBelowSubBucketsAreExact) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v);
  }
}

TEST(MetricsHistogram, BucketUppersAreStrictlyMonotonic) {
  for (std::size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_upper(i - 1), Histogram::bucket_upper(i)) << i;
  }
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kNumBuckets - 1),
            Histogram::kMaxValue);
}

TEST(MetricsHistogram, BucketOfItsOwnUpperIsIdentity) {
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i)), i) << i;
    // The next value up must land in the next bucket.
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i) + 1), i + 1) << i;
    }
  }
}

TEST(MetricsHistogram, RelativeErrorIsBoundedBySubBucketWidth) {
  // The documented contract: any recorded value is reported (by its bucket
  // upper bound) within 1/16 of its true magnitude.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t v = rng() & Histogram::kMaxValue;
    const std::uint64_t upper = Histogram::bucket_upper(Histogram::bucket_of(v));
    ASSERT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v),
              static_cast<double>(v) / 16.0 + 1.0)
        << v;
  }
}

// ------------------------------------------------- percentile vs. exact ---

/// Records `xs` into a fresh single-shard histogram and checks p50/p90/p99
/// against the exact order statistics of the same sample.
void check_percentiles(const std::vector<std::uint64_t>& xs) {
  metrics::Registry registry(1);
  Histogram* h = registry.histogram("h");
  std::vector<double> exact;
  exact.reserve(xs.size());
  for (std::uint64_t v : xs) {
    h->record(v);
    exact.push_back(static_cast<double>(v));
  }
  const SortedSample sample(std::move(exact));
  const Histogram::Snapshot snap = h->snapshot();
  ASSERT_EQ(snap.count, xs.size());
  for (double p : {0.50, 0.90, 0.99}) {
    const double want = sample.percentile(p);
    const double got = snap.percentile(p);
    // Bucket resolution is 1/16 (~6.25%); allow a little interpolation slack
    // on top plus an absolute epsilon for the exact small-value buckets.
    EXPECT_NEAR(got, want, want * 0.08 + 2.0) << "p=" << p;
  }
  EXPECT_EQ(snap.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(snap.max, *std::max_element(xs.begin(), xs.end()));
}

TEST(MetricsHistogram, PercentilesMatchExactSampleBimodal) {
  // Two well-separated modes — the shape where a mean hides everything and
  // percentile estimation must not smear across the gap. 30% slow puts the
  // mode boundary at rank 0.70, safely away from the queried percentiles:
  // exactly *at* a boundary the exact order statistics interpolate across
  // the gap while the bucket walk stays on one side, and both answers are
  // defensible.
  std::mt19937_64 rng(42);
  std::normal_distribution<double> fast(2'000.0, 150.0);
  std::normal_distribution<double> slow(900'000.0, 40'000.0);
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < 20000; ++i) {
    const double v = (i % 10 < 7) ? fast(rng) : slow(rng);
    xs.push_back(static_cast<std::uint64_t>(std::max(0.0, v)));
  }
  check_percentiles(xs);
}

TEST(MetricsHistogram, PercentilesMatchExactSampleHeavyTail) {
  // Pareto-ish tail spanning five orders of magnitude, the sojourn-time
  // shape under a starving cluster.
  std::mt19937_64 rng(1234);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = 1.0 - u(rng);
    xs.push_back(static_cast<std::uint64_t>(100.0 / std::pow(x, 1.3)));
  }
  check_percentiles(xs);
}

TEST(MetricsHistogram, SumAndClampAtMaxValue) {
  metrics::Registry registry(1);
  Histogram* h = registry.histogram("h");
  h->record(5);
  h->record(10);
  h->record(~std::uint64_t{0});  // clamps to kMaxValue, must not crash
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 15u + Histogram::kMaxValue);
  EXPECT_EQ(snap.max, Histogram::kMaxValue);
  EXPECT_EQ(snap.min, 5u);
}

TEST(MetricsHistogram, EmptyPercentileIsZero) {
  metrics::Registry registry(1);
  const auto snap = registry.histogram("h")->snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.percentile(0.99), 0.0);
}

// ------------------------------------------------------- sharded writes ---

TEST(MetricsConcurrency, ShardedCounterLosesNoIncrements) {
  // Global (peer == -1) instruments in a multi-shard registry must take the
  // fetch_add path; hammer one from many threads and count.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200'000;
  metrics::Registry registry(kThreads);
  metrics::Counter* c = registry.counter("olb_test_total");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(MetricsConcurrency, ShardedHistogramLosesNoRecords) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  metrics::Registry registry(kThreads);
  Histogram* h = registry.histogram("olb_test_ns");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([h, t] {
      // Distinct per-thread values so a lost write shows in sum, not just
      // count.
      const auto v = static_cast<std::uint64_t>(t + 1);
      for (std::uint64_t i = 0; i < kPerThread; ++i) h->record(v);
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    want_sum += static_cast<std::uint64_t>(t + 1) * kPerThread;
  }
  EXPECT_EQ(snap.sum, want_sum);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsConcurrency, SnapshotDuringWritesIsSane) {
  // Reads must never block or corrupt writers: snapshot while 4 threads
  // write, then check the final merged totals are exact.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  metrics::Registry registry(kThreads);
  metrics::Counter* c = registry.counter("olb_test_total");
  Histogram* h = registry.histogram("olb_test_ns");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c, h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c->inc();
        h->record(i & 1023);
      }
    });
  }
  std::uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const auto snap = registry.snapshot(static_cast<std::uint64_t>(probe));
    for (const auto& e : snap.entries) {
      if (e.kind == metrics::Kind::kCounter) {
        EXPECT_GE(e.counter, last);  // monotonic across snapshots
        last = e.counter;
      }
    }
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
}

// ------------------------------------------------------------- registry ---

TEST(MetricsRegistry, GetOrCreateIsIdempotentAndPeerScoped) {
  metrics::Registry registry(1);
  metrics::Counter* a = registry.counter("olb_x_total", 3);
  EXPECT_EQ(registry.counter("olb_x_total", 3), a);
  EXPECT_NE(registry.counter("olb_x_total", 4), a);
  EXPECT_NE(registry.counter("olb_y_total", 3), a);
  EXPECT_EQ(registry.find_counter("olb_x_total", 3), a);
  EXPECT_EQ(registry.find_counter("olb_x_total", 5), nullptr);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, PerClassServiceHistogramsAreDisjoint) {
  // The service gate keys its per-class latency histograms by class id in
  // the peer slot ("olb_svc_sojourn_ns", class). Recordings must never
  // bleed across classes, and the exporter must label the classes apart.
  metrics::Registry registry(1);
  Histogram* high = registry.histogram("olb_svc_sojourn_ns", 0);
  Histogram* low = registry.histogram("olb_svc_sojourn_ns", 1);
  ASSERT_NE(high, low);
  EXPECT_EQ(registry.histogram("olb_svc_sojourn_ns", 0), high);
  high->record(10);
  high->record(20);
  low->record(1000);
  const auto hs = high->snapshot();
  const auto ls = low->snapshot();
  EXPECT_EQ(hs.count, 2u);
  EXPECT_EQ(hs.sum, 30u);
  EXPECT_EQ(ls.count, 1u);
  EXPECT_EQ(ls.sum, 1000u);
  std::ostringstream out;
  metrics::write_prometheus(out, registry.snapshot(1));
  const std::string text = out.str();
  EXPECT_NE(text.find("olb_svc_sojourn_ns_count{peer=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("olb_svc_sojourn_ns_count{peer=\"1\"} 1"),
            std::string::npos);
}

// ------------------------------------------------------------- exporters ---

TEST(MetricsExport, PrometheusTextExposition) {
  metrics::Registry registry(1);
  registry.counter("olb_requests_total", 2)->inc(7);
  registry.gauge("olb_queue_depth", 2)->set(-3);
  Histogram* h = registry.histogram("olb_sojourn_ns", 2);
  h->record(10);
  h->record(100);
  std::ostringstream out;
  metrics::write_prometheus(out, registry.snapshot(123));
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE olb_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("olb_requests_total{peer=\"2\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE olb_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("olb_queue_depth{peer=\"2\"} -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE olb_sojourn_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("olb_sojourn_ns_bucket{peer=\"2\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("olb_sojourn_ns_sum{peer=\"2\"} 110"), std::string::npos);
  EXPECT_NE(text.find("olb_sojourn_ns_count{peer=\"2\"} 2"), std::string::npos);
}

TEST(MetricsExport, NdjsonTimeSeries) {
  metrics::Registry registry(1);
  registry.counter("olb_serves_total", 0)->inc(4);
  registry.gauge("olb_inflight", 0)->set(1);
  Histogram* h = registry.histogram("olb_wait_ns", 0);
  for (int i = 1; i <= 100; ++i) h->record(static_cast<std::uint64_t>(i));
  std::ostringstream out;
  metrics::write_ndjson(out, registry.snapshot(42));
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"t\":42,\"name\":\"olb_serves_total\",\"peer\":0,"
                      "\"kind\":\"counter\",\"v\":4}"),
            std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"gauge\",\"v\":1}"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"olb_wait_ns\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":100"), std::string::npos);
  EXPECT_NE(text.find("\"p50\":"), std::string::npos);
  EXPECT_NE(text.find("\"p99\":"), std::string::npos);
  // One JSON object per line, every line closed.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(MetricsExport, SkipsZeroCountersAndEmptyHistogramsKeepsGauges) {
  metrics::Registry registry(1);
  registry.counter("olb_never_total");
  registry.histogram("olb_never_ns");
  registry.gauge("olb_zero_gauge");  // 0 is a real reading — must appear
  std::ostringstream prom, nd;
  metrics::write_prometheus(prom, registry.snapshot(1));
  metrics::write_ndjson(nd, registry.snapshot(1));
  EXPECT_EQ(prom.str().find("olb_never"), std::string::npos);
  EXPECT_EQ(nd.str().find("olb_never"), std::string::npos);
  EXPECT_NE(prom.str().find("olb_zero_gauge 0"), std::string::npos);
  EXPECT_NE(nd.str().find("\"name\":\"olb_zero_gauge\""), std::string::npos);
}

// ------------------------------------------------------------ end-to-end ---

uts::Params small_uts() {
  uts::Params p;
  p.hash = uts::HashMode::kFast;
  p.b0 = 200;
  p.q = 0.47;
  p.m = 2;
  p.root_seed = 77;
  return p;
}

lb::RunConfig small_config(int peers) {
  lb::RunConfig config;
  config.strategy = lb::Strategy::kOverlayTD;
  config.num_peers = peers;
  config.net = lb::paper_network(peers);
  config.chunk_units = 64;
  return config;
}

TEST(MetricsEndToEnd, SimRunPopulatesInstrumentsAndStreamsSnapshots) {
  const std::string path = "test_metrics_sim.ndjson";
  metrics::MetricsHub::Options o;
  o.path = path;
  o.interval_ns = 1'000'000;  // 1 simulated ms
  metrics::MetricsHub hub(std::move(o));

  uts::UtsWorkload workload(small_uts(), uts::CostModel{});
  lb::RunConfig config = small_config(8);
  // BTD so the root actually runs counter probe waves — pure tree mode (TD)
  // declares termination from pending flags alone and never launches one.
  config.strategy = lb::Strategy::kOverlayBTD;
  config.metrics = &hub;
  const auto run = lb::run_distributed(workload, config);
  ASSERT_TRUE(run.ok);

  const metrics::Registry& reg = hub.registry();
  // Engine instruments.
  metrics::Counter* events = reg.find_counter("olb_sim_events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->value(), 0u);
  // Per-peer funnel counters and sampled gauges exist for every peer.
  std::uint64_t serves = 0;
  for (int p = 0; p < 8; ++p) {
    metrics::Counter* s = reg.find_counter("olb_peer_serves_total", p);
    ASSERT_NE(s, nullptr) << p;
    serves += s->value();
    EXPECT_NE(reg.find_gauge("olb_peer_queue_depth", p), nullptr) << p;
    EXPECT_NE(reg.find_histogram("olb_peer_sojourn_ns", p), nullptr) << p;
    metrics::Counter* units = reg.find_counter("olb_peer_units_total", p);
    ASSERT_NE(units, nullptr) << p;
  }
  EXPECT_GT(serves, 0u) << "nobody served work in a 8-peer run?";
  // Units counters must add up to the workload's node count exactly.
  std::uint64_t units_total = 0;
  for (int p = 0; p < 8; ++p) {
    units_total += reg.find_counter("olb_peer_units_total", p)->value();
  }
  EXPECT_EQ(units_total, run.total_units);
  // The root's termination-wave histogram saw at least one wave.
  metrics::Histogram* wave = reg.find_histogram("olb_term_wave_ns", 0);
  ASSERT_NE(wave, nullptr);
  EXPECT_GT(wave->count(), 0u);
  // Snapshots actually streamed to the file on the simulated-ms interval.
  EXPECT_GT(hub.flushes(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  ASSERT_TRUE(std::getline(in, first_line));
  EXPECT_NE(first_line.find("\"name\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsEndToEnd, AttachingMetricsDoesNotPerturbTheRun) {
  // The load-bearing guarantee: metrics only read protocol state, so a sim
  // run with a hub attached must produce the exact same event timeline.
  uts::UtsWorkload w1(small_uts(), uts::CostModel{});
  trace::VectorTracer t1;
  lb::RunConfig c1 = small_config(6);
  c1.tracer = &t1;
  const auto r1 = lb::run_distributed(w1, c1);
  ASSERT_TRUE(r1.ok);

  const std::string path = "test_metrics_identity.ndjson";
  metrics::MetricsHub::Options o;
  o.path = path;
  o.interval_ns = 500'000;  // aggressively frequent: 0.5 simulated ms
  metrics::MetricsHub hub(std::move(o));
  uts::UtsWorkload w2(small_uts(), uts::CostModel{});
  trace::VectorTracer t2;
  lb::RunConfig c2 = small_config(6);
  c2.tracer = &t2;
  c2.metrics = &hub;
  const auto r2 = lb::run_distributed(w2, c2);
  ASSERT_TRUE(r2.ok);

  EXPECT_EQ(r1.total_units, r2.total_units);
  EXPECT_EQ(r1.total_messages, r2.total_messages);
  EXPECT_EQ(r1.exec_seconds, r2.exec_seconds);
  const auto& e1 = t1.events();
  const auto& e2 = t2.events();
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].time, e2[i].time) << i;
    EXPECT_EQ(e1[i].kind, e2[i].kind) << i;
    EXPECT_EQ(e1[i].actor, e2[i].actor) << i;
    EXPECT_EQ(e1[i].peer, e2[i].peer) << i;
    EXPECT_EQ(e1[i].type, e2[i].type) << i;
    EXPECT_EQ(e1[i].a, e2[i].a) << i;
    EXPECT_EQ(e1[i].b, e2[i].b) << i;
  }
  std::remove(path.c_str());
}

TEST(MetricsEndToEnd, ThreadsRunExportsPerPeerTelemetry) {
  const std::string path = "test_metrics_threads.ndjson";
  metrics::MetricsHub::Options o;
  o.path = path;
  o.interval_ns = 5'000'000;  // 5 wall ms
  o.shards = 8;
  metrics::MetricsHub hub(std::move(o));

  uts::UtsWorkload workload(small_uts(), uts::CostModel{});
  lb::RunConfig config = small_config(4);
  config.metrics = &hub;
  const auto run = runtime::run_threads(workload, config);
  ASSERT_TRUE(run.ok);

  const metrics::Registry& reg = hub.registry();
  metrics::Counter* sends = reg.find_counter("olb_net_sends_total");
  ASSERT_NE(sends, nullptr);
  EXPECT_GT(sends->value(), 0u);
  ASSERT_NE(reg.find_histogram("olb_net_drain_batch"), nullptr);
  std::uint64_t units_total = 0;
  for (int p = 0; p < 4; ++p) {
    metrics::Counter* units = reg.find_counter("olb_peer_units_total", p);
    ASSERT_NE(units, nullptr) << p;
    units_total += units->value();
    EXPECT_NE(reg.find_gauge("olb_peer_queue_depth", p), nullptr) << p;
  }
  // The final post-join poll must bring the units counters to the exact
  // node count — telemetry that disagrees with the run result is worse
  // than none.
  EXPECT_EQ(units_total, run.total_units);
  // The sampler thread flushed at least once (final flush is guaranteed).
  EXPECT_GE(hub.flushes(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool saw_queue_gauge = false;
  while (std::getline(in, line)) {
    if (line.find("olb_peer_queue_depth") != std::string::npos) {
      saw_queue_gauge = true;
      break;
    }
  }
  EXPECT_TRUE(saw_queue_gauge);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace olb
