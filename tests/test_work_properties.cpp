// Property tests on the lb::Work contract, driven through randomised
// interleavings of split / merge / step on both application adapters.
// These are the operations the protocols perform in arbitrary orders at
// runtime; whatever the schedule, totals must be conserved and optima found.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bb/bb_work.hpp"
#include "support/rng.hpp"
#include "uts/uts.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

// Random torture schedule: maintain a pool of work fragments; repeatedly
// pick an action (step a random fragment / split one / merge two) until all
// fragments are exhausted. Returns total units processed.
template <typename MakeRoot>
std::uint64_t torture(MakeRoot make_root, std::uint64_t seed, int max_fragments) {
  Xoshiro256 rng(seed);
  std::vector<std::unique_ptr<lb::Work>> pool;
  pool.push_back(make_root());
  std::uint64_t total = 0;
  while (!pool.empty()) {
    const std::size_t i = static_cast<std::size_t>(rng.below(pool.size()));
    switch (rng.below(4)) {
      case 0:
      case 1: {  // step (weighted: processing is the common case)
        total += pool[i]->step(1 + rng.below(200)).units_done;
        if (pool[i]->empty()) pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 2: {  // split
        if (static_cast<int>(pool.size()) < max_fragments) {
          const double fraction = 0.05 + 0.9 * rng.uniform01();
          if (auto piece = pool[i]->split(fraction)) {
            EXPECT_FALSE(piece->empty());
            pool.push_back(std::move(piece));
          }
        }
        break;
      }
      case 3: {  // merge
        if (pool.size() >= 2) {
          std::size_t j = static_cast<std::size_t>(rng.below(pool.size()));
          if (j != i) {
            pool[i]->merge(std::move(pool[j]));
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(j));
          }
        }
        break;
      }
    }
  }
  return total;
}

// ------------------------------------------------------------------- UTS ---

class UtsTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UtsTorture, NodeCountInvariantUnderAnySchedule) {
  uts::Params p;
  p.hash = uts::HashMode::kFast;
  p.b0 = 120;
  p.q = 0.46;
  p.m = 2;
  p.root_seed = 321;
  const auto expected = uts::count_tree(p).nodes;
  const auto counted = torture(
      [&] { return uts::UtsWork::whole_tree(p, uts::CostModel{}); }, GetParam(), 12);
  EXPECT_EQ(counted, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtsTorture,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                          10, 11, 12));

// -------------------------------------------------------------------- B&B ---

class BBTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BBTorture, OptimumInvariantUnderAnySchedule) {
  const auto inst =
      bb::FlowshopInstance::ta20x20_scaled(static_cast<int>(GetParam() % 10), 9, 5);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  (void)torture([&] { return workload.make_root_work(); }, GetParam() * 31 + 7, 10);
  EXPECT_EQ(workload.best().makespan(), reference.optimum);
  EXPECT_EQ(inst.makespan(workload.best().permutation()), reference.optimum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BBTorture,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                          10));

// Fragments of the same B&B problem sharing bounds must never interfere
// with exactness even when bounds arrive in arbitrary order.
TEST(BBWorkProperties, CrossFragmentBoundExchangeKeepsOptimum) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(6, 9, 6);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  Xoshiro256 rng(99);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  auto root = workload.make_root_work();
  std::vector<std::unique_ptr<lb::Work>> fragments;
  fragments.push_back(std::move(root));
  for (int i = 0; i < 6; ++i) {
    const std::size_t v = static_cast<std::size_t>(rng.below(fragments.size()));
    if (auto piece = fragments[v]->split(0.4)) fragments.push_back(std::move(piece));
  }
  std::int64_t best_seen = lb::kNoBound;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (auto& f : fragments) {
      if (f->empty()) continue;
      any_left = true;
      const auto r = f->step(500);
      if (r.bound < best_seen) best_seen = r.bound;
      // Randomly gossip the best bound to another fragment.
      const std::size_t to = static_cast<std::size_t>(rng.below(fragments.size()));
      fragments[to]->observe_bound(best_seen);
    }
  }
  EXPECT_EQ(workload.best().makespan(), reference.optimum);
}

// Splits must never create or destroy interval mass.
TEST(BBWorkProperties, AmountConservedBySplitChains) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(1, 10, 5);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  auto work = workload.make_root_work();
  const double total = work->amount();
  Xoshiro256 rng(5);
  std::vector<std::unique_ptr<lb::Work>> fragments;
  fragments.push_back(std::move(work));
  for (int i = 0; i < 20; ++i) {
    const std::size_t v = static_cast<std::size_t>(rng.below(fragments.size()));
    if (auto piece = fragments[v]->split(0.1 + 0.8 * rng.uniform01())) {
      fragments.push_back(std::move(piece));
    }
  }
  double sum = 0;
  for (const auto& f : fragments) sum += f->amount();
  EXPECT_DOUBLE_EQ(sum, total);
}

TEST(UtsWorkProperties, AmountConservedBySplitChains) {
  uts::Params p;
  p.hash = uts::HashMode::kFast;
  p.b0 = 500;
  p.q = 0.0;
  p.root_seed = 4;
  auto work = uts::UtsWork::whole_tree(p, uts::CostModel{});
  (void)work->step(1);  // expand the root: amount = 500
  const double total = work->amount();
  Xoshiro256 rng(6);
  std::vector<std::unique_ptr<lb::Work>> fragments;
  fragments.push_back(std::move(work));
  for (int i = 0; i < 15; ++i) {
    const std::size_t v = static_cast<std::size_t>(rng.below(fragments.size()));
    if (auto piece = fragments[v]->split(0.3)) fragments.push_back(std::move(piece));
  }
  double sum = 0;
  for (const auto& f : fragments) sum += f->amount();
  EXPECT_DOUBLE_EQ(sum, total);
}

}  // namespace
}  // namespace olb
