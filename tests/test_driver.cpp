// Tests for the experiment driver: configuration helpers, metric
// consistency, and the two-cluster network path used past 800 peers.
#include <gtest/gtest.h>

#include <numeric>

#include "bb/bb_work.hpp"
#include "lb/driver.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

TEST(Driver, StrategyNames) {
  EXPECT_STREQ(lb::strategy_name(lb::Strategy::kOverlayTD), "TD");
  EXPECT_STREQ(lb::strategy_name(lb::Strategy::kOverlayTR), "TR");
  EXPECT_STREQ(lb::strategy_name(lb::Strategy::kOverlayBTD), "BTD");
  EXPECT_STREQ(lb::strategy_name(lb::Strategy::kRWS), "RWS");
  EXPECT_STREQ(lb::strategy_name(lb::Strategy::kMW), "MW");
  EXPECT_STREQ(lb::strategy_name(lb::Strategy::kAHMW), "AHMW");
}

TEST(Driver, PaperNetworkSplitsAt800) {
  EXPECT_EQ(lb::paper_network(100).cluster_capacity, 0);
  EXPECT_EQ(lb::paper_network(799).cluster_capacity, 0);
  EXPECT_EQ(lb::paper_network(800).cluster_capacity, 736);
  EXPECT_EQ(lb::paper_network(1000).cluster_capacity, 736);
}

uts::Params small_uts() {
  uts::Params p;
  p.hash = uts::HashMode::kFast;
  p.b0 = 200;
  p.q = 0.47;
  p.m = 2;
  p.root_seed = 77;
  return p;
}

TEST(Driver, MetricsAreInternallyConsistent) {
  uts::UtsWorkload workload(small_uts(), uts::CostModel{});
  lb::RunConfig config;
  config.strategy = lb::Strategy::kOverlayBTD;
  config.num_peers = 20;
  config.net = lb::paper_network(20);
  const auto metrics = lb::run_distributed(workload, config);
  ASSERT_TRUE(metrics.ok);

  // Per-peer message counts sum to the total.
  ASSERT_EQ(metrics.msgs_per_peer.size(), 20u);
  const auto sum = std::accumulate(metrics.msgs_per_peer.begin(),
                                   metrics.msgs_per_peer.end(), std::uint64_t{0});
  EXPECT_EQ(sum, metrics.total_messages);

  // Per-type counts sum to the total as well.
  const auto type_sum = std::accumulate(metrics.sent_by_type.begin(),
                                        metrics.sent_by_type.end(), std::uint64_t{0});
  EXPECT_EQ(type_sum, metrics.total_messages);

  // The detection time cannot precede the last completed chunk.
  EXPECT_GE(metrics.exec_seconds, metrics.last_compute_seconds);

  // Utilisation integrates to the total compute time = seq time.
  const auto seq = lb::run_sequential(workload);
  double busy_seconds = 0;
  for (double u : metrics.utilization) busy_seconds += u * 20 * 1e-3;  // 1ms buckets
  EXPECT_NEAR(busy_seconds, seq.exec_seconds, seq.exec_seconds * 0.02 + 1e-3);
}

TEST(Driver, ParallelEfficiencyFormula) {
  lb::RunMetrics metrics;
  metrics.exec_seconds = 2.0;
  EXPECT_DOUBLE_EQ(metrics.parallel_efficiency(16.0, 4), 2.0);  // super-linear ok
  EXPECT_DOUBLE_EQ(metrics.parallel_efficiency(8.0, 4), 1.0);
}

TEST(Driver, TwoClusterScaleCompletes) {
  // n >= 800 exercises the inter-cluster latency path of the paper layout.
  uts::UtsWorkload workload(small_uts(), uts::CostModel{});
  lb::RunConfig config;
  config.strategy = lb::Strategy::kOverlayBTD;
  config.num_peers = 820;
  config.net = lb::paper_network(820);
  const auto metrics = lb::run_distributed(workload, config);
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.total_units, uts::count_tree(small_uts()).nodes);
}

TEST(Driver, WatchdogReportsNotOk) {
  uts::UtsWorkload workload(small_uts(), uts::CostModel{});
  lb::RunConfig config;
  config.strategy = lb::Strategy::kOverlayTD;
  config.num_peers = 16;
  config.net = lb::paper_network(16);
  config.limits.event_limit = 50;  // guaranteed to trip
  const auto metrics = lb::run_distributed(workload, config);
  EXPECT_FALSE(metrics.ok);
}

TEST(Driver, SequentialRunnerCountsCosts) {
  uts::CostModel costs;
  costs.per_node = sim::microseconds(2);
  costs.per_child = 0;
  uts::UtsWorkload workload(small_uts(), costs);
  const auto seq = lb::run_sequential(workload);
  EXPECT_EQ(seq.units, uts::count_tree(small_uts()).nodes);
  EXPECT_NEAR(seq.exec_seconds, static_cast<double>(seq.units) * 2e-6, 1e-9);
}

TEST(Driver, MwUsesDedicatedMaster) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(0, 9, 5);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  lb::RunConfig config;
  config.strategy = lb::Strategy::kMW;
  config.num_peers = 10;
  config.net = lb::paper_network(10);
  const auto metrics = lb::run_distributed(workload, config);
  ASSERT_TRUE(metrics.ok);
  // Peer 0 (the master) performs no application work.
  EXPECT_EQ(metrics.msgs_per_peer.size(), 10u);
  EXPECT_GT(metrics.total_units, 0u);
}

}  // namespace
}  // namespace olb
