// Tests for the UTS generator and its lb::Work adapter.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "lb/work.hpp"
#include "uts/uts.hpp"
#include "uts/uts_work.hpp"

namespace olb::uts {
namespace {

Params bin_params(HashMode hash, std::uint32_t seed = 19, int b0 = 50,
                  double q = 0.47) {
  Params p;
  p.shape = TreeShape::kBinomial;
  p.hash = hash;
  p.b0 = b0;
  p.q = q;
  p.m = 2;
  p.root_seed = seed;
  return p;
}

TEST(Uts, RootHasB0Children) {
  const auto p = bin_params(HashMode::kFast);
  EXPECT_EQ(num_children(p, root_state(p), 0), 50);
}

TEST(Uts, ChildStatesAreDeterministicAndDistinct) {
  const auto p = bin_params(HashMode::kSha1);
  const auto root = root_state(p);
  const auto c0 = child_state(p, root, 0);
  const auto c0_again = child_state(p, root, 0);
  const auto c1 = child_state(p, root, 1);
  EXPECT_EQ(c0.bytes, c0_again.bytes);
  EXPECT_NE(c0.bytes, c1.bytes);
  EXPECT_NE(c0.bytes, root.bytes);
}

TEST(Uts, Sha1AndFastTreesDifferButBothCountExactly) {
  auto p_sha = bin_params(HashMode::kSha1);
  auto p_fast = bin_params(HashMode::kFast);
  const auto s1 = count_tree(p_sha);
  const auto s2 = count_tree(p_fast);
  EXPECT_GT(s1.nodes, 50u);
  EXPECT_GT(s2.nodes, 50u);
  // Same distribution family, different streams.
  EXPECT_NE(s1.nodes, s2.nodes);
}

TEST(Uts, CountIsSeedDeterministic) {
  const auto p = bin_params(HashMode::kFast);
  EXPECT_EQ(count_tree(p).nodes, count_tree(p).nodes);
  auto p2 = p;
  p2.root_seed = 20;
  EXPECT_NE(count_tree(p).nodes, count_tree(p2).nodes);
}

TEST(Uts, NodesEqualLeavesPlusInternals) {
  // In a BIN tree every non-root node has 0 or m children; with m=2:
  // nodes = 1 (root) + b0 + 2 * (#internal non-root nodes).
  const auto p = bin_params(HashMode::kFast);
  const auto s = count_tree(p);
  const std::uint64_t internal_nonroot = s.nodes - 1 - s.leaves;
  EXPECT_EQ(s.nodes, 1 + static_cast<std::uint64_t>(p.b0) + 2 * internal_nonroot);
}

TEST(Uts, GeometricShapeRespectsDepthCutoff) {
  Params p;
  p.shape = TreeShape::kGeometric;
  p.hash = HashMode::kFast;
  p.b0 = 4;
  p.gen_mx = 5;
  p.root_seed = 3;
  const auto s = count_tree(p);
  EXPECT_LE(s.max_depth, 5);
  EXPECT_GT(s.nodes, 1u);
}

TEST(Uts, ExpectedSizeFormula) {
  Params p = bin_params(HashMode::kFast, 1, 100, 0.25);  // m*q = 0.5
  EXPECT_DOUBLE_EQ(p.expected_size(), 100.0 / 0.5 + 1.0);
  p.q = 0.5;  // critical
  EXPECT_TRUE(std::isinf(p.expected_size()));
}

TEST(Uts, Random31Is31Bits) {
  const auto p = bin_params(HashMode::kSha1);
  auto state = root_state(p);
  for (std::uint32_t i = 0; i < 200; ++i) {
    state = child_state(p, state, i % 3);
    EXPECT_LT(state.random31(), 1u << 31);
  }
}

// ------------------------------------------------------------ work adapter ---

TEST(UtsWork, ProcessingWholeTreeMatchesSequentialCount) {
  const auto p = bin_params(HashMode::kFast);
  const auto expected = count_tree(p).nodes;
  auto work = UtsWork::whole_tree(p, CostModel{});
  std::uint64_t total = 0;
  while (!work->empty()) total += work->step(1000).units_done;
  EXPECT_EQ(total, expected);
  EXPECT_EQ(work->nodes_counted(), expected);
}

TEST(UtsWork, SplitConservesNodes) {
  const auto p = bin_params(HashMode::kFast);
  const auto expected = count_tree(p).nodes;
  auto work = UtsWork::whole_tree(p, CostModel{});
  std::uint64_t total = work->step(40).units_done;  // grow the deque
  auto half = work->split(0.5);
  ASSERT_NE(half, nullptr);
  while (!work->empty()) total += work->step(1000).units_done;
  while (!half->empty()) total += half->step(1000).units_done;
  EXPECT_EQ(total, expected);
}

TEST(UtsWork, SplitFractionsApproximateAmounts) {
  const auto p = bin_params(HashMode::kFast, 5, 400, 0.4);
  auto work = UtsWork::whole_tree(p, CostModel{});
  (void)work->step(1);  // expand root: deque = 400
  ASSERT_EQ(work->amount(), 400.0);
  auto quarter = work->split(0.25);
  ASSERT_NE(quarter, nullptr);
  EXPECT_EQ(quarter->amount(), 100.0);
  EXPECT_EQ(work->amount(), 300.0);
}

TEST(UtsWork, SingleNodeIsIndivisible) {
  const auto p = bin_params(HashMode::kFast);
  auto work = UtsWork::whole_tree(p, CostModel{});
  EXPECT_EQ(work->amount(), 1.0);
  EXPECT_EQ(work->split(0.5), nullptr);
}

TEST(UtsWork, MergeRejoinsStolenWork) {
  const auto p = bin_params(HashMode::kFast);
  const auto expected = count_tree(p).nodes;
  auto work = UtsWork::whole_tree(p, CostModel{});
  std::uint64_t total = work->step(30).units_done;
  auto piece = work->split(0.3);
  ASSERT_NE(piece, nullptr);
  work->merge(std::move(piece));
  while (!work->empty()) total += work->step(1 << 14).units_done;
  EXPECT_EQ(total, expected);
}

TEST(UtsWork, StepRespectsBudget) {
  const auto p = bin_params(HashMode::kFast, 7, 1000, 0.49);
  auto work = UtsWork::whole_tree(p, CostModel{});
  const auto r = work->step(17);
  EXPECT_LE(r.units_done, 17u);
}

TEST(UtsWork, CostModelCharged) {
  CostModel costs;
  costs.per_node = sim::microseconds(3);
  costs.per_child = sim::microseconds(2);
  const auto p = bin_params(HashMode::kFast, 9, 10, 0.0);  // root + 10 leaves
  auto work = UtsWork::whole_tree(p, costs);
  const auto r1 = work->step(1);  // root: 1 node + 10 children
  EXPECT_EQ(r1.sim_cost, sim::microseconds(3 + 2 * 10));
  const auto r2 = work->step(100);  // 10 leaves, no children
  EXPECT_EQ(r2.sim_cost, sim::microseconds(3 * 10));
  EXPECT_TRUE(work->empty());
}

TEST(UtsWork, StealsComeFromTheOldestEnd) {
  // After expanding the root of a 0-probability tree, the deque holds the
  // root's children in order; a split must take the front (oldest).
  const auto p = bin_params(HashMode::kFast, 11, 8, 0.0);
  auto work = UtsWork::whole_tree(p, CostModel{});
  (void)work->step(1);
  auto piece = work->split(0.25);  // 2 of 8
  ASSERT_NE(piece, nullptr);
  EXPECT_EQ(piece->amount(), 2.0);
  // Processing order of the remainder (LIFO from the back) must not contain
  // the two oldest; total still adds up.
  std::uint64_t rest = 0;
  while (!work->empty()) rest += work->step(100).units_done;
  EXPECT_EQ(rest, 6u);
}

}  // namespace
}  // namespace olb::uts
