// Tests for the shared-memory backend (src/runtime): MPSC mailbox
// correctness under concurrency, and the overlay protocol on real threads
// reproducing the simulator's execution-order-independent invariants —
// exact UTS node counts and exact B&B optima — across strategies, thread
// counts and seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bb/bb_work.hpp"
#include "runtime/mpsc_mailbox.hpp"
#include "runtime/runtime.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

// ------------------------------------------------------------ MPSC mailbox ---

TEST(MpscMailbox, FifoPerProducerSingleThread) {
  runtime::MpscMailbox box;
  for (int i = 0; i < 100; ++i) box.push(sim::Message(i, i * 10));
  sim::Message m;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(box.pop(m));
    EXPECT_EQ(m.type, i);
    EXPECT_EQ(m.a, i * 10);
  }
  EXPECT_FALSE(box.pop(m));
}

TEST(MpscMailbox, PayloadSurvivesTransit) {
  runtime::MpscMailbox box;
  sim::Message in(3);
  in.payload = std::make_unique<sim::MsgPayload>();
  box.push(std::move(in));
  sim::Message out;
  ASSERT_TRUE(box.pop(out));
  EXPECT_NE(out.payload, nullptr);
}

TEST(MpscMailbox, DropsNothingUnderConcurrentProducers) {
  // N producers push a tagged sequence each while the consumer drains;
  // every message must arrive exactly once and in per-producer order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  runtime::MpscMailbox box;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(sim::Message(p, i));
      }
    });
  }
  std::vector<std::int64_t> next_expected(kProducers, 0);
  int received = 0;
  sim::Message m;
  while (received < kProducers * kPerProducer) {
    if (!box.pop(m)) continue;  // transient empty is fine, losing one is not
    ASSERT_GE(m.type, 0);
    ASSERT_LT(m.type, kProducers);
    EXPECT_EQ(m.a, next_expected[static_cast<std::size_t>(m.type)]++);
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(box.pop(m));
}

TEST(MpscMailbox, DrainPreservesPerProducerFifo) {
  // The thread backend's batched consumption path: producers push through
  // their own node pools while the consumer drains in batches. Per-producer
  // order must survive batching (run under TSan to check the fences too).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  runtime::MpscMailbox box;
  std::vector<std::unique_ptr<runtime::MsgNodePool>> pools;
  for (int p = 0; p < kProducers; ++p) {
    pools.push_back(std::make_unique<runtime::MsgNodePool>());
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, pool = pools[static_cast<std::size_t>(p)].get(), p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(sim::Message(p, i), *pool);
      }
    });
  }
  std::vector<std::int64_t> next_expected(kProducers, 0);
  int received = 0;
  std::size_t max_batch = 0;
  while (received < kProducers * kPerProducer) {
    const std::size_t n = box.drain([&](sim::Message&& m) {
      EXPECT_GE(m.type, 0);
      EXPECT_LT(m.type, kProducers);
      EXPECT_EQ(m.a, next_expected[static_cast<std::size_t>(m.type)]++);
      ++received;
      return true;
    });
    max_batch = std::max(max_batch, n);
  }
  for (auto& t : producers) t.join();
  sim::Message m;
  EXPECT_FALSE(box.pop(m));
  EXPECT_GT(max_batch, 1u);  // batching actually happened at least once
  // Pools must outlive the box: recycle-on-pop hands nodes back to them.
}

TEST(MpscMailbox, DrainHonoursMaxAndEarlyStop) {
  runtime::MpscMailbox box;
  for (int i = 0; i < 10; ++i) box.push(sim::Message(i, i));
  int seen = 0;
  EXPECT_EQ(box.drain([&](sim::Message&&) { ++seen; return true; }, 4), 4u);
  EXPECT_EQ(seen, 4);
  // Early stop via the callback: the stopping message still counts.
  EXPECT_EQ(box.drain([&](sim::Message&& m) { return m.type < 6; }), 3u);
  sim::Message m;
  ASSERT_TRUE(box.pop(m));
  EXPECT_EQ(m.type, 7);  // first drain took 0-3; second took 4,5,6 (6 stopped it)
}

TEST(MsgNodePool, RecycledNodesNeverAliasLiveMessages) {
  // Arena canary: push through a tiny pool so nodes recycle constantly,
  // holding every popped message alive. If a recycled node's storage
  // aliased a live message, the held payloads would corrupt — each carries
  // a unique_ptr, so ASan flags any double-touch and the canary values
  // catch plain-build aliasing.
  runtime::MsgNodePool pool(4);
  runtime::MpscMailbox box;
  std::vector<sim::Message> held;
  for (int round = 0; round < 64; ++round) {
    for (int i = 0; i < 8; ++i) {
      sim::Message m(round, round * 100 + i);
      m.payload = std::make_unique<sim::MsgPayload>();
      box.push(std::move(m), pool);
    }
    box.drain([&](sim::Message&& m) {
      held.push_back(std::move(m));
      return true;
    });
  }
  ASSERT_EQ(held.size(), 64u * 8u);
  for (int round = 0; round < 64; ++round) {
    for (int i = 0; i < 8; ++i) {
      const sim::Message& m = held[static_cast<std::size_t>(round * 8 + i)];
      EXPECT_EQ(m.type, round);
      EXPECT_EQ(m.a, round * 100 + i);
      EXPECT_NE(m.payload, nullptr);
    }
  }
}

// ------------------------------------------- overlay protocol on threads ---

// Big enough (~10^4-10^5 nodes) that idle peers' requests arrive while the
// root still holds work, so real transfers happen on the thread backend;
// small enough that the full sweep stays seconds-fast.
uts::Params small_uts(std::uint32_t seed) {
  uts::Params p;
  p.shape = uts::TreeShape::kBinomial;
  p.hash = uts::HashMode::kFast;
  p.b0 = 500;
  p.q = 0.49;
  p.m = 2;
  p.root_seed = seed;
  return p;
}

lb::RunConfig threads_config(lb::Strategy s, int n, std::uint64_t seed) {
  lb::RunConfig c;
  c.strategy = s;
  c.num_peers = n;
  c.dmax = 3;
  c.seed = seed;
  c.backend = lb::Backend::kThreads;
  c.limits.time_limit = sim::seconds(60.0);  // wall watchdog
  return c;
}

TEST(RuntimeThreads, UtsNodeCountsExact) {
  // The tentpole acceptance check: node counts are execution-order
  // independent, so every (strategy, threads, seed) combination must
  // reproduce the sequential count exactly — whatever interleaving the
  // real threads produce.
  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }
  for (auto strategy : {lb::Strategy::kOverlayTD, lb::Strategy::kOverlayTR,
                        lb::Strategy::kOverlayBTD}) {
    for (int threads : thread_counts) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto params = small_uts(static_cast<std::uint32_t>(seed * 5 + 3));
        const auto expected = uts::count_tree(params).nodes;
        uts::UtsWorkload workload(params, uts::CostModel{});
        const auto m = runtime::run_threads(
            workload, threads_config(strategy, threads, seed));
        ASSERT_TRUE(m.ok) << lb::strategy_name(strategy) << " threads=" << threads
                          << " seed=" << seed;
        EXPECT_EQ(m.total_units, expected)
            << lb::strategy_name(strategy) << " threads=" << threads
            << " seed=" << seed;
      }
    }
  }
}

TEST(RuntimeThreads, FlowshopOptimumExact) {
  // B&B on threads: the proved optimum must match the sequential reference
  // whatever the work distribution was.
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(0, 9, 5);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  for (int threads : {1, 2, 4}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
      const auto m = runtime::run_threads(
          workload, threads_config(lb::Strategy::kOverlayBTD, threads, seed));
      ASSERT_TRUE(m.ok) << "threads=" << threads << " seed=" << seed;
      EXPECT_EQ(workload.best().makespan(), reference.optimum);
      EXPECT_EQ(m.best_bound, reference.optimum);
    }
  }
}

TEST(RuntimeThreads, MessageAccountingIsCoherent) {
  // Even with the bigger instance below, a single-core host serialises the
  // four worker threads so hard that work may never move; the transfer
  // assertions are genuinely thread-count-dependent.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads for cross-peer transfers";
  }
  // Bigger than small_uts: the run must span many OS scheduler timeslices,
  // or on a single-CPU host peer 0 can finish the whole instance before the
  // idle peers' requests are even scheduled — and then nothing transfers.
  auto params = small_uts(11);
  params.b0 = 2000;
  params.q = 0.499;
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto m = runtime::run_threads(
      workload, threads_config(lb::Strategy::kOverlayBTD, 4, 7));
  ASSERT_TRUE(m.ok);
  // Setup (kSizeUp/kSizeDown), requests and the termination broadcast all
  // count; the totals must at least cover requests + transfers.
  EXPECT_GE(m.total_messages, m.work_requests + m.work_transfers);
  EXPECT_GT(m.total_messages, 0u);
  // The instance outlives the idle peers' first requests by orders of
  // magnitude, so the protocol must actually have moved work.
  EXPECT_GT(m.work_requests, 0u);
  EXPECT_GT(m.work_transfers, 0u);
  EXPECT_GT(m.done_seconds, 0.0);
  EXPECT_GE(m.wall_seconds, m.done_seconds);
}

TEST(RuntimeThreadsDeathTest, RejectsNonOverlayStrategies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto params = small_uts(1);
  uts::UtsWorkload workload(params, uts::CostModel{});
  EXPECT_DEATH(runtime::run_threads(
                   workload, threads_config(lb::Strategy::kRWS, 2, 1)),
               "overlay");
}

}  // namespace
}  // namespace olb
