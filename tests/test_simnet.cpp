// Unit tests for the discrete-event engine: ordering, busy-server queueing,
// compute/message interleaving, timers, latency model, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "simnet/engine.hpp"
#include "simnet/event_queue.hpp"

namespace olb::sim {
namespace {

// ------------------------------------------------------------ event queue ---

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  for (Time t : {50, 10, 30, 20, 40}) {
    Event e;
    e.time = t;
    e.seq = static_cast<std::uint64_t>(t);
    q.push(std::move(e));
  }
  Time prev = -1;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GT(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueue, TiesBreakBySequence) {
  EventQueue q;
  for (std::uint64_t s : {3u, 1u, 2u, 0u}) {
    Event e;
    e.time = 7;
    e.seq = s;
    q.push(std::move(e));
  }
  for (std::uint64_t expect = 0; expect < 4; ++expect) {
    EXPECT_EQ(q.pop().seq, expect);
  }
}

TEST(EventQueue, SingleElementPopKeepsMessageIntact) {
  // Regression: at heap size 1 front and back alias, and the old pop
  // self-move-assigned the element — undefined for the Message's
  // unique_ptr payload (in practice it nulled it).
  EventQueue q;
  Event e;
  e.time = 5;
  e.seq = 1;
  e.msg = Message(7, 42);
  e.msg.payload = std::make_unique<MsgPayload>();
  q.push(std::move(e));
  const Event out = q.pop();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(out.time, 5);
  EXPECT_EQ(out.msg.type, 7);
  EXPECT_EQ(out.msg.a, 42);
  EXPECT_NE(out.msg.payload, nullptr);
}

TEST(EventQueue, SlabReuseNeverAliasesLiveEvent) {
  // Arena canary: pop() moves an Event out and recycles its slot; later
  // emplace() calls reuse that slot. Messages popped earlier must stay
  // intact — each carries a heap payload, so any aliasing write through a
  // recycled slot is an ASan-visible use-after-move/overwrite, and the
  // canary values below catch it in plain builds too.
  EventQueue q;
  for (std::uint64_t i = 0; i < 64; ++i) {
    Event& e = q.emplace(static_cast<Time>(i), 0, i, 0, Event::Kind::kArrival);
    e.msg = Message(static_cast<int>(i), static_cast<std::int64_t>(i) * 1000);
    e.msg.payload = std::make_unique<MsgPayload>();
    e.msg.b = static_cast<std::int64_t>(i);
  }
  std::vector<Message> held;
  for (std::uint64_t i = 0; i < 32; ++i) held.push_back(q.pop().msg);
  // Refill through the freelist: these land in the 32 just-recycled slots.
  for (std::uint64_t i = 64; i < 96; ++i) {
    Event& e = q.emplace(static_cast<Time>(i), 0, i, 0, Event::Kind::kArrival);
    e.msg = Message(static_cast<int>(i), static_cast<std::int64_t>(i) * 1000);
    e.msg.payload = std::make_unique<MsgPayload>();
    e.msg.b = static_cast<std::int64_t>(i);
  }
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(held[i].type, static_cast<int>(i));
    EXPECT_EQ(held[i].a, static_cast<std::int64_t>(i) * 1000);
    ASSERT_NE(held[i].payload, nullptr);
    EXPECT_EQ(held[i].b, static_cast<std::int64_t>(i));
  }
  // Drain the rest: ordering and payloads must line up despite recycling.
  for (std::uint64_t i = 32; i < 96; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.seq, i);
    ASSERT_NE(e.msg.payload, nullptr);
    EXPECT_EQ(e.msg.b, static_cast<std::int64_t>(i));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TopDropTopMatchesPop) {
  // The engine's in-place consumption path: top() + drop_top() must see the
  // same event pop() would return, and drop_top() must recycle the slot.
  EventQueue q;
  for (Time t : {30, 10, 20}) {
    Event& e = q.emplace(t, 0, static_cast<std::uint64_t>(t), 0,
                         Event::Kind::kWake);
    e.msg = Message(static_cast<int>(t), t);
  }
  EXPECT_EQ(q.peek_time(), 10);
  {
    Event& top = q.top();
    EXPECT_EQ(top.time, 10);
    EXPECT_EQ(top.msg.a, 10);
    q.drop_top();
  }
  const Event e = q.pop();
  EXPECT_EQ(e.time, 20);
  EXPECT_EQ(q.top().time, 30);
  q.drop_top();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StressAgainstSortedReference) {
  Xoshiro256 rng(5);
  EventQueue q;
  std::vector<std::pair<Time, std::uint64_t>> ref;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    Event e;
    e.time = static_cast<Time>(rng.below(1000));
    e.seq = i;
    ref.emplace_back(e.time, e.seq);
    q.push(std::move(e));
  }
  std::sort(ref.begin(), ref.end());
  for (const auto& [t, s] : ref) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, t);
    EXPECT_EQ(e.seq, s);
  }
}

// ----------------------------------------------------------------- actors ---

/// Records every delivery with its timestamp.
class Recorder : public Actor {
 public:
  struct Delivery {
    Time at;
    int type;
    std::int64_t a;
    int src;
  };
  std::vector<Delivery> deliveries;
  Time compute_on_type = -1;   ///< start_compute(a) when receiving this type
  int reply_to_type = -1;      ///< send a type-99 reply on this type
  std::vector<Time> compute_done_at;

 protected:
  void on_message(Message m) override {
    deliveries.push_back({now(), m.type, m.a, m.src});
    if (m.type == compute_on_type) start_compute(m.a);
    if (m.type == reply_to_type) send(m.src, Message(99));
  }
  void on_compute_done() override { compute_done_at.push_back(now()); }
  void on_timer(std::int64_t tag) override {
    deliveries.push_back({now(), kTimerMsgType, tag, id()});
  }
  friend class Starter;
};

/// Sends a scripted list of (delay-ignored) messages from on_start.
class Starter : public Actor {
 public:
  std::vector<Message> to_send;
  int dst = 1;

 protected:
  void on_start() override {
    for (auto& m : to_send) send(dst, std::move(m));
    to_send.clear();
  }
  void on_message(Message) override {}
};

NetworkConfig zero_jitter() {
  NetworkConfig net;
  net.latency_jitter = 0;
  net.intra_latency = microseconds(10);
  net.msg_handling_cost = microseconds(3);
  return net;
}

TEST(Engine, MessageLatencyAndHandlingCost) {
  Engine engine(zero_jitter(), 1);
  auto s = std::make_unique<Starter>();
  s->to_send.emplace_back(5);
  auto r = std::make_unique<Recorder>();
  auto* recorder = r.get();
  engine.add_actor(std::move(s));
  engine.add_actor(std::move(r));
  const auto result = engine.run();
  EXPECT_TRUE(result.quiesced);
  ASSERT_EQ(recorder->deliveries.size(), 1u);
  EXPECT_EQ(recorder->deliveries[0].at, microseconds(10));
  EXPECT_EQ(engine.stats(1).msgs_received, 1u);
  EXPECT_EQ(engine.stats(1).overhead_time, microseconds(3));
}

TEST(Engine, BusyServerSerialisesDeliveries) {
  // Two messages arrive (almost) together; the second is delivered only
  // after the first's handling cost has elapsed.
  Engine engine(zero_jitter(), 1);
  auto s = std::make_unique<Starter>();
  s->to_send.emplace_back(5);
  s->to_send.emplace_back(5);
  auto r = std::make_unique<Recorder>();
  auto* recorder = r.get();
  engine.add_actor(std::move(s));
  engine.add_actor(std::move(r));
  engine.run();
  ASSERT_EQ(recorder->deliveries.size(), 2u);
  EXPECT_EQ(recorder->deliveries[0].at, microseconds(10));
  EXPECT_EQ(recorder->deliveries[1].at, microseconds(13));  // +handling cost
}

TEST(Engine, MessagesServicedAtComputeBoundary) {
  // The recorder starts a long compute on message type 1; a later message
  // must wait until the span ends, and on_compute_done fires after it.
  Engine engine(zero_jitter(), 1);
  auto s = std::make_unique<Starter>();
  Message first(1);
  first.a = microseconds(100);  // compute duration
  s->to_send.push_back(std::move(first));
  s->to_send.emplace_back(2);
  auto r = std::make_unique<Recorder>();
  r->compute_on_type = 1;
  auto* recorder = r.get();
  engine.add_actor(std::move(s));
  engine.add_actor(std::move(r));
  engine.run();
  ASSERT_EQ(recorder->deliveries.size(), 2u);
  // First message at t=10us, handled for 3us, then computes 100us.
  // Second message arrived ~t=10us but waits until 113us.
  EXPECT_EQ(recorder->deliveries[1].at, microseconds(113));
  ASSERT_EQ(recorder->compute_done_at.size(), 1u);
  // compute_done only after the queued message was serviced (message priority
  // at chunk boundaries).
  EXPECT_EQ(recorder->compute_done_at[0], microseconds(116));
}

TEST(Engine, TimerFiresAtRequestedDelay) {
  class TimerActor : public Actor {
   public:
    Time fired_at = -1;

   protected:
    void on_start() override { set_timer(microseconds(250), 7); }
    void on_message(Message) override {}
    void on_timer(std::int64_t tag) override {
      EXPECT_EQ(tag, 7);
      fired_at = now();
    }
  };
  Engine engine(zero_jitter(), 1);
  auto t = std::make_unique<TimerActor>();
  auto* timer = t.get();
  engine.add_actor(std::move(t));
  engine.run();
  EXPECT_EQ(timer->fired_at, microseconds(250));
}

TEST(Engine, RequestReplyRoundTrip) {
  Engine engine(zero_jitter(), 1);
  auto s = std::make_unique<Starter>();
  s->to_send.emplace_back(4);
  auto r = std::make_unique<Recorder>();
  r->reply_to_type = 4;
  engine.add_actor(std::move(s));
  engine.add_actor(std::move(r));
  engine.run();
  EXPECT_EQ(engine.stats(0).msgs_received, 1u);  // the type-99 reply
  EXPECT_EQ(engine.stats(1).msgs_sent, 1u);
}

TEST(Engine, InterClusterLatencyApplies) {
  NetworkConfig net = zero_jitter();
  net.cluster_capacity = 1;  // every peer its own cluster
  net.inter_latency = microseconds(500);
  Engine engine(net, 1);
  auto s = std::make_unique<Starter>();
  s->to_send.emplace_back(5);
  auto r = std::make_unique<Recorder>();
  auto* recorder = r.get();
  engine.add_actor(std::move(s));
  engine.add_actor(std::move(r));
  engine.run();
  ASSERT_EQ(recorder->deliveries.size(), 1u);
  EXPECT_EQ(recorder->deliveries[0].at, microseconds(500));
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine(NetworkConfig{}, 99);  // jitter enabled
    auto s = std::make_unique<Starter>();
    for (int i = 0; i < 20; ++i) s->to_send.emplace_back(5);
    auto r = std::make_unique<Recorder>();
    auto* recorder = r.get();
    engine.add_actor(std::move(s));
    engine.add_actor(std::move(r));
    engine.run();
    std::vector<Time> times;
    for (const auto& d : recorder->deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, EventLimitStopsRun) {
  Engine engine(zero_jitter(), 1);
  auto s = std::make_unique<Starter>();
  for (int i = 0; i < 50; ++i) s->to_send.emplace_back(5);
  engine.add_actor(std::move(s));
  engine.add_actor(std::make_unique<Recorder>());
  const auto result = engine.run(kTimeMax, 10);
  EXPECT_FALSE(result.quiesced);
  EXPECT_EQ(result.events, 10u);
}

TEST(Engine, TimeLimitStopsRun) {
  class SlowTicker : public Actor {
   protected:
    void on_start() override { set_timer(seconds(1.0), 0); }
    void on_message(Message) override {}
    void on_timer(std::int64_t) override { set_timer(seconds(1.0), 0); }
  };
  Engine engine(zero_jitter(), 1);
  engine.add_actor(std::make_unique<SlowTicker>());
  const auto result = engine.run(seconds(5.5));
  EXPECT_FALSE(result.quiesced);
  EXPECT_LE(result.end_time, seconds(5.5));
}

TEST(Engine, BusyHistogramAccumulatesComputeTime) {
  Engine engine(zero_jitter(), 1);
  auto s = std::make_unique<Starter>();
  Message m(1);
  m.a = milliseconds(3);
  s->to_send.push_back(std::move(m));
  auto r = std::make_unique<Recorder>();
  r->compute_on_type = 1;
  engine.add_actor(std::move(s));
  engine.add_actor(std::move(r));
  engine.run();
  Time total = 0;
  for (Time t : engine.busy_histogram()) total += t;
  EXPECT_EQ(total, milliseconds(3));
}

TEST(Network, ClusterAssignmentIsBlockwise) {
  NetworkConfig net;
  net.cluster_capacity = 4;
  Network network(net, 1);
  EXPECT_EQ(network.cluster_of(0), 0);
  EXPECT_EQ(network.cluster_of(3), 0);
  EXPECT_EQ(network.cluster_of(4), 1);
  EXPECT_EQ(network.cluster_of(9), 2);
}

TEST(Network, JitterStaysWithinBound) {
  NetworkConfig net;
  net.intra_latency = microseconds(20);
  net.latency_jitter = microseconds(4);
  Network network(net, 3);
  for (int i = 0; i < 1000; ++i) {
    const Time l = network.latency(0, 1);
    ASSERT_GE(l, microseconds(20));
    ASSERT_LT(l, microseconds(24));
  }
}

}  // namespace
}  // namespace olb::sim
