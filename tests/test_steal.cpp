// Tests for the shared-memory companion: Chase-Lev deque (single-threaded
// semantics + concurrent stress) and the work-stealing pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "steal/chase_lev_deque.hpp"
#include "steal/work_stealing_pool.hpp"

namespace olb::steal {
namespace {

TEST(ChaseLevDeque, LifoForOwner) {
  ChaseLevDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push(i);
  for (int i = 9; i >= 0; --i) {
    const auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.pop().has_value());
}

TEST(ChaseLevDeque, FifoForThief) {
  ChaseLevDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push(i);
  for (int i = 0; i < 10; ++i) {
    const auto v = d.steal();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(8);
  for (int i = 0; i < 1000; ++i) d.push(i);
  EXPECT_EQ(d.size(), 1000u);
  int sum = 0;
  while (auto v = d.pop()) sum += *v;
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(ChaseLevDeque, InterleavedOwnerAndThiefSingleThread) {
  ChaseLevDeque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal().value(), 1);  // oldest
  EXPECT_EQ(d.pop().value(), 3);    // newest
  EXPECT_EQ(d.pop().value(), 2);
  EXPECT_FALSE(d.pop().has_value());
}

TEST(ChaseLevDeque, ConcurrentStealersLoseNothing) {
  // Owner pushes N items then drains its side while thieves hammer steal();
  // every item must be extracted exactly once.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> d;
  std::atomic<std::int64_t> stolen_sum{0};
  std::atomic<int> stolen_count{0};
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      while (!done.load()) {
        if (auto v = d.steal()) {
          stolen_sum.fetch_add(*v);
          stolen_count.fetch_add(1);
        }
      }
    });
  }

  std::int64_t owner_sum = 0;
  int owner_count = 0;
  go.store(true);
  for (int i = 1; i <= kItems; ++i) {
    d.push(i);
    if (i % 3 == 0) {
      if (auto v = d.pop()) {
        owner_sum += *v;
        ++owner_count;
      }
    }
  }
  while (auto v = d.pop()) {
    owner_sum += *v;
    ++owner_count;
  }
  // Let thieves finish any in-flight steals of remaining items.
  while (!d.empty()) std::this_thread::yield();
  done.store(true);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(owner_count + stolen_count.load(), kItems);
  EXPECT_EQ(owner_sum + stolen_sum.load(),
            static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

// -------------------------------------------------------------------- pool ---

TEST(WorkStealingPool, RunsASingleTask) {
  std::atomic<int> ran{0};
  {
    WorkStealingPool pool(2);
    pool.spawn([&](WorkStealingPool&) { ran.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(WorkStealingPool, RecursiveSpawnTreeSum) {
  // Sum 1..N by recursive halving; checks transitive-completion semantics.
  constexpr std::int64_t kN = 4096;
  std::atomic<std::int64_t> sum{0};
  {
    WorkStealingPool pool(4);
    std::function<void(WorkStealingPool&, std::int64_t, std::int64_t)> range_task =
        [&](WorkStealingPool& p, std::int64_t lo, std::int64_t hi) {
          if (hi - lo <= 32) {
            std::int64_t local = 0;
            for (std::int64_t i = lo; i < hi; ++i) local += i;
            sum.fetch_add(local);
            return;
          }
          const std::int64_t mid = lo + (hi - lo) / 2;
          p.spawn([&range_task, lo, mid](WorkStealingPool& q) { range_task(q, lo, mid); });
          p.spawn([&range_task, mid, hi](WorkStealingPool& q) { range_task(q, mid, hi); });
        };
    pool.spawn([&](WorkStealingPool& p) { range_task(p, 0, kN + 1); });
    pool.wait_idle();
  }
  EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

TEST(WorkStealingPool, ManyIndependentTasks) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(3);
    for (int i = 0; i < 5000; ++i) {
      pool.spawn([&](WorkStealingPool&) { count.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 5000);
}

TEST(WorkStealingPool, WaitIdleIsReusable) {
  std::atomic<int> count{0};
  WorkStealingPool pool(2);
  pool.spawn([&](WorkStealingPool&) { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.spawn([&](WorkStealingPool&) { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(WorkStealingPool, SpawnStormWhileOwnerWaits) {
  // Regression for the shutdown/wakeup race: tasks keep spawning children
  // from inside the pool while the owner blocks in wait_idle(). Under the
  // old bare-notify scheme a completion could slip between the waiter's
  // counter check and its block (or a worker could sleep through a spawn),
  // hanging the round; the eventcount + idle rendezvous close both windows.
  // Run under TSan in CI (tsan preset).
  WorkStealingPool pool(4);
  std::atomic<int> ran{0};
  int expected = 0;
  for (int round = 0; round < 300; ++round) {
    const int fanout = 1 + round % 4;
    for (int i = 0; i < fanout; ++i) {
      pool.spawn([&ran](WorkStealingPool& p) {
        p.spawn([&ran](WorkStealingPool&) {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    expected += 2 * fanout;
    pool.wait_idle();  // a lost wakeup hangs right here
    ASSERT_EQ(ran.load(), expected) << "round " << round;
  }
}

TEST(WorkStealingPool, SingleThreadPoolStillCompletes) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(1);
    pool.spawn([&](WorkStealingPool& p) {
      for (int i = 0; i < 100; ++i) {
        p.spawn([&](WorkStealingPool&) { count.fetch_add(1); });
      }
    });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace olb::steal
