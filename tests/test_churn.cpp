// Elastic-membership tests: live join/leave on the overlay, swept across
// strategies and churn shapes with the conformance oracles attached.
//
// The load-bearing properties, checked on every swept run:
//
//  * no hang and no premature termination — run_conformance's completion
//    check plus exact UTS node counts (graceful leaves destroy no work, so
//    churned runs must still count *exactly* the sequential total);
//  * membership life cycle — the membership oracle rejects double joins,
//    leaves without joins, and any compute outside a peer's window;
//  * subtree-size hygiene — at quiescence the root's size estimate must
//    equal the live membership weight (the regression handle for stale
//    sizes after leaves and crash re-parenting).
//
// The Regression suite pins the exact fuzz-found tuples that exposed the
// three membership termination bugs (uncounted tree serves, a wave-less
// fast path, and a kLeave handover dropped by a departed parent).
#include <gtest/gtest.h>

#include <memory>

#include "bb/bb_work.hpp"
#include "bb/bounds.hpp"
#include "bb/flowshop.hpp"
#include "check/conformance.hpp"
#include "check/fuzz.hpp"
#include "lb/driver.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

using test_util::base_config;
using test_util::uts_params;

constexpr lb::Strategy kOverlays[] = {lb::Strategy::kOverlayTD,
                                      lb::Strategy::kOverlayTR,
                                      lb::Strategy::kOverlayBTD};

lb::RunConfig churn_config(lb::Strategy s, int n, int joins, int leaves,
                           std::uint64_t seed) {
  // Watchdog: a membership protocol that wedges (the historical failure
  // mode) must fail fast, not burn the default event budget.
  auto config = base_config(s, n, /*dmax=*/3, seed,
                            /*event_limit=*/30'000'000);
  // Early, tight window: the suite's small UTS instances quiesce within a
  // few simulated milliseconds, and a join or leave scheduled after
  // termination exercises nothing.
  config.churn =
      lb::make_random_churn(joins, leaves, n, sim::microseconds(200),
                            sim::milliseconds(2), seed * 31 + 7);
  return config;
}

std::string violations_text(const std::vector<check::Violation>& vs) {
  std::string out;
  for (const auto& v : vs) out += to_string(v) + "\n";
  return out.empty() ? "(none)" : out;
}

// ------------------------------------------------------------ plan maker ---

TEST(MakeRandomChurn, IsDeterministicInSeed) {
  const auto a = lb::make_random_churn(3, 2, 12, sim::milliseconds(1),
                                       sim::milliseconds(20), 42);
  const auto b = lb::make_random_churn(3, 2, 12, sim::milliseconds(1),
                                       sim::milliseconds(20), 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.initial_peers, b.initial_peers);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].peer, b.events[i].peer);
    EXPECT_EQ(a.events[i].join, b.events[i].join);
  }
  const auto c = lb::make_random_churn(3, 2, 12, sim::milliseconds(1),
                                       sim::milliseconds(20), 43);
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    differs |= c.events[i].time != a.events[i].time ||
               c.events[i].peer != a.events[i].peer;
  }
  EXPECT_TRUE(differs) << "different seeds should draw different schedules";
}

TEST(MakeRandomChurn, PlansAreWellFormed) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto plan = lb::make_random_churn(4, 3, 16, sim::milliseconds(1),
                                            sim::milliseconds(20), seed);
    EXPECT_EQ(plan.initial_peers, 12);
    int joins = 0;
    int leaves = 0;
    for (const auto& e : plan.events) {
      if (e.join) {
        ++joins;
        EXPECT_GE(e.peer, plan.initial_peers) << "only dormant peers join";
      } else {
        ++leaves;
        EXPECT_GT(e.peer, 0) << "the root never leaves";
        EXPECT_LT(e.peer, plan.initial_peers)
            << "leavers are drawn from the initial members";
      }
      EXPECT_GE(e.time, sim::milliseconds(1));
      EXPECT_LE(e.time, sim::milliseconds(20));
    }
    EXPECT_EQ(joins, 4);
    EXPECT_EQ(leaves, 3);
    // validate_churn is the driver's gate; a generated plan must clear it.
    auto config = base_config(lb::Strategy::kOverlayBTD, 16, 3, seed);
    config.churn = plan;
    lb::validate_churn(config);
  }
}

TEST(MakeRandomChurn, DisabledAndEmptyPlansStayDisabled) {
  EXPECT_FALSE(lb::ChurnPlan{}.enabled());
  const auto plan = lb::make_random_churn(0, 0, 8, sim::milliseconds(1),
                                          sim::milliseconds(20), 1);
  EXPECT_FALSE(plan.enabled());
}

TEST(Churn, ZeroChurnRunsAreByteIdenticalToPlanFreeRuns) {
  // A disabled plan must take none of the membership code paths: same
  // termination machinery, same message schedule, same trace — byte for
  // byte. This is the guard against the churn layer taxing or perturbing
  // the paper's fixed-membership experiments.
  const auto params = uts_params(9, /*b0=*/200, /*q=*/0.45);
  for (auto strategy : kOverlays) {
    std::vector<trace::TraceEvent> streams[2];
    for (int variant = 0; variant < 2; ++variant) {
      uts::UtsWorkload workload(params, uts::CostModel{});
      auto config = base_config(strategy, 10, /*dmax=*/3, /*seed=*/5);
      if (variant == 1) {
        config.churn = lb::make_random_churn(0, 0, 10, sim::milliseconds(1),
                                             sim::milliseconds(20), 7);
      }
      trace::VectorTracer tracer;
      config.tracer = &tracer;
      ASSERT_TRUE(lb::run_distributed(workload, config).ok);
      streams[variant] = tracer.snapshot();
    }
    ASSERT_EQ(streams[0].size(), streams[1].size())
        << lb::strategy_name(strategy);
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      const auto& a = streams[0][i];
      const auto& b = streams[1][i];
      ASSERT_TRUE(a.time == b.time && a.kind == b.kind && a.actor == b.actor &&
                  a.peer == b.peer && a.type == b.type && a.a == b.a &&
                  a.b == b.b)
          << lb::strategy_name(strategy) << " diverges at event " << i;
    }
  }
}

// --------------------------------------------------- oracle-checked sweep ---

// (strategy, joins, leaves, seed)
using ChurnParam = std::tuple<lb::Strategy, int, int, std::uint64_t>;

class ChurnSweep : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(ChurnSweep, UtsExactUnderChurnWithOraclesAttached) {
  const auto [strategy, joins, leaves, seed] = GetParam();
  const int n = 12;
  const auto params = uts_params(static_cast<std::uint32_t>(seed * 5 + 2),
                                 /*b0=*/200, /*q=*/0.47);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto seq = lb::run_sequential(workload);
  const auto config = churn_config(strategy, n, joins, leaves, seed);
  const auto report = check::run_conformance(workload, config, seq);
  EXPECT_TRUE(report.passed()) << violations_text(report.violations);
  EXPECT_EQ(report.metrics.total_units, seq.units) << "premature termination";
}

INSTANTIATE_TEST_SUITE_P(
    JoinLeaveShapes, ChurnSweep,
    ::testing::Combine(::testing::ValuesIn(kOverlays),
                       ::testing::Values(0, 1, 3),  // joins
                       ::testing::Values(0, 1, 2),  // leaves
                       ::testing::Values<std::uint64_t>(1, 2)),
    [](const ::testing::TestParamInfo<ChurnParam>& p) {
      return std::string(lb::strategy_name(std::get<0>(p.param))) + "_j" +
             std::to_string(std::get<1>(p.param)) + "_l" +
             std::to_string(std::get<2>(p.param)) + "_s" +
             std::to_string(std::get<3>(p.param));
    });

TEST(Churn, FlowshopOptimumExactUnderChurn) {
  // Graceful leaves hand their pool to the parent, so the proved optimum
  // stays exact — the B&B analogue of the UTS node-count invariant.
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(4, 9, 5);
  const auto ref = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  for (auto strategy : kOverlays) {
    for (std::uint64_t seed : {1u, 2u}) {
      bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine,
                              bb::CostModel{});
      const auto seq = lb::run_sequential(workload);
      bb::BBWorkload fresh(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
      const auto config = churn_config(strategy, 12, 2, 2, seed);
      const auto report = check::run_conformance(fresh, config, seq);
      EXPECT_TRUE(report.passed()) << violations_text(report.violations);
      EXPECT_EQ(report.metrics.best_bound, ref.optimum);
    }
  }
}

TEST(Churn, ThreadsBackendExactUnderChurn) {
  // The same membership code must hold on real threads: joins/leaves are
  // wall-clock timers there, so this exercises genuinely racy arrivals.
  const auto params = uts_params(17, /*b0=*/200, /*q=*/0.45);
  for (auto strategy : kOverlays) {
    uts::UtsWorkload workload(params, uts::CostModel{});
    const auto seq = lb::run_sequential(workload);
    uts::UtsWorkload fresh(params, uts::CostModel{});
    const auto config = churn_config(strategy, 8, 2, 1, 3);
    const auto report = check::run_thread_conformance(fresh, config, seq);
    EXPECT_TRUE(report.passed()) << violations_text(report.violations);
    EXPECT_EQ(report.metrics.total_units, seq.units);
  }
}

// ------------------------------------------------------------ subtree size ---

TEST(Churn, RootSubtreeSizeTracksLiveMembership) {
  // Joins add their weight, leaves subtract it, and once the last delta has
  // been delivered the root's estimate equals the live member count. Events
  // scheduled after the run quiesces never fire, so the expectation is
  // built from the membership events the trace actually records — and the
  // workload is sized so the run outlives the churn window by a wide
  // margin (a kSizeDelta still in flight when termination is declared is
  // legal, but it would make the root's final estimate lag).
  bool any_leave = false;
  for (auto strategy : kOverlays) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const int n = 12, joins = 3, leaves = 2;
      const auto params = uts_params(static_cast<std::uint32_t>(seed + 40),
                                     /*b0=*/2000, /*q=*/0.47);
      uts::UtsWorkload workload(params, uts::CostModel{});
      auto config = churn_config(strategy, n, joins, leaves, seed);
      trace::VectorTracer tracer;
      config.tracer = &tracer;
      const auto m = lb::run_distributed(workload, config);
      ASSERT_TRUE(m.ok);
      int joined = 0;
      int left = 0;
      for (const auto& e : tracer.snapshot()) {
        joined += e.kind == trace::EventKind::kMemberJoin ? 1 : 0;
        left += e.kind == trace::EventKind::kMemberLeave ? 1 : 0;
      }
      any_leave |= left > 0;
      ASSERT_FALSE(m.final_state.empty());
      const auto& root = m.final_state[0];
      EXPECT_EQ(root.peer, 0);
      EXPECT_EQ(root.subtree_size,
                static_cast<std::uint64_t>(config.churn.initial_peers +
                                           joined - left))
          << lb::strategy_name(strategy) << " seed=" << seed;
      int departed = 0;
      for (const auto& tap : m.final_state) departed += tap.departed ? 1 : 0;
      EXPECT_EQ(departed, left);
    }
  }
  EXPECT_TRUE(any_leave) << "no combo exercised a leave; widen the window";
}

TEST(Churn, RootSubtreeSizeShrinksAfterCrashReParenting) {
  // The crash path must apply the same size hygiene: when a peer dies and
  // its children re-parent, the dead weight may not linger in any ancestor's
  // estimate (the stale-subtree-size bug this PR fixes).
  for (auto strategy : {lb::Strategy::kOverlayTD, lb::Strategy::kOverlayBTD}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const int n = 16, crashes = 2;
      const auto params = uts_params(static_cast<std::uint32_t>(seed + 60),
                                     /*b0=*/200, /*q=*/0.45);
      uts::UtsWorkload workload(params, uts::CostModel{});
      auto config = base_config(strategy, n, /*dmax=*/3, seed,
                                /*event_limit=*/30'000'000);
      config.faults = sim::make_random_crashes(crashes, n,
                                               sim::microseconds(500),
                                               sim::milliseconds(4), seed);
      const auto m = lb::run_distributed(workload, config);
      ASSERT_TRUE(m.ok);
      EXPECT_EQ(m.peers_crashed, static_cast<std::uint64_t>(crashes));
      ASSERT_FALSE(m.final_state.empty());
      EXPECT_EQ(m.final_state[0].subtree_size,
                static_cast<std::uint64_t>(n - crashes))
          << lb::strategy_name(strategy) << " seed=" << seed;
    }
  }
}

// ------------------------------------------------------------- regressions ---

// Shrunk fuzz tuples that each exposed a distinct membership termination
// bug. Replaying them through the conformance harness pins the fixes:
//
//  * churn=2 tuple — a tree serve in flight to a leaver was invisible to
//    the bridge-only counters (waves now aggregate every transfer);
//  * churn=3 tuple — a leave dirtied the confirming wave and nothing ever
//    re-triggered the root (it now re-polls on a lease tick under churn);
//  * churn=5 tuple — a kLeave handover addressed to an already-departed
//    parent was dropped, stranding a never-pending child entry (departed
//    peers now forward the handover to the member side).
TEST(ChurnRegression, FuzzFoundTerminationBugsStayFixed) {
  const char* kRepros[] = {
      "strategy=TR peers=18 dmax=1 workload=2 seed=90919 fault=0 "
      "sched=123334 churn=2",
      "strategy=TR peers=18 dmax=1 workload=1 seed=485546 fault=0 "
      "sched=694894 churn=3",
      "strategy=TR peers=9 dmax=5 workload=2 seed=663200 fault=0 sched=0 "
      "churn=5",
  };
  for (const char* repro : kRepros) {
    check::FuzzCase c;
    ASSERT_TRUE(check::parse_case(repro, &c)) << repro;
    const auto report = check::run_case(c);
    EXPECT_TRUE(report.metrics.ok) << repro;
    EXPECT_TRUE(report.passed())
        << repro << "\n"
        << violations_text(report.violations);
  }
}

}  // namespace
}  // namespace olb
