// Service-layer tests: multi-job ingest over one shared overlay fleet.
//
// The load-bearing properties:
//
//  * seeded determinism — an (arrival process, seed) pair materialises the
//    identical job stream on every run, and make_schedule merges classes
//    into one time-sorted, densely-numbered schedule reproducibly;
//  * exactness under multiplexing — with three priority classes in flight
//    concurrently, every admitted UTS job still counts *exactly* its own
//    sequential tree and every flowshop job lands on *its* optimum, on the
//    simulator and on the threads backend, with the full oracle set
//    (job-conservation included) attached;
//  * admission control — jobs are shed only when the pending queue is at
//    its bound (checked per kJobReject event, not just at the peak), and
//    the queue never exceeds the bound;
//  * priority — the gate's pending queue pops strictly in (class, job id)
//    order, so a flood of low-priority work never starves an admitted
//    high-priority job.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "check/conformance.hpp"
#include "svc/service.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace olb {
namespace {

using test_util::uts_params;

/// Small canonical fleet: 8 peers, BTD, paper network. Classes are added
/// by each test.
svc::ServiceConfig service_base(lb::Strategy s = lb::Strategy::kOverlayBTD,
                                std::uint64_t seed = 7) {
  svc::ServiceConfig sc;
  sc.run = test_util::base_config(s, /*n=*/8, /*dmax=*/3, seed,
                                  /*event_limit=*/60'000'000);
  return sc;
}

svc::JobClass uts_class(svc::ArrivalKind kind, double rate,
                        sim::Time horizon = sim::milliseconds(30)) {
  svc::JobClass cls;
  cls.kind = svc::JobClass::Kind::kUts;
  cls.arrivals.kind = kind;
  cls.arrivals.rate_per_sec = rate;
  cls.arrivals.horizon = horizon;
  cls.arrivals.on_period = sim::milliseconds(5);
  cls.arrivals.off_period = sim::milliseconds(5);
  cls.uts = uts_params(/*root_seed=*/19);
  return cls;
}

svc::JobClass flowshop_class(double rate,
                             sim::Time horizon = sim::milliseconds(30)) {
  svc::JobClass cls;
  cls.kind = svc::JobClass::Kind::kFlowshop;
  cls.arrivals.kind = svc::ArrivalKind::kDiurnal;
  cls.arrivals.rate_per_sec = rate;
  cls.arrivals.horizon = horizon;
  cls.fs_jobs = 6;
  cls.fs_machines = 3;
  cls.fs_seed = 2;
  return cls;
}

/// Runs the service with every oracle armed and returns the metrics;
/// fails the test on any oracle violation or an incomplete run.
svc::ServiceMetrics run_with_oracles(svc::ServiceConfig sc,
                                     trace::TraceSink* capture = nullptr) {
  check::OracleOptions options = check::oracle_options_for(sc.run);
  options.jobs = true;
  check::OracleSet oracles(options);
  trace::TeeSink tee(capture, &oracles);
  sc.run.tracer = &tee;
  const svc::ServiceMetrics m = svc::run_service(sc);
  oracles.finish();
  for (const check::Violation& v : oracles.violations()) {
    ADD_FAILURE() << check::to_string(v);
  }
  EXPECT_TRUE(m.ok) << "service run did not complete every admitted job";
  EXPECT_EQ(m.bad_rejects, 0u);
  return m;
}

/// Every admitted job must match its own sequential reference exactly.
void expect_exact_jobs(const svc::ServiceMetrics& m) {
  for (const svc::JobRecord& rec : m.jobs) {
    if (rec.rejected) {
      EXPECT_EQ(rec.units, 0u) << "rejected job " << rec.job << " ran anyway";
      continue;
    }
    if (rec.kind == svc::JobClass::Kind::kUts) {
      EXPECT_EQ(rec.units, rec.expected_units) << "job " << rec.job;
    }
    EXPECT_EQ(rec.bound, rec.expected_bound) << "job " << rec.job;
  }
}

// --------------------------------------------------------------- arrivals ---

TEST(Arrivals, DeterministicInSeed) {
  svc::ArrivalProcess p;
  p.kind = svc::ArrivalKind::kBursty;
  p.rate_per_sec = 400;
  p.horizon = sim::milliseconds(50);
  const auto a = svc::arrival_times(p, 42);
  const auto b = svc::arrival_times(p, 42);
  EXPECT_EQ(a, b);
  const auto c = svc::arrival_times(p, 43);
  EXPECT_NE(a, c) << "different seeds should draw different streams";
}

TEST(Arrivals, SortedAndWithinHorizon) {
  for (auto kind : {svc::ArrivalKind::kPoisson, svc::ArrivalKind::kBursty,
                    svc::ArrivalKind::kDiurnal}) {
    svc::ArrivalProcess p;
    p.kind = kind;
    p.rate_per_sec = 600;
    p.horizon = sim::milliseconds(40);
    const auto times = svc::arrival_times(p, 9);
    ASSERT_FALSE(times.empty()) << arrival_kind_name(kind);
    for (std::size_t i = 0; i < times.size(); ++i) {
      EXPECT_GE(times[i], 0);
      EXPECT_LT(times[i], p.horizon);
      if (i > 0) {
        EXPECT_LE(times[i - 1], times[i]);
      }
    }
  }
}

TEST(Arrivals, BurstyArrivesOnlyInOnWindows) {
  svc::ArrivalProcess p;
  p.kind = svc::ArrivalKind::kBursty;
  p.rate_per_sec = 2000;
  p.horizon = sim::milliseconds(50);
  p.on_period = sim::milliseconds(4);
  p.off_period = sim::milliseconds(6);
  const sim::Time cycle = p.on_period + p.off_period;
  for (sim::Time t : svc::arrival_times(p, 11)) {
    EXPECT_LT(t % cycle, p.on_period) << "arrival at " << t << " is in an "
                                      << "off window";
  }
}

// --------------------------------------------------------------- schedule ---

TEST(Schedule, DeterministicSortedAndDense) {
  svc::ServiceConfig sc = service_base();
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 300));
  sc.classes.push_back(uts_class(svc::ArrivalKind::kBursty, 500));
  sc.classes.push_back(flowshop_class(300));
  const auto a = svc::make_schedule(sc);
  const auto b = svc::make_schedule(sc);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  std::set<int> classes_seen;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].job_class, b[i].job_class);
    // Dense ids in arrival order; the merged stream stays time-sorted.
    EXPECT_EQ(a[i].job, i);
    if (i > 0) {
      EXPECT_LE(a[i - 1].time, a[i].time);
    }
    classes_seen.insert(a[i].job_class);
  }
  EXPECT_EQ(classes_seen.size(), 3u) << "every class should contribute jobs";
}

TEST(Schedule, SeedChangesTheStream) {
  svc::ServiceConfig sc = service_base();
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 400));
  const auto a = svc::make_schedule(sc);
  sc.run.seed = 8;
  const auto b = svc::make_schedule(sc);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time != b[i].time;
  }
  EXPECT_TRUE(differs);
}

// -------------------------------------------------------------- exactness ---

TEST(Service, ThreeClassesExactOnSim) {
  svc::ServiceConfig sc = service_base();
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 150));
  sc.classes.push_back(uts_class(svc::ArrivalKind::kBursty, 400));
  sc.classes.push_back(flowshop_class(150));
  sc.admission.max_in_service = 3;
  sc.admission.queue_bound = 4;
  const auto m = run_with_oracles(sc);
  EXPECT_GE(m.submitted, 3u);
  EXPECT_EQ(m.completed, m.admitted);
  expect_exact_jobs(m);
  // The mix must actually be concurrent: more admitted jobs than service
  // slots means the bags multiplexed.
  EXPECT_GT(m.admitted, static_cast<std::uint64_t>(sc.admission.max_in_service));
}

TEST(Service, ThreeClassesExactOnThreads) {
  svc::ServiceConfig sc = service_base();
  sc.run.backend = lb::Backend::kThreads;
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 150));
  sc.classes.push_back(uts_class(svc::ArrivalKind::kBursty, 400));
  sc.classes.push_back(flowshop_class(150));
  sc.admission.max_in_service = 3;
  sc.admission.queue_bound = 4;
  const auto m = run_with_oracles(sc);
  EXPECT_GE(m.submitted, 3u);
  EXPECT_EQ(m.completed, m.admitted);
  expect_exact_jobs(m);
}

TEST(Service, ScheduleIdenticalAcrossBackends) {
  // Real time only moves completion; the submitted stream itself is the
  // materialised schedule, identical on both backends.
  svc::ServiceConfig sc = service_base();
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 200));
  sc.classes.push_back(flowshop_class(200));
  const auto sim_m = run_with_oracles(sc);
  sc.run.backend = lb::Backend::kThreads;
  const auto thr_m = run_with_oracles(sc);
  ASSERT_EQ(sim_m.jobs.size(), thr_m.jobs.size());
  for (std::size_t i = 0; i < sim_m.jobs.size(); ++i) {
    EXPECT_EQ(sim_m.jobs[i].job_class, thr_m.jobs[i].job_class);
    EXPECT_EQ(sim_m.jobs[i].kind, thr_m.jobs[i].kind);
    EXPECT_EQ(sim_m.jobs[i].expected_units, thr_m.jobs[i].expected_units);
    EXPECT_EQ(sim_m.jobs[i].expected_bound, thr_m.jobs[i].expected_bound);
  }
}

// -------------------------------------------------------------- admission ---

TEST(Service, ShedsOnlyWhenTheQueueIsFull) {
  svc::ServiceConfig sc = service_base();
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 1500));
  sc.admission.max_in_service = 1;
  sc.admission.queue_bound = 2;
  trace::VectorTracer tracer;
  const auto m = run_with_oracles(sc, &tracer);
  expect_exact_jobs(m);
  ASSERT_GT(m.rejected, 0u) << "overload config failed to overload";
  EXPECT_LE(m.peak_pending, sc.admission.queue_bound);
  EXPECT_EQ(m.submitted, m.admitted + m.rejected);
  // The per-event version of the property: every shed happened against a
  // full queue (kJobReject records the pending size in field b).
  std::uint64_t rejects_seen = 0;
  for (const trace::TraceEvent& e : tracer.events()) {
    if (e.kind != trace::EventKind::kJobReject) continue;
    ++rejects_seen;
    EXPECT_EQ(e.b, static_cast<std::int64_t>(sc.admission.queue_bound))
        << "job " << e.type << " shed with queue room";
  }
  EXPECT_EQ(rejects_seen, m.rejected);
}

// --------------------------------------------------------------- priority ---

TEST(Service, PendingQueuePopsInClassOrder) {
  // A long bursty flood of low-priority work plus a steady trickle of
  // high-priority jobs: whenever the gate frees a slot, the injected job
  // must be minimal in (class, id) among everything still pending.
  svc::ServiceConfig sc = service_base();
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 150,
                                 sim::milliseconds(40)));
  sc.classes.push_back(uts_class(svc::ArrivalKind::kBursty, 1200,
                                 sim::milliseconds(40)));
  sc.admission.max_in_service = 1;
  sc.admission.queue_bound = 6;
  trace::VectorTracer tracer;
  const auto m = run_with_oracles(sc, &tracer);
  expect_exact_jobs(m);

  const int gate = sc.run.num_peers;
  std::map<std::uint64_t, int> pending;  // admitted, not yet injected
  std::map<std::uint64_t, int> class_of;
  bool leapfrogged = false;
  for (const trace::TraceEvent& e : tracer.events()) {
    const auto job = static_cast<std::uint64_t>(e.type);
    switch (e.kind) {
      case trace::EventKind::kJobAdmit:
        class_of[job] = static_cast<int>(e.a);
        pending[job] = static_cast<int>(e.a);
        break;
      case trace::EventKind::kJobXfer: {
        if (e.actor != gate) break;  // fleet-internal transfer, not an inject
        ASSERT_TRUE(pending.count(job)) << "injected job " << job
                                        << " was never admitted";
        const int cls = pending[job];
        for (const auto& [other, other_cls] : pending) {
          if (other == job) continue;
          // Strict (class, id) order: nothing strictly smaller may wait.
          EXPECT_FALSE(other_cls < cls ||
                       (other_cls == cls && other < job))
              << "job " << job << " (class " << cls << ") injected while job "
              << other << " (class " << other_cls << ") waited";
          leapfrogged |= cls < other_cls;
        }
        pending.erase(job);
        break;
      }
      default:
        break;
    }
  }
  EXPECT_TRUE(pending.empty()) << "admitted jobs left uninjected";
  EXPECT_TRUE(leapfrogged)
      << "the flood never queued behind a high-priority job; the test "
         "exercised nothing";
  // The starvation half: every admitted high-priority job completed.
  for (const svc::JobRecord& rec : m.jobs) {
    if (rec.rejected || rec.job_class != 0) continue;
    EXPECT_GE(rec.done, 0) << "high-priority job " << rec.job << " starved";
  }
}

// ---------------------------------------------------------------- metrics ---

TEST(Service, PerClassLatencyHistogramsMatchAdmissions) {
  svc::ServiceConfig sc = service_base();
  sc.classes.push_back(uts_class(svc::ArrivalKind::kPoisson, 150));
  sc.classes.push_back(flowshop_class(150));
  metrics::MetricsHub hub({.path = "test_svc_metrics.ndjson", .shards = 1});
  sc.run.metrics = &hub;
  const auto m = run_with_oracles(sc);
  for (std::size_t c = 0; c < sc.classes.size(); ++c) {
    std::uint64_t admitted = 0;
    for (const svc::JobRecord& rec : m.jobs) {
      admitted += rec.job_class == static_cast<int>(c) && !rec.rejected;
    }
    auto* soj = hub.registry().find_histogram("olb_svc_sojourn_ns",
                                              static_cast<int>(c));
    auto* que = hub.registry().find_histogram("olb_svc_queueing_ns",
                                              static_cast<int>(c));
    ASSERT_NE(soj, nullptr) << "class " << c;
    ASSERT_NE(que, nullptr) << "class " << c;
    // One sojourn and one queueing sample per completed job, recorded into
    // the class's own histogram and nobody else's.
    EXPECT_EQ(soj->snapshot().count, admitted) << "class " << c;
    EXPECT_EQ(que->snapshot().count, admitted) << "class " << c;
  }
}

// ------------------------------------------------------------ workload ids ---

TEST(Service, JobWorkloadsAreDeterministicAndDistinct) {
  svc::JobClass cls = uts_class(svc::ArrivalKind::kPoisson, 100);
  const auto a = svc::make_job_workload(cls, 4);
  const auto b = svc::make_job_workload(cls, 4);
  const auto c = svc::make_job_workload(cls, 5);
  const auto ra = lb::run_sequential(*a);
  const auto rb = lb::run_sequential(*b);
  const auto rc = lb::run_sequential(*c);
  EXPECT_EQ(ra.units, rb.units);
  EXPECT_NE(ra.units, rc.units) << "distinct jobs should get distinct trees";
}

}  // namespace
}  // namespace olb
