// Protocol tests for the overlay-centric load balancer (TD / TR / BTD):
// exactness, termination (never early, never hung), cooperation invariants.
// Parameterised sweeps hammer the termination logic across tree shapes,
// scales and seeds — the bug magnet called out in DESIGN.md.
#include <gtest/gtest.h>

#include <tuple>

#include "bb/bb_work.hpp"
#include "lb/driver.hpp"
#include "test_util.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

using test_util::base_config;
using test_util::uts_params;

// --------------------------------------------------- parameterised sweeps ---

// (strategy, peers, dmax, seed)
using SweepParam = std::tuple<lb::Strategy, int, int, std::uint64_t>;

class OverlaySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OverlaySweep, UtsCompletesExactly) {
  const auto [strategy, n, dmax, seed] = GetParam();
  const auto params = uts_params(static_cast<std::uint32_t>(seed * 7 + 1));
  const auto expected = uts::count_tree(params).nodes;
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics = lb::run_distributed(workload, base_config(strategy, n, dmax, seed));
  ASSERT_TRUE(metrics.ok) << "n=" << n << " dmax=" << dmax << " seed=" << seed;
  EXPECT_EQ(metrics.total_units, expected);
}

TEST_P(OverlaySweep, FlowshopFindsOptimum) {
  const auto [strategy, n, dmax, seed] = GetParam();
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(
      static_cast<int>(seed % 10), 9, 5);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  const auto metrics = lb::run_distributed(workload, base_config(strategy, n, dmax, seed));
  ASSERT_TRUE(metrics.ok) << "n=" << n << " dmax=" << dmax << " seed=" << seed;
  EXPECT_EQ(workload.best().makespan(), reference.optimum);
  EXPECT_EQ(metrics.best_bound, reference.optimum);
}

INSTANTIATE_TEST_SUITE_P(
    TreesAndScales, OverlaySweep,
    ::testing::Combine(
        ::testing::Values(lb::Strategy::kOverlayTD, lb::Strategy::kOverlayTR,
                          lb::Strategy::kOverlayBTD),
        ::testing::Values(2, 5, 17, 60),
        ::testing::Values(1, 2, 10),
        ::testing::Values<std::uint64_t>(1, 2)),
    [](const ::testing::TestParamInfo<SweepParam>& p) {
      return std::string(lb::strategy_name(std::get<0>(p.param))) + "_n" +
             std::to_string(std::get<1>(p.param)) + "_d" +
             std::to_string(std::get<2>(p.param)) + "_s" +
             std::to_string(std::get<3>(p.param));
    });

// ------------------------------------------------------------- edge cases ---

TEST(OverlayLb, SinglePeerTD) {
  const auto params = uts_params(3);
  const auto expected = uts::count_tree(params).nodes;
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayTD, 1, 2, 1));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.total_units, expected);
}

TEST(OverlayLb, SinglePeerBTDSkipsBridges) {
  const auto params = uts_params(4);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayBTD, 1, 2, 1));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.sent_by_type[lb::kReqBridge], 0u);
}

TEST(OverlayLb, ChainOverlayCompletes) {
  // dmax=1 degenerates the tree into a chain — the worst diameter.
  const auto params = uts_params(5);
  const auto expected = uts::count_tree(params).nodes;
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayTD, 12, 1, 1));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.total_units, expected);
}

TEST(OverlayLb, StarOverlayCompletes) {
  // dmax >= n-1 makes the root a master-like hub.
  const auto params = uts_params(6);
  const auto expected = uts::count_tree(params).nodes;
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayTD, 16, 15, 1));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.total_units, expected);
}

TEST(OverlayLb, TrivialWorkloadTerminates) {
  // A tree with almost no work: most peers never receive anything, yet the
  // protocol must still detect termination (the empty-system case).
  const auto params = uts_params(7, 2, 0.05);
  const auto expected = uts::count_tree(params).nodes;
  for (auto strategy : {lb::Strategy::kOverlayTD, lb::Strategy::kOverlayBTD}) {
    uts::UtsWorkload workload(params, uts::CostModel{});
    const auto metrics =
        lb::run_distributed(workload, base_config(strategy, 30, 3, 2));
    ASSERT_TRUE(metrics.ok) << lb::strategy_name(strategy);
    EXPECT_EQ(metrics.total_units, expected);
  }
}

// ------------------------------------------------------ protocol behaviour ---

TEST(OverlayLb, ConvergecastRunsExactlyOncePerEdge) {
  const auto params = uts_params(8);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const int n = 40;
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayTD, n, 3, 1));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.sent_by_type[lb::kSizeUp], static_cast<std::uint64_t>(n - 1));
  EXPECT_EQ(metrics.sent_by_type[lb::kSizeDown], static_cast<std::uint64_t>(n - 1));
}

TEST(OverlayLb, TerminationBroadcastReachesEveryPeer) {
  const auto params = uts_params(9);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const int n = 31;
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayTD, n, 4, 1));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.sent_by_type[lb::kTerminate], static_cast<std::uint64_t>(n - 1));
}

TEST(OverlayLb, PureTreeModeSendsNoBridgeOrProbeTraffic) {
  const auto params = uts_params(10);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayTD, 25, 5, 3));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.sent_by_type[lb::kReqBridge], 0u);
  EXPECT_EQ(metrics.sent_by_type[lb::kProbe], 0u);
  EXPECT_EQ(metrics.sent_by_type[lb::kProbeAck], 0u);
}

TEST(OverlayLb, BridgeModeUsesBridges) {
  const auto params = uts_params(11);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kOverlayBTD, 25, 5, 3));
  ASSERT_TRUE(metrics.ok);
  EXPECT_GT(metrics.sent_by_type[lb::kReqBridge], 0u);
  // Bridge mode must confirm termination with at least two probe waves.
  EXPECT_GE(metrics.sent_by_type[lb::kProbe], 2u * 5u);
}

TEST(OverlayLb, FixedUnitPoliciesAlsoExact) {
  // steal-1 and steal-2 (the granularities analysed by Dinan et al. and
  // discussed in the paper's §I) still complete exactly — just slowly.
  const auto params = uts_params(18);
  const auto expected = uts::count_tree(params).nodes;
  for (std::uint64_t k : {1u, 2u}) {
    uts::UtsWorkload workload(params, uts::CostModel{});
    auto config = base_config(lb::Strategy::kOverlayTD, 12, 3, 1);
    config.overlay.split = lb::SplitPolicy::kFixedUnits;
    config.overlay.split_fixed_units = k;
    config.min_split_amount = 1;
    const auto metrics = lb::run_distributed(workload, config);
    ASSERT_TRUE(metrics.ok) << "steal-" << k;
    EXPECT_EQ(metrics.total_units, expected) << "steal-" << k;
  }
}

TEST(OverlayLb, TinyGrainsCauseMoreTransfers) {
  const auto params = uts_params(19, 300, 0.47);
  auto transfers_with = [&](lb::SplitPolicy split, std::uint64_t k) {
    uts::UtsWorkload workload(params, uts::CostModel{});
    auto config = base_config(lb::Strategy::kOverlayTD, 16, 4, 1);
    config.overlay.split = split;
    config.overlay.split_fixed_units = k;
    config.min_split_amount = 1;
    const auto metrics = lb::run_distributed(workload, config);
    EXPECT_TRUE(metrics.ok);
    return metrics.work_transfers;
  };
  EXPECT_GT(transfers_with(lb::SplitPolicy::kFixedUnits, 1),
            transfers_with(lb::SplitPolicy::kSubtreeProportional, 0));
}

TEST(OverlayLb, StealHalfPolicyAlsoExact) {
  const auto params = uts_params(12);
  const auto expected = uts::count_tree(params).nodes;
  uts::UtsWorkload workload(params, uts::CostModel{});
  auto config = base_config(lb::Strategy::kOverlayTD, 20, 10, 1);
  config.overlay.split = lb::SplitPolicy::kHalf;
  const auto metrics = lb::run_distributed(workload, config);
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.total_units, expected);
}

TEST(OverlayLb, DeterministicGivenSeed) {
  const auto params = uts_params(13);
  auto run_once = [&] {
    uts::UtsWorkload workload(params, uts::CostModel{});
    return lb::run_distributed(workload,
                               base_config(lb::Strategy::kOverlayBTD, 20, 4, 42));
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.exec_seconds, b.exec_seconds);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.msgs_per_peer, b.msgs_per_peer);
}

TEST(OverlayLb, SeedsChangeSchedule) {
  const auto params = uts_params(14);
  auto run_with = [&](std::uint64_t seed) {
    uts::UtsWorkload workload(params, uts::CostModel{});
    return lb::run_distributed(workload,
                               base_config(lb::Strategy::kOverlayBTD, 20, 4, seed));
  };
  EXPECT_NE(run_with(1).total_messages, run_with(2).total_messages);
}

TEST(OverlayLb, BoundDiffusionReducesExploredNodes) {
  // With diffusion disabled every peer prunes only with locally-found
  // bounds, so the cluster must explore at least as many B&B nodes.
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(0, 10, 6);
  auto run_with = [&](bool diffuse) {
    bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
    auto config = base_config(lb::Strategy::kOverlayTD, 30, 5, 3);
    config.diffuse_bounds = diffuse;
    const auto metrics = lb::run_distributed(workload, config);
    EXPECT_TRUE(metrics.ok);
    EXPECT_EQ(workload.best().makespan(),
              bb::solve_sequential(inst, bb::BoundKind::kOneMachine).optimum);
    return metrics.total_units;
  };
  EXPECT_LE(run_with(true), run_with(false));
}

TEST(OverlayLb, UtsNodeCountInvariantAcrossTopologies) {
  // The counted total is a pure function of the UTS instance, whatever the
  // overlay shape or seed.
  const auto params = uts_params(15);
  const auto expected = uts::count_tree(params).nodes;
  for (int dmax : {1, 3, 8}) {
    for (std::uint64_t seed : {5u, 9u}) {
      uts::UtsWorkload workload(params, uts::CostModel{});
      const auto metrics = lb::run_distributed(
          workload, base_config(lb::Strategy::kOverlayBTD, 22, dmax, seed));
      ASSERT_TRUE(metrics.ok);
      EXPECT_EQ(metrics.total_units, expected);
    }
  }
}

TEST(OverlayLb, SplitFractionsStayWellFormedUnderCrashes) {
  // Regression for unclamped split fractions: after crash re-parenting the
  // subtree aggregates feeding fraction_for_parent/child/bridge can be
  // stale (e.g. my_size_ exceeding a not-yet-refreshed parent_size_, which
  // wrapped to a huge positive fraction in the old uint64 arithmetic).
  // Every out-of-range share must be clamped — traced as kSplitClamp with
  // a replacement in (0, 1] — and the run must still complete.
  for (auto strategy : {lb::Strategy::kOverlayTD, lb::Strategy::kOverlayBTD}) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      const auto params = uts_params(static_cast<std::uint32_t>(seed * 3 + 2));
      uts::UtsWorkload workload(params, uts::CostModel{});
      auto config = base_config(strategy, 16, 3, seed);
      config.faults = sim::make_random_crashes(2, 16, sim::microseconds(500),
                                               sim::milliseconds(4), seed);
      trace::VectorTracer tracer;
      config.tracer = &tracer;
      const auto metrics = lb::run_distributed(workload, config);
      ASSERT_TRUE(metrics.ok) << lb::strategy_name(strategy) << " seed=" << seed;
      for (const auto& e : tracer.events()) {
        if (e.kind != trace::EventKind::kSplitClamp) continue;
        EXPECT_TRUE(e.a <= 0 || e.a > 1'000'000)
            << "clamp fired on an in-range fraction (raw ppm " << e.a << ")";
        EXPECT_GT(e.b, 0) << "clamped share must be positive";
        EXPECT_LE(e.b, 1'000'000) << "clamped share must be <= 1";
      }
    }
  }
}

TEST(OverlayLb, LargerDegreeNoSlowerOnBalancedLoad) {
  // Table I's qualitative claim at moderate scale: dmax=10 beats dmax=2.
  const auto params = uts_params(16, 400, 0.493);
  auto time_with = [&](int dmax) {
    uts::UtsWorkload workload(params, uts::CostModel{});
    const auto metrics = lb::run_distributed(
        workload, base_config(lb::Strategy::kOverlayTD, 64, dmax, 1));
    EXPECT_TRUE(metrics.ok);
    return metrics.exec_seconds;
  };
  EXPECT_LT(time_with(10), time_with(2));
}

}  // namespace
}  // namespace olb
