// Tests for the flowshop/B&B substrate: Taillard generator, makespan
// evaluation, bound soundness, interval-encoded exploration, NEH.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "bb/bb_work.hpp"
#include "bb/bounds.hpp"
#include "bb/flowshop.hpp"
#include "bb/interval_bb.hpp"
#include "support/factorial.hpp"
#include "support/rng.hpp"

namespace olb::bb {
namespace {

FlowshopInstance random_instance(int jobs, int machines, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<int> p(static_cast<std::size_t>(jobs * machines));
  for (auto& v : p) v = static_cast<int>(rng.uniform(1, 99));
  return FlowshopInstance("rnd", jobs, machines, std::move(p));
}

// --------------------------------------------------------------- Taillard ---

TEST(Taillard, RngMatchesPublishedRecurrence) {
  // First values of the Lehmer stream from seed 1: 16807, 282475249, ...
  TaillardRng rng(1);
  (void)rng.next(0, 0);
  EXPECT_EQ(rng.state(), 16807);
  (void)rng.next(0, 0);
  EXPECT_EQ(rng.state(), 282475249);
  (void)rng.next(0, 0);
  EXPECT_EQ(rng.state(), 1622650073);
}

TEST(Taillard, ValuesAreInRange) {
  TaillardRng rng(479340445);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.next(1, 99);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 99);
  }
}

TEST(Taillard, InstanceGenerationIsDeterministic) {
  const auto a = FlowshopInstance::taillard("a", 20, 20, 479340445);
  const auto b = FlowshopInstance::taillard("b", 20, 20, 479340445);
  for (int j = 0; j < 20; ++j) {
    for (int k = 0; k < 20; ++k) EXPECT_EQ(a.p(j, k), b.p(j, k));
  }
}

TEST(Taillard, ScaledInstanceIsLeadingSubmatrixOfFull) {
  const auto full =
      FlowshopInstance::taillard("f", 20, 20, FlowshopInstance::ta20x20_seeds()[2]);
  const auto scaled = FlowshopInstance::ta20x20_scaled(2, 9, 7);
  EXPECT_EQ(scaled.name(), "Ta23s");
  for (int j = 0; j < 9; ++j) {
    for (int k = 0; k < 7; ++k) EXPECT_EQ(scaled.p(j, k), full.p(j, k));
  }
}

TEST(Taillard, TenSeedsAllDistinct) {
  const auto seeds = FlowshopInstance::ta20x20_seeds();
  ASSERT_EQ(seeds.size(), 10u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]);
    }
  }
}

// ----------------------------------------------------------------- makespan ---

TEST(Flowshop, MakespanHandComputed) {
  // 2 jobs, 2 machines: p(j0)=(3,2), p(j1)=(1,4). Order (0,1):
  // M0: j0 [0,3], j1 [3,4]; M1: j0 [3,5], j1 [5,9] -> 9.
  // Order (1,0): M0: j1 [0,1], j0 [1,4]; M1: j1 [1,5], j0 [5,7] -> 7.
  FlowshopInstance inst("hand", 2, 2, {3, 1, 2, 4});  // machine-major
  const int order01[] = {0, 1};
  const int order10[] = {1, 0};
  EXPECT_EQ(inst.makespan(order01), 9);
  EXPECT_EQ(inst.makespan(order10), 7);
}

TEST(Flowshop, SingleMachineMakespanIsSum) {
  FlowshopInstance inst("m1", 4, 1, {5, 7, 2, 9});
  std::vector<int> perm = {2, 0, 3, 1};
  EXPECT_EQ(inst.makespan(perm), 23);
}

TEST(Flowshop, AdvanceMatchesMakespan) {
  const auto inst = random_instance(6, 4, 77);
  std::vector<int> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::int64_t> completion(4, 0);
  for (int j : perm) inst.advance(completion, j);
  EXPECT_EQ(completion[3], inst.makespan(perm));
}

TEST(Flowshop, TailSumsAreConsistent) {
  const auto inst = random_instance(5, 6, 13);
  for (int j = 0; j < 5; ++j) {
    std::int64_t total = 0;
    for (int k = 0; k < 6; ++k) total += inst.p(j, k);
    EXPECT_EQ(inst.total_time(j), total);
    EXPECT_EQ(inst.tail_after(j, 5), 0);
    EXPECT_EQ(inst.tail_after(j, 2), inst.p(j, 3) + inst.p(j, 4) + inst.p(j, 5));
  }
}

// --------------------------------------------------------------------- NEH ---

TEST(Neh, ProducesAValidPermutation) {
  const auto inst = random_instance(8, 5, 21);
  auto seq = neh_heuristic(inst);
  std::sort(seq.begin(), seq.end());
  for (int j = 0; j < 8; ++j) EXPECT_EQ(seq[static_cast<std::size_t>(j)], j);
}

TEST(Neh, NeverWorseThanIdentityOrderOnSamples) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto inst = random_instance(7, 4, seed);
    std::vector<int> identity(7);
    std::iota(identity.begin(), identity.end(), 0);
    EXPECT_LE(inst.makespan(neh_heuristic(inst)), inst.makespan(identity));
  }
}

TEST(Neh, CloseToOptimumOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = random_instance(7, 5, seed * 31);
    const auto opt = brute_force_optimum(inst);
    const auto neh = inst.makespan(neh_heuristic(inst));
    EXPECT_LE(neh, opt + opt / 10 + 50);  // generous: NEH is a heuristic
    EXPECT_GE(neh, opt);
  }
}

// ------------------------------------------------------------------- bounds ---

TEST(Bounds, EmptyPrefixBoundBelowOptimum) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto inst = random_instance(6, 4, seed);
    const auto opt = brute_force_optimum(inst);
    std::vector<std::int64_t> completion(4, 0);
    std::vector<int> remaining(6);
    std::iota(remaining.begin(), remaining.end(), 0);
    for (auto kind : {BoundKind::kOneMachine, BoundKind::kTwoMachine}) {
      const auto lb = lower_bound(inst, completion, remaining, kind);
      EXPECT_LE(lb, opt) << "seed " << seed;
      EXPECT_GT(lb, 0);
    }
  }
}

TEST(Bounds, SoundOnRandomPrefixes) {
  // Property: LB(prefix) <= makespan of the best completion of that prefix.
  Xoshiro256 rng(12345);
  for (int trial = 0; trial < 40; ++trial) {
    const auto inst = random_instance(6, 3, 1000 + trial);
    // Random prefix of random length.
    std::vector<int> jobs(6);
    std::iota(jobs.begin(), jobs.end(), 0);
    for (std::size_t i = jobs.size(); i > 1; --i) {
      std::swap(jobs[i - 1], jobs[rng.below(i)]);
    }
    const auto prefix_len = static_cast<std::size_t>(rng.below(6));
    std::vector<std::int64_t> completion(3, 0);
    for (std::size_t i = 0; i < prefix_len; ++i) inst.advance(completion, jobs[i]);
    std::vector<int> remaining(jobs.begin() + static_cast<std::ptrdiff_t>(prefix_len),
                               jobs.end());
    std::sort(remaining.begin(), remaining.end());

    // Best completion by brute force over remaining permutations.
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    std::vector<int> tail = remaining;
    do {
      auto c = completion;
      for (int j : tail) inst.advance(c, j);
      best = std::min(best, c[2]);
    } while (std::next_permutation(tail.begin(), tail.end()));

    for (auto kind : {BoundKind::kOneMachine, BoundKind::kTwoMachine}) {
      EXPECT_LE(lower_bound(inst, completion, remaining, kind), best)
          << "trial " << trial;
    }
  }
}

TEST(Bounds, TwoMachineAtLeastOneMachine) {
  for (std::uint64_t seed = 50; seed < 70; ++seed) {
    const auto inst = random_instance(8, 5, seed);
    std::vector<std::int64_t> completion(5, 0);
    std::vector<int> remaining(8);
    std::iota(remaining.begin(), remaining.end(), 0);
    EXPECT_GE(lower_bound(inst, completion, remaining, BoundKind::kTwoMachine),
              lower_bound(inst, completion, remaining, BoundKind::kOneMachine));
  }
}

TEST(Bounds, CompletePrefixReturnsMakespan) {
  const auto inst = random_instance(5, 4, 3);
  std::vector<int> perm = {4, 2, 0, 1, 3};
  std::vector<std::int64_t> completion(4, 0);
  for (int j : perm) inst.advance(completion, j);
  EXPECT_EQ(lower_bound(inst, completion, {}, BoundKind::kOneMachine),
            inst.makespan(perm));
}

TEST(Bounds, JohnsonCmaxMatchesBruteForceOnTwoMachines) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto inst = random_instance(6, 2, seed * 7);
    std::vector<int> jobs(6);
    std::iota(jobs.begin(), jobs.end(), 0);
    EXPECT_EQ(johnson_cmax(inst, jobs, 0, 1), brute_force_optimum(inst));
  }
}

// ------------------------------------------------------- interval explorer ---

TEST(IntervalExplorer, FullIntervalFindsOptimum) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto inst = random_instance(7, 4, seed * 3 + 1);
    const auto opt = brute_force_optimum(inst);
    for (auto kind : {BoundKind::kOneMachine, BoundKind::kTwoMachine}) {
      const auto result = solve_sequential(inst, kind);
      EXPECT_EQ(result.optimum, opt) << "seed " << seed;
      EXPECT_EQ(inst.makespan(result.permutation), opt);
    }
  }
}

TEST(IntervalExplorer, DisjointPiecesCoverTheWholeSpace) {
  // Split [0, 7!) into k pieces, explore each with an independent UB, take
  // the min: must equal the optimum regardless of the cut points.
  const auto inst = random_instance(7, 4, 99);
  const auto opt = brute_force_optimum(inst);
  auto shared = std::make_shared<const FlowshopInstance>(inst);
  const std::uint64_t total = factorial(7);
  Xoshiro256 rng(8);
  for (int pieces : {2, 3, 8}) {
    std::vector<std::uint64_t> cuts = {0, total};
    for (int i = 1; i < pieces; ++i) cuts.push_back(rng.below(total));
    std::sort(cuts.begin(), cuts.end());
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i] == cuts[i + 1]) continue;
      IntervalExplorer explorer(shared, cuts[i], cuts[i + 1], BoundKind::kOneMachine);
      std::int64_t ub = std::numeric_limits<std::int64_t>::max();
      while (!explorer.done()) (void)explorer.run(1 << 16, ub, nullptr);
      best = std::min(best, ub);
    }
    EXPECT_EQ(best, opt) << pieces << " pieces";
  }
}

TEST(IntervalExplorer, InitialUpperBoundPrunesButKeepsOptimum) {
  const auto inst = random_instance(8, 5, 5);
  const auto cold = solve_sequential(inst, BoundKind::kOneMachine);
  const auto warm = solve_sequential(inst, BoundKind::kOneMachine,
                                     inst.makespan(neh_heuristic(inst)) + 1);
  EXPECT_EQ(cold.optimum, warm.optimum);
  EXPECT_LE(warm.nodes, cold.nodes);  // warm start can only prune more
}

TEST(IntervalExplorer, ShrinkEndNeverLosesTheOptimum) {
  // Start a full exploration, steal the right part mid-flight, finish both
  // halves: min of the two must be the optimum.
  const auto inst = random_instance(7, 4, 123);
  const auto opt = brute_force_optimum(inst);
  auto shared = std::make_shared<const FlowshopInstance>(inst);
  IntervalExplorer victim(shared, 0, factorial(7), BoundKind::kOneMachine);
  std::int64_t ub1 = std::numeric_limits<std::int64_t>::max();
  (void)victim.run(50, ub1, nullptr);  // advance a little
  ASSERT_FALSE(victim.done());
  const std::uint64_t mid = victim.position() + victim.remaining() / 2;
  IntervalExplorer thief(shared, mid, victim.end(), BoundKind::kOneMachine);
  victim.shrink_end(mid);
  std::int64_t ub2 = std::numeric_limits<std::int64_t>::max();
  while (!victim.done()) (void)victim.run(1 << 16, ub1, nullptr);
  while (!thief.done()) (void)thief.run(1 << 16, ub2, nullptr);
  EXPECT_EQ(std::min(ub1, ub2), opt);
}

TEST(IntervalExplorer, TwoMachineBoundExploresNoMoreNodes) {
  const auto inst = random_instance(9, 5, 31);
  const auto one = solve_sequential(inst, BoundKind::kOneMachine);
  const auto two = solve_sequential(inst, BoundKind::kTwoMachine);
  EXPECT_EQ(one.optimum, two.optimum);
  EXPECT_LE(two.nodes, one.nodes);
}

TEST(IntervalExplorer, RecorderCapturesOptimalPermutation) {
  const auto inst = random_instance(7, 3, 55);
  const auto result = solve_sequential(inst, BoundKind::kOneMachine);
  ASSERT_EQ(static_cast<int>(result.permutation.size()), 7);
  EXPECT_EQ(inst.makespan(result.permutation), result.optimum);
}

// -------------------------------------------------------------- work adapter ---

TEST(BBWork, SplitConservesIntervalLength) {
  const auto inst = random_instance(8, 4, 9);
  BBWorkload workload(inst, BoundKind::kOneMachine, CostModel{});
  auto work = workload.make_root_work();
  const double total = work->amount();
  auto piece = work->split(0.25);
  ASSERT_NE(piece, nullptr);
  EXPECT_DOUBLE_EQ(work->amount() + piece->amount(), total);
  EXPECT_NEAR(piece->amount(), total * 0.25, 1.0);
}

TEST(BBWork, SplitMergeStillFindsOptimum) {
  const auto inst = random_instance(7, 4, 17);
  const auto opt = brute_force_optimum(inst);
  BBWorkload workload(inst, BoundKind::kOneMachine, CostModel{});
  auto work = workload.make_root_work();
  auto a = work->split(0.3);
  auto b = work->split(0.5);
  work->merge(std::move(a));
  work->merge(std::move(b));
  while (!work->empty()) (void)work->step(1 << 16);
  EXPECT_EQ(workload.best().makespan(), opt);
}

TEST(BBWork, ObserveBoundPropagatesToExploration) {
  const auto inst = random_instance(9, 5, 41);
  // Exploring with a tight external bound must visit far fewer nodes.
  BBWorkload cold(inst, BoundKind::kOneMachine, CostModel{});
  auto w1 = cold.make_root_work();
  std::uint64_t nodes_cold = 0;
  while (!w1->empty()) nodes_cold += w1->step(1 << 16).units_done;

  BBWorkload warm(inst, BoundKind::kOneMachine, CostModel{});
  auto w2 = warm.make_root_work();
  w2->observe_bound(cold.best().makespan() + 1);
  std::uint64_t nodes_warm = 0;
  while (!w2->empty()) nodes_warm += w2->step(1 << 16).units_done;

  EXPECT_LT(nodes_warm, nodes_cold);
  EXPECT_EQ(warm.best().makespan(), cold.best().makespan());
}

TEST(BBWork, StepReportsImprovedBounds) {
  const auto inst = random_instance(7, 4, 71);
  BBWorkload workload(inst, BoundKind::kOneMachine, CostModel{});
  auto work = workload.make_root_work();
  bool ever_improved = false;
  std::int64_t last = lb::kNoBound;
  while (!work->empty()) {
    const auto r = work->step(64);
    if (r.improved_bound) {
      ever_improved = true;
      EXPECT_LT(r.bound, last);
      last = r.bound;
    }
  }
  EXPECT_TRUE(ever_improved);
  EXPECT_EQ(last, workload.best().makespan());
}

TEST(BBWork, IntervalTruncateDropsReassignedPart) {
  const auto inst = random_instance(8, 4, 83);
  BBWorkload workload(inst, BoundKind::kOneMachine, CostModel{});
  auto work = workload.make_root_work();
  auto* iv = dynamic_cast<lb::IntervalWork*>(work.get());
  ASSERT_NE(iv, nullptr);
  const std::uint64_t end = iv->interval_end();
  iv->interval_truncate(end / 2);
  EXPECT_EQ(iv->interval_end(), end / 2);
  EXPECT_DOUBLE_EQ(work->amount(), static_cast<double>(end / 2));
  // Truncating behind the position empties the work.
  (void)work->step(10);
  iv->interval_truncate(iv->interval_position());
  EXPECT_TRUE(work->empty() || iv->interval_end() > iv->interval_position());
}

TEST(BBWork, CostModelCharged) {
  const auto inst = random_instance(7, 4, 29);
  CostModel costs;
  costs.per_node = sim::microseconds(50);
  BBWorkload workload(inst, BoundKind::kOneMachine, costs);
  auto work = workload.make_root_work();
  const auto r = work->step(100);
  EXPECT_EQ(r.sim_cost, static_cast<sim::Time>(r.units_done) * sim::microseconds(50));
}

}  // namespace
}  // namespace olb::bb
