// Protocol tests for the baselines: RWS (Dijkstra-Scholten termination),
// MW (interval pool, stale-view splitting), AHMW (hierarchy, grains).
#include <gtest/gtest.h>

#include "bb/bb_work.hpp"
#include "lb/driver.hpp"
#include "lb/ds_termination.hpp"
#include "test_util.hpp"
#include "uts/uts_work.hpp"

namespace olb {
namespace {

using test_util::uts_params;

lb::RunConfig base_config(lb::Strategy s, int n, std::uint64_t seed) {
  return test_util::base_config(s, n, /*dmax=*/10, seed);
}

// --------------------------------------------------------- DsTermination ---

TEST(DsTermination, InitiatorLifecycle) {
  lb::DsTermination ds;
  ds.make_initiator();
  EXPECT_TRUE(ds.engaged());
  EXPECT_FALSE(ds.can_detach(false));  // active
  EXPECT_TRUE(ds.can_detach(true));
  EXPECT_EQ(ds.detach(), -1);  // initiator signals nobody
}

TEST(DsTermination, EngagementAndSignals) {
  lb::DsTermination ds;
  EXPECT_FALSE(ds.on_work_received(3));  // engages, no immediate signal
  EXPECT_TRUE(ds.on_work_received(5));   // already engaged: signal at once
  ds.on_work_sent();
  ds.on_work_sent();
  EXPECT_FALSE(ds.can_detach(true));  // deficit 2
  ds.on_signal();
  ds.on_signal();
  EXPECT_TRUE(ds.can_detach(true));
  EXPECT_EQ(ds.detach(), 3);  // signals the engaging parent
  EXPECT_FALSE(ds.engaged());
}

TEST(DsTermination, ReengagementUsesNewParent) {
  lb::DsTermination ds;
  (void)ds.on_work_received(1);
  EXPECT_EQ(ds.detach(), 1);
  (void)ds.on_work_received(8);
  EXPECT_EQ(ds.detach(), 8);
}

// -------------------------------------------------------------------- RWS ---

class RwsSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RwsSweep, UtsCompletesExactly) {
  const auto [n, seed] = GetParam();
  const auto params = uts_params(static_cast<std::uint32_t>(seed + 30));
  const auto expected = uts::count_tree(params).nodes;
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kRWS, n, seed));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.total_units, expected);
}

INSTANTIATE_TEST_SUITE_P(Scales, RwsSweep,
                         ::testing::Combine(::testing::Values(1, 2, 7, 33),
                                            ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Rws, SignalsMatchTransfers) {
  // Dijkstra-Scholten: every work transfer is eventually signalled once.
  const auto params = uts_params(40);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kRWS, 24, 5));
  ASSERT_TRUE(metrics.ok);
  // The initial root work is not a transfer; every kWork gets one kSignal.
  EXPECT_EQ(metrics.sent_by_type[lb::kSignal], metrics.sent_by_type[lb::kWork]);
}

TEST(Rws, StealsEitherFailOrTransfer) {
  const auto params = uts_params(41);
  uts::UtsWorkload workload(params, uts::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kRWS, 16, 2));
  ASSERT_TRUE(metrics.ok);
  // Every steal is answered (fail or work) except those still in flight
  // when the termination broadcast lands — at most one per peer.
  const std::uint64_t answered =
      metrics.sent_by_type[lb::kStealFail] + metrics.sent_by_type[lb::kWork];
  EXPECT_GE(metrics.sent_by_type[lb::kSteal], answered);
  EXPECT_LE(metrics.sent_by_type[lb::kSteal], answered + 16);
}

TEST(Rws, FlowshopOptimal) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(4, 9, 5);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kRWS, 40, 7));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(workload.best().makespan(), reference.optimum);
}

// --------------------------------------------------------------------- MW ---

class MwSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MwSweep, FlowshopOptimal) {
  const auto [n, seed] = GetParam();
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(static_cast<int>(seed % 10), 9, 5);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kMW, n, seed));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(workload.best().makespan(), reference.optimum);
}

INSTANTIATE_TEST_SUITE_P(Scales, MwSweep,
                         ::testing::Combine(::testing::Values(2, 3, 9, 40),
                                            ::testing::Values<std::uint64_t>(1, 2)));

TEST(Mw, WorkersCheckpointPeriodically) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(0, 10, 6);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  auto config = base_config(lb::Strategy::kMW, 8, 1);
  config.mw_checkpoint_period = sim::microseconds(500);
  const auto metrics = lb::run_distributed(workload, config);
  ASSERT_TRUE(metrics.ok);
  EXPECT_GT(metrics.sent_by_type[lb::kMWCheckpoint], 0u);
}

TEST(Mw, SplitNotifiesOwners) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(1, 10, 6);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kMW, 12, 1));
  ASSERT_TRUE(metrics.ok);
  // Every assignment beyond the first is a split of an owned interval.
  EXPECT_GT(metrics.sent_by_type[lb::kMWSplitNotify], 0u);
  EXPECT_EQ(metrics.sent_by_type[lb::kMWSplitNotify] + 1,
            metrics.sent_by_type[lb::kWork]);
}

TEST(Mw, RequiresIntervalWorkload) {
  const auto params = uts_params(50);
  uts::UtsWorkload workload(params, uts::CostModel{});
  EXPECT_DEATH(
      (void)lb::run_distributed(workload, base_config(lb::Strategy::kMW, 4, 1)),
      "interval");
}

// ------------------------------------------------------------------- AHMW ---

class AhmwSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AhmwSweep, FlowshopOptimal) {
  const auto [n, seed] = GetParam();
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(static_cast<int>(seed % 10), 9, 5);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kAHMW, n, seed));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(workload.best().makespan(), reference.optimum);
}

INSTANTIATE_TEST_SUITE_P(Scales, AhmwSweep,
                         ::testing::Combine(::testing::Values(1, 2, 11, 45),
                                            ::testing::Values<std::uint64_t>(1, 2)));

TEST(Ahmw, SignalsMatchTransfers) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(2, 10, 6);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  const auto metrics =
      lb::run_distributed(workload, base_config(lb::Strategy::kAHMW, 30, 3));
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.sent_by_type[lb::kSignal], metrics.sent_by_type[lb::kWork]);
}

TEST(Ahmw, DecompositionBaseChangesGrainTraffic) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(0, 10, 6);
  auto transfers_with = [&](double base) {
    bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
    auto config = base_config(lb::Strategy::kAHMW, 30, 2);
    config.ahmw_decomposition = base;
    const auto metrics = lb::run_distributed(workload, config);
    EXPECT_TRUE(metrics.ok);
    return metrics.sent_by_type[lb::kWork];
  };
  // Finer grains (larger divisor base) force more pulls.
  EXPECT_GT(transfers_with(200.0), transfers_with(8.0));
}

// ------------------------------------------------ cross-strategy agreement ---

TEST(CrossStrategy, AllStrategiesAgreeOnEveryScaledInstance) {
  for (int idx = 0; idx < 10; ++idx) {
    const auto inst = bb::FlowshopInstance::ta20x20_scaled(idx, 9, 4);
    const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
    for (auto strategy : {lb::Strategy::kOverlayBTD, lb::Strategy::kRWS,
                          lb::Strategy::kMW, lb::Strategy::kAHMW}) {
      bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
      const auto metrics =
          lb::run_distributed(workload, base_config(strategy, 15, 11));
      ASSERT_TRUE(metrics.ok) << lb::strategy_name(strategy) << " Ta" << (21 + idx);
      EXPECT_EQ(workload.best().makespan(), reference.optimum)
          << lb::strategy_name(strategy) << " Ta" << (21 + idx);
    }
  }
}

TEST(CrossStrategy, SequentialRunnerAgreesWithSolver) {
  const auto inst = bb::FlowshopInstance::ta20x20_scaled(5, 10, 6);
  bb::BBWorkload workload(inst, bb::BoundKind::kOneMachine, bb::CostModel{});
  const auto seq = lb::run_sequential(workload);
  const auto reference = bb::solve_sequential(inst, bb::BoundKind::kOneMachine);
  EXPECT_EQ(seq.units, reference.nodes);
  EXPECT_EQ(workload.best().makespan(), reference.optimum);
  EXPECT_GT(seq.exec_seconds, 0.0);
}

}  // namespace
}  // namespace olb
